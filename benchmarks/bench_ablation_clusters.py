"""Ablation A3 — the Sec. IV-A cluster-count rule.

Sweeps k and reports min nearest-cluster fidelity + offline cost, showing
the 0.95 rule's operating point: fidelity rises with k while offline
training cost grows linearly.
"""

import numpy as np

from benchmarks.conftest import publish
from repro.core import KMeans, min_nearest_fidelity
from repro.core.ansatz import EnQodeAnsatz
from repro.core.objective import FidelityObjective
from repro.core.optimizer import LBFGSOptimizer
from repro.core.symbolic import build_symbolic
from repro.utils.timing import Timer

K_SWEEP = (1, 2, 4, 8, 16)


def _sweep(context):
    dataset = context.datasets["mnist"]
    block = dataset.class_slice(int(dataset.classes()[0]))
    ansatz = EnQodeAnsatz(8, 8)
    symbolic = build_symbolic(ansatz)
    optimizer = LBFGSOptimizer(num_restarts=2, seed=0, max_iterations=800)
    rows = []
    for k in K_SWEEP:
        model = KMeans(k, seed=0).fit(block)
        nn_fid = min_nearest_fidelity(block, model.centers_)
        with Timer() as timer:
            for center in model.centers_:
                center = center / np.linalg.norm(center)
                optimizer.optimize(
                    FidelityObjective(symbolic, ansatz, center)
                )
        rows.append((k, nn_fid, timer.elapsed))
    return rows


def test_ablation_cluster_budget(benchmark, context):
    rows = benchmark.pedantic(lambda: _sweep(context), rounds=1, iterations=1)
    lines = [
        "Ablation A3 — clusters vs nearest fidelity vs offline cost",
        f"{'k':>4}{'min nn fidelity':>18}{'offline train (s)':>20}",
    ]
    for k, fid, seconds in rows:
        lines.append(f"{k:>4d}{fid:>18.3f}{seconds:>20.2f}")
    publish("ablation_clusters", "\n".join(lines))

    fidelities = [fid for _, fid, _ in rows]
    times = [seconds for _, _, seconds in rows]
    # Nearest-cluster fidelity improves with k ...
    assert fidelities[-1] > fidelities[0]
    # ... while offline cost grows with k (roughly linearly).
    assert times[-1] > times[0]
    # And even k=16 stays far below the paper's 200 s budget.
    assert times[-1] < 200.0
