"""Ablation A2 — entangler choice and the orientation-alternation detail.

Sec. III-A argues CX/CY/CZ have comparable noise cost and picks CY "in an
alternating configuration".  This ablation reproduces the choice — and
quantifies the reproduction's key finding: with a *fixed* CY orientation
the +-i phases accumulate a quadratic offset the Rz family cannot cancel,
capping fidelity near 0.44, while the alternating arrangement (or CZ)
restores ~0.9.
"""

import numpy as np

from benchmarks.conftest import publish
from repro.core import EnQodeAnsatz, FidelityObjective, LBFGSOptimizer, build_symbolic

VARIANTS = [
    ("cy alternating (paper)", "cy", True),
    ("cy fixed orientation", "cy", False),
    ("cry alternating", "cry", True),
    ("cx alternating", "cx", True),
    ("cz alternating", "cz", True),
]


def _sweep(context):
    dataset = context.datasets["mnist"]
    block = dataset.class_slice(int(dataset.classes()[0]))
    mean = block.mean(axis=0)
    mean /= np.linalg.norm(mean)
    rows = []
    for label, entangler, alternate in VARIANTS:
        ansatz = EnQodeAnsatz(
            8, 8, entangler, alternate_orientation=alternate
        )
        objective = FidelityObjective(build_symbolic(ansatz), ansatz, mean)
        result = LBFGSOptimizer(num_restarts=4, seed=0).optimize(objective)
        rows.append((label, result.fidelity))
    return rows


def test_ablation_entangler_choice(benchmark, context):
    rows = benchmark.pedantic(lambda: _sweep(context), rounds=1, iterations=1)
    lines = [
        "Ablation A2 — entangler arrangement vs achievable fidelity",
        f"{'variant':<28}{'fidelity':>10}",
    ]
    for label, fidelity in rows:
        lines.append(f"{label:<28}{fidelity:>10.3f}")
    publish("ablation_entangler", "\n".join(lines))

    fidelity = dict(rows)
    # The load-bearing reproduction finding:
    assert fidelity["cy alternating (paper)"] > 0.7
    assert fidelity["cy fixed orientation"] < 0.6
    assert (
        fidelity["cy alternating (paper)"]
        > fidelity["cy fixed orientation"] + 0.2
    )
    # CZ telescopes the same way the alternating CY does.
    assert abs(fidelity["cz alternating"] - fidelity["cy alternating (paper)"]) < 0.1
