"""Ablation A1 — ansatz depth: fidelity vs number of layers.

Sec. IV-A fixes 8 layers for 8 qubits.  This sweep shows why: fidelity
saturates around L=8 while transpiled depth keeps growing linearly, so 8
is the knee of the fidelity/depth trade-off.
"""

import numpy as np

from benchmarks.conftest import publish
from repro.core import EnQodeAnsatz, FidelityObjective, LBFGSOptimizer, build_symbolic
from repro.transpile import transpile

LAYER_SWEEP = (2, 4, 8, 12)


def _mean_target(context):
    dataset = context.datasets["mnist"]
    block = dataset.class_slice(int(dataset.classes()[0]))
    mean = block.mean(axis=0)
    return mean / np.linalg.norm(mean)


def _sweep(context):
    target = _mean_target(context)
    rows = []
    for layers in LAYER_SWEEP:
        ansatz = EnQodeAnsatz(8, layers)
        objective = FidelityObjective(build_symbolic(ansatz), ansatz, target)
        result = LBFGSOptimizer(num_restarts=4, seed=0).optimize(objective)
        transpiled = transpile(ansatz.circuit(result.theta), context.backend)
        rows.append((layers, result.fidelity, transpiled.metrics().depth))
    return rows


def test_ablation_layer_sweep(benchmark, context):
    rows = benchmark.pedantic(lambda: _sweep(context), rounds=1, iterations=1)
    lines = [
        "Ablation A1 — layers vs fidelity vs transpiled depth",
        f"{'layers':>8}{'fidelity':>12}{'depth':>8}",
    ]
    for layers, fidelity, depth in rows:
        lines.append(f"{layers:>8d}{fidelity:>12.3f}{depth:>8d}")
    publish("ablation_layers", "\n".join(lines))

    fidelities = {layers: f for layers, f, _ in rows}
    depths = {layers: d for layers, _, d in rows}
    # More layers never reduces reachable fidelity (monotone-ish family).
    assert fidelities[8] >= fidelities[2] - 0.02
    # Depth grows with layers; fidelity saturates near the paper's L=8.
    assert depths[12] > depths[8] > depths[4]
    assert fidelities[12] - fidelities[8] < 0.1
