"""Ablation A4 — symbolic analytic Jacobian vs numerical differentiation.

Sec. III-B's core claim: supplying the closed-form Jacobian to L-BFGS is
what makes EnQode training fast.  This bench optimizes the same cluster
mean with (a) the symbolic gradient and (b) finite-difference gradients
(what "conventional approaches" must do), and compares wall time at
matched fidelity.
"""

import numpy as np
from scipy.optimize import minimize

from benchmarks.conftest import publish
from repro.core import EnQodeAnsatz, FidelityObjective, build_symbolic
from repro.utils.timing import Timer


def _setup(context):
    dataset = context.datasets["mnist"]
    block = dataset.class_slice(int(dataset.classes()[0]))
    mean = block.mean(axis=0)
    mean /= np.linalg.norm(mean)
    ansatz = EnQodeAnsatz(8, 8)
    return FidelityObjective(build_symbolic(ansatz), ansatz, mean)


def _run(objective, theta0, use_symbolic_jacobian):
    if use_symbolic_jacobian:
        with Timer() as timer:
            result = minimize(
                objective.value_and_grad,
                theta0,
                jac=True,
                method="L-BFGS-B",
                options={"maxiter": 400},
            )
    else:
        with Timer() as timer:
            result = minimize(
                lambda t: objective.value_and_grad(t)[0],
                theta0,
                jac=None,  # scipy falls back to finite differences
                method="L-BFGS-B",
                options={"maxiter": 400},
            )
    return 1.0 - result.fun, timer.elapsed


def test_ablation_symbolic_vs_numeric(benchmark, context):
    objective = _setup(context)
    theta0 = np.random.default_rng(0).uniform(-np.pi, np.pi, 64)

    def run_both():
        symbolic = _run(objective, theta0, use_symbolic_jacobian=True)
        numeric = _run(objective, theta0, use_symbolic_jacobian=False)
        return symbolic, numeric

    (sym_fid, sym_time), (num_fid, num_time) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    speedup = num_time / sym_time
    publish(
        "ablation_symbolic",
        "\n".join(
            [
                "Ablation A4 — symbolic Jacobian vs finite differences",
                f"{'method':<22}{'fidelity':>10}{'time (s)':>12}",
                f"{'symbolic (paper)':<22}{sym_fid:>10.3f}{sym_time:>12.3f}",
                f"{'finite differences':<22}{num_fid:>10.3f}{num_time:>12.3f}",
                f"speedup: {speedup:.1f}x",
            ]
        ),
    )
    # Same optimum (same start, same optimizer) ...
    assert abs(sym_fid - num_fid) < 0.05
    # ... but the symbolic Jacobian is far cheaper (1 vs 65 evaluations
    # per gradient).
    assert speedup > 5.0
