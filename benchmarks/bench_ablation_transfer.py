"""Ablation A5 — transfer learning vs cold-start online embedding.

Sec. III-D: initializing each sample's optimization from its nearest
cluster's trained parameters is what makes online embedding fast *and*
uniform.  Contrast: same iteration budget, random initialization.
"""

import numpy as np

from benchmarks.conftest import publish


def _sweep(context):
    encoder = context.encoders["mnist"]
    samples = context.samples("mnist", 8)
    transfer = encoder._transfer
    warm_rows, cold_rows = [], []
    for i, sample in enumerate(samples):
        sample = sample / np.linalg.norm(sample)
        warm = transfer.embed(sample)
        cold = transfer.embed_cold(sample, seed=i)
        warm_rows.append((warm.fidelity, warm.result.num_iterations))
        cold_rows.append((cold.fidelity, cold.result.num_iterations))
    return warm_rows, cold_rows


def test_ablation_transfer_learning(benchmark, context):
    warm_rows, cold_rows = benchmark.pedantic(
        lambda: _sweep(context), rounds=1, iterations=1
    )
    warm_fid = np.mean([f for f, _ in warm_rows])
    cold_fid = np.mean([f for f, _ in cold_rows])
    warm_iters = np.mean([i for _, i in warm_rows])
    cold_iters = np.mean([i for _, i in cold_rows])
    publish(
        "ablation_transfer",
        "\n".join(
            [
                "Ablation A5 — warm (transfer) vs cold online embedding",
                f"{'init':<18}{'mean fidelity':>15}{'mean iterations':>18}",
                f"{'nearest cluster':<18}{warm_fid:>15.3f}{warm_iters:>18.1f}",
                f"{'random':<18}{cold_fid:>15.3f}{cold_iters:>18.1f}",
            ]
        ),
    )
    # Transfer learning reaches at least the cold-start quality with
    # fewer optimizer iterations (the latency-uniformity argument).
    assert warm_fid >= cold_fid - 0.02
    assert warm_iters <= cold_iters
