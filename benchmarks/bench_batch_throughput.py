"""Batch-encoding throughput: sequential ``encode`` loop vs ``encode_batch``.

Measures samples/sec of the online embedding path at 4-8 qubits on
paper-style synthetic MNIST PCA data, quantifying the PR-1 tentpole: the
stacked batched fine-tuner plus the parametric transpile template must
deliver >= 5x throughput over the per-sample loop at batch size 64 on 6
qubits, with numerically equivalent results (fidelity diff < 1e-9,
identical transpiled gate counts).

Runs standalone (``PYTHONPATH=src python benchmarks/bench_batch_throughput.py``)
or under pytest (``pytest benchmarks/bench_batch_throughput.py``); either
way it writes the ``BENCH_batch_throughput.json`` artifact at the repo
root so future PRs can track the throughput trajectory.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.core import EnQodeConfig, EnQodeEncoder
from repro.data import load_dataset
from repro.hardware import brisbane_linear_segment

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_batch_throughput.json"
)

BATCH_SIZE = 64
QUBIT_COUNTS = (4, 6, 8)
#: The acceptance gate applies at the paper-adjacent mid scale.
GATED_QUBITS = 6
MIN_SPEEDUP = 5.0
REPETITIONS = 3


def _fitted_encoder(num_qubits: int) -> tuple[EnQodeEncoder, np.ndarray]:
    # PCA requires at least 2**num_qubits samples (256 at 8 qubits).
    dataset = load_dataset(
        "mnist",
        samples_per_class=60,
        num_features=2**num_qubits,
        seed=0,
    )
    config = EnQodeConfig(
        num_qubits=num_qubits,
        num_layers=8,
        offline_restarts=2,
        offline_max_iterations=500,
        online_max_iterations=80,
        max_clusters=24,
        seed=7,
    )
    encoder = EnQodeEncoder(brisbane_linear_segment(num_qubits), config)
    encoder.fit(dataset.amplitudes)
    samples = dataset.amplitudes[:BATCH_SIZE]
    return encoder, samples


def _check_equivalence(sequential, batched) -> dict:
    """Compare the two paths sample by sample.

    At the gated scale the trajectories land in the same optimum and the
    fidelity difference is ~1e-12.  On harder (8-qubit) landscapes the
    sequential per-sample L-BFGS occasionally exits early on a plateau
    (scipy's relative-decrease rule) while the stacked drive + polish
    escapes it — the batched result is then *better*, never worse, which
    is what ``min_fidelity_advantage`` tracks.
    """
    diffs = [
        b.ideal_fidelity - s.ideal_fidelity
        for s, b in zip(sequential, batched)
    ]
    clusters_equal = all(
        s.cluster_index == b.cluster_index
        for s, b in zip(sequential, batched)
    )
    gate_counts_equal = all(
        s.circuit.count_ops() == b.circuit.count_ops()
        for s, b in zip(sequential, batched)
    )
    return {
        "max_fidelity_diff": float(max(abs(d) for d in diffs)),
        "min_fidelity_advantage": float(min(diffs)),
        "num_divergent": int(sum(abs(d) > 1e-9 for d in diffs)),
        "clusters_equal": bool(clusters_equal),
        "gate_counts_equal": bool(gate_counts_equal),
    }


def run_benchmark() -> dict:
    results = {}
    for num_qubits in QUBIT_COUNTS:
        encoder, samples = _fitted_encoder(num_qubits)
        # Warm both paths once (template build, numpy/scipy caches).
        sequential = [encoder.encode(x) for x in samples[:2]]
        encoder.encode_batch(samples[:2])

        seq_times, batch_times = [], []
        for _ in range(REPETITIONS):
            start = time.perf_counter()
            sequential = [encoder.encode(x) for x in samples]
            seq_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            batched = encoder.encode_batch(samples)
            batch_times.append(time.perf_counter() - start)

        seq_time = float(np.median(seq_times))
        batch_time = float(np.median(batch_times))
        results[str(num_qubits)] = {
            "batch_size": BATCH_SIZE,
            "sequential_seconds": seq_time,
            "batched_seconds": batch_time,
            "sequential_samples_per_sec": BATCH_SIZE / seq_time,
            "batched_samples_per_sec": BATCH_SIZE / batch_time,
            "speedup": seq_time / batch_time,
            **_check_equivalence(sequential, batched),
        }
    return results


def publish(results: dict) -> None:
    ARTIFACT.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    header = (
        f"{'qubits':>6} {'seq s/s':>10} {'batch s/s':>10} {'speedup':>8} "
        f"{'fid diff':>10}"
    )
    print("\n" + header)
    for qubits, row in sorted(results.items(), key=lambda kv: int(kv[0])):
        print(
            f"{qubits:>6} {row['sequential_samples_per_sec']:>10.1f} "
            f"{row['batched_samples_per_sec']:>10.1f} "
            f"{row['speedup']:>7.1f}x {row['max_fidelity_diff']:>10.1e}"
        )
    print(f"artifact: {ARTIFACT}")


def test_batch_throughput():
    results = run_benchmark()
    publish(results)
    for row in results.values():
        assert row["clusters_equal"]
        # Batched may only ever match or beat the sequential optimizer.
        assert row["min_fidelity_advantage"] > -1e-9
    # Strict acceptance gate at the paper-adjacent mid scale: numerically
    # equivalent results and >= 5x throughput at batch size 64.
    gated = results[str(GATED_QUBITS)]
    assert gated["max_fidelity_diff"] < 1e-9
    assert gated["gate_counts_equal"]
    assert gated["speedup"] >= MIN_SPEEDUP


if __name__ == "__main__":
    test_batch_throughput()
