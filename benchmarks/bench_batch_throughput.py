"""Batch-encoding throughput: sequential ``encode`` loop vs ``encode_batch``.

Measures samples/sec of the online embedding path at 4-8 qubits on
paper-style synthetic MNIST PCA data.  Since PR 4 the batched path lowers
the whole batch through one vectorized ``ParametricTemplate.bind_batch``
sweep, so on top of the end-to-end comparison this bench records:

* a **per-stage timing breakdown** (route / finetune / bind / lower,
  plus the deferred ``materialize`` cost of expanding every compact-IR
  circuit to instructions) of the batched path, read off
  ``EncodePipeline.stats``, so the current bottleneck is named in the
  artifact;
* the **bind-stage micro-benchmark**: a loop of per-sample
  ``template.bind`` calls vs one ``bind_batch`` over the same angles,
  with instruction-for-instruction equality asserted (down to the float
  bits of every Rz angle) and the speedup gated;
* the **bind-allocation micro-benchmark** (PR 6): tracemalloc byte and
  allocation-block counts for one batch-64 bind — the eager per-sample
  loop vs the array-backed ``bind_batch_ir`` compact IR;
* the **fine-tune engine comparison** (``optimize_rows`` vs the scipy
  stacked drive) on the warm-started online batch, justifying the
  ``EnQodeConfig.online_batch_engine`` default;
* the **wire-format micro-benchmark** (PR 8): bytes-per-circuit and
  encode/decode wall time of one template-bound batch across the
  :mod:`repro.io` serializations — the compact wire record
  (fingerprint + thetas), the synthesis-inlined variant, the
  self-contained binary gate stream, OpenQASM 2 text, and the naive
  per-circuit pickle of the eager instruction stream — with the
  decoded record asserted ``np.array_equal`` to the in-memory IR and
  the compact record gated at >= 20x smaller than the pickle.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_batch_throughput.py``),
as a CI smoke check (``... --smoke`` — one reduced 4-qubit scenario, no
artifact write), or under pytest; the full run writes the
``BENCH_batch_throughput.json`` artifact at the repo root so future PRs
can track the throughput trajectory.
"""

from __future__ import annotations

import gc
import json
import pathlib
import pickle
import sys
import time
import tracemalloc

import numpy as np

from repro.core import EnQodeConfig, EnQodeEncoder
from repro.core.ansatz import EnQodeAnsatz
from repro.data import load_dataset
from repro.hardware import brisbane_linear_segment
from repro.transpile import transpile_template

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_batch_throughput.json"
)

BATCH_SIZE = 64
QUBIT_COUNTS = (4, 6, 8)
#: End-to-end acceptance gates (per-qubit-count minimum speedups at
#: batch 64; the bind-stage gate applies at the paper-adjacent mid scale).
GATED_SPEEDUPS = {4: 11.0, 6: 8.0}
GATED_QUBITS = 6
MIN_BIND_SPEEDUP = 3.0
#: PR-6 compact-IR gate: one batch-64 bind must allocate >= 10x fewer
#: tracemalloc blocks than the eager per-sample loop it replaced.
MIN_ALLOCATION_RATIO = 10.0
#: PR-8 wire-format gate: the compact template-bound record must be
#: >= 20x smaller than shipping each circuit's eager instruction
#: stream as a pickle (~25-26x measured at 4-6 qubits, batch 64).
MIN_WIRE_COMPRESSION = 20.0
REPETITIONS = 3


def _fitted_encoder(
    num_qubits: int, samples_per_class: int = 60, batch_size: int = BATCH_SIZE
) -> tuple[EnQodeEncoder, np.ndarray]:
    # PCA requires at least 2**num_qubits samples (256 at 8 qubits).
    dataset = load_dataset(
        "mnist",
        samples_per_class=samples_per_class,
        num_features=2**num_qubits,
        seed=0,
    )
    config = EnQodeConfig(
        num_qubits=num_qubits,
        num_layers=8,
        offline_restarts=2,
        offline_max_iterations=500,
        online_max_iterations=80,
        max_clusters=24,
        seed=7,
    )
    encoder = EnQodeEncoder(brisbane_linear_segment(num_qubits), config)
    encoder.fit(dataset.amplitudes)
    samples = dataset.amplitudes[:batch_size]
    return encoder, samples


def _check_equivalence(sequential, batched) -> dict:
    """Compare the two paths sample by sample.

    At the gated scale the trajectories land in the same optimum and the
    fidelity difference is ~1e-12.  On harder (8-qubit) landscapes the
    sequential per-sample L-BFGS occasionally exits early on a plateau
    (scipy's relative-decrease rule) while the batched drive + polish
    escapes it — the batched result is then *better*, never worse, which
    is what ``min_fidelity_advantage`` tracks.
    """
    diffs = [
        b.ideal_fidelity - s.ideal_fidelity
        for s, b in zip(sequential, batched)
    ]
    clusters_equal = all(
        s.cluster_index == b.cluster_index
        for s, b in zip(sequential, batched)
    )
    gate_counts_equal = all(
        s.circuit.count_ops() == b.circuit.count_ops()
        for s, b in zip(sequential, batched)
    )
    return {
        "max_fidelity_diff": float(max(abs(d) for d in diffs)),
        "min_fidelity_advantage": float(min(diffs)),
        "num_divergent": int(sum(abs(d) > 1e-9 for d in diffs)),
        "clusters_equal": bool(clusters_equal),
        "gate_counts_equal": bool(gate_counts_equal),
    }


def _measure_allocation(fn) -> tuple[int, int]:
    """(bytes, blocks) still allocated by ``fn()`` at return time."""
    gc.collect()
    tracemalloc.start()
    result = fn()
    snapshot = tracemalloc.take_snapshot()
    tracemalloc.stop()
    del result
    stats = snapshot.statistics("filename")
    return (
        sum(stat.size for stat in stats),
        sum(stat.count for stat in stats),
    )


def _bind_allocation(template, thetas: np.ndarray) -> dict:
    """tracemalloc counts for one whole-batch bind, eager loop vs IR.

    The eager path builds a ``Gate``/``Instruction`` object graph per
    sample; the compact IR holds only packed numpy rows per sample, so
    both the byte total and (especially) the allocation-block count must
    drop by an order of magnitude.
    """
    eager_bytes, eager_blocks = _measure_allocation(
        lambda: [template.bind(theta) for theta in thetas]
    )
    ir_bytes, ir_blocks = _measure_allocation(
        lambda: template.bind_batch_ir(thetas)
    )
    return {
        "batch_size": int(thetas.shape[0]),
        "eager_bind_bytes": int(eager_bytes),
        "eager_bind_blocks": int(eager_blocks),
        "ir_bind_bytes": int(ir_bytes),
        "ir_bind_blocks": int(ir_blocks),
        "bytes_ratio": eager_bytes / ir_bytes,
        "blocks_ratio": eager_blocks / ir_blocks,
    }


def _bind_stage(encoder: EnQodeEncoder, batched, repetitions: int) -> dict:
    """Micro-benchmark the bind stage: per-sample loop vs ``bind_batch``.

    Also asserts the batched sweep is instruction-for-instruction
    identical to the loop — exact gate names, qubits, and float bits.
    """
    template = encoder.pipeline.lower.template()
    thetas = np.asarray([sample.theta for sample in batched])
    loop_results = [template.bind(theta) for theta in thetas]
    batch_results = template.bind_batch(thetas)
    identical = all(
        len(loop.circuit) == len(batch.circuit)
        and all(
            a.gate.name == b.gate.name
            and a.gate.params == b.gate.params
            and a.qubits == b.qubits
            for a, b in zip(loop.circuit, batch.circuit)
        )
        for loop, batch in zip(loop_results, batch_results)
    )
    loop_times, batch_times = [], []
    for _ in range(repetitions):
        start = time.perf_counter()
        loop_results = [template.bind(theta) for theta in thetas]
        loop_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        batch_results = template.bind_batch(thetas)
        batch_times.append(time.perf_counter() - start)
    loop_time = float(np.median(loop_times))
    batch_time = float(np.median(batch_times))
    return {
        "bind_loop_seconds": loop_time,
        "bind_batch_seconds": batch_time,
        "bind_speedup": loop_time / batch_time,
        "bind_instruction_identical": bool(identical),
        "bind_allocation": _bind_allocation(template, thetas),
    }


def _finetune_engines(encoder: EnQodeEncoder, samples, repetitions) -> dict:
    """Warm-start fine-tune wall time per engine (the knob's evidence)."""
    pipeline = encoder.pipeline
    prepared = pipeline.prepare(samples)
    plan = pipeline.route.run(prepared)
    transfer = encoder.pipeline.transfer
    original = transfer.batch_engine
    timings = {}
    fidelities = {}
    try:
        for engine in ("stacked", "rows"):
            transfer.batch_engine = engine
            transfer.finetune(prepared, plan.indices, plan.distances)  # warm
            times = []
            for _ in range(repetitions):
                start = time.perf_counter()
                outcomes = transfer.finetune(
                    prepared, plan.indices, plan.distances
                )
                times.append(time.perf_counter() - start)
            timings[engine] = float(np.median(times))
            fidelities[engine] = [o.fidelity for o in outcomes]
    finally:
        transfer.batch_engine = original
    return {
        "stacked_seconds": timings["stacked"],
        "rows_seconds": timings["rows"],
        "rows_speedup_over_stacked": timings["stacked"] / timings["rows"],
        "max_engine_fidelity_diff": float(
            max(
                abs(a - b)
                for a, b in zip(fidelities["stacked"], fidelities["rows"])
            )
        ),
        "default_engine": EnQodeConfig().online_batch_engine,
    }


def _timed(fn, repetitions: int = REPETITIONS):
    """(result, median wall seconds) of ``fn()`` over ``repetitions``."""
    times = []
    for _ in range(repetitions):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return result, float(np.median(times))


def _wire_formats(template, bound) -> dict:
    """Size and encode/decode cost of one batch across the serializations.

    The compact wire record ships fingerprint + thetas and rebinds on
    decode, so its decode cost *includes* the full ``bind_batch_ir``
    sweep — and the decoded batch must still be ``np.array_equal`` to
    the sender's IR, statevectors included.  The pickle comparator is
    per-circuit (one ``pickle.dumps`` per eager circuit, sizes summed):
    that is what shipping each response independently costs, and it is
    the baseline the >= ``MIN_WIRE_COMPRESSION`` gate divides by.
    """
    from repro.io import wire
    from repro.io.qasm import from_qasm, to_qasm

    batch = bound.batch_size
    eager = [bound.circuit(row).materialize() for row in range(batch)]

    compact, compact_enc = _timed(lambda: wire.dump_batch(bound))
    synthesis, _ = _timed(
        lambda: wire.dump_batch(bound, include_synthesis=True)
    )
    stream, stream_enc = _timed(
        lambda: wire.dump_circuits(eager, gate_stream=True)
    )
    texts, qasm_enc = _timed(lambda: [to_qasm(c) for c in eager])
    pickles, pickle_enc = _timed(
        lambda: [
            pickle.dumps(c, protocol=pickle.HIGHEST_PROTOCOL)
            for c in eager
        ]
    )

    decoded, compact_dec = _timed(
        lambda: wire.load(compact, template=template)
    )
    _, stream_dec = _timed(lambda: wire.load(stream))
    _, qasm_dec = _timed(lambda: [from_qasm(t) for t in texts])
    _, pickle_dec = _timed(lambda: [pickle.loads(p) for p in pickles])

    decode_equal = all(
        np.array_equal(
            decoded.statevector_row(row).data,
            bound.statevector_row(row).data,
        )
        for row in range(batch)
    )
    qasm_bytes = sum(len(t.encode()) for t in texts)
    pickle_bytes = sum(len(p) for p in pickles)
    return {
        "batch_size": batch,
        "wire_bytes_per_circuit": len(compact) / batch,
        "synthesis_bytes_per_circuit": len(synthesis) / batch,
        "gate_stream_bytes_per_circuit": len(stream) / batch,
        "qasm_bytes_per_circuit": qasm_bytes / batch,
        "pickle_bytes_per_circuit": pickle_bytes / batch,
        "compression_vs_pickle": pickle_bytes / len(compact),
        "compression_vs_qasm": qasm_bytes / len(compact),
        "wire_encode_seconds": compact_enc,
        "wire_decode_seconds": compact_dec,
        "gate_stream_encode_seconds": stream_enc,
        "gate_stream_decode_seconds": stream_dec,
        "qasm_encode_seconds": qasm_enc,
        "qasm_decode_seconds": qasm_dec,
        "pickle_encode_seconds": pickle_enc,
        "pickle_decode_seconds": pickle_dec,
        "decode_array_equal": bool(decode_equal),
    }


def run_scenario(
    num_qubits: int,
    samples_per_class: int = 60,
    batch_size: int = BATCH_SIZE,
    repetitions: int = REPETITIONS,
) -> dict:
    encoder, samples = _fitted_encoder(
        num_qubits, samples_per_class, batch_size
    )
    # Warm both paths once (template build, numpy/scipy caches).
    encoder.encode(samples[0])
    encoder.encode_batch(samples[:2])

    seq_times, batch_times = [], []
    for _ in range(repetitions):
        start = time.perf_counter()
        sequential = [encoder.encode(x) for x in samples]
        seq_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        batched = encoder.encode_batch(samples)
        batch_times.append(time.perf_counter() - start)

    seq_time = float(np.median(seq_times))
    batch_time = float(np.median(batch_times))
    template = encoder.pipeline.lower.template()
    bound = template.bind_batch_ir(
        np.asarray([sample.theta for sample in batched])
    )
    return {
        "batch_size": batch_size,
        "sequential_seconds": seq_time,
        "batched_seconds": batch_time,
        "sequential_samples_per_sec": batch_size / seq_time,
        "batched_samples_per_sec": batch_size / batch_time,
        "speedup": seq_time / batch_time,
        **_check_equivalence(sequential, batched),
        "stages": _stage_breakdown(encoder, batched),
        **_bind_stage(encoder, batched, repetitions),
        "finetune_engines": _finetune_engines(
            encoder, samples, repetitions
        ),
        "wire": _wire_formats(template, bound),
    }


def _stage_breakdown(encoder, batched, repetitions: int = 3) -> dict:
    """Clean template-mode runs' stage split (fresh counters, averaged).

    ``materialize_seconds`` is the *deferred* cost the compact IR moves
    out of the bind stage: expanding every lazy circuit of one batch to
    its eager instruction stream.  It is reported alongside the pipeline
    stages (it is not part of ``encode_batch`` wall time — only
    consumers that iterate instructions ever pay it).
    """
    pipeline = encoder.pipeline
    stats_cls = type(pipeline.stats)
    pipeline.stats = stats_cls()
    samples = np.asarray([s.target for s in batched])
    for _ in range(repetitions):
        results = encoder.encode_batch(samples)
    stats = pipeline.stats
    total = (
        stats.route_seconds
        + stats.finetune_seconds
        + stats.bind_seconds
        + stats.lower_seconds
    )
    materialize_times = []
    for _ in range(repetitions):
        start = time.perf_counter()
        for encoded in results:
            encoded.circuit.materialize()
        materialize_times.append(time.perf_counter() - start)
    return {
        "route_seconds": stats.route_seconds / repetitions,
        "finetune_seconds": stats.finetune_seconds / repetitions,
        "bind_seconds": stats.bind_seconds / repetitions,
        "lower_seconds": stats.lower_seconds / repetitions,
        "materialize_seconds": float(np.median(materialize_times)),
        "bind_fraction": stats.bind_seconds / total if total else float("nan"),
    }


def run_benchmark() -> dict:
    return {
        str(num_qubits): run_scenario(num_qubits)
        for num_qubits in QUBIT_COUNTS
    }


def publish(results: dict, write_artifact: bool = True) -> None:
    if write_artifact:
        ARTIFACT.write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n"
        )
    header = (
        f"{'qubits':>6} {'seq s/s':>10} {'batch s/s':>10} {'speedup':>8} "
        f"{'bind x':>7} {'bind %':>7} {'fid diff':>10} "
        f"{'wire B':>7} {'vs pkl':>7}"
    )
    print("\n" + header)
    for qubits, row in sorted(results.items(), key=lambda kv: int(kv[0])):
        print(
            f"{qubits:>6} {row['sequential_samples_per_sec']:>10.1f} "
            f"{row['batched_samples_per_sec']:>10.1f} "
            f"{row['speedup']:>7.1f}x "
            f"{row['bind_speedup']:>6.1f}x "
            f"{row['stages']['bind_fraction'] * 100:>6.1f}% "
            f"{row['max_fidelity_diff']:>10.1e} "
            f"{row['wire']['wire_bytes_per_circuit']:>7.0f} "
            f"{row['wire']['compression_vs_pickle']:>6.1f}x"
        )
    if write_artifact:
        print(f"artifact: {ARTIFACT}")


def test_batch_throughput():
    results = run_benchmark()
    publish(results)
    for row in results.values():
        assert row["clusters_equal"]
        # Batched may only ever match or beat the sequential optimizer.
        assert row["min_fidelity_advantage"] > -1e-9
        # bind_batch must be a pure lowering optimization everywhere.
        assert row["bind_instruction_identical"]
        # Both fine-tune engines land in the same optimum.
        assert row["finetune_engines"]["max_engine_fidelity_diff"] < 1e-9
    # Strict acceptance gates at the 4- and 6-qubit scales: numerically
    # equivalent results and the PR-4 end-to-end speedups at batch 64.
    for qubits, min_speedup in GATED_SPEEDUPS.items():
        gated = results[str(qubits)]
        assert gated["max_fidelity_diff"] < 1e-9
        assert gated["gate_counts_equal"]
        assert gated["speedup"] >= min_speedup
    # The bind stage itself must beat the per-sample loop >= 3x, and the
    # compact IR must allocate >= 10x fewer blocks than the eager loop.
    gated = results[str(GATED_QUBITS)]
    assert gated["bind_speedup"] >= MIN_BIND_SPEEDUP
    assert gated["bind_allocation"]["blocks_ratio"] >= MIN_ALLOCATION_RATIO
    # Wire-format gates hold at every scale: the decoded compact record
    # is bit-identical to the in-memory IR and >= 20x smaller than the
    # naive per-circuit pickle of the eager instruction stream.
    for row in results.values():
        assert row["wire"]["decode_array_equal"]
        assert row["wire"]["compression_vs_pickle"] >= MIN_WIRE_COMPRESSION


def template_bind_gate(
    num_qubits: int = GATED_QUBITS, num_layers: int = 8
) -> dict:
    """Raw-template bind+lower gate at the paper-adjacent 6-qubit scale.

    Builds the template directly (no offline fit, so it is cheap enough
    for CI) and compares one batch-64 bind+lower through the compact IR
    against the PR-4 baseline it replaced: the eager per-sample
    ``template.bind`` loop.  Gates wall time (>= ``MIN_BIND_SPEEDUP``)
    and tracemalloc allocation blocks (>= ``MIN_ALLOCATION_RATIO``).
    """
    ansatz = EnQodeAnsatz(num_qubits, num_layers)
    template = transpile_template(
        ansatz, brisbane_linear_segment(num_qubits), 1
    )
    rng = np.random.default_rng(13)
    thetas = rng.uniform(-np.pi, np.pi, (BATCH_SIZE, ansatz.num_parameters))
    # Warm both paths (lazy gate caches, numpy internals).
    [template.bind(theta) for theta in thetas[:2]]
    template.bind_batch_ir(thetas[:2])
    loop_times, ir_times = [], []
    for _ in range(REPETITIONS):
        start = time.perf_counter()
        [template.bind(theta) for theta in thetas]
        loop_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        template.bind_batch_ir(thetas)
        ir_times.append(time.perf_counter() - start)
    loop_time = float(np.median(loop_times))
    ir_time = float(np.median(ir_times))
    return {
        "num_qubits": num_qubits,
        "batch_size": BATCH_SIZE,
        "eager_loop_seconds": loop_time,
        "ir_bind_seconds": ir_time,
        "bind_speedup": loop_time / ir_time,
        **_bind_allocation(template, thetas),
    }


def wire_size_gate(num_qubits: int = GATED_QUBITS, num_layers: int = 8) -> dict:
    """Raw-template wire-format gate at the paper-adjacent 6-qubit scale.

    Like :func:`template_bind_gate` this builds the template directly
    (no offline fit — cheap enough for CI) and serializes one batch-64
    bind through every :mod:`repro.io` format.  Sizes are deterministic,
    so the >= ``MIN_WIRE_COMPRESSION`` gate cannot flake on shared
    runners; timings ride along as informational columns.
    """
    ansatz = EnQodeAnsatz(num_qubits, num_layers)
    template = transpile_template(
        ansatz, brisbane_linear_segment(num_qubits), 1
    )
    rng = np.random.default_rng(13)
    thetas = rng.uniform(-np.pi, np.pi, (BATCH_SIZE, ansatz.num_parameters))
    return {
        "num_qubits": num_qubits,
        **_wire_formats(template, template.bind_batch_ir(thetas)),
    }


def smoke() -> None:
    """CI guard: a reduced 4-qubit scenario plus the 6-qubit raw-template
    compact-IR and wire-format gates; no artifact write.

    The 4q bind-stage gate is deliberately conservative (2x vs the ~4x
    measured locally) so shared CI runners don't flake; the strict
    thresholds live in the full benchmark.  The 6q template gate uses
    the full PR-6 thresholds — wall time is measured with generous
    margin (~9x locally vs the 3x gate) and allocation counts are
    deterministic, so neither flakes on shared runners.
    """
    results = {"4q_smoke": run_scenario(4, samples_per_class=30)}
    row = results["4q_smoke"]
    print(
        f"4q smoke: e2e {row['speedup']:.1f}x, "
        f"bind {row['bind_speedup']:.1f}x "
        f"({row['stages']['bind_fraction'] * 100:.0f}% of batch time), "
        f"fid diff {row['max_fidelity_diff']:.1e}"
    )
    assert row["clusters_equal"]
    assert row["max_fidelity_diff"] < 1e-9
    assert row["bind_instruction_identical"]
    assert row["bind_speedup"] >= 2.0
    assert row["finetune_engines"]["max_engine_fidelity_diff"] < 1e-9
    gate = template_bind_gate()
    print(
        f"6q template gate: bind+lower {gate['bind_speedup']:.1f}x vs "
        f"eager loop (gate {MIN_BIND_SPEEDUP:.0f}x), allocation blocks "
        f"{gate['eager_bind_blocks']} -> {gate['ir_bind_blocks']} "
        f"({gate['blocks_ratio']:.1f}x, gate {MIN_ALLOCATION_RATIO:.0f}x)"
    )
    assert gate["bind_speedup"] >= MIN_BIND_SPEEDUP
    assert gate["blocks_ratio"] >= MIN_ALLOCATION_RATIO
    wire_gate = wire_size_gate()
    print(
        f"6q wire gate: {wire_gate['wire_bytes_per_circuit']:.0f} B/circuit "
        f"vs pickle {wire_gate['pickle_bytes_per_circuit']:.0f} "
        f"({wire_gate['compression_vs_pickle']:.1f}x, gate "
        f"{MIN_WIRE_COMPRESSION:.0f}x), qasm "
        f"{wire_gate['qasm_bytes_per_circuit']:.0f}, stream "
        f"{wire_gate['gate_stream_bytes_per_circuit']:.0f}; decode "
        f"array-equal: {wire_gate['decode_array_equal']}"
    )
    assert wire_gate["decode_array_equal"]
    assert wire_gate["compression_vs_pickle"] >= MIN_WIRE_COMPRESSION
    print("batch throughput smoke: ok")


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        smoke()
    else:
        test_batch_throughput()
