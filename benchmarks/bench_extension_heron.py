"""Extension — retargeting to a CZ-native (Heron-class) backend.

Sec. III-A: the ansatz "can be designed for any other hardware basis".
This bench lowers both EnQode and the Baseline onto a CZ-native linear
backend and checks the comparative story is basis-independent.
"""

import numpy as np

from benchmarks.conftest import publish
from repro.baseline import BaselineStatePreparation
from repro.core import EnQodeAnsatz
from repro.hardware import IBM_HERON, linear_backend
from repro.quantum import random_real_amplitudes, simulate_statevector
from repro.transpile import transpile


def _sweep():
    backend = linear_backend(8, native_gates=IBM_HERON)
    ansatz = EnQodeAnsatz(8, 8)
    theta = np.random.default_rng(0).uniform(-np.pi, np.pi, 64)
    enqode = transpile(ansatz.circuit(theta), backend)
    # Lowering must stay exact on the new basis.
    psi = simulate_statevector(enqode.circuit).data
    target = enqode.embed_target(
        simulate_statevector(ansatz.circuit(theta)).data
    )
    fidelity = abs(np.vdot(psi, target)) ** 2

    baseline = BaselineStatePreparation(backend)
    rows = [
        baseline.prepare(random_real_amplitudes(256, seed=s)).metrics()
        for s in range(4)
    ]
    return backend, enqode.metrics(), rows, fidelity


def test_extension_heron_basis(benchmark):
    backend, enqode_metrics, baseline_rows, fidelity = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    base_depth = np.mean([m.depth for m in baseline_rows])
    base_2q = np.mean([m.two_qubit_gates for m in baseline_rows])
    publish(
        "extension_heron",
        "\n".join(
            [
                "Extension — CZ-native (Heron-class) backend",
                f"lowering exactness: {fidelity:.6f}",
                f"{'method':<10}{'depth':>8}{'2q (CZ)':>9}{'1q':>6}",
                f"{'EnQode':<10}{enqode_metrics.depth:>8}"
                f"{enqode_metrics.two_qubit_gates:>9}"
                f"{enqode_metrics.one_qubit_gates:>6}",
                f"{'Baseline':<10}{base_depth:>8.0f}{base_2q:>9.0f}",
            ]
        ),
    )
    assert fidelity > 1 - 1e-9
    # Native 2q count unchanged by the basis swap (28 bricks -> 28 CZ).
    assert enqode_metrics.two_qubit_gates == 28
    assert base_depth / enqode_metrics.depth > 28
