"""Extension — where is the EnQode/Baseline crossover as hardware improves?

Scales every brisbane error rate by 1.0 / 0.1 / 0.01 / 0.001 (coherence
times scale inversely) and measures both methods' noisy fidelity.  At
today's rates EnQode wins by ~60-100x; exact embedding only reclaims the
lead once error rates fall by roughly two orders of magnitude — the
operating window EnQode targets is the whole NISQ era.
"""

from benchmarks.conftest import publish
from repro.evaluation import render_noise_sweep, run_noise_sweep


def test_extension_noise_crossover(benchmark):
    points = benchmark.pedantic(
        lambda: run_noise_sweep(scales=(1.0, 0.1, 0.01, 0.001)),
        rounds=1,
        iterations=1,
    )
    publish("extension_noise_sweep", render_noise_sweep(points))

    by_scale = {point.scale: point for point in points}
    # Today's hardware: EnQode wins decisively.
    assert by_scale[1.0].enqode_wins
    assert by_scale[1.0].enqode_fidelity > 10 * by_scale[1.0].baseline_fidelity
    # Near-fault-tolerant hardware: exact embedding reclaims the lead.
    assert not by_scale[0.001].enqode_wins
    assert by_scale[0.001].baseline_fidelity > 0.9
    # Fidelities improve monotonically as errors shrink, for both methods.
    scales_sorted = sorted(by_scale)  # ascending error scale
    baseline_fids = [by_scale[s].baseline_fidelity for s in scales_sorted]
    assert all(a >= b - 1e-6 for a, b in zip(baseline_fids, baseline_fids[1:]))
