"""Extension — qubit-count scaling of EnQode vs exact embedding.

The paper fixes n=8; this sweep backs its "scalable solution" conclusion:
the Baseline's cost grows with the amplitude count (~2^n) while EnQode's
fixed ansatz grows only with n*L, so the separation widens with width.
"""

from benchmarks.conftest import publish
from repro.evaluation import render_scaling, run_qubit_scaling


def test_extension_qubit_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: run_qubit_scaling(qubit_counts=(4, 6, 8)),
        rounds=1,
        iterations=1,
    )
    publish("extension_scaling", render_scaling(rows))

    by_n = {row.num_qubits: row for row in rows}
    # Baseline cost explodes with n; EnQode grows gently.
    assert (
        by_n[8].baseline_two_qubit_mean / by_n[4].baseline_two_qubit_mean > 8
    )
    assert by_n[8].enqode_two_qubit / by_n[4].enqode_two_qubit < 5
    # The cost separation widens with register width.
    gap4 = by_n[4].baseline_two_qubit_mean / by_n[4].enqode_two_qubit
    gap8 = by_n[8].baseline_two_qubit_mean / by_n[8].enqode_two_qubit
    assert gap8 > gap4
    # Fidelity stays usable at every width.
    for row in rows:
        assert row.enqode_fidelity_mean > 0.6
