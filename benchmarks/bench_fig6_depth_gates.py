"""Fig. 6 — circuit depth and total physical gate count (E1, E2).

Paper claims: EnQode reduces depth >28x and total gates >12x vs exact
amplitude embedding, with zero variability across samples.
"""

from benchmarks.conftest import publish
from repro.evaluation import render_fig6, run_fig6


def test_fig6_depth_and_total_gates(benchmark, context, sweep):
    results = benchmark.pedantic(
        lambda: run_fig6(context, sweep), rounds=1, iterations=1
    )
    publish("fig6", render_fig6(results))

    for dataset, methods in results.items():
        enqode = methods["enqode"]
        baseline = methods["baseline"]
        # EnQode's fixed ansatz: literally zero spread.
        assert enqode["depth"].std == 0.0
        assert enqode["total_gates"].std == 0.0
        # Depth reduction factor (paper: >28x; ours is larger because the
        # Baseline router is simpler than qiskit's).
        assert baseline["depth"].mean / enqode["depth"].mean > 28.0
        # Total gates (paper: >12x).
        assert baseline["total_gates"].mean / enqode["total_gates"].mean > 12.0
        # Baseline *does* vary sample to sample.
        assert baseline["depth"].std > 0.0
