"""Fig. 7 — physical one-qubit and two-qubit gate counts (E3, E4).

Paper claims: >11x fewer one-qubit and >12x fewer two-qubit physical
gates, again with zero variability for EnQode.
"""

from benchmarks.conftest import publish
from repro.evaluation import render_fig7, run_fig7


def test_fig7_physical_gate_counts(benchmark, context, sweep):
    results = benchmark.pedantic(
        lambda: run_fig7(context, sweep), rounds=1, iterations=1
    )
    publish("fig7", render_fig7(results))

    for dataset, methods in results.items():
        enqode = methods["enqode"]
        baseline = methods["baseline"]
        assert enqode["one_qubit_gates"].std == 0.0
        assert enqode["two_qubit_gates"].std == 0.0
        assert (
            baseline["one_qubit_gates"].mean / enqode["one_qubit_gates"].mean
            > 11.0
        )
        assert (
            baseline["two_qubit_gates"].mean / enqode["two_qubit_gates"].mean
            > 12.0
        )
        # The fixed ansatz: 28 CY bricks -> exactly 28 ECR on 8 qubits.
        assert enqode["two_qubit_gates"].mean == 28.0
