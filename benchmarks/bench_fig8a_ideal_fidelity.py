"""Fig. 8(a) — ideal-simulation state fidelity (E5).

Paper claims: Baseline is exact (fidelity 1.0); EnQode averages ~0.89
across the three datasets while being ~28x shallower.
"""

import numpy as np

from benchmarks.conftest import publish
from repro.evaluation import render_fig8a, run_fig8a


def test_fig8a_ideal_fidelity(benchmark, context):
    results = benchmark.pedantic(
        lambda: run_fig8a(context), rounds=1, iterations=1
    )
    publish("fig8a", render_fig8a(results))

    enqode_means = []
    for dataset, methods in results.items():
        assert methods["baseline"].mean > 1.0 - 1e-6  # exact embedding
        assert methods["enqode"].mean > 0.6
        enqode_means.append(methods["enqode"].mean)
    # Cross-dataset average in the paper's ~0.89 neighborhood.
    assert np.mean(enqode_means) > 0.8
