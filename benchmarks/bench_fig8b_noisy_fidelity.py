"""Fig. 8(b) — noisy-simulation state fidelity (E6).

Paper claims: under ibm_brisbane-like noise, EnQode beats the Baseline by
>14x because the exact circuits are deep enough to fully decohere.  (Our
improvement factor is larger — the reproduced Baseline compiles somewhat
deeper than the paper's, and 1600+ gates of brisbane-grade noise leaves
almost no signal.)
"""

from benchmarks.conftest import publish
from repro.evaluation import render_fig8b, run_fig8b


def test_fig8b_noisy_fidelity(benchmark, context):
    results = benchmark.pedantic(
        lambda: run_fig8b(context), rounds=1, iterations=1
    )
    publish("fig8b", render_fig8b(results))

    for dataset, methods in results.items():
        assert methods["improvement"] > 14.0  # the paper's headline bound
        assert methods["enqode"].mean > 0.3
        assert methods["baseline"].mean < 0.1
