"""Fig. 9(a) — online compilation time (E7).

Paper claims: EnQode's online compile time is comparable to (not worse
than) the Baseline's with ~3x smaller standard deviation, because every
sample runs the same fixed-shape pipeline warm-started from its cluster.
"""

import numpy as np

from benchmarks.conftest import publish
from repro.evaluation import render_fig9a, run_fig9a


def test_fig9a_online_compile_time(benchmark, context, sweep):
    results = benchmark.pedantic(
        lambda: run_fig9a(context, sweep), rounds=1, iterations=1
    )
    publish("fig9a", render_fig9a(results))

    std_ratios = []
    for dataset, methods in results.items():
        baseline = methods["baseline"]["compile_time"]
        enqode = methods["enqode"]["compile_time"]
        # EnQode is not slower on average (in this stack it is faster).
        assert enqode.mean <= baseline.mean
        if enqode.std > 0:
            std_ratios.append(baseline.std / enqode.std)
    # Spread reduction in the paper's ~3x territory on average.
    assert np.mean(std_ratios) > 1.5
