"""Fig. 9(b) — EnQode offline vs online compilation time (E8).

Paper claims: the one-time offline phase (clustering + per-cluster ansatz
training) costs < 200 s per dataset and class; online embedding stays
fast.  The offline numbers here come from the encoders fitted during
context construction.
"""

from benchmarks.conftest import publish
from repro.evaluation import render_fig9b, run_fig9b


def test_fig9b_offline_vs_online(benchmark, context):
    results = benchmark.pedantic(
        lambda: run_fig9b(context), rounds=1, iterations=1
    )
    publish("fig9b", render_fig9b(results))

    for dataset, row in results.items():
        assert row["offline_total"] < 200.0  # the paper's bound
        assert row["online"].mean < 1.0
        assert row["online"].mean < row["offline_total"]
        assert row["num_clusters"] >= 1
