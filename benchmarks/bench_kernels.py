"""Micro-benchmarks of the stack's hot kernels.

These are proper pytest-benchmark timings (many rounds) of the operations
the figure experiments spend their time in: statevector evolution, noisy
density-matrix steps, symbolic objective evaluation, exact synthesis, and
transpilation.
"""

import numpy as np
import pytest

from repro.baseline import mottonen_circuit
from repro.core import EnQodeAnsatz, FidelityObjective, build_symbolic
from repro.quantum import (
    DensityMatrix,
    QuantumCircuit,
    Statevector,
    depolarizing_channel,
    random_real_amplitudes,
)
from repro.transpile import transpile


@pytest.fixture(scope="module")
def ansatz_circuit():
    ansatz = EnQodeAnsatz(8, 8)
    theta = np.random.default_rng(0).uniform(-np.pi, np.pi, 64)
    return ansatz.circuit(theta)


def test_statevector_evolution_8q(benchmark, ansatz_circuit):
    benchmark(lambda: Statevector.zero_state(8).evolve(ansatz_circuit))


def test_density_matrix_unitary_step_8q(benchmark):
    rho = DensityMatrix.zero_state(8)
    from repro.quantum import gate

    ecr = gate("ecr").matrix
    benchmark(lambda: rho.apply_unitary(ecr, (3, 4)))


def test_density_matrix_channel_step_8q(benchmark):
    rho = DensityMatrix.zero_state(8)
    channel = depolarizing_channel(0.01, 2)
    channel.superoperator_tensor()  # warm the cache
    benchmark(lambda: rho.apply_channel(channel, (3, 4)))


def test_symbolic_objective_evaluation(benchmark):
    ansatz = EnQodeAnsatz(8, 8)
    objective = FidelityObjective(
        build_symbolic(ansatz), ansatz, random_real_amplitudes(256, seed=0)
    )
    theta = np.random.default_rng(1).uniform(-np.pi, np.pi, 64)
    benchmark(lambda: objective.value_and_grad(theta))


def test_symbolic_construction_8q_8l(benchmark):
    ansatz = EnQodeAnsatz(8, 8)
    benchmark(lambda: build_symbolic(ansatz))


def test_mottonen_synthesis_256(benchmark):
    target = random_real_amplitudes(256, seed=2)
    benchmark(lambda: mottonen_circuit(target))


def test_transpile_enqode_ansatz(benchmark, segment8_bench, ansatz_circuit):
    benchmark(lambda: transpile(ansatz_circuit, segment8_bench))


def test_transpile_baseline_circuit(benchmark, segment8_bench):
    logical = mottonen_circuit(random_real_amplitudes(256, seed=3))
    benchmark(lambda: transpile(logical, segment8_bench, seed=7))


@pytest.fixture(scope="module")
def segment8_bench():
    from repro.hardware import brisbane_linear_segment

    return brisbane_linear_segment(8)


def test_kmeans_fit_500x256(benchmark):
    rng = np.random.default_rng(0)
    data = rng.normal(size=(500, 256))
    from repro.core import KMeans

    benchmark(lambda: KMeans(8, seed=0, num_init=1).fit(data))
