"""Offline training throughput: sequential per-cluster loop vs batched fit.

Measures ``EnQodeEncoder.fit`` wall time at 4-8 qubits on paper-style
synthetic MNIST PCA data, quantifying the PR-2 tentpole: the stacked
multi-restart offline trainer (per-row vectorized L-BFGS + two-wave
restart schedule, see :mod:`repro.core.batch`) must deliver >= 3x fit
speedup over the sequential per-cluster loop at 4-6 qubits on a
>= 8-cluster dataset, with per-cluster fidelities matching to <= 1e-9 —
the Fig. 9(b) offline-overhead trajectory.

Runs standalone
(``PYTHONPATH=src python benchmarks/bench_offline_throughput.py``),
as a CI smoke check (``... bench_offline_throughput.py --smoke`` — one
reduced 4-qubit scenario, no artifact write, so the script cannot rot),
or under pytest (``pytest benchmarks/bench_offline_throughput.py``).
The full run writes the ``BENCH_offline_throughput.json`` artifact at
the repo root so future PRs can track the trajectory.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

from repro.core import EnQodeConfig, EnQodeEncoder
from repro.data import load_dataset
from repro.hardware import brisbane_linear_segment

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_offline_throughput.json"
)

#: (qubits, samples_per_class) scenarios — the Fig. 9(b) axes.  The
#: speedup gate applies at the 4- and 6-qubit standard size; the paper-
#: scale 8-qubit row is reported for the trajectory but only gated on
#: equivalence (at 256 amplitudes the objective flops dominate both
#: paths, so batching "only" removes the per-cluster driver overhead —
#: ~1.4x, honest but below the small-scale gate).
SCENARIOS = (
    (4, 30),
    (4, 60),
    (6, 30),
    (6, 60),
    (8, 60),  # PCA to 256 features needs >= 256 samples
)
GATED = ((4, 60), (6, 60))
MIN_SPEEDUP = 3.0
REPETITIONS = 3


def _config(num_qubits: int, offline_batch: bool) -> EnQodeConfig:
    return EnQodeConfig(
        num_qubits=num_qubits,
        num_layers=8,
        offline_restarts=6,
        offline_max_iterations=1500,
        max_clusters=64,
        min_cluster_fidelity=0.999,
        seed=7,
        offline_batch=offline_batch,
    )


def _fit_once(
    num_qubits: int, amplitudes: np.ndarray, offline_batch: bool
):
    encoder = EnQodeEncoder(
        brisbane_linear_segment(num_qubits), _config(num_qubits, offline_batch)
    )
    start = time.perf_counter()
    report = encoder.fit(amplitudes)
    elapsed = time.perf_counter() - start
    return encoder, report, elapsed


def run_scenario(num_qubits: int, samples_per_class: int) -> dict:
    dataset = load_dataset(
        "mnist",
        samples_per_class=samples_per_class,
        num_features=2**num_qubits,
        seed=0,
    )
    amplitudes = dataset.amplitudes
    # Warm both paths once (numpy/scipy caches), then take best-of-N —
    # offline fits are long enough that min is the noise-robust choice.
    _fit_once(num_qubits, amplitudes, True)
    _fit_once(num_qubits, amplitudes, False)
    batched_times, sequential_times = [], []
    batched = sequential = None
    for _ in range(REPETITIONS):
        batched, b_report, b_time = _fit_once(num_qubits, amplitudes, True)
        batched_times.append(b_time)
        sequential, s_report, s_time = _fit_once(
            num_qubits, amplitudes, False
        )
        sequential_times.append(s_time)
    fid_b = np.asarray(b_report.cluster_fidelities)
    fid_s = np.asarray(s_report.cluster_fidelities)
    restarts_equal = [
        m.result.restarts_used for m in batched.cluster_models
    ] == [m.result.restarts_used for m in sequential.cluster_models]
    batched_fit = float(min(batched_times))
    sequential_fit = float(min(sequential_times))
    return {
        "num_samples": int(amplitudes.shape[0]),
        "num_clusters": int(b_report.num_clusters),
        "sequential_fit_seconds": sequential_fit,
        "batched_fit_seconds": batched_fit,
        "fit_speedup": sequential_fit / batched_fit,
        "sequential_training_seconds": float(s_report.training_time),
        "batched_training_seconds": float(b_report.training_time),
        "training_speedup": float(
            s_report.training_time / b_report.training_time
        ),
        "clustering_seconds": float(b_report.clustering_time),
        "max_fidelity_diff": float(np.abs(fid_b - fid_s).max()),
        "min_fidelity_advantage": float((fid_b - fid_s).min()),
        "mean_cluster_fidelity": float(fid_b.mean()),
        "mean_cluster_fidelity_sequential": float(fid_s.mean()),
        "restarts_equal": bool(restarts_equal),
    }


def run_benchmark(scenarios=SCENARIOS) -> dict:
    return {
        f"{q}q_{spc}spc": run_scenario(q, spc) for q, spc in scenarios
    }


def publish(results: dict, write_artifact: bool = True) -> None:
    if write_artifact:
        ARTIFACT.write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n"
        )
    header = (
        f"{'scenario':>10} {'K':>4} {'seq fit s':>10} {'batch fit s':>11} "
        f"{'speedup':>8} {'fid diff':>10}"
    )
    print("\n" + header)
    for name, row in results.items():
        print(
            f"{name:>10} {row['num_clusters']:>4} "
            f"{row['sequential_fit_seconds']:>10.3f} "
            f"{row['batched_fit_seconds']:>11.3f} "
            f"{row['fit_speedup']:>7.1f}x {row['max_fidelity_diff']:>10.1e}"
        )
    if write_artifact:
        print(f"artifact: {ARTIFACT}")


def test_offline_throughput():
    results = run_benchmark()
    publish(results)
    for row in results.values():
        assert row["num_clusters"] >= 8
        # Off-gate scales may see different local optima on individual
        # cold-start restarts (in either direction — that's the restart
        # lottery, not a defect), so only mean quality is asserted.
        assert row["mean_cluster_fidelity"] > (
            row["mean_cluster_fidelity_sequential"] - 0.05
        )
    # Strict gate at the 4- and 6-qubit standard scenarios: numerically
    # equivalent cluster models (same restart bookkeeping, same
    # fidelities) and >= 3x whole-fit speedup.
    for qubits, spc in GATED:
        gated = results[f"{qubits}q_{spc}spc"]
        assert gated["restarts_equal"]
        assert gated["max_fidelity_diff"] < 1e-9
        assert gated["fit_speedup"] >= MIN_SPEEDUP
        assert gated["training_speedup"] >= MIN_SPEEDUP


def smoke() -> None:
    """CI guard: one reduced 4-qubit scenario, no artifact write."""
    results = {"4q_30spc_smoke": run_scenario(4, 30)}
    publish(results, write_artifact=False)
    row = results["4q_30spc_smoke"]
    assert row["num_clusters"] >= 8
    assert row["max_fidelity_diff"] < 1e-9
    assert row["restarts_equal"]
    print("offline throughput smoke: ok")


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        smoke()
    else:
        test_offline_throughput()
