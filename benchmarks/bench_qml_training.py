"""QML training throughput: per-sample reference engine vs batched engine.

Measures wall time of VQC classifier **training + prediction** at the
paper-adjacent 6- and 8-qubit scales.  Both engines run the *same* SPSA
trajectory (shared RNG stream, identical perturbation and minibatch
draws), so this is a pure execution-engine comparison:

* the **reference engine** evolves one embedded state at a time through
  the eager logical circuit (``VariationalClassifier.expectations_z0``);
* the **batched engine** compiles the ansatz once into a
  :class:`~repro.transpile.template.ParametricTemplate`, binds each SPSA
  step's theta pair as one ``(2, num_parameters)`` matrix through the
  compact IR, and propagates *all* training states in one stacked
  trailing-batch-axis walk (:class:`repro.core.batch.VQCObjective`).

On top of the end-to-end timings the bench asserts numerical
equivalence: per-sample margins at the initial theta agree to <= 1e-12,
the trained parameter vectors agree to <= 1e-9, and train/holdout
accuracies match exactly (same trajectory, same decisions).

Runs standalone (``PYTHONPATH=src python benchmarks/bench_qml_training.py``),
as a CI smoke check (``... --smoke`` — one reduced 6-qubit scenario with
conservative gates, no artifact write), or under pytest; the full run
writes the ``BENCH_qml_training.json`` artifact at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

from repro.core import QMLConfig
from repro.qml import QMLClassifier

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_qml_training.json"
)

#: (train batch, holdout batch, SPSA steps) per gated qubit count.
SCENARIOS = {6: (32, 128, 30), 8: (24, 96, 20)}
#: Acceptance gates: minimum train+predict speedup of the batched engine
#: over the per-sample reference loop (ISSUE floor is 3x; measured ~7-10x).
GATED_SPEEDUPS = {6: 3.0, 8: 3.0}
#: Both engines replay the same SPSA trajectory, so accuracies must not
#: merely be close — any drift means the engines diverged.
MAX_ACCURACY_GAP = 0.0
MAX_MARGIN_DIFF = 1e-12
MAX_THETA_DIFF = 1e-9
NUM_LAYERS = 2
REPETITIONS = 3


def _labelled_states(
    rng: np.random.Generator, num_qubits: int, batch: int
) -> tuple[np.ndarray, np.ndarray]:
    """A separable-but-noisy embedded problem: class 0 clusters near
    ``|0...0>``, class 1 near ``|10...0>`` (qubit 0 flipped), each blurred
    by complex Gaussian noise and renormalized — stand-ins for the unit
    statevectors the EnQode encoder emits."""
    dim = 2**num_qubits
    labels = rng.integers(0, 2, size=batch)
    states = np.zeros((batch, dim), dtype=complex)
    states[np.arange(batch), np.where(labels == 0, 0, dim // 2)] = 1.0
    states += 0.2 * (
        rng.normal(size=(batch, dim)) + 1j * rng.normal(size=(batch, dim))
    )
    states /= np.linalg.norm(states, axis=1, keepdims=True)
    return states, labels


def _classifier(num_qubits: int, num_steps: int, engine: str) -> QMLClassifier:
    config = QMLConfig(
        num_qubits=num_qubits,
        num_layers=NUM_LAYERS,
        num_steps=num_steps,
        engine=engine,
        seed=3,
    )
    return QMLClassifier(config=config)


def _check_equivalence(
    num_qubits: int, num_steps: int, states, labels, holdout
) -> dict:
    """Margins at the shared initial theta, and full-trajectory agreement."""
    models = {
        engine: _classifier(num_qubits, num_steps, engine)
        for engine in ("reference", "batched")
    }
    margins = {
        engine: model._margins(states, labels, model.theta)
        for engine, model in models.items()
    }
    for model in models.values():
        model.fit(states, labels)
    return {
        "max_margin_diff": float(
            np.abs(margins["reference"] - margins["batched"]).max()
        ),
        "max_theta_diff": float(
            np.abs(models["reference"].theta - models["batched"].theta).max()
        ),
        "train_accuracy_gap": float(
            abs(
                models["reference"].accuracy(states, labels)
                - models["batched"].accuracy(states, labels)
            )
        ),
        "predictions_equal": bool(
            np.array_equal(
                models["reference"].predict(holdout),
                models["batched"].predict(holdout),
            )
        ),
    }


def run_scenario(
    num_qubits: int,
    train_batch: int,
    holdout_batch: int,
    num_steps: int,
    repetitions: int = REPETITIONS,
) -> dict:
    rng = np.random.default_rng(num_qubits)
    states, labels = _labelled_states(rng, num_qubits, train_batch)
    holdout, _ = _labelled_states(rng, num_qubits, holdout_batch)

    timings: dict[str, dict[str, float]] = {}
    accuracies: dict[str, float] = {}
    for engine in ("reference", "batched"):
        # Warm the engine (template build, numpy caches) off the clock.
        _classifier(num_qubits, 1, engine).fit(states[:2], labels[:2])
        fit_times, predict_times = [], []
        for _ in range(repetitions):
            # A fresh model per repetition replays the identical SPSA
            # stream, so the median is over like-for-like trajectories.
            model = _classifier(num_qubits, num_steps, engine)
            start = time.perf_counter()
            model.fit(states, labels)
            fit_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            model.predict(holdout)
            predict_times.append(time.perf_counter() - start)
        timings[engine] = {
            "fit_seconds": float(np.median(fit_times)),
            "predict_seconds": float(np.median(predict_times)),
        }
        accuracies[engine] = float(model.accuracy(states, labels))

    reference = timings["reference"]
    batched = timings["batched"]
    total_ref = reference["fit_seconds"] + reference["predict_seconds"]
    total_batched = batched["fit_seconds"] + batched["predict_seconds"]
    return {
        "train_batch": train_batch,
        "holdout_batch": holdout_batch,
        "num_steps": num_steps,
        "num_layers": NUM_LAYERS,
        "reference_fit_seconds": reference["fit_seconds"],
        "batched_fit_seconds": batched["fit_seconds"],
        "reference_predict_seconds": reference["predict_seconds"],
        "batched_predict_seconds": batched["predict_seconds"],
        "fit_speedup": reference["fit_seconds"] / batched["fit_seconds"],
        "predict_speedup": (
            reference["predict_seconds"] / batched["predict_seconds"]
        ),
        "total_speedup": total_ref / total_batched,
        "predict_states_per_sec": holdout_batch / batched["predict_seconds"],
        "reference_accuracy": accuracies["reference"],
        "batched_accuracy": accuracies["batched"],
        **_check_equivalence(
            num_qubits, num_steps, states, labels, holdout
        ),
    }


def run_benchmark() -> dict:
    return {
        str(num_qubits): run_scenario(num_qubits, *scenario)
        for num_qubits, scenario in SCENARIOS.items()
    }


def publish(results: dict, write_artifact: bool = True) -> None:
    if write_artifact:
        ARTIFACT.write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n"
        )
    header = (
        f"{'qubits':>6} {'fit x':>7} {'pred x':>7} {'total x':>8} "
        f"{'acc ref':>8} {'acc bat':>8} {'margin diff':>12} {'theta diff':>11}"
    )
    print("\n" + header)
    for qubits, row in sorted(results.items(), key=lambda kv: int(kv[0])):
        print(
            f"{qubits:>6} {row['fit_speedup']:>6.1f}x "
            f"{row['predict_speedup']:>6.1f}x "
            f"{row['total_speedup']:>7.1f}x "
            f"{row['reference_accuracy']:>8.2f} "
            f"{row['batched_accuracy']:>8.2f} "
            f"{row['max_margin_diff']:>12.1e} "
            f"{row['max_theta_diff']:>11.1e}"
        )
    if write_artifact:
        print(f"artifact: {ARTIFACT}")


def _assert_equivalent(row: dict) -> None:
    assert row["max_margin_diff"] <= MAX_MARGIN_DIFF
    assert row["max_theta_diff"] <= MAX_THETA_DIFF
    assert row["train_accuracy_gap"] <= MAX_ACCURACY_GAP
    assert row["predictions_equal"]


def test_qml_training_speedup():
    results = run_benchmark()
    publish(results)
    for qubits, min_speedup in GATED_SPEEDUPS.items():
        row = results[str(qubits)]
        _assert_equivalent(row)
        assert row["fit_speedup"] >= min_speedup
        assert row["total_speedup"] >= min_speedup


def smoke() -> None:
    """CI guard: one reduced 6-qubit scenario, no artifact write.

    The speedup gate keeps the full ISSUE floor (3x) — locally the
    batched engine trains ~7-10x faster, so shared runners have wide
    margin — while the equivalence gates are exact-trajectory checks
    that cannot flake (both engines consume one RNG stream).
    """
    row = run_scenario(6, train_batch=16, holdout_batch=48, num_steps=12)
    print(
        f"6q qml smoke: fit {row['fit_speedup']:.1f}x, "
        f"predict {row['predict_speedup']:.1f}x, "
        f"total {row['total_speedup']:.1f}x (gate 3x), "
        f"margin diff {row['max_margin_diff']:.1e}, "
        f"accuracy gap {row['train_accuracy_gap']:.2f}"
    )
    _assert_equivalent(row)
    assert row["fit_speedup"] >= 3.0
    assert row["total_speedup"] >= 3.0
    print("qml training smoke: ok")


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        smoke()
    else:
        test_qml_training_speedup()
