"""Streaming-service throughput: micro-batched submits vs per-sample encode.

Measures the PR-3 tentpole: a stream of one-at-a-time ``EncodingService.
submit`` calls (batch window 32, size-triggered flushes) must deliver
>= 4x the throughput of the sequential per-sample ``encode`` loop at 6
qubits, with identical cluster assignments and no fidelity regression —
the micro-batcher hands streaming traffic the batched stage pipeline
(stacked fine-tune + cached-template re-bind) that ``encode_batch``
pioneered, plus p50/p95 end-to-end latency accounting per request.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_service_throughput.py``),
as a CI smoke check (``... --smoke`` — one reduced 4-qubit scenario, no
artifact write), or under pytest; the full run writes the
``BENCH_service_throughput.json`` artifact at the repo root so future
PRs can track the serving-path trajectory.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

from repro.core import EnQodeConfig, EnQodeEncoder
from repro.data import load_dataset
from repro.hardware import brisbane_linear_segment
from repro.service import EncodingService

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_service_throughput.json"
)

NUM_SAMPLES = 64
BATCH_WINDOW = 32
QUBIT_COUNTS = (4, 6)
#: The acceptance gate applies at the paper-adjacent mid scale.
GATED_QUBITS = 6
MIN_SPEEDUP = 4.0
REPETITIONS = 3


def _fitted_encoder(num_qubits: int, num_samples: int):
    # PCA requires at least 2**num_qubits samples.
    dataset = load_dataset(
        "mnist",
        samples_per_class=60,
        num_features=2**num_qubits,
        seed=0,
    )
    config = EnQodeConfig(
        num_qubits=num_qubits,
        num_layers=8,
        offline_restarts=2,
        offline_max_iterations=500,
        online_max_iterations=80,
        max_clusters=24,
        seed=7,
    )
    encoder = EnQodeEncoder(brisbane_linear_segment(num_qubits), config)
    encoder.fit(dataset.amplitudes)
    return encoder, dataset.amplitudes[:num_samples]


def _stream_once(
    encoder: EnQodeEncoder, samples: np.ndarray, window: int
):
    """One full streaming pass: submit one at a time, drain the tail."""
    service = EncodingService(max_batch=window)
    service.register("bench", encoder)
    tickets = [service.submit(x, key="bench") for x in samples]
    service.flush()
    return service, [ticket.result(flush=False) for ticket in tickets]


def _check_equivalence(sequential, responses) -> dict:
    """Streamed results must match the per-sample loop (batch-path rules)."""
    diffs = [
        r.fidelity - s.ideal_fidelity
        for s, r in zip(sequential, responses)
    ]
    return {
        "max_fidelity_diff": float(max(abs(d) for d in diffs)),
        "min_fidelity_advantage": float(min(diffs)),
        "clusters_equal": bool(
            all(
                r.cluster_index == s.cluster_index
                for s, r in zip(sequential, responses)
            )
        ),
        "gate_counts_equal": bool(
            all(
                r.circuit.count_ops() == s.circuit.count_ops()
                for s, r in zip(sequential, responses)
            )
        ),
    }


def run_scenario(num_qubits: int, num_samples: int, window: int) -> dict:
    encoder, samples = _fitted_encoder(num_qubits, num_samples)
    # Warm both paths (template build, numpy/scipy caches).
    sequential = [encoder.encode(x) for x in samples[:2]]
    _stream_once(encoder, samples[:2], window)

    seq_times, stream_times = [], []
    service = None
    responses = None
    for _ in range(REPETITIONS):
        start = time.perf_counter()
        sequential = [encoder.encode(x) for x in samples]
        seq_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        service, responses = _stream_once(encoder, samples, window)
        stream_times.append(time.perf_counter() - start)

    seq_time = float(np.median(seq_times))
    stream_time = float(np.median(stream_times))
    stats = service.stats()
    assert stats.requests_completed == num_samples
    return {
        "num_samples": num_samples,
        "batch_window": window,
        "sequential_seconds": seq_time,
        "streaming_seconds": stream_time,
        "sequential_samples_per_sec": num_samples / seq_time,
        "streaming_samples_per_sec": num_samples / stream_time,
        "speedup": seq_time / stream_time,
        "num_flushes": stats.num_flushes,
        "mean_batch_size": stats.mean_batch_size,
        "p50_latency_ms": stats.p50_latency * 1e3,
        "p95_latency_ms": stats.p95_latency * 1e3,
        "evals_per_sample": stats.evals_per_sample,
        "template_cache_hits": stats.template_cache_hits,
        "template_cache_misses": stats.template_cache_misses,
        **_check_equivalence(sequential, responses),
    }


def run_benchmark() -> dict:
    return {
        str(num_qubits): run_scenario(num_qubits, NUM_SAMPLES, BATCH_WINDOW)
        for num_qubits in QUBIT_COUNTS
    }


def publish(results: dict, write_artifact: bool = True) -> None:
    if write_artifact:
        ARTIFACT.write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n"
        )
    header = (
        f"{'qubits':>6} {'seq s/s':>10} {'stream s/s':>11} {'speedup':>8} "
        f"{'p95 ms':>8} {'fid diff':>10}"
    )
    print("\n" + header)
    for qubits, row in sorted(results.items()):
        print(
            f"{qubits:>6} {row['sequential_samples_per_sec']:>10.1f} "
            f"{row['streaming_samples_per_sec']:>11.1f} "
            f"{row['speedup']:>7.1f}x {row['p95_latency_ms']:>8.2f} "
            f"{row['max_fidelity_diff']:>10.1e}"
        )
    if write_artifact:
        print(f"artifact: {ARTIFACT}")


def test_service_throughput():
    results = run_benchmark()
    publish(results)
    for row in results.values():
        assert row["clusters_equal"]
        # Streaming may only ever match or beat the sequential optimizer.
        assert row["min_fidelity_advantage"] > -1e-9
    # Strict acceptance gate at the paper-adjacent mid scale: numerically
    # equivalent results and >= 4x streaming throughput at window 32.
    gated = results[str(GATED_QUBITS)]
    assert gated["max_fidelity_diff"] < 1e-9
    assert gated["gate_counts_equal"]
    assert gated["speedup"] >= MIN_SPEEDUP


def smoke() -> None:
    """CI guard: one reduced 4-qubit scenario, no artifact write."""
    results = {"4q_smoke": run_scenario(4, 16, 8)}
    publish(results, write_artifact=False)
    row = results["4q_smoke"]
    assert row["clusters_equal"]
    assert row["max_fidelity_diff"] < 1e-9
    assert row["num_flushes"] == 2  # 16 submits through window 8
    print("service throughput smoke: ok")


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        smoke()
    else:
        test_service_throughput()
