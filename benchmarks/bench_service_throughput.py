"""Streaming-service throughput: micro-batched submits vs per-sample encode.

Three serving claims are measured and gated here:

* **Streaming throughput** (the PR-3 tentpole): a stream of
  one-at-a-time ``EncodingService.submit`` calls (batch window 32,
  size-triggered flushes) must deliver >= 4x the throughput of the
  sequential per-sample ``encode`` loop at 6 qubits, with identical
  cluster assignments and no fidelity regression.  The threaded backend
  is measured alongside (same traffic, background flusher + worker
  pool) to show the handoff machinery does not tax throughput.

* **Idle-gap latency** (the PR-5 tentpole): bursty traffic with idle
  gaps between bursts, far below the batch window, under a
  ``max_delay`` latency deadline.  The sync backend only flushes when
  some call arrives, so each burst waits a whole gap for the *next*
  burst's submit (p95 ~ gap); the threaded backend's flusher wakes on
  the deadline itself and must hold p95 near ``max_delay`` with zero
  follow-up traffic.

* **Overload shedding** (the PR-9 tentpole): traffic offered at 4x the
  measured capacity against a bounded admission queue
  (``max_pending_per_key``, ``overload_policy="reject"``).  Gates:
  shed submissions must fail fast (median reject < 1ms — admission is
  an O(1) front-door check, no pipeline work), accepted throughput
  must stay within 20% of the unthrottled baseline (30% in smoke —
  overload control must not tax the requests it admits), and accepted
  p95 latency must stay within a budget derived from the queue bound
  (a full admission queue is the worst case a request waits behind).

Runs standalone (``PYTHONPATH=src python benchmarks/bench_service_throughput.py``),
as a CI smoke check (``... --smoke`` — reduced 4-qubit scenarios, no
artifact write), or under pytest; the full run writes the
``BENCH_service_throughput.json`` artifact at the repo root so future
PRs can track the serving-path trajectory.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

from repro.core import EnQodeConfig, EnQodeEncoder
from repro.data import load_dataset
from repro.errors import OverloadError
from repro.hardware import brisbane_linear_segment
from repro.service import EncodingService

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_service_throughput.json"
)

NUM_SAMPLES = 64
BATCH_WINDOW = 32
QUBIT_COUNTS = (4, 6)
#: The acceptance gate applies at the paper-adjacent mid scale.
GATED_QUBITS = 6
MIN_SPEEDUP = 4.0
REPETITIONS = 3

#: Idle-gap scenario shape: bursts far below the batch window, with an
#: idle gap long against the deadline, so only a self-waking flusher
#: can honor ``IDLE_MAX_DELAY``.
IDLE_MAX_DELAY = 0.05
IDLE_GAP = 0.4
IDLE_BURST = 3
IDLE_NUM_BURSTS = 6
#: The async backend must serve p95 within deadline + one small-batch
#: flush + scheduling margin; the sync backend is expected to miss by
#: construction (its first chance to flush a burst is the next burst).
IDLE_ASYNC_P95_BUDGET = IDLE_MAX_DELAY + 0.10
IDLE_SYNC_P95_FLOOR = 0.8 * IDLE_GAP

#: Overload scenario: offered load vs measured capacity, queue bound as
#: a multiple of the batch window, paced-submit duration, and the gates
#: (reject fast-fail, accepted-throughput floor, derived p95 budget).
OVERLOAD_FACTOR = 4.0
OVERLOAD_QUEUE_WINDOWS = 2
OVERLOAD_SECONDS = 2.0
OVERLOAD_REJECT_BUDGET = 1e-3
OVERLOAD_THROUGHPUT_FLOOR = 0.8
OVERLOAD_SMOKE_THROUGHPUT_FLOOR = 0.7

#: Multi-process scenario (the PR-10 tentpole): the fine-tune is
#: CPU-bound numpy/scipy holding the GIL, so threaded workers serialize
#: on compute; worker *processes* must actually scale it.  Traffic
#: spreads over PROCESS_KEYS keys with distinct (float-identical)
#: encoder clones, because flushes single-flight per key and per
#: pipeline — multi-key traffic is what a fleet parallelizes.  The
#: >= 1.5x-threaded gate only binds where the host can physically show
#: it (``os.cpu_count() >= PROCESS_MIN_CORES``); smaller hosts record
#: a waiver in the artifact instead of a vacuous failure.  Smoke uses
#: a loose floor — there it is a correctness/liveness check, not a
#: scaling claim.
PROCESS_WORKERS = 4
PROCESS_KEYS = 4
PROCESS_MIN_SPEEDUP_VS_THREAD = 1.5
PROCESS_MIN_CORES = 4
PROCESS_SMOKE_FLOOR = 0.2
#: Accepted p95 must stay within a slack factor of the threaded p95 —
#: crossing the pipe may not wreck tail latency.
PROCESS_P95_FACTOR = 2.0
PROCESS_P95_SLACK_SECONDS = 0.25


def _fitted_encoder(num_qubits: int, num_samples: int):
    # PCA requires at least 2**num_qubits samples.
    dataset = load_dataset(
        "mnist",
        samples_per_class=60,
        num_features=2**num_qubits,
        seed=0,
    )
    config = EnQodeConfig(
        num_qubits=num_qubits,
        num_layers=8,
        offline_restarts=2,
        offline_max_iterations=500,
        online_max_iterations=80,
        max_clusters=24,
        seed=7,
    )
    encoder = EnQodeEncoder(brisbane_linear_segment(num_qubits), config)
    encoder.fit(dataset.amplitudes)
    return encoder, dataset.amplitudes[:num_samples]


# -- streaming throughput --------------------------------------------------------------


def _stream_once(
    encoder: EnQodeEncoder, samples: np.ndarray, window: int
):
    """One full streaming pass: submit one at a time, drain the tail."""
    service = EncodingService(max_batch=window)
    service.register("bench", encoder)
    tickets = [service.submit(x, key="bench") for x in samples]
    service.flush()
    return service, [ticket.result(flush=False) for ticket in tickets]


def _stream_once_threaded(
    encoder: EnQodeEncoder, samples: np.ndarray, window: int
):
    """Same traffic through the background flusher + worker pool."""
    service = EncodingService(max_batch=window, backend="thread", workers=4)
    service.register("bench", encoder)
    with service:
        tickets = [service.submit(x, key="bench") for x in samples]
        service.drain()
        responses = [ticket.result(flush=False) for ticket in tickets]
    return service, responses


def _check_equivalence(sequential, responses) -> dict:
    """Streamed results must match the per-sample loop (batch-path rules)."""
    diffs = [
        r.fidelity - s.ideal_fidelity
        for s, r in zip(sequential, responses)
    ]
    return {
        "max_fidelity_diff": float(max(abs(d) for d in diffs)),
        "min_fidelity_advantage": float(min(diffs)),
        "clusters_equal": bool(
            all(
                r.cluster_index == s.cluster_index
                for s, r in zip(sequential, responses)
            )
        ),
        "gate_counts_equal": bool(
            all(
                r.circuit.count_ops() == s.circuit.count_ops()
                for s, r in zip(sequential, responses)
            )
        ),
    }


def run_scenario(num_qubits: int, num_samples: int, window: int) -> dict:
    encoder, samples = _fitted_encoder(num_qubits, num_samples)
    # Warm both paths (template build, numpy/scipy caches).
    sequential = [encoder.encode(x) for x in samples[:2]]
    _stream_once(encoder, samples[:2], window)

    seq_times, stream_times, threaded_times = [], [], []
    service = None
    responses = None
    threaded_responses = None
    for _ in range(REPETITIONS):
        start = time.perf_counter()
        sequential = [encoder.encode(x) for x in samples]
        seq_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        service, responses = _stream_once(encoder, samples, window)
        stream_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        _, threaded_responses = _stream_once_threaded(
            encoder, samples, window
        )
        threaded_times.append(time.perf_counter() - start)

    seq_time = float(np.median(seq_times))
    stream_time = float(np.median(stream_times))
    threaded_time = float(np.median(threaded_times))
    stats = service.stats()
    assert stats.requests_completed == num_samples
    threaded_equiv = _check_equivalence(sequential, threaded_responses)
    return {
        "num_samples": num_samples,
        "batch_window": window,
        "sequential_seconds": seq_time,
        "streaming_seconds": stream_time,
        "threaded_seconds": threaded_time,
        "sequential_samples_per_sec": num_samples / seq_time,
        "streaming_samples_per_sec": num_samples / stream_time,
        "threaded_samples_per_sec": num_samples / threaded_time,
        "speedup": seq_time / stream_time,
        "threaded_speedup": seq_time / threaded_time,
        "threaded_clusters_equal": threaded_equiv["clusters_equal"],
        "threaded_max_fidelity_diff": threaded_equiv["max_fidelity_diff"],
        "num_flushes": stats.num_flushes,
        "mean_batch_size": stats.mean_batch_size,
        "p50_latency_ms": stats.p50_latency * 1e3,
        "p95_latency_ms": stats.p95_latency * 1e3,
        "evals_per_sample": stats.evals_per_sample,
        "template_cache_hits": stats.template_cache_hits,
        "template_cache_misses": stats.template_cache_misses,
        **_check_equivalence(sequential, responses),
    }


# -- idle-gap latency ------------------------------------------------------------------


def _idle_gap_traffic(service, samples, gap, burst, final_poll):
    """Bursty submits with idle gaps; optionally poll once at the end.

    ``final_poll`` models the sync backend's best case — some late
    housekeeping call eventually arrives — without giving it traffic
    during the gaps (where the deadline should have fired).
    """
    tickets = []
    for start in range(0, len(samples), burst):
        for x in samples[start : start + burst]:
            tickets.append(service.submit(x, key="bench"))
        time.sleep(gap)
    if final_poll:
        service.poll()
    return [ticket.result(timeout=10.0) for ticket in tickets]


def run_idle_gap_scenario(
    num_qubits: int,
    gap: float = IDLE_GAP,
    burst: int = IDLE_BURST,
    num_bursts: int = IDLE_NUM_BURSTS,
    max_delay: float = IDLE_MAX_DELAY,
) -> dict:
    encoder, samples = _fitted_encoder(num_qubits, burst * num_bursts)
    samples = samples[: burst * num_bursts]
    encoder.encode_batch(samples[:burst])  # warm template + caches

    sync_service = EncodingService(
        max_batch=BATCH_WINDOW, max_delay=max_delay
    )
    sync_service.register("bench", encoder)
    sync_responses = _idle_gap_traffic(
        sync_service, samples, gap, burst, final_poll=True
    )

    async_service = EncodingService(
        max_batch=BATCH_WINDOW,
        max_delay=max_delay,
        backend="thread",
        workers=2,
    )
    async_service.register("bench", encoder)
    with async_service:
        async_responses = _idle_gap_traffic(
            async_service, samples, gap, burst, final_poll=False
        )

    sync_stats = sync_service.stats()
    async_stats = async_service.stats()
    assert sync_stats.requests_completed == len(samples)
    assert async_stats.requests_completed == len(samples)
    clusters_equal = all(
        a.cluster_index == s.cluster_index
        for a, s in zip(async_responses, sync_responses)
    )
    return {
        "num_samples": len(samples),
        "burst": burst,
        "gap_seconds": gap,
        "max_delay": max_delay,
        "sync_p50_latency_ms": sync_stats.p50_latency * 1e3,
        "sync_p95_latency_ms": sync_stats.p95_latency * 1e3,
        "async_p50_latency_ms": async_stats.p50_latency * 1e3,
        "async_p95_latency_ms": async_stats.p95_latency * 1e3,
        "async_flusher_wakeups": async_stats.flusher_wakeups,
        "async_meets_deadline_budget": bool(
            async_stats.p95_latency <= IDLE_ASYNC_P95_BUDGET
        ),
        "sync_misses_deadline": bool(
            sync_stats.p95_latency >= IDLE_SYNC_P95_FLOOR
        ),
        "clusters_equal": bool(clusters_equal),
    }


# -- overload shedding -----------------------------------------------------------------


def run_overload_scenario(
    num_qubits: int,
    window: int = BATCH_WINDOW,
    seconds: float = OVERLOAD_SECONDS,
    num_baseline: int = NUM_SAMPLES,
) -> dict:
    """Offer 4x measured capacity against a bounded admission queue.

    Phase 1 measures closed-loop capacity (the baseline the throughput
    floor is relative to); phase 2 paces submissions at
    ``OVERLOAD_FACTOR`` times that rate against
    ``max_pending_per_key = OVERLOAD_QUEUE_WINDOWS * window`` with the
    reject policy, timing every shed submission's wall cost.
    """
    encoder, samples = _fitted_encoder(num_qubits, num_baseline)
    encoder.encode_batch(samples[: min(8, len(samples))])  # warm caches

    # Phase 1: closed-loop capacity through the same backend shape.
    # The submitter stays live for the whole window, topping the queue
    # back up to queue_bound whenever it drops — the same driver-thread
    # presence the overload phase has, so the throughput floor compares
    # like with like (a fire-and-drain burst baseline leaves the driver
    # idle while the workers encode, overstating capacity by the CPU
    # share the paced offerer consumes in phase 2).
    queue_bound = OVERLOAD_QUEUE_WINDOWS * window
    baseline = EncodingService(max_batch=window, backend="thread", workers=2)
    baseline.register("bench", encoder)
    submitted = 0
    with baseline:
        start = time.perf_counter()
        while time.perf_counter() - start < seconds:
            if baseline.pending < queue_bound:
                baseline.submit(
                    samples[submitted % len(samples)], key="bench"
                )
                submitted += 1
            else:
                time.sleep(0.0005)
        baseline.drain()
        baseline_elapsed = time.perf_counter() - start
    baseline_stats = baseline.stats()
    assert baseline_stats.requests_completed == submitted
    baseline_sps = submitted / baseline_elapsed

    # Phase 2: paced 4x-over-capacity offered load, bounded queue.
    service = EncodingService(
        max_batch=window,
        backend="thread",
        workers=2,
        max_pending_per_key=queue_bound,
        overload_policy="reject",
    )
    service.register("bench", encoder)
    interval = 1.0 / (OVERLOAD_FACTOR * baseline_sps)
    reject_seconds: list = []
    accepted = 0
    offered = 0
    with service:
        start = time.perf_counter()
        next_at = start
        while True:
            now = time.perf_counter()
            if now - start >= seconds:
                break
            if now < next_at:
                time.sleep(min(next_at - now, 0.001))
                continue
            next_at += interval
            sample = samples[offered % len(samples)]
            offered += 1
            call_start = time.perf_counter()
            try:
                service.submit(sample, key="bench")
                accepted += 1
            except OverloadError:
                reject_seconds.append(time.perf_counter() - call_start)
        service.drain()
        total_elapsed = time.perf_counter() - start
    stats = service.stats()
    assert stats.rejected == len(reject_seconds)
    assert stats.requests_completed == accepted
    assert stats.requests_submitted == offered
    accepted_sps = accepted / total_elapsed

    # Derived p95 budget: the worst case an accepted request waits is a
    # full admission queue draining at capacity, plus flush/scheduling
    # slack.  Generous on purpose — the gate is "bounded", not "fast".
    p95_budget = 4.0 * (queue_bound / baseline_sps) + 0.25
    return {
        "num_qubits": num_qubits,
        "batch_window": window,
        "queue_bound": queue_bound,
        "overload_factor": OVERLOAD_FACTOR,
        "duration_seconds": seconds,
        "offered": offered,
        "accepted": accepted,
        "rejected": len(reject_seconds),
        "baseline_samples_per_sec": baseline_sps,
        "baseline_p95_latency_ms": baseline_stats.p95_latency * 1e3,
        "accepted_samples_per_sec": accepted_sps,
        "accepted_over_baseline": accepted_sps / baseline_sps,
        "accepted_p95_latency_ms": stats.p95_latency * 1e3,
        "accepted_p95_budget_ms": p95_budget * 1e3,
        "median_reject_ms": (
            float(np.median(reject_seconds)) * 1e3
            if reject_seconds
            else float("nan")
        ),
        "max_reject_ms": (
            float(np.max(reject_seconds)) * 1e3
            if reject_seconds
            else float("nan")
        ),
        "accepted_p95_within_budget": bool(
            stats.p95_latency <= p95_budget
        ),
        "rejects_fail_fast": bool(
            reject_seconds
            and float(np.median(reject_seconds)) < OVERLOAD_REJECT_BUDGET
        ),
    }


# -- multi-process fleet ---------------------------------------------------------------


def _cloned_encoders(encoder, count: int) -> list:
    """Distinct encoder objects with bit-identical numerics.

    The JSON bundle roundtrip is float-exact, and each clone owns its
    own pipeline — so multi-key traffic over the clones can flush
    concurrently (single-flight is per key *and* per pipeline) while
    every response stays comparable to the original encoder."""
    from repro.core.serialization import encoder_from_dict, encoder_to_dict

    payload = encoder_to_dict(encoder)
    return [
        encoder_from_dict(payload, encoder.backend) for _ in range(count)
    ]


def _keyed_service(backend_name, encoders, keys, window, workers):
    service = EncodingService(
        max_batch=window, backend=backend_name, workers=workers
    )
    for key, clone in zip(keys, encoders):
        service.register(key, clone)
    return service


def _timed_keyed_stream(service, samples, keys) -> tuple:
    """Round-robin the samples over the keys; wall-clock to drained."""
    start = time.perf_counter()
    tickets = [
        service.submit(x, key=keys[i % len(keys)])
        for i, x in enumerate(samples)
    ]
    service.drain(timeout=600.0)
    elapsed = time.perf_counter() - start
    return elapsed, tickets


def run_process_scenario(
    num_qubits: int,
    num_samples: int = NUM_SAMPLES,
    window: int = 8,
    workers: int = PROCESS_WORKERS,
    num_keys: int = PROCESS_KEYS,
) -> dict:
    """Threaded vs process fleet on identical multi-key traffic.

    Fleet spawn is excluded from the timing (it is a once-per-deploy
    cost) and each backend is warmed with one flush per key first, so
    the comparison is steady-state serving throughput.  The process
    responses are additionally checked float-bit identical to an
    ``encode_batch`` replay of the same per-key flush partition — the
    wire crossing must be invisible."""
    import os

    encoder, samples = _fitted_encoder(num_qubits, num_samples)
    keys = [f"bench-{i}" for i in range(num_keys)]
    warm = samples[:num_keys]
    results = {}
    tickets_by_backend = {}
    for backend_name in ("thread", "process"):
        service = _keyed_service(
            backend_name,
            _cloned_encoders(encoder, num_keys),
            keys,
            window,
            workers,
        )
        with service:
            # Warm every key (template caches on both sides of the
            # boundary) outside the timed window.
            for key, x in zip(keys, warm):
                service.submit(x, key=key)
            service.drain(timeout=600.0)
            elapsed, tickets = _timed_keyed_stream(service, samples, keys)
            stats = service.stats()
        results[backend_name] = {
            "seconds": elapsed,
            "samples_per_sec": num_samples / elapsed,
            "p95_latency_ms": stats.p95_latency * 1e3,
        }
        tickets_by_backend[backend_name] = (service, tickets)

    # Correctness: process responses grouped by (key, flush_id) replay
    # bit-identically through a synchronous encode_batch.
    service, tickets = tickets_by_backend["process"]
    groups: dict = {}
    for ticket in tickets:
        response = ticket.response
        groups.setdefault((response.key, response.flush_id), []).append(
            (response, ticket.request.sample)
        )
    replay_identical = True
    for (key, _fid), group in groups.items():
        reference = service.registry.get(key).encode_batch(
            np.stack([sample for _, sample in group])
        )
        for (response, _), ref in zip(group, reference):
            if not (
                response.cluster_index == ref.cluster_index
                and np.array_equal(response.encoded.theta, ref.theta)
                and response.encoded.ideal_fidelity == ref.ideal_fidelity
            ):
                replay_identical = False

    # Rejected-submit latency: admission stays an O(1) parent-side
    # front-door check — a process fleet must not tax the reject path.
    reject_service = EncodingService(
        max_batch=window,
        backend="process",
        workers=2,
        max_pending_per_key=window,
        overload_policy="reject",
    )
    for key, clone in zip(keys[:1], _cloned_encoders(encoder, 1)):
        reject_service.register(key, clone)
    reject_seconds: list = []
    with reject_service:
        offered = 0
        while len(reject_seconds) < 32 and offered < 64 * window:
            call_start = time.perf_counter()
            try:
                reject_service.submit(
                    samples[offered % len(samples)], key=keys[0]
                )
            except OverloadError:
                reject_seconds.append(time.perf_counter() - call_start)
            offered += 1
        reject_service.drain(timeout=600.0)
    median_reject = (
        float(np.median(reject_seconds)) if reject_seconds else float("nan")
    )

    thread_row = results["thread"]
    process_row = results["process"]
    speedup = thread_row["seconds"] / process_row["seconds"]
    cpu_count = os.cpu_count() or 1
    p95_budget_ms = (
        max(
            PROCESS_P95_FACTOR * thread_row["p95_latency_ms"],
            thread_row["p95_latency_ms"]
            + PROCESS_P95_SLACK_SECONDS * 1e3,
        )
    )
    return {
        "num_qubits": num_qubits,
        "num_samples": num_samples,
        "num_keys": num_keys,
        "workers": workers,
        "batch_window": window,
        "cpu_count": cpu_count,
        "threaded_seconds": thread_row["seconds"],
        "threaded_samples_per_sec": thread_row["samples_per_sec"],
        "threaded_p95_latency_ms": thread_row["p95_latency_ms"],
        "process_seconds": process_row["seconds"],
        "process_samples_per_sec": process_row["samples_per_sec"],
        "process_p95_latency_ms": process_row["p95_latency_ms"],
        "speedup_vs_threaded": speedup,
        "replay_identical": bool(replay_identical),
        "process_p95_budget_ms": p95_budget_ms,
        "process_p95_within_budget": bool(
            process_row["p95_latency_ms"] <= p95_budget_ms
        ),
        "rejected": len(reject_seconds),
        "median_reject_ms": median_reject * 1e3,
        "rejects_fail_fast": bool(
            reject_seconds and median_reject < OVERLOAD_REJECT_BUDGET
        ),
        #: The scaling gate binds only where the host has the cores to
        #: show it; otherwise the artifact records the waiver.
        "speedup_gate_applies": bool(cpu_count >= PROCESS_MIN_CORES),
        "speedup_gate_waived_reason": (
            None
            if cpu_count >= PROCESS_MIN_CORES
            else f"host has {cpu_count} cpu(s) < {PROCESS_MIN_CORES}"
        ),
    }


def run_benchmark() -> dict:
    return {
        "streaming": {
            str(num_qubits): run_scenario(
                num_qubits, NUM_SAMPLES, BATCH_WINDOW
            )
            for num_qubits in QUBIT_COUNTS
        },
        "idle_gap": {
            str(num_qubits): run_idle_gap_scenario(num_qubits)
            for num_qubits in QUBIT_COUNTS
        },
        #: Overload runs at the gated scale only — it refits an encoder
        #: per scenario, and the gates are capacity-relative anyway.
        "overload": {
            str(GATED_QUBITS): run_overload_scenario(GATED_QUBITS)
        },
        #: Process fleet at the gated scale only, for the same reason.
        "process": {
            str(GATED_QUBITS): run_process_scenario(GATED_QUBITS)
        },
    }


def publish(results: dict, write_artifact: bool = True) -> None:
    if write_artifact:
        ARTIFACT.write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n"
        )
    header = (
        f"{'qubits':>6} {'seq s/s':>10} {'stream s/s':>11} {'thread s/s':>11} "
        f"{'speedup':>8} {'fid diff':>10}"
    )
    print("\n" + header)
    for qubits, row in sorted(results.get("streaming", {}).items()):
        print(
            f"{qubits:>6} {row['sequential_samples_per_sec']:>10.1f} "
            f"{row['streaming_samples_per_sec']:>11.1f} "
            f"{row['threaded_samples_per_sec']:>11.1f} "
            f"{row['speedup']:>7.1f}x {row['max_fidelity_diff']:>10.1e}"
        )
    idle = results.get("idle_gap", {})
    if idle:
        print(
            f"{'qubits':>6} {'sync p95 ms':>12} {'async p95 ms':>13} "
            f"{'deadline ms':>12} {'wakeups':>8}"
        )
        for qubits, row in sorted(idle.items()):
            print(
                f"{qubits:>6} {row['sync_p95_latency_ms']:>12.1f} "
                f"{row['async_p95_latency_ms']:>13.1f} "
                f"{row['max_delay'] * 1e3:>12.1f} "
                f"{row['async_flusher_wakeups']:>8}"
            )
    overload = results.get("overload", {})
    if overload:
        print(
            f"{'qubits':>6} {'base s/s':>10} {'accept s/s':>11} "
            f"{'shed':>6} {'reject ms':>10} {'p95 ms':>9}"
        )
        for qubits, row in sorted(overload.items()):
            print(
                f"{qubits:>6} {row['baseline_samples_per_sec']:>10.1f} "
                f"{row['accepted_samples_per_sec']:>11.1f} "
                f"{row['rejected']:>6} "
                f"{row['median_reject_ms']:>10.3f} "
                f"{row['accepted_p95_latency_ms']:>9.1f}"
            )
    process = results.get("process", {})
    if process:
        print(
            f"{'qubits':>6} {'thread s/s':>11} {'process s/s':>12} "
            f"{'vs thread':>10} {'p95 ms':>9} {'reject ms':>10}"
        )
        for qubits, row in sorted(process.items()):
            waiver = (
                ""
                if row["speedup_gate_applies"]
                else f"  (gate waived: {row['speedup_gate_waived_reason']})"
            )
            print(
                f"{qubits:>6} {row['threaded_samples_per_sec']:>11.1f} "
                f"{row['process_samples_per_sec']:>12.1f} "
                f"{row['speedup_vs_threaded']:>9.2f}x "
                f"{row['process_p95_latency_ms']:>9.1f} "
                f"{row['median_reject_ms']:>10.3f}{waiver}"
            )
    if write_artifact:
        print(f"artifact: {ARTIFACT}")


def test_service_throughput():
    results = run_benchmark()
    publish(results)
    for row in results["streaming"].values():
        assert row["clusters_equal"]
        assert row["threaded_clusters_equal"]
        # Streaming may only ever match or beat the sequential optimizer.
        assert row["min_fidelity_advantage"] > -1e-9
    # Strict acceptance gate at the paper-adjacent mid scale: numerically
    # equivalent results and >= 4x streaming throughput at window 32.
    gated = results["streaming"][str(GATED_QUBITS)]
    assert gated["max_fidelity_diff"] < 1e-9
    assert gated["threaded_max_fidelity_diff"] < 1e-9
    assert gated["gate_counts_equal"]
    assert gated["speedup"] >= MIN_SPEEDUP
    # The background flusher's handoff must not tax streaming throughput
    # below the acceptance bar either.
    assert gated["threaded_speedup"] >= MIN_SPEEDUP
    # Idle-gap gate: the async backend honors max_delay on a quiet
    # queue; the sync backend structurally cannot (it waits for the
    # next burst's submit), which is the whole case for the backend.
    for row in results["idle_gap"].values():
        assert row["clusters_equal"]
        assert row["async_meets_deadline_budget"], row
        assert row["sync_misses_deadline"], row
    # Overload gates: shed fast, admit at near-capacity, bound the p95.
    for row in results["overload"].values():
        assert row["rejected"] > 0, row  # 4x offered load actually shed
        assert row["rejects_fail_fast"], row
        assert (
            row["accepted_over_baseline"] >= OVERLOAD_THROUGHPUT_FLOOR
        ), row
        assert row["accepted_p95_within_budget"], row
    # Process-fleet gates: responses cross the wire bit-identically,
    # rejects stay O(1), tail latency stays bounded, and — where the
    # host has the cores — 4 workers beat the GIL-bound thread pool.
    for row in results["process"].values():
        assert row["replay_identical"], row
        assert row["rejected"] > 0, row
        assert row["rejects_fail_fast"], row
        assert row["process_p95_within_budget"], row
        if row["speedup_gate_applies"]:
            assert (
                row["speedup_vs_threaded"]
                >= PROCESS_MIN_SPEEDUP_VS_THREAD
            ), row


def smoke() -> None:
    """CI guard: reduced 4-qubit scenarios, no artifact write."""
    results = {
        "streaming": {"4q_smoke": run_scenario(4, 16, 8)},
        "idle_gap": {
            "4q_smoke": run_idle_gap_scenario(
                4, gap=0.3, burst=2, num_bursts=3, max_delay=0.04
            )
        },
        "overload": {
            "4q_smoke": run_overload_scenario(
                4, window=8, seconds=1.0, num_baseline=16
            )
        },
        "process": {
            "4q_smoke": run_process_scenario(
                4, num_samples=16, window=4, workers=2, num_keys=2
            )
        },
    }
    publish(results, write_artifact=False)
    row = results["streaming"]["4q_smoke"]
    assert row["clusters_equal"]
    assert row["threaded_clusters_equal"]
    assert row["max_fidelity_diff"] < 1e-9
    assert row["threaded_max_fidelity_diff"] < 1e-9
    assert row["num_flushes"] == 2  # 16 submits through window 8
    idle = results["idle_gap"]["4q_smoke"]
    assert idle["clusters_equal"]
    # Loose smoke bounds (CI machines jitter): the async backend must
    # still beat the burst gap by a wide margin while sync waits it out.
    assert idle["async_p95_latency_ms"] < 0.5 * idle["gap_seconds"] * 1e3
    assert idle["sync_p95_latency_ms"] > 0.5 * idle["gap_seconds"] * 1e3
    overload = results["overload"]["4q_smoke"]
    assert overload["rejected"] > 0, overload
    assert overload["rejects_fail_fast"], overload
    assert (
        overload["accepted_over_baseline"]
        >= OVERLOAD_SMOKE_THROUGHPUT_FLOOR
    ), overload
    assert overload["accepted_p95_within_budget"], overload
    process = results["process"]["4q_smoke"]
    # Smoke is a correctness/liveness check for the fleet, not a
    # scaling claim: bit-identical replay, fast rejects, and a floor
    # loose enough for single-core CI runners.
    assert process["replay_identical"], process
    assert process["rejects_fail_fast"], process
    assert process["speedup_vs_threaded"] >= PROCESS_SMOKE_FLOOR, process
    print("service throughput smoke: ok")


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        smoke()
    else:
        test_service_throughput()
