"""Shared fixtures for the figure benchmarks.

The :class:`ExperimentContext` (backend + datasets + fitted encoders) is
built once per session; each ``bench_fig*`` file then regenerates one
paper figure from it.  Rendered tables are printed *and* written to
``benchmarks/output/`` so a plain ``pytest benchmarks/ --benchmark-only``
run leaves the figure data on disk.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.evaluation import (
    ExperimentConfig,
    ExperimentContext,
    circuit_metrics_sweep,
)

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Benchmark-scale configuration: large enough for stable means, small
#: enough for a laptop run (the noisy sweep is the long pole).
BENCH_CONFIG = ExperimentConfig(
    samples_per_class=60,
    num_metric_samples=8,
    num_fidelity_samples=6,
    num_noisy_samples=3,
)


@pytest.fixture(scope="session")
def context():
    return ExperimentContext(BENCH_CONFIG)


@pytest.fixture(scope="session")
def sweep(context):
    return circuit_metrics_sweep(context)


def publish(name: str, table: str) -> None:
    """Print a figure table and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(table + "\n")
    print("\n" + table)
