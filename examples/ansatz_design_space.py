"""Explore the EnQode ansatz design space (Sec. III-A design choices).

Sweeps the three design axes the paper discusses — entangler gate, layer
count, and the alternating arrangement — and prints achievable fidelity on
a real cluster-mean target plus the transpiled hardware cost of each
variant.  Reproduces the reasoning behind the published configuration
(8 layers of CY bricks in an alternating arrangement) and surfaces this
reproduction's finding that the *orientation* alternation is what keeps
the CY phases trainable.

Run:  python examples/ansatz_design_space.py
"""

import numpy as np

from repro import brisbane_linear_segment, load_dataset, transpile
from repro.core import (
    EnQodeAnsatz,
    FidelityObjective,
    LBFGSOptimizer,
    build_symbolic,
)


def target_vector():
    dataset = load_dataset("mnist", samples_per_class=80, seed=0)
    block = dataset.class_slice(int(dataset.classes()[0]))
    mean = block.mean(axis=0)
    return mean / np.linalg.norm(mean)


def evaluate(ansatz, target, backend, restarts=4):
    objective = FidelityObjective(build_symbolic(ansatz), ansatz, target)
    result = LBFGSOptimizer(num_restarts=restarts, seed=0).optimize(objective)
    metrics = transpile(ansatz.circuit(result.theta), backend).metrics()
    return result.fidelity, metrics


def main() -> None:
    backend = brisbane_linear_segment(8)
    target = target_vector()

    print("== entangler choice (8 layers, alternating arrangement) ==")
    print(f"{'entangler':<12}{'fidelity':>10}{'depth':>8}{'2q':>6}{'1q':>6}")
    for entangler in ("cy", "cry", "cx", "cz"):
        ansatz = EnQodeAnsatz(8, 8, entangler)
        fidelity, metrics = evaluate(ansatz, target, backend)
        print(
            f"{entangler:<12}{fidelity:>10.3f}{metrics.depth:>8}"
            f"{metrics.two_qubit_gates:>6}{metrics.one_qubit_gates:>6}"
        )

    print("\n== orientation alternation (the load-bearing detail) ==")
    for alternate in (True, False):
        ansatz = EnQodeAnsatz(8, 8, "cy", alternate_orientation=alternate)
        fidelity, _ = evaluate(ansatz, target, backend)
        label = "alternating" if alternate else "fixed"
        print(f"cy, {label:<12} fidelity {fidelity:.3f}")

    print("\n== layer count (cy, alternating) ==")
    print(f"{'layers':<8}{'params':>8}{'fidelity':>10}{'depth':>8}")
    for layers in (2, 4, 6, 8, 10, 12):
        ansatz = EnQodeAnsatz(8, layers)
        fidelity, metrics = evaluate(ansatz, target, backend)
        print(
            f"{layers:<8}{ansatz.num_parameters:>8}{fidelity:>10.3f}"
            f"{metrics.depth:>8}"
        )
    print(
        "\nfidelity saturates near 8 layers while depth keeps growing — "
        "the paper's operating point."
    )


if __name__ == "__main__":
    main()
