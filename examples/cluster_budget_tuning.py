"""Tune the cluster budget: the Sec. IV-A 0.95 rule in practice.

For one synthetic-MNIST class, sweeps the cluster count k and reports the
three quantities the rule trades off:

* min nearest-cluster fidelity (the rule's threshold quantity);
* offline training cost (grows with k);
* achieved per-sample embedding fidelity after transfer learning.

Then runs the automatic rule and shows where it lands.

Run:  python examples/cluster_budget_tuning.py
"""

import numpy as np

from repro import EnQodeConfig, EnQodeEncoder, brisbane_linear_segment, load_dataset
from repro.core import KMeans, min_nearest_fidelity


def main() -> None:
    backend = brisbane_linear_segment(8)
    dataset = load_dataset("mnist", samples_per_class=80, seed=0)
    block = dataset.class_slice(int(dataset.classes()[0]))

    print("== manual k sweep ==")
    print(f"{'k':>4}{'min nn fidelity':>17}")
    for k in (1, 2, 4, 8, 16, 24):
        model = KMeans(k, seed=0).fit(block)
        print(f"{k:>4}{min_nearest_fidelity(block, model.centers_):>17.3f}")

    print("\n== automatic rule (threshold 0.95) ==")
    encoder = EnQodeEncoder(backend, EnQodeConfig(seed=7))
    report = encoder.fit(block)
    print(
        f"selected k = {report.num_clusters}, "
        f"min nearest fidelity = {report.min_nearest_fidelity:.3f}, "
        f"offline time = {report.total_time:.1f}s"
    )
    print(
        f"cluster training fidelity: mean {report.mean_cluster_fidelity:.3f}, "
        f"min {min(report.cluster_fidelities):.3f}"
    )

    fidelities = [encoder.encode(x).ideal_fidelity for x in block[:12]]
    print(
        f"per-sample embedding fidelity (12 samples): "
        f"mean {np.mean(fidelities):.3f}, min {np.min(fidelities):.3f}"
    )

    print("\n== what a lower threshold would give ==")
    relaxed = EnQodeEncoder(
        backend, EnQodeConfig(seed=7, min_cluster_fidelity=0.80)
    )
    relaxed_report = relaxed.fit(block)
    relaxed_fids = [relaxed.encode(x).ideal_fidelity for x in block[:12]]
    print(
        f"threshold 0.80 -> k = {relaxed_report.num_clusters}, "
        f"offline {relaxed_report.total_time:.1f}s, "
        f"sample fidelity mean {np.mean(relaxed_fids):.3f}"
    )
    print(
        "fewer clusters train faster but start each sample farther from "
        "its target; the 0.95 rule buys fidelity headroom with offline time."
    )


if __name__ == "__main__":
    main()
