"""Deployment workflow: train offline once, serve a stream online.

Sec. III-C/III-D describe EnQode as an offline/online system: cluster
models are trained once per dataset+class, *stored*, and reused to embed
a stream of incoming samples in real time.  This example runs that
workflow end to end on the service API:

1. offline job — fit per-class encoders on a dataset, save them as
   versioned JSON bundles;
2. online service — load the bundles into an
   :class:`repro.service.EncodingService`, stream samples through the
   micro-batcher (auto-routing samples of unknown class to the nearest
   model), read the embedded states out with finite shots and calibrated
   readout error, and print the service's latency/fidelity accounting
   (response circuits are lazy compact-IR views —
   :class:`repro.transpile.BoundCircuit` — simulated straight off the
   packed bind arrays, materialized to instructions only on demand);
3. async service — the same registry behind the ``backend="thread"``
   execution backend: ``start()`` the background flusher + worker pool,
   submit from several producer threads at once, collect responses with
   ``ticket.result(timeout=...)``, and ``stop()`` cleanly.  The
   difference from step 2: the ``max_delay`` latency deadline fires on
   an *idle* queue (the flusher sleeps until exactly the deadline — no
   follow-up traffic or polling needed), and different classes' flushes
   run concurrently while each class's requests still complete in
   submission order (one in-flight flush per key);
4. resilient service — the same thread backend with the PR-9 hardening
   knobs turned on: a bounded admission queue that sheds over-budget
   traffic to a finetune-skipped degraded path, transient flush faults
   retried with full-jitter backoff (a deterministic
   :class:`repro.service.FaultInjector` stands in for real failures),
   and the :meth:`~repro.service.ServiceStats.to_metrics` Prometheus
   export a scraper would read;
5. process-pool service — ``backend="process"``: the same control
   plane over a fleet of worker processes holding float-exact encoder
   replicas (true multi-core scaling for the CPU-bound fine-tune),
   keys sharded to workers by stable hash, flush results crossing the
   pipe as compact wire records — and a fault-injected worker death
   escalated to a real SIGKILL, survived by requeue + respawn;
6. wire export — ship a flushed batch to another process as a compact
   :mod:`repro.io` wire record (template fingerprint + bound angles,
   a few hundred bytes per circuit), rehydrate it against a receiving
   registry holding the same bundles, and verify the rebound circuits
   simulate to *bit-identical* statevectors; individual responses also
   export to standard OpenQASM 2/3 text for other toolchains.

(The pre-service ``PerClassEnQode.encode_auto`` path still exists as a
deprecated shim; the service applies the same nearest-class routing rule
while batching fine-tunes and reusing the cached transpile template.)

Run:  python examples/deployment_workflow.py
"""

import pathlib
import tempfile
import threading
import time

import numpy as np

from repro import EnQodeConfig, brisbane_linear_segment, load_dataset
from repro.core import PerClassEnQode, save_encoder
from repro.quantum import simulate_statevector
from repro.quantum.measurement import backend_readout_errors, sample_counts
from repro.service import EncodingService


def offline_job(backend, dataset, model_dir: pathlib.Path) -> None:
    """Train and persist one encoder per class as a versioned bundle."""
    trainer = PerClassEnQode(backend, EnQodeConfig(seed=7))
    reports = trainer.fit(dataset)
    for label, encoder in trainer.encoders.items():
        path = model_dir / f"enqode_class{label}.json"
        save_encoder(encoder, path)
        report = reports[label]
        print(
            f"  class {label}: {report.num_clusters} clusters, "
            f"{report.total_time:.1f}s, saved {path.name} "
            f"({path.stat().st_size / 1024:.0f} KiB)"
        )
    print(f"  total offline time: {trainer.total_offline_time():.1f}s")


def online_service(backend, dataset, model_dir: pathlib.Path) -> None:
    """Reload the bundles and serve a stream of samples."""
    # A small batch window keeps the demo's flushes visible; production
    # windows (32+) amortize the batched fine-tune and the vectorized
    # template lowering further: each flush fine-tunes its whole batch in
    # one L-BFGS drive and lowers it through a single
    # ParametricTemplate.bind_batch sweep (stacked 2x2 composition +
    # batched ZYZ — instruction-identical to per-sample compiles; the
    # stats line below counts one template bind per request).  Since PR 6
    # the response circuits are *compact-IR* views
    # (repro.transpile.BoundCircuit): per sample the service holds only
    # packed angle arrays — a few hundred bytes instead of thousands of
    # instruction objects — and simulate_statevector below walks those
    # arrays directly; the eager instruction list is built lazily only
    # if something iterates the circuit (drawing, instruction export).
    # Loading a bundle validates its schema_version up front — an
    # incompatible bundle fails here, not on live traffic.
    service = EncodingService(max_batch=4)
    for path in sorted(model_dir.glob("enqode_class*.json")):
        label = int(path.stem.replace("enqode_class", ""))
        service.load(label, path, backend)
    print(f"  loaded encoders for classes {service.keys()}")

    # Stream twelve requests of unknown class: submit() routes each to
    # the nearest model and micro-batches the fine-tunes; every fourth
    # submission triggers a flush.
    rng = np.random.default_rng(0)
    true_labels = [int(rng.choice(service.keys())) for _ in range(12)]
    tickets = [
        (
            label,
            service.submit(dataset.class_slice(label)[int(rng.integers(20))]),
        )
        for label in true_labels
    ]
    service.flush()  # drain the last partial batch

    readout = backend_readout_errors(backend)
    for i, (label, ticket) in enumerate(tickets[:4]):
        response = ticket.result()
        state = simulate_statevector(response.circuit)
        counts = sample_counts(
            state, shots=256, seed=rng, readout_errors=readout
        )
        print(
            f"  request {i}: true class {label}, routed to "
            f"{response.key}, fidelity {response.fidelity:.3f}, "
            f"latency {response.latency * 1e3:.0f} ms "
            f"(batch of {response.batch_size}), "
            f"top outcome {counts.most_frequent()!r}"
        )
    routed = sum(
        1 for label, ticket in tickets if ticket.result().key == label
    )
    print(f"  routing: {routed}/{len(tickets)} requests reached their class")
    print(f"  service: {service.stats().summary()}")


def async_online_service(backend, dataset, model_dir: pathlib.Path) -> None:
    """Serve concurrent producers through the threaded backend."""
    # backend="thread" adds a daemon flusher (wakes on the earliest
    # pending max_delay deadline and on full queues) and a small worker
    # pool (flushes for different classes run concurrently).  The
    # context manager start()s the threads and stop()s them with a full
    # drain on exit; submit() is safe from any thread.
    service = EncodingService(
        max_batch=4, max_delay=0.05, backend="thread", workers=2
    )
    for path in sorted(model_dir.glob("enqode_class*.json")):
        label = int(path.stem.replace("enqode_class", ""))
        service.load(label, path, backend)

    rng = np.random.default_rng(1)
    tickets: dict = {label: [] for label in service.keys()}
    with service:

        def produce(label) -> None:
            # One producer per class, racing each other into the
            # micro-batcher; per-class order is preserved end to end.
            rows = dataset.class_slice(label)
            for _ in range(6):
                sample = rows[int(rng.integers(20))]
                tickets[label].append(service.submit(sample, key=label))

        producers = [
            threading.Thread(target=produce, args=(label,))
            for label in service.keys()
        ]
        for thread in producers:
            thread.start()
        for thread in producers:
            thread.join()
        # A trickle never strands: even with no further traffic the
        # flusher serves every queue within max_delay.  result() blocks
        # on the ticket's event with a timeout instead of flushing
        # inline — the worker pool does the encoding.
        for label, owned in tickets.items():
            latencies = [
                ticket.result(timeout=5.0).latency * 1e3 for ticket in owned
            ]
            print(
                f"  class {label}: {len(owned)} requests, "
                f"worst latency {max(latencies):.0f} ms "
                f"(deadline {service.batcher.max_delay * 1e3:.0f} ms)"
            )
        print(f"  service: {service.stats().summary()}")
    # stop() (via the context manager) drained the queues and joined the
    # flusher + workers; submits would now raise ServiceError.


def resilient_service(backend, dataset, model_dir: pathlib.Path) -> None:
    """Serve an overload burst with faults injected, then read metrics."""
    from repro.service import FaultInjector, FaultRule

    # The resilience knobs all live on ServiceConfig / the constructor:
    #   max_pending_per_key / max_pending_total — admission budgets; an
    #     over-budget submit() either raises OverloadError fast
    #     (overload_policy="reject") or is served inline through the
    #     finetune-skipped centroid path (overload_policy="degrade": the
    #     ticket returns already done, response.degraded set — lower
    #     fidelity, microsecond latency, zero optimizer work);
    #   submit(deadline=...) — a request still unserved when its budget
    #     expires fails with DeadlineExceededError before any pipeline
    #     work is spent on it;
    #   retry_attempts / retry_backoff / retry_jitter — transient flush
    #     failures retry with full-jitter exponential backoff;
    #   breaker_threshold / breaker_reset_timeout — a per-key circuit
    #     breaker stops hammering a persistently failing encoder
    #     (CircuitOpenError until a half-open probe succeeds);
    #   flush_timeout — a wedged flush is abandoned: its tickets fail,
    #     its key frees for follow-up traffic, its late result is
    #     discarded.
    # A deterministic FaultInjector stands in for real failures: the
    # first two flush attempts raise a transient error, then the rule
    # exhausts and the service recovers — same seed, same faults, so
    # chaos runs replay exactly.
    injector = FaultInjector(
        [FaultRule("flush", kind="error", probability=1.0, times=2)]
    )
    service = EncodingService(
        max_batch=4,
        max_delay=0.05,
        backend="thread",
        workers=2,
        max_pending_per_key=4,
        overload_policy="degrade",
        retry_attempts=3,
        retry_backoff=0.01,
        fault_injector=injector,
    )
    for path in sorted(model_dir.glob("enqode_class*.json")):
        label = int(path.stem.replace("enqode_class", ""))
        service.load(label, path, backend)

    rng = np.random.default_rng(3)
    label = service.keys()[0]
    rows = dataset.class_slice(label)
    with service:
        # Burst 16 submissions at a queue budgeted for 4: the overflow
        # is shed to the degraded path instead of queueing unboundedly,
        # while the injected faults force the first flush through two
        # retries before it succeeds.
        tickets = [
            service.submit(rows[int(rng.integers(20))], key=label)
            for _ in range(16)
        ]
        service.drain(timeout=30.0)
        stats = service.stats()

    responses = [ticket.result(flush=False) for ticket in tickets]
    shed = [r for r in responses if r.degraded]
    polished = [r for r in responses if not r.degraded]
    print(
        f"  burst of {len(tickets)}: {len(polished)} polished, "
        f"{len(shed)} shed to the degraded path "
        f"(fidelity {min(r.fidelity for r in polished):.3f} polished "
        f"vs {min(r.fidelity for r in shed):.3f} degraded)"
    )
    print(f"  service: {stats.summary()}")
    # The same snapshot in Prometheus text exposition format — serve it
    # from a /metrics endpoint and any scraper can alert on shed rate,
    # retry rate, or breaker opens.  A few of the resilience series:
    wanted = (
        "_requests_shed_degraded_total",
        "_flush_retries_total",
        "_requests_rejected_total",
        "_breaker_opens_total",
    )
    for line in stats.to_metrics().splitlines():
        if not line.startswith("#") and any(w in line for w in wanted):
            print(f"  metrics: {line}")


def process_service(backend, dataset, model_dir: pathlib.Path) -> None:
    """Serve from a worker-process fleet; kill a worker and recover."""
    from repro.service import FaultInjector, FaultRule

    # backend="process" keeps the whole thread-backend control plane
    # (micro-batcher, flusher, tickets, resilience) and moves the
    # pipeline execution into worker processes, each holding a
    # float-exact replica of every registered encoder — true multi-core
    # scaling for the CPU-bound fine-tune, with responses still
    # float-bit identical to encode_batch.  The extra knobs:
    #   shard_strategy — "rendezvous" (default; a death moves only the
    #     dead worker's keys) or "modulo" routing of keys to workers;
    #   spawn_timeout / handshake_timeout — fleet startup and
    #     bundle-shipping budgets.
    # The FaultRule below demonstrates recovery: under this backend an
    # injected worker death is escalated to a real SIGKILL of the
    # routed worker process.
    injector = FaultInjector(
        [FaultRule("worker", kind="death", times=1, probability=1.0)]
    )
    service = EncodingService(
        max_batch=4,
        max_delay=0.05,
        backend="process",
        workers=2,
        fault_injector=injector,
    )
    for path in sorted(model_dir.glob("enqode_class*.json")):
        label = int(path.stem.replace("enqode_class", ""))
        service.load(label, path, backend)

    rng = np.random.default_rng(5)
    with service:  # spawns the fleet: slow once, then steady-state
        # Every key routes deterministically to one worker; because all
        # workers hold all bundles, this is routing only — a dead
        # worker's keys reroute to survivors instantly.
        print(f"  shard map over 2 workers: {service.shard_map()}")
        labels = service.keys()
        tickets = [
            service.submit(
                dataset.class_slice(label)[int(rng.integers(20))],
                key=label,
            )
            for label in labels
            for _ in range(4)
        ]
        service.drain(timeout=120.0)
        impl = service._backend_impl
        print(
            f"  served {len(tickets)} requests across "
            f"{len(labels)} keys; worker death: SIGKILL delivered "
            f"({injector.fired_count('worker')} fired), batch requeued "
            f"in order, no ticket lost"
        )
        # Traffic rerouted to the survivor immediately; the replacement
        # process spawns in the background — wait for it so the fleet
        # is whole again before shutdown.
        deadline = time.monotonic() + 60.0
        while impl.process_respawns < 1 and time.monotonic() < deadline:
            time.sleep(0.1)
        respawns = impl.process_respawns
    done = sum(ticket.done for ticket in tickets)
    print(
        f"  recovery: {done}/{len(tickets)} completed, "
        f"{respawns} worker process(es) respawned"
    )


def wire_export(backend, dataset, model_dir: pathlib.Path) -> None:
    """Export a flushed batch as a wire record and rehydrate it."""
    from repro.io import describe
    from repro.quantum import state_fidelity

    # Sender: a service embeds one micro-batch and serializes it.  The
    # responses share one template-bound compact-IR batch, so the record
    # is just the template fingerprint plus the bound angles — no
    # instruction streams cross the wire.
    sender = EncodingService(max_batch=4)
    for path in sorted(model_dir.glob("enqode_class*.json")):
        label = int(path.stem.replace("enqode_class", ""))
        sender.load(label, path, backend)
    label = sender.keys()[0]
    rng = np.random.default_rng(2)
    tickets = [
        sender.submit(dataset.class_slice(label)[int(rng.integers(20))])
        for _ in range(4)
    ]
    sender.flush()
    responses = [ticket.result() for ticket in tickets]
    blob = sender.export_wire(responses)
    summary = describe(blob)
    print(
        f"  exported {summary['num_circuits']} circuits as "
        f"{summary['kind']} record: {len(blob)} bytes "
        f"({len(blob) / len(responses):.0f} B/circuit)"
    )

    # Receiver: a *different* registry loaded from the same bundles
    # resolves the fingerprint to its own cached template and rebinds —
    # deterministically, so the states match bit for bit.
    receiver = EncodingService(max_batch=4)
    for path in sorted(model_dir.glob("enqode_class*.json")):
        receiver.load(
            int(path.stem.replace("enqode_class", "")), path, backend
        )
    batch = receiver.registry.rehydrate_wire(blob)
    fidelities = [
        state_fidelity(
            batch.statevector_row(row),
            simulate_statevector(response.circuit),
        )
        for row, response in enumerate(responses)
    ]
    print(
        f"  rehydrated on the receiver: batch of {batch.batch_size}, "
        f"state fidelity vs sender {min(fidelities):.10f} (bit-identical)"
    )

    # And for everything else there is text: standard OpenQASM 2/3.
    qasm = responses[0].to_qasm(version=3)
    print(
        f"  OpenQASM 3 export of response 0: {len(qasm)} bytes, "
        f"starts {qasm.splitlines()[0]!r}"
    )


def main() -> None:
    backend = brisbane_linear_segment(8)
    # PCA to 256 features needs at least 256 samples: 3 classes x 90.
    dataset = load_dataset("mnist", samples_per_class=90, num_classes=3, seed=0)
    with tempfile.TemporaryDirectory() as tmp:
        model_dir = pathlib.Path(tmp)
        print("offline job:")
        offline_job(backend, dataset, model_dir)
        print("online service:")
        online_service(backend, dataset, model_dir)
        print("async online service:")
        async_online_service(backend, dataset, model_dir)
        print("resilient service:")
        resilient_service(backend, dataset, model_dir)
        print("process-pool service:")
        process_service(backend, dataset, model_dir)
        print("wire export / rehydrate:")
        wire_export(backend, dataset, model_dir)


if __name__ == "__main__":
    main()
