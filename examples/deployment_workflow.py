"""Deployment workflow: train offline once, serve embeddings online.

Sec. III-C/III-D describe EnQode as an offline/online system: cluster
models are trained once per dataset+class, *stored*, and reused to embed
a stream of incoming samples in real time.  This example runs that
workflow end to end:

1. offline job — fit per-class encoders on a dataset, save them to JSON;
2. online service — reload the models, embed incoming samples (including
   auto-routing samples of unknown class), and read the embedded states
   out with finite shots and calibrated readout error.

Run:  python examples/deployment_workflow.py
"""

import pathlib
import tempfile

import numpy as np

from repro import EnQodeConfig, brisbane_linear_segment, load_dataset
from repro.core import PerClassEnQode, load_encoder, save_encoder
from repro.quantum import simulate_statevector
from repro.quantum.measurement import backend_readout_errors, sample_counts


def offline_job(backend, dataset, model_dir: pathlib.Path) -> None:
    """Train and persist one encoder per class."""
    trainer = PerClassEnQode(backend, EnQodeConfig(seed=7))
    reports = trainer.fit(dataset)
    for label, encoder in trainer.encoders.items():
        path = model_dir / f"enqode_class{label}.json"
        save_encoder(encoder, path)
        report = reports[label]
        print(
            f"  class {label}: {report.num_clusters} clusters, "
            f"{report.total_time:.1f}s, saved {path.name} "
            f"({path.stat().st_size / 1024:.0f} KiB)"
        )
    print(f"  total offline time: {trainer.total_offline_time():.1f}s")


def online_service(backend, dataset, model_dir: pathlib.Path) -> None:
    """Reload models and embed a stream of samples."""
    service = PerClassEnQode(backend, EnQodeConfig(seed=7))
    for path in sorted(model_dir.glob("enqode_class*.json")):
        label = int(path.stem.replace("enqode_class", ""))
        service.encoders[label] = load_encoder(path, backend)
    print(f"  loaded encoders for classes {service.classes()}")

    readout = backend_readout_errors(backend)
    rng = np.random.default_rng(0)
    for i in range(4):
        label = int(rng.choice(service.classes()))
        sample = dataset.class_slice(label)[int(rng.integers(20))]
        encoded = service.encode_auto(sample)  # class is not revealed
        state = simulate_statevector(encoded.circuit)
        counts = sample_counts(
            state, shots=256, seed=rng, readout_errors=readout
        )
        print(
            f"  request {i}: true class {label}, "
            f"fidelity {encoded.ideal_fidelity:.3f}, "
            f"compiled in {encoded.compile_time * 1e3:.0f} ms, "
            f"top outcome {counts.most_frequent()!r}"
        )


def main() -> None:
    backend = brisbane_linear_segment(8)
    # PCA to 256 features needs at least 256 samples: 3 classes x 90.
    dataset = load_dataset("mnist", samples_per_class=90, num_classes=3, seed=0)
    with tempfile.TemporaryDirectory() as tmp:
        model_dir = pathlib.Path(tmp)
        print("offline job:")
        offline_job(backend, dataset, model_dir)
        print("online service:")
        online_service(backend, dataset, model_dir)


if __name__ == "__main__":
    main()
