"""Noise-uniformity study: why *consistent* circuits matter (paper Fig. 1).

The paper's second argument against exact AE is not just average error but
error *variability*: every sample compiles to a different-depth circuit,
so samples face different noise levels, biasing downstream QML.  This
study quantifies both effects on one synthetic-MNIST class:

* per-sample noisy fidelity spread (std) for Baseline vs EnQode;
* per-sample circuit duration spread (ASAP schedule on calibrated gate
  times) — the decoherence-exposure proxy.

Run:  python examples/noise_consistency_study.py
"""

import numpy as np

from repro import (
    BaselineStatePreparation,
    EnQodeConfig,
    EnQodeEncoder,
    brisbane_linear_segment,
    load_dataset,
    state_fidelity,
)
from repro.quantum import DensityMatrixSimulator
from repro.transpile import schedule_duration

NUM_SAMPLES = 6


def main() -> None:
    backend = brisbane_linear_segment(8)
    dataset = load_dataset("mnist", samples_per_class=80, seed=0)
    block = dataset.class_slice(int(dataset.classes()[0]))

    encoder = EnQodeEncoder(backend, EnQodeConfig(seed=7))
    encoder.fit(block)
    baseline = BaselineStatePreparation(backend)
    simulator = DensityMatrixSimulator(backend.noise_model())

    rows = []
    for sample in block[:NUM_SAMPLES]:
        encoded = encoder.encode(sample)
        prepared = baseline.prepare(sample)
        rows.append(
            {
                "enqode_fid": state_fidelity(
                    simulator.run(encoded.circuit), encoded.physical_target()
                ),
                "baseline_fid": state_fidelity(
                    simulator.run(prepared.circuit), prepared.physical_target()
                ),
                "enqode_us": schedule_duration(encoded.circuit, backend) * 1e6,
                "baseline_us": schedule_duration(prepared.circuit, backend)
                * 1e6,
                "enqode_depth": encoded.metrics().depth,
                "baseline_depth": prepared.metrics().depth,
            }
        )

    print(
        f"{'sample':>6}{'EnQ fid':>9}{'Base fid':>10}"
        f"{'EnQ dur(us)':>13}{'Base dur(us)':>14}"
        f"{'EnQ depth':>11}{'Base depth':>12}"
    )
    for i, row in enumerate(rows):
        print(
            f"{i:>6}{row['enqode_fid']:>9.3f}{row['baseline_fid']:>10.4f}"
            f"{row['enqode_us']:>13.1f}{row['baseline_us']:>14.1f}"
            f"{row['enqode_depth']:>11d}{row['baseline_depth']:>12d}"
        )

    def stats(key):
        values = np.array([row[key] for row in rows])
        return values.mean(), values.std()

    print("\nsummary (mean ± std):")
    for key, label in [
        ("enqode_fid", "EnQode noisy fidelity"),
        ("baseline_fid", "Baseline noisy fidelity"),
        ("enqode_us", "EnQode duration (us)"),
        ("baseline_us", "Baseline duration (us)"),
    ]:
        mean, std = stats(key)
        print(f"  {label:<26} {mean:10.4f} ± {std:.4f}")

    enq_depths = {row["enqode_depth"] for row in rows}
    base_depths = {row["baseline_depth"] for row in rows}
    print(
        f"\ndistinct circuit depths across samples: EnQode {len(enq_depths)} "
        f"(always {enq_depths.pop()}), Baseline {len(base_depths)}"
    )
    print(
        "EnQode's fixed-shape ansatz gives every sample the same noise "
        "exposure; the Baseline's exposure is sample-dependent."
    )


if __name__ == "__main__":
    main()
