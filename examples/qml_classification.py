"""QML image classification on EnQode embeddings (the paper's Fig. 1 flow).

Trains a variational quantum classifier to separate two synthetic-MNIST
classes, with the classical images amplitude-embedded by EnQode.  The
trained classifier is then re-evaluated on *noisy* embedded states with a
finite shot budget and calibrated readout error, contrasting EnQode's
uniform shallow circuits with the Baseline's deep exact circuits: the
Baseline's decohered states leave a readout margin far below shot noise,
so its accuracy collapses toward a coin flip — the paper's central
motivation.

Run:  python examples/qml_classification.py
"""

import numpy as np

from repro import (
    BaselineStatePreparation,
    EnQodeConfig,
    EnQodeEncoder,
    brisbane_linear_segment,
    load_dataset,
)
from repro.qml import QMLClassifier
from repro.quantum import DensityMatrixSimulator, simulate_statevector
from repro.quantum.measurement import backend_readout_errors, sample_counts

TRAIN_PER_CLASS = 10
TEST_PER_CLASS = 4
SHOTS = 512


def main() -> None:
    backend = brisbane_linear_segment(8)
    dataset = load_dataset("mnist", samples_per_class=80, seed=0)
    class_a, class_b = (int(c) for c in dataset.classes()[:2])
    print(f"classifying digit-like classes {class_a} vs {class_b}")

    block_a = dataset.class_slice(class_a)
    block_b = dataset.class_slice(class_b)

    # Offline: one encoder per class, as in the paper (per dataset+class).
    encoders = {}
    for label, block in ((class_a, block_a), (class_b, block_b)):
        encoder = EnQodeEncoder(backend, EnQodeConfig(seed=7))
        report = encoder.fit(block)
        encoders[label] = encoder
        print(
            f"  class {label}: {report.num_clusters} clusters, "
            f"offline {report.total_time:.1f}s"
        )

    def embed(label: int, sample: np.ndarray):
        return encoders[label].encode(sample)

    # Build the training set of embedded statevectors (ideal simulation).
    train, labels = [], []
    for i in range(TRAIN_PER_CLASS):
        for label, block in ((class_a, block_a), (class_b, block_b)):
            encoded = embed(label, block[i])
            train.append(simulate_statevector(encoded.circuit))
            labels.append(0 if label == class_a else 1)
    labels = np.asarray(labels)

    model = QMLClassifier(8, num_layers=2, seed=1)
    model.fit(train, labels, num_steps=150)
    print(f"\ntrain accuracy (ideal states): {model.accuracy(train, labels):.2f}")

    # Held-out evaluation: ideal + noisy EnQode + noisy Baseline.
    simulator = DensityMatrixSimulator(backend.noise_model())
    baseline = BaselineStatePreparation(backend)
    test_states_ideal, test_states_noisy, base_states_noisy, test_labels = (
        [],
        [],
        [],
        [],
    )
    for i in range(TRAIN_PER_CLASS, TRAIN_PER_CLASS + TEST_PER_CLASS):
        for label, block in ((class_a, block_a), (class_b, block_b)):
            encoded = embed(label, block[i])
            test_states_ideal.append(simulate_statevector(encoded.circuit))
            test_states_noisy.append(simulator.run(encoded.circuit))
            prepared = baseline.prepare(block[i])
            base_states_noisy.append(simulator.run(prepared.circuit))
            test_labels.append(0 if label == class_a else 1)
    test_labels = np.asarray(test_labels)

    def shot_accuracy(states, seed=0):
        """Decide from <Z_0> estimated with finite shots + readout error."""
        readout = backend_readout_errors(backend)
        rng = np.random.default_rng(seed)
        correct = 0
        for state, label in zip(states, test_labels):
            evolved = state.copy().evolve(model.vqc.circuit(model.theta))
            counts = sample_counts(
                evolved, shots=SHOTS, seed=rng, readout_errors=readout
            )
            decision = int(counts.expectation_z(0) < 0.0)
            correct += decision == label
        return correct / len(states)

    print(
        f"test accuracy, EnQode ideal (exact readout):   "
        f"{model.accuracy(test_states_ideal, test_labels):.2f}"
    )
    print(
        f"test accuracy, EnQode noisy ({SHOTS} shots):      "
        f"{shot_accuracy(test_states_noisy):.2f}"
    )
    print(
        f"test accuracy, Baseline noisy ({SHOTS} shots):    "
        f"{shot_accuracy(base_states_noisy):.2f}"
        "   <- margin buried under shot noise"
    )


if __name__ == "__main__":
    main()
