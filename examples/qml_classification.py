"""QML image classification on EnQode embeddings (the paper's Fig. 1 flow).

End-to-end tour of the batch-native QML stack:

1. an NQE-style :class:`~repro.data.TrainableEmbedding` learns a linear
   map that pulls same-class images together *before* amplitude
   embedding (SPSA ascent on class separation);
2. one :class:`~repro.core.EnQodeEncoder` — with the trained embedding
   slotted in as its preprocessing stage — fits cluster templates over
   both classes at once;
3. a :class:`~repro.qml.QMLClassifier` trains on the whole embedded
   statevector matrix through the **batched engine**: the VQC ansatz is
   compiled once into a parametric template and every SPSA step binds a
   ``(2, num_parameters)`` theta pair + propagates all states in one
   stacked sweep (no per-evaluation circuit objects);
4. encoder + classifier ship as one versioned
   :class:`~repro.qml.QMLModel` bundle, registered in an
   :class:`~repro.service.EncodingService` whose ``predict`` endpoint
   classifies *raw* samples (preprocess -> embed -> VQC readout);
5. the trained classifier is re-evaluated on **noisy** embedded states
   with a finite shot budget and calibrated readout error, contrasting
   EnQode's uniform shallow circuits with the Baseline's deep exact
   circuits — the Baseline's decohered states leave a readout margin far
   below shot noise, so its accuracy collapses toward a coin flip (the
   paper's central motivation).

Run:  PYTHONPATH=src python examples/qml_classification.py
"""

import tempfile

import numpy as np

from repro import (
    BaselineStatePreparation,
    EnQodeConfig,
    EnQodeEncoder,
    QMLConfig,
    brisbane_linear_segment,
    load_dataset,
)
from repro.data import TrainableEmbedding
from repro.qml import QMLClassifier, QMLModel, load_qml_model, save_qml_model
from repro.quantum import DensityMatrixSimulator, simulate_statevector
from repro.quantum.measurement import backend_readout_errors, sample_counts
from repro.service import EncodingService

NUM_QUBITS = 8
TRAIN_PER_CLASS = 10
TEST_PER_CLASS = 4
SHOTS = 512


def main() -> None:
    backend = brisbane_linear_segment(NUM_QUBITS)
    dataset = load_dataset("mnist", samples_per_class=80, seed=0)
    class_a, class_b = (int(c) for c in dataset.classes()[:2])
    print(f"classifying digit-like classes {class_a} vs {class_b}")

    block_a = dataset.class_slice(class_a)
    block_b = dataset.class_slice(class_b)

    def interleave(start: int, count: int):
        samples, labels = [], []
        for i in range(start, start + count):
            for label, block in ((0, block_a), (1, block_b)):
                samples.append(block[i])
                labels.append(label)
        return np.asarray(samples), np.asarray(labels)

    train_samples, train_labels = interleave(0, TRAIN_PER_CLASS)
    test_samples, test_labels = interleave(TRAIN_PER_CLASS, TEST_PER_CLASS)

    # 1. Learn the embedding: a linear map trained to separate the
    # classes *in state space* (mean same-class overlap minus cross).
    embedding = TrainableEmbedding(train_samples.shape[1], seed=5)
    before = embedding.separation(train_samples, train_labels)
    embedding.fit(train_samples, train_labels)
    after = embedding.separation(train_samples, train_labels)
    print(f"trainable embedding separation: {before:.3f} -> {after:.3f}")

    # 2. One encoder over both classes, preprocessing slotted in front:
    # fit, encode, encode_batch, and the service all see raw pixels.
    encoder = EnQodeEncoder(
        backend, EnQodeConfig(seed=7), preprocessor=embedding
    )
    report = encoder.fit(train_samples)
    print(
        f"encoder: {report.num_clusters} clusters, "
        f"offline {report.total_time:.1f}s"
    )

    # 3. Batched VQC training on the embedded statevector matrix.
    encoded_train = encoder.encode_batch(train_samples)
    train_states = np.stack(
        [simulate_statevector(e.circuit).data for e in encoded_train]
    )
    classifier = QMLClassifier(
        config=QMLConfig(num_qubits=NUM_QUBITS, num_layers=2, num_steps=150, seed=1)
    )
    history = classifier.fit(train_states, train_labels)
    print(
        f"\nbatched VQC training: loss {history.losses[0]:.3f} -> "
        f"{history.losses[-1]:.3f}, "
        f"train accuracy {classifier.accuracy(train_states, train_labels):.2f}"
    )

    # 4. Bundle + serve: raw samples in, labels out.
    model = QMLModel(encoder, classifier)
    with tempfile.NamedTemporaryFile(suffix=".json") as bundle:
        save_qml_model(model, bundle.name)
        restored = load_qml_model(bundle.name, backend)
    service = EncodingService()
    service.register_model("digits", restored)
    served = service.predict(test_samples)
    assert np.array_equal(served, model.predict(test_samples))
    print(
        f"served test accuracy (ideal readout): "
        f"{np.mean(served == test_labels):.2f} "
        f"({service.stats().predictions_completed} predictions served)"
    )

    # 5. Held-out evaluation under hardware noise: EnQode vs Baseline.
    simulator = DensityMatrixSimulator(backend.noise_model())
    baseline = BaselineStatePreparation(backend)
    encoded_test = encoder.encode_batch(test_samples)
    test_states_noisy = [simulator.run(e.circuit) for e in encoded_test]
    base_states_noisy = [
        simulator.run(baseline.prepare(embedding.transform(x[None])[0]).circuit)
        for x in test_samples
    ]

    def shot_accuracy(states, seed=0):
        """Decide from <Z_0> estimated with finite shots + readout error."""
        readout = backend_readout_errors(backend)
        rng = np.random.default_rng(seed)
        circuit = classifier.vqc.circuit(classifier.theta)
        correct = 0
        for state, label in zip(states, test_labels):
            evolved = state.copy().evolve(circuit)
            counts = sample_counts(
                evolved, shots=SHOTS, seed=rng, readout_errors=readout
            )
            decision = int(counts.expectation_z(0) < 0.0)
            correct += decision == label
        return correct / len(states)

    print(
        f"test accuracy, EnQode noisy ({SHOTS} shots):      "
        f"{shot_accuracy(test_states_noisy):.2f}"
    )
    print(
        f"test accuracy, Baseline noisy ({SHOTS} shots):    "
        f"{shot_accuracy(base_states_noisy):.2f}"
        "   <- margin buried under shot noise"
    )


if __name__ == "__main__":
    main()
