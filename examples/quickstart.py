"""Quickstart: embed a dataset sample with EnQode and with exact AE.

Runs the whole pipeline on a small synthetic-MNIST class: offline cluster
training, online transfer-learned embedding, transpilation to an
ibm_brisbane-like 8-qubit linear section, and a side-by-side comparison
with the exact (Baseline) embedding — circuit shape, ideal fidelity, and
noisy fidelity — ending with an OpenQASM 3 export of the compiled
embedding (see :mod:`repro.io`).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BaselineStatePreparation,
    EnQodeConfig,
    EnQodeEncoder,
    brisbane_linear_segment,
    load_dataset,
    state_fidelity,
)
from repro.quantum import DensityMatrixSimulator, simulate_statevector


def main() -> None:
    # 1. Hardware model: 8 physical qubits on a heavy-hex linear section.
    backend = brisbane_linear_segment(8)
    print(f"backend: {backend.name}")

    # 2. Data: synthetic MNIST -> PCA(256) -> unit-norm amplitude vectors.
    dataset = load_dataset("mnist", samples_per_class=80, seed=0)
    label = int(dataset.classes()[0])
    samples = dataset.class_slice(label)
    print(f"dataset: {dataset.name}, class {label}, {len(samples)} samples")

    # 3. Offline phase: cluster the class and train one ansatz per cluster.
    encoder = EnQodeEncoder(backend, EnQodeConfig(seed=7))
    report = encoder.fit(samples)
    print(
        f"offline: {report.num_clusters} clusters in {report.total_time:.1f}s "
        f"(min nearest-cluster fidelity {report.min_nearest_fidelity:.3f}, "
        f"mean cluster fidelity {report.mean_cluster_fidelity:.3f})"
    )

    # 4. Online phase: embed a fresh sample via transfer learning.
    sample = samples[17]
    encoded = encoder.encode(sample)
    metrics = encoded.metrics()
    print(
        f"\nEnQode embedding: fidelity {encoded.ideal_fidelity:.3f}, "
        f"compiled in {encoded.compile_time * 1e3:.0f} ms"
    )
    print(
        f"  circuit: depth {metrics.depth}, "
        f"{metrics.one_qubit_gates} 1q + {metrics.two_qubit_gates} 2q gates"
    )

    # 5. Baseline for contrast: exact amplitude embedding.
    baseline = BaselineStatePreparation(backend)
    prepared = baseline.prepare(sample)
    base_metrics = prepared.metrics()
    print(
        f"Baseline embedding: exact, compiled in "
        f"{prepared.compile_time * 1e3:.0f} ms"
    )
    print(
        f"  circuit: depth {base_metrics.depth}, "
        f"{base_metrics.one_qubit_gates} 1q + "
        f"{base_metrics.two_qubit_gates} 2q gates"
    )
    print(
        f"  depth reduction: {base_metrics.depth / metrics.depth:.0f}x, "
        f"2q-gate reduction: "
        f"{base_metrics.two_qubit_gates / metrics.two_qubit_gates:.0f}x"
    )

    # 6. What noise does to each (the reason EnQode exists).
    simulator = DensityMatrixSimulator(backend.noise_model())
    enqode_noisy = state_fidelity(
        simulator.run(encoded.circuit), encoded.physical_target()
    )
    baseline_noisy = state_fidelity(
        simulator.run(prepared.circuit), prepared.physical_target()
    )
    enqode_ideal = state_fidelity(
        simulate_statevector(encoded.circuit), encoded.physical_target()
    )
    print("\nstate fidelity vs the true sample state:")
    print(f"  {'':<12}{'ideal':>8}{'noisy':>8}")
    print(f"  {'Baseline':<12}{1.0:>8.3f}{baseline_noisy:>8.3f}")
    print(f"  {'EnQode':<12}{enqode_ideal:>8.3f}{enqode_noisy:>8.3f}")
    print(
        f"\nEnQode is {enqode_noisy / max(baseline_noisy, 1e-12):.0f}x "
        f"better under brisbane-grade noise."
    )

    # 7. Interop: the embedding exports to standard OpenQASM 2 or 3 with
    # float-bit round-trip parameters (repro.io also defines a compact
    # binary wire format for service transport — see
    # examples/deployment_workflow.py).
    from repro.io import from_qasm, to_qasm

    text = to_qasm(encoded.circuit, version=3)
    assert from_qasm(text).count_ops() == encoded.circuit.count_ops()
    print(f"\nOpenQASM 3 export ({len(text)} bytes):")
    print("  " + "\n  ".join(text.splitlines()[:5]) + "\n  ...")


if __name__ == "__main__":
    np.set_printoptions(precision=3, suppress=True)
    main()
