"""repro — a full-stack reproduction of EnQode (DAC 2025).

EnQode is a fast *approximate* amplitude-embedding technique for quantum
machine learning: datasets are k-means-clustered, a fixed-shape
hardware-native ansatz is trained offline per cluster mean using an exact
symbolic representation with closed-form gradients, and new samples are
embedded online by transfer-learning from their nearest cluster.

Quick start::

    from repro import EnQodeEncoder, brisbane_linear_segment, load_dataset

    backend = brisbane_linear_segment(8)
    data = load_dataset("mnist", samples_per_class=100)
    encoder = EnQodeEncoder(backend)
    encoder.fit(data.class_slice(data.classes()[0]))
    encoded = encoder.encode(data.amplitudes[0])
    print(encoded.ideal_fidelity, encoded.metrics().depth)

Serving a stream (the paper's online system, Sec. III-C/III-D): fitted
encoders register with an :class:`~repro.service.EncodingService`, which
micro-batches submissions into the batched fast path — same results as
``encode_batch``, with per-request latency/fidelity accounting::

    from repro import EncodingService

    service = EncodingService(max_batch=32, max_delay=0.05)
    service.register("class-0", encoder)     # or service.load(key, path, backend)
    tickets = [service.submit(x) for x in data.amplitudes[:100]]
    service.flush()                           # drain the last partial batch
    print(tickets[0].result().fidelity, service.stats().summary())

Interop (:mod:`repro.io`): circuits export to OpenQASM 2/3 with
float-bit round-trip parameters, and template-bound responses ship as a
compact binary wire record — template fingerprint + bound angles, >= 20x
smaller than the eager instruction stream — that any process holding the
same registered encoders rebinds to the identical circuits::

    from repro.io import from_qasm, to_qasm

    text = to_qasm(tickets[0].result().circuit, version=3)
    assert from_qasm(text) is not None        # instruction-identical parse

    blob = service.export_wire([t.result() for t in tickets])
    batch = service.registry.rehydrate_wire(blob)   # np.array_equal states

Subpackages
-----------
``repro.quantum``    gates, circuits, statevector/density-matrix simulators
``repro.hardware``   heavy-hex topologies, calibrations, FakeBrisbane
``repro.transpile``  routing + native-basis lowering + circuit metrics
``repro.baseline``   exact amplitude embedding (Mottonen cascades)
``repro.core``       the EnQode algorithm itself (stage pipeline included)
``repro.service``    online serving: registry, micro-batcher, service stats
``repro.io``         OpenQASM 2/3 interop + compact binary wire format
``repro.data``       synthetic image datasets + PCA pipeline
``repro.qml``        a variational classifier consuming the embeddings
``repro.evaluation`` per-figure experiment harness (Figs. 6-9)
"""

from repro.baseline import BaselineStatePreparation, PreparedState
from repro.core import (
    EncodePipeline,
    EnQodeAnsatz,
    EnQodeConfig,
    QMLConfig,
    ServiceConfig,
    EnQodeEncoder,
    EncodedSample,
    FidelityObjective,
    KMeans,
    LBFGSOptimizer,
    SymbolicState,
)
from repro.data import load_all_datasets, load_dataset
from repro.hardware import Backend, FakeBrisbane, brisbane_linear_segment
from repro.quantum import (
    DensityMatrixSimulator,
    QuantumCircuit,
    Statevector,
    StatevectorSimulator,
    state_fidelity,
)
from repro.service import (
    EncodeRequest,
    EncodeResponse,
    EncoderRegistry,
    EncodingService,
    ServiceStats,
)
from repro.transpile import transpile

__version__ = "1.1.0"

__all__ = [
    "Backend",
    "BaselineStatePreparation",
    "DensityMatrixSimulator",
    "EncodePipeline",
    "EncodeRequest",
    "EncodeResponse",
    "EncodedSample",
    "EncoderRegistry",
    "EncodingService",
    "EnQodeAnsatz",
    "EnQodeConfig",
    "QMLConfig",
    "ServiceConfig",
    "EnQodeEncoder",
    "FakeBrisbane",
    "FidelityObjective",
    "KMeans",
    "LBFGSOptimizer",
    "PreparedState",
    "QuantumCircuit",
    "ServiceStats",
    "Statevector",
    "StatevectorSimulator",
    "SymbolicState",
    "__version__",
    "brisbane_linear_segment",
    "load_all_datasets",
    "load_dataset",
    "state_fidelity",
    "transpile",
]
