"""repro — a full-stack reproduction of EnQode (DAC 2025).

EnQode is a fast *approximate* amplitude-embedding technique for quantum
machine learning: datasets are k-means-clustered, a fixed-shape
hardware-native ansatz is trained offline per cluster mean using an exact
symbolic representation with closed-form gradients, and new samples are
embedded online by transfer-learning from their nearest cluster.

Quick start::

    from repro import EnQodeEncoder, brisbane_linear_segment, load_dataset

    backend = brisbane_linear_segment(8)
    data = load_dataset("mnist", samples_per_class=100)
    encoder = EnQodeEncoder(backend)
    encoder.fit(data.class_slice(data.classes()[0]))
    encoded = encoder.encode(data.amplitudes[0])
    print(encoded.ideal_fidelity, encoded.metrics().depth)

Subpackages
-----------
``repro.quantum``    gates, circuits, statevector/density-matrix simulators
``repro.hardware``   heavy-hex topologies, calibrations, FakeBrisbane
``repro.transpile``  routing + native-basis lowering + circuit metrics
``repro.baseline``   exact amplitude embedding (Mottonen cascades)
``repro.core``       the EnQode algorithm itself
``repro.data``       synthetic image datasets + PCA pipeline
``repro.qml``        a variational classifier consuming the embeddings
``repro.evaluation`` per-figure experiment harness (Figs. 6-9)
"""

from repro.baseline import BaselineStatePreparation, PreparedState
from repro.core import (
    EnQodeAnsatz,
    EnQodeConfig,
    EnQodeEncoder,
    EncodedSample,
    FidelityObjective,
    KMeans,
    LBFGSOptimizer,
    SymbolicState,
)
from repro.data import load_all_datasets, load_dataset
from repro.hardware import Backend, FakeBrisbane, brisbane_linear_segment
from repro.quantum import (
    DensityMatrixSimulator,
    QuantumCircuit,
    Statevector,
    StatevectorSimulator,
    state_fidelity,
)
from repro.transpile import transpile

__version__ = "1.0.0"

__all__ = [
    "Backend",
    "BaselineStatePreparation",
    "DensityMatrixSimulator",
    "EnQodeAnsatz",
    "EnQodeConfig",
    "EnQodeEncoder",
    "EncodedSample",
    "FakeBrisbane",
    "FidelityObjective",
    "KMeans",
    "LBFGSOptimizer",
    "PreparedState",
    "QuantumCircuit",
    "Statevector",
    "StatevectorSimulator",
    "SymbolicState",
    "__version__",
    "brisbane_linear_segment",
    "load_all_datasets",
    "load_dataset",
    "state_fidelity",
    "transpile",
]
