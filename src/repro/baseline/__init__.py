"""Baseline: exact amplitude embedding via multiplexed-rotation cascades."""

from repro.baseline.angles import (
    phase_angles,
    reconstruct_from_levels,
    ry_angle_levels,
    validate_amplitudes,
)
from repro.baseline.mottonen import mottonen_circuit
from repro.baseline.multiplexor import (
    append_multiplexed_rotation,
    gray_code,
    multiplexed_angles,
    multiplexed_rotation_matrix,
)
from repro.baseline.state_preparation import BaselineStatePreparation, PreparedState

__all__ = [
    "BaselineStatePreparation",
    "PreparedState",
    "append_multiplexed_rotation",
    "gray_code",
    "mottonen_circuit",
    "multiplexed_angles",
    "multiplexed_rotation_matrix",
    "phase_angles",
    "reconstruct_from_levels",
    "ry_angle_levels",
    "validate_amplitudes",
]
