"""Rotation-angle computation for exact amplitude embedding.

Exact state preparation (Mottonen et al. 2004; the scheme behind qiskit's
``StatePreparation`` [Iten et al. 2016; Shende et al. 2006]) reduces to a
cascade of *multiplexed* Ry rotations, one level per qubit.  Level ``k``
carries ``2^k`` angles derived from the binary subdivision tree of the
amplitude vector: each angle rotates the target qubit so the probability
mass splits like the norms of the two half-blocks.

At the last level the blocks are single (signed, for real inputs)
amplitudes, so a signed ``atan2`` reproduces negative amplitudes exactly.
Complex inputs additionally need the phase angles from
:func:`phase_angles`, synthesized as multiplexed Rz levels.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import StatePreparationError


def validate_amplitudes(amplitudes: np.ndarray) -> np.ndarray:
    """Check and normalize an amplitude vector (any nonzero norm allowed)."""
    vec = np.asarray(amplitudes, dtype=complex).ravel()
    num_qubits = int(round(math.log2(vec.size)))
    if 2**num_qubits != vec.size or vec.size < 2:
        raise StatePreparationError(
            f"amplitude vector length {vec.size} is not a power of two >= 2"
        )
    norm = np.linalg.norm(vec)
    if norm < 1e-12:
        raise StatePreparationError("cannot embed the zero vector")
    return vec / norm


def ry_angle_levels(amplitudes: np.ndarray) -> list[np.ndarray]:
    """Per-level multiplexed-Ry angles preparing ``|amplitudes|`` with signs.

    Returns ``n`` arrays; array ``k`` has ``2^k`` angles for target qubit
    ``k`` controlled on qubits ``0..k-1``.  Works on the magnitudes except
    at the deepest level, where signed values recover real negative
    amplitudes.  (Complex phases are handled separately.)
    """
    vec = validate_amplitudes(amplitudes)
    num_qubits = int(round(math.log2(vec.size)))
    magnitudes = np.abs(vec)
    # block_norms[k][j] = norm of the j-th block of size 2^(n-k).
    levels: list[np.ndarray] = []
    norms = magnitudes**2
    norm_tree = [norms]
    while norm_tree[-1].size > 1:
        folded = norm_tree[-1].reshape(-1, 2).sum(axis=1)
        norm_tree.append(folded)
    norm_tree.reverse()  # norm_tree[k] has 2^k squared block norms

    for k in range(num_qubits):
        parents = np.sqrt(norm_tree[k])
        children = np.sqrt(norm_tree[k + 1]).reshape(-1, 2)
        if k == num_qubits - 1 and np.allclose(vec.imag, 0.0, atol=1e-12):
            # Real input: deepest level sees signed amplitudes directly.
            children = vec.real.reshape(-1, 2)
        angles = np.array(
            [
                2.0 * math.atan2(lower, upper) if parent > 1e-12 else 0.0
                for (upper, lower), parent in zip(children, parents)
            ]
        )
        levels.append(angles)
    return levels


def phase_angles(amplitudes: np.ndarray) -> np.ndarray:
    """Element phases of a complex amplitude vector (zeros if real)."""
    vec = validate_amplitudes(amplitudes)
    if np.allclose(vec.imag, 0.0, atol=1e-12):
        return np.zeros(vec.size)
    return np.angle(vec)


def reconstruct_from_levels(levels: list[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`ry_angle_levels` (used by the unit tests).

    Re-runs the binary subdivision with the stored angles to recover the
    amplitudes the cascade will produce.
    """
    vec = np.array([1.0])
    for angles in levels:
        out = np.empty(vec.size * 2)
        out[0::2] = vec * np.cos(np.asarray(angles) / 2.0)
        out[1::2] = vec * np.sin(np.asarray(angles) / 2.0)
        vec = out
    return vec
