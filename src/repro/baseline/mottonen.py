"""Exact amplitude-embedding circuit synthesis (the paper's Baseline).

``mottonen_circuit`` prepares an arbitrary normalized vector from
``|0...0>`` with a cascade of multiplexed Ry rotations (one level per
qubit, qubit 0 = MSB) and, for complex inputs, a final diagonal-phase
stage synthesized as multiplexed Rz levels.  This is the conventional
exact technique the paper cites as [30][14] and benchmarks against.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baseline.angles import phase_angles, ry_angle_levels, validate_amplitudes
from repro.baseline.multiplexor import append_multiplexed_rotation
from repro.quantum.circuit import QuantumCircuit


def mottonen_circuit(
    amplitudes: np.ndarray, prune_tol: float = 1e-9
) -> QuantumCircuit:
    """Synthesize an exact amplitude-embedding circuit.

    Parameters
    ----------
    amplitudes:
        Target vector of length ``2^n`` (real or complex, any nonzero
        norm; it is normalized internally).
    prune_tol:
        Rotations with |angle| below this are skipped — the data-dependent
        pruning that makes Baseline circuit shapes vary across samples.
    """
    vec = validate_amplitudes(amplitudes)
    num_qubits = int(round(math.log2(vec.size)))
    circuit = QuantumCircuit(num_qubits, name="mottonen")

    for level, angles in enumerate(ry_angle_levels(vec)):
        append_multiplexed_rotation(
            circuit,
            "ry",
            angles,
            target=level,
            controls=tuple(range(level)),
            prune_tol=prune_tol,
        )

    phases = phase_angles(vec)
    if np.any(np.abs(phases) > 1e-12):
        _append_diagonal_phases(circuit, phases, prune_tol)
    return circuit


def _append_diagonal_phases(
    circuit: QuantumCircuit, phases: np.ndarray, prune_tol: float
) -> None:
    """Apply ``diag(exp(i*phases))`` up to global phase.

    Recursive peel-off: a multiplexed Rz on the deepest qubit cancels the
    within-pair phase differences; the pair means recurse on one fewer
    qubit.  The residual scalar is an unobservable global phase.
    """
    remaining = np.asarray(phases, dtype=float)
    num_qubits = circuit.num_qubits
    for level in range(num_qubits - 1, -1, -1):
        pairs = remaining.reshape(-1, 2)
        alpha = pairs[:, 1] - pairs[:, 0]
        if np.any(np.abs(alpha) > prune_tol):
            append_multiplexed_rotation(
                circuit,
                "rz",
                alpha,
                target=level,
                controls=tuple(range(level)),
                prune_tol=prune_tol,
            )
        remaining = pairs.mean(axis=1)
