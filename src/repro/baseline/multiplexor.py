"""Gray-code synthesis of multiplexed (uniformly controlled) rotations.

A multiplexed rotation applies ``R(alpha_j)`` to a target qubit when the
control register holds pattern ``j``.  The classic synthesis (Mottonen et
al. 2004) emits ``2^k`` plain rotations interleaved with ``2^k`` CX gates
whose controls walk a Gray-code ruler sequence; the rotation angles are a
scaled Walsh-Hadamard transform of the multiplexed angles.

Near-zero transformed angles are **pruned** (the rotation is skipped,
matching qiskit's uniformly-controlled-rotation simplification).  The CX
pairs this strands are removed later by
:func:`repro.transpile.passes.cancel_adjacent_cx` — together these two
effects make exact amplitude embedding *data dependent* in depth and gate
count, the variability that EnQode eliminates (Figs. 6-7).
"""

from __future__ import annotations

import numpy as np

from repro.errors import StatePreparationError
from repro.quantum.circuit import QuantumCircuit
from repro.utils.linalg import popcount


def gray_code(index: int) -> int:
    """The ``index``-th reflected-binary Gray code."""
    return index ^ (index >> 1)


def _changed_bit(step: int, num_bits: int) -> int:
    """Bit flipped between ``gray(step)`` and ``gray(step+1)`` in a cyclic
    ``num_bits``-bit Gray walk (the final step wraps through the MSB)."""
    if step + 1 == 1 << num_bits:
        return num_bits - 1
    return ((step + 1) & -(step + 1)).bit_length() - 1


def multiplexed_angles(alpha: np.ndarray) -> np.ndarray:
    """Transform multiplexed angles to the Gray-code rotation angles.

    Solves ``alpha_j = sum_i (-1)^{<gray(i), j>} theta_i`` for ``theta``
    using the orthogonality ``M M^T = 2^k I`` of the sign matrix.
    """
    alpha = np.asarray(alpha, dtype=float)
    size = alpha.size
    if size & (size - 1):
        raise StatePreparationError(f"angle count {size} is not a power of two")
    if size == 1:
        return alpha.copy()
    j = np.arange(size)
    signs = np.empty((size, size))
    for i in range(size):
        parity = _popcount_array(np.bitwise_and(gray_code(i), j))
        signs[:, i] = np.where(parity % 2 == 0, 1.0, -1.0)
    return signs.T @ alpha / size


def _popcount_array(values: np.ndarray) -> np.ndarray:
    """Vectorized per-element popcount (see :func:`repro.utils.linalg.popcount`)."""
    return popcount(values)


def append_multiplexed_rotation(
    circuit: QuantumCircuit,
    axis: str,
    alpha: np.ndarray,
    target: int,
    controls: tuple[int, ...],
    prune_tol: float = 1e-9,
) -> None:
    """Append a multiplexed Ry/Rz with angles ``alpha`` (indexed by control
    pattern; ``controls[0]`` is the pattern's most significant bit).

    With no controls this is a single rotation.  Rotations whose
    transformed angle is below ``prune_tol`` are skipped.
    """
    if axis not in ("ry", "rz"):
        raise StatePreparationError(f"unsupported multiplex axis {axis!r}")
    alpha = np.asarray(alpha, dtype=float)
    if alpha.size != 2 ** len(controls):
        raise StatePreparationError(
            f"{alpha.size} angles for {len(controls)} controls"
        )
    rotate = circuit.ry if axis == "ry" else circuit.rz
    if not controls:
        if abs(alpha[0]) > prune_tol:
            rotate(float(alpha[0]), target)
        return
    theta = multiplexed_angles(alpha)
    num_controls = len(controls)

    # Consecutive CXs of a multiplexor all share the target, so they
    # commute and pairs cancel: across a run of pruned rotations only the
    # XOR of the toggled control bits must be emitted.  This is the
    # data-dependent simplification that makes exact embedding circuits
    # vary from sample to sample.
    pending_mask = 0

    def flush() -> None:
        nonlocal pending_mask
        for bit in range(num_controls):
            if pending_mask & (1 << bit):
                circuit.cx(controls[num_controls - 1 - bit], target)
        pending_mask = 0

    for step in range(theta.size):
        if abs(theta[step]) > prune_tol:
            flush()
            rotate(float(theta[step]), target)
        pending_mask ^= 1 << _changed_bit(step, num_controls)
    flush()


def multiplexed_rotation_matrix(
    axis: str, alpha: np.ndarray
) -> np.ndarray:
    """Dense block-diagonal reference matrix (tests only).

    Basis order: controls are the high bits (controls[0] most significant),
    target is the least significant bit.
    """
    from repro.quantum.gates import gate

    blocks = [gate(axis, float(a)).matrix for a in np.asarray(alpha)]
    dim = 2 * len(blocks)
    mat = np.zeros((dim, dim), dtype=complex)
    for j, block in enumerate(blocks):
        mat[2 * j : 2 * j + 2, 2 * j : 2 * j + 2] = block
    return mat
