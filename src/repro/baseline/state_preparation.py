"""Public Baseline API: exact amplitude embedding compiled to hardware.

This is the end-to-end path the paper times and measures: synthesize the
exact Mottonen circuit for a sample, transpile it to the backend (routing
+ native basis), and report the compile time and physical-gate metrics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.baseline.mottonen import mottonen_circuit
from repro.hardware.backend import Backend
from repro.quantum.circuit import QuantumCircuit
from repro.transpile.metrics import CircuitMetrics
from repro.transpile.transpiler import TranspileResult, transpile
from repro.utils.timing import Timer


@dataclass
class PreparedState:
    """Result of compiling one amplitude-embedding circuit."""

    target: np.ndarray
    logical_circuit: QuantumCircuit
    transpiled: TranspileResult
    compile_time: float

    @property
    def circuit(self) -> QuantumCircuit:
        """The hardware-native circuit."""
        return self.transpiled.circuit

    def metrics(self) -> CircuitMetrics:
        return self.transpiled.metrics()

    def physical_target(self) -> np.ndarray:
        """The target state expressed on the physical register."""
        return self.transpiled.embed_target(self.target)


class BaselineStatePreparation:
    """Exact amplitude embedding (the paper's Baseline approach).

    Parameters
    ----------
    backend:
        Hardware model to transpile onto.
    optimization_level:
        Transpiler effort (0 or 1); the experiments use 1 for both
        Baseline and EnQode so the comparison is symmetric.
    prune_tol:
        Near-zero rotation pruning threshold in the multiplexor synthesis.
    """

    def __init__(
        self,
        backend: Backend,
        optimization_level: int = 1,
        prune_tol: float = 1e-8,
        routing_seed: "int | str | None" = "data",
    ) -> None:
        self.backend = backend
        self.optimization_level = optimization_level
        self.prune_tol = prune_tol
        self.routing_seed = routing_seed

    def _seed_for(self, target: np.ndarray) -> "int | None":
        """Per-sample routing seed.

        ``"data"`` (default) hashes the sample so routing tie-breaks are
        deterministic per sample but vary across samples — the behaviour
        of seeded stochastic transpilers that gives exact AE its
        sample-to-sample depth/gate-count spread (Figs. 6-7).
        """
        if self.routing_seed == "data":
            digest = hashlib.sha256(np.ascontiguousarray(target).tobytes())
            return int.from_bytes(digest.digest()[:8], "little")
        return self.routing_seed

    def prepare(self, amplitudes: np.ndarray) -> PreparedState:
        """Compile an exact embedding circuit for ``amplitudes``."""
        target = np.asarray(amplitudes, dtype=float)
        target = target / np.linalg.norm(target)
        with Timer() as timer:
            logical = mottonen_circuit(target, prune_tol=self.prune_tol)
            transpiled = transpile(
                logical,
                self.backend,
                optimization_level=self.optimization_level,
                seed=self._seed_for(target),
            )
        return PreparedState(
            target=target,
            logical_circuit=logical,
            transpiled=transpiled,
            compile_time=timer.elapsed,
        )

    def prepare_batch(self, samples: np.ndarray) -> list[PreparedState]:
        """Compile a circuit per row of ``samples``."""
        return [self.prepare(row) for row in np.asarray(samples)]
