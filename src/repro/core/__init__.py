"""EnQode core: ansatz, symbolic engine, optimizer, clustering, encoder."""

from repro.core.ansatz import SYMBOLIC_ENTANGLERS, EnQodeAnsatz
from repro.core.batch import (
    BatchFidelityObjective,
    BatchLBFGSOptimizer,
    BatchOptimizationResult,
    BatchRestartResult,
    VQCObjective,
)
from repro.core.clustering import (
    KMeans,
    dot_fidelity,
    min_nearest_fidelity,
    nearest_center,
    nearest_centers,
    select_num_clusters,
)
from repro.core.config import EnQodeConfig, QMLConfig, ServiceConfig
from repro.core.encoder import (
    ClusterModel,
    EncodedSample,
    EnQodeEncoder,
    OfflineReport,
)
from repro.core.multiclass import PerClassEnQode, nearest_class
from repro.core.objective import FidelityObjective
from repro.core.optimizer import LBFGSOptimizer, OptimizationResult
from repro.core.pipeline import (
    BindStage,
    EncodePipeline,
    FinetuneStage,
    LowerStage,
    PipelineStats,
    PreprocessStage,
    RoutePlan,
    RouteStage,
)
from repro.core.serialization import (
    encoder_from_dict,
    encoder_to_dict,
    load_encoder,
    save_encoder,
)
from repro.core.symbolic import SymbolicState, build_symbolic
from repro.core.transfer import TransferLearner, TransferOutcome

__all__ = [
    "SYMBOLIC_ENTANGLERS",
    "BatchFidelityObjective",
    "BatchLBFGSOptimizer",
    "BatchOptimizationResult",
    "BatchRestartResult",
    "VQCObjective",
    "BindStage",
    "ClusterModel",
    "EncodePipeline",
    "FinetuneStage",
    "LowerStage",
    "PipelineStats",
    "PreprocessStage",
    "RoutePlan",
    "RouteStage",
    "EnQodeAnsatz",
    "EnQodeConfig",
    "QMLConfig",
    "ServiceConfig",
    "EnQodeEncoder",
    "EncodedSample",
    "FidelityObjective",
    "KMeans",
    "LBFGSOptimizer",
    "OfflineReport",
    "OptimizationResult",
    "PerClassEnQode",
    "SymbolicState",
    "TransferLearner",
    "TransferOutcome",
    "build_symbolic",
    "dot_fidelity",
    "encoder_from_dict",
    "encoder_to_dict",
    "load_encoder",
    "min_nearest_fidelity",
    "nearest_center",
    "nearest_class",
    "nearest_centers",
    "save_encoder",
    "select_num_clusters",
]
