"""EnQode's hardware-efficient ansatz (paper Fig. 2).

Structure, for ``n`` qubits and ``L`` layers:

1. an opening ``Rx(-pi/2)`` on every qubit, rotating |0> to |+i> so the
   register lies in the x-y plane where ``Rz`` rotations act freely;
2. ``L`` layers, each a column of parameterized ``Rz`` gates (one per
   qubit — the only trainable gates, virtual and noiseless on IBM
   hardware) followed by a brick of ``CY`` entanglers on alternating
   nearest-neighbor pairs (even layers couple (0,1),(2,3),...; odd layers
   couple (1,2),(3,4),...), which needs **zero SWAPs** on a linear
   section of the heavy-hex lattice;
3. a closing ``Rx(-pi/2)`` + ``Ry(-pi/2)`` on every qubit, returning to
   the z-x plane so the optimized relative phases become real amplitudes.

``CY`` preserves the x-y-plane alignment (it maps basis states to basis
states with +-i phases), which is exactly what keeps the state in the
symbolic phase form of Eq. 6 — see :mod:`repro.core.symbolic`.

**Orientation alternation (reproduction note).**  The paper's "compact
layout that alternates from layer to layer" is reproduced here with the
control/target orientation of each brick position flipping on every
second repetition.  This detail is load-bearing: with a *fixed*
orientation, the +-i phases the CY gates inject accumulate a quadratic
(non-Walsh-linear) offset that the Rz phase family cannot cancel, capping
ideal embedding fidelity near 0.44 on PCA image data — and even making
|100...0> unreachable.  With alternating orientation the phases telescope
(two same-pair real-CY applications square to CZ, whose +-1 phases cancel
over an even number of brick repetitions), restoring the ~0.9 ideal
fidelity the paper reports.  ``bench_ablation_entangler`` quantifies all
variants.

The telescoping also requires an **even number of layers**: empirically,
odd ``L`` leaves an uncancelled phase residue and fidelity collapses to
the fixed-orientation level (e.g. 0.85 at L=6 vs 0.22 at L=5 on 6-qubit
PCA targets).  The paper's configuration (8 layers) is even; prefer even
``L`` when re-configuring.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import OptimizationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import gate

_HALF_PI = math.pi / 2.0

#: Entangling gates that keep the symbolic phase-state form (they act as
#: generalized permutations with power-of-i phases).  ``"cry"`` is the
#: real controlled-Y (CRy(pi)), which differs from ``"cy"`` only by a
#: virtual S on the control and spans the identical variational family.
SYMBOLIC_ENTANGLERS = ("cy", "cx", "cz", "cry")


class EnQodeAnsatz:
    """The fixed-shape EnQode embedding circuit family.

    Parameters
    ----------
    num_qubits:
        Register width ``n`` (the embedding holds ``2^n`` amplitudes).
    num_layers:
        Number of Rz+CY layers ``L`` (the paper uses 8 for 8 qubits).
    entangler:
        ``"cy"`` (paper default) or ``"cx"``/``"cz"`` for the ablation
        studies; all three preserve the symbolic representation.
    """

    def __init__(
        self,
        num_qubits: int,
        num_layers: int = 8,
        entangler: str = "cy",
        alternate_orientation: bool = True,
    ) -> None:
        if num_qubits < 2:
            raise OptimizationError("EnQode ansatz needs at least 2 qubits")
        if num_layers < 1:
            raise OptimizationError("EnQode ansatz needs at least 1 layer")
        if entangler not in SYMBOLIC_ENTANGLERS:
            raise OptimizationError(
                f"entangler {entangler!r} not in {SYMBOLIC_ENTANGLERS}"
            )
        self.num_qubits = num_qubits
        self.num_layers = num_layers
        self.entangler = entangler
        self.alternate_orientation = alternate_orientation

    # -- structure ------------------------------------------------------------

    @property
    def num_parameters(self) -> int:
        """One Rz angle per qubit per layer."""
        return self.num_qubits * self.num_layers

    def parameter_index(self, layer: int, qubit: int) -> int:
        """Flat index of the Rz parameter on ``qubit`` in ``layer``."""
        if not (0 <= layer < self.num_layers and 0 <= qubit < self.num_qubits):
            raise OptimizationError(
                f"no parameter at layer={layer}, qubit={qubit}"
            )
        return layer * self.num_qubits + qubit

    def entangling_pairs(self, layer: int) -> list[tuple[int, int]]:
        """Oriented (control, target) pairs of ``layer``.

        The brick offset alternates with layer parity; with
        ``alternate_orientation`` the control/target direction flips on
        every second repetition of each brick position (see the module
        docstring for why this matters).
        """
        offset = layer % 2
        pairs = [(q, q + 1) for q in range(offset, self.num_qubits - 1, 2)]
        if self.alternate_orientation and (layer // 2) % 2 == 1:
            pairs = [(target, control) for control, target in pairs]
        return pairs

    # -- circuit construction --------------------------------------------------

    def circuit(self, theta: np.ndarray) -> QuantumCircuit:
        """Instantiate the ansatz with bound parameters ``theta``."""
        theta = np.asarray(theta, dtype=float).ravel()
        if theta.size != self.num_parameters:
            raise OptimizationError(
                f"expected {self.num_parameters} parameters, got {theta.size}"
            )
        return self._build(lambda j: gate("rz", float(theta[j])))

    def parametric_circuit(self) -> "tuple[QuantumCircuit, dict[int, int]]":
        """The ansatz skeleton with *marker* Rz gates for templating.

        Returns ``(circuit, markers)`` where every trainable Rz is a fresh
        ``Gate`` object (angle 0) and ``markers`` maps ``id(gate_obj)`` to
        its flat parameter index.  The structural transpile passes never
        inspect Rz matrices and append gate objects unchanged, so the
        markers survive lowering and routing — this is what lets
        :class:`repro.transpile.template.ParametricTemplate` locate each
        parameter slot in the fully routed circuit.
        """
        markers: dict[int, int] = {}

        def marker_rz(j: int):
            rz = gate("rz", 0.0)
            markers[id(rz)] = j
            return rz

        return self._build(marker_rz), markers

    def _build(self, rz_gate) -> QuantumCircuit:
        """Assemble the fixed ansatz shape, delegating Rz creation."""
        qc = QuantumCircuit(self.num_qubits, name="enqode_ansatz")
        for q in range(self.num_qubits):
            qc.rx(-_HALF_PI, q)
        for layer in range(self.num_layers):
            for q in range(self.num_qubits):
                qc.append(rz_gate(self.parameter_index(layer, q)), (q,))
            for control, target in self.entangling_pairs(layer):
                if self.entangler == "cry":
                    qc.cry(math.pi, control, target)
                else:
                    getattr(qc, self.entangler)(control, target)
        for q in range(self.num_qubits):
            qc.rx(-_HALF_PI, q)
            qc.ry(-_HALF_PI, q)
        return qc

    # -- the closing basis-change layer ----------------------------------------

    def closing_matrix_1q(self) -> np.ndarray:
        """The per-qubit closing unitary ``Ry(-pi/2) @ Rx(-pi/2)``."""
        return gate("ry", -_HALF_PI).matrix @ gate("rx", -_HALF_PI).matrix

    def apply_closing_layer(self, state: np.ndarray) -> np.ndarray:
        """Apply the closing layer ``V = v^(x)n`` to a state vector."""
        return _apply_local(state, self.closing_matrix_1q(), self.num_qubits)

    def apply_closing_layer_adjoint(self, state: np.ndarray) -> np.ndarray:
        """Apply ``V^dagger`` — used to pull targets back through V."""
        v_dag = self.closing_matrix_1q().conj().T
        return _apply_local(state, v_dag, self.num_qubits)

    def apply_closing_layer_batch(self, states: np.ndarray) -> np.ndarray:
        """Apply ``V`` to a ``(B, 2^n)`` batch of states in one pass."""
        return _apply_local_batch(
            states, self.closing_matrix_1q(), self.num_qubits
        )

    def apply_closing_layer_adjoint_batch(self, states: np.ndarray) -> np.ndarray:
        """Apply ``V^dagger`` to a ``(B, 2^n)`` batch of states in one pass.

        The batched objective uses this to pull all targets back through
        the closing layer with ``n`` tensordots total instead of ``n`` per
        sample.
        """
        v_dag = self.closing_matrix_1q().conj().T
        return _apply_local_batch(states, v_dag, self.num_qubits)

    def __repr__(self) -> str:
        return (
            f"EnQodeAnsatz(qubits={self.num_qubits}, layers={self.num_layers}, "
            f"entangler={self.entangler!r}, params={self.num_parameters})"
        )


def _apply_local(state: np.ndarray, matrix_1q: np.ndarray, num_qubits: int):
    """Apply the same 1q matrix to every qubit of ``state``."""
    tensor = np.asarray(state, dtype=complex).reshape((2,) * num_qubits)
    for q in range(num_qubits):
        tensor = np.moveaxis(
            np.tensordot(matrix_1q, tensor, axes=([1], [q])), 0, q
        )
    return tensor.reshape(-1)


def _apply_local_batch(
    states: np.ndarray, matrix_1q: np.ndarray, num_qubits: int
):
    """Apply the same 1q matrix to every qubit of a ``(B, 2^n)`` batch."""
    states = np.atleast_2d(np.asarray(states, dtype=complex))
    batch = states.shape[0]
    tensor = states.reshape((batch,) + (2,) * num_qubits)
    for q in range(num_qubits):
        axis = 1 + q  # axis 0 is the batch dimension
        tensor = np.moveaxis(
            np.tensordot(matrix_1q, tensor, axes=([1], [axis])), 0, axis
        )
    return tensor.reshape(batch, -1)
