"""Batched fidelity objective and optimizer (online *and* offline fast paths).

EnQode's online stage solves one small, smooth, warm-started problem per
sample; its offline stage solves one multi-restart global problem per
cluster mean (Sec. III-C).  Every one of those problems shares the same
``P/2`` phase matrix and ``i^k`` factors, because every target uses the
same fixed-shape ansatz.  This module exploits that structure end to end:

* :class:`BatchFidelityObjective` evaluates loss and exact gradient for
  ``B`` targets in one BLAS pass: the per-sample ``terms`` vector becomes
  a ``(B, 2^n)`` matrix multiplied against the shared ``(2^n, l)`` half
  phase matrix, so the per-iteration cost is two matrix products instead
  of ``B`` Python-level objective calls.
* :class:`BatchLBFGSOptimizer` drives all samples concurrently with one
  **stacked** scipy L-BFGS run over the block-diagonal objective (the sum
  of per-sample losses; its gradient is the concatenation of per-sample
  gradients).  The stationary points of the stacked problem are exactly
  the per-sample optima.  ``ftol`` is tightened by ``1/B`` so the
  sum-scale stopping rule matches the per-sample rule, and any sample
  whose own gradient still exceeds ``gtol`` afterwards gets an
  individual warm-started polish run (per-sample convergence masking) —
  which is why batched results match the sequential path to ~1e-12 in
  fidelity.
* :meth:`BatchLBFGSOptimizer.optimize_restarts` generalizes the stacked
  drive from single-basin warm starts to the offline stage's
  **multi-restart global training**: restart ``r`` starts every still-
  active cluster from the same draw a sequential
  :class:`~repro.core.optimizer.LBFGSOptimizer` would use (the clusters
  all share one integer seed, so the per-cluster streams coincide), the
  best basin per cluster is kept across restarts, and clusters that
  reach ``target_fidelity`` drop out of later restarts (active-set
  masking — the batched analogue of the sequential early exit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import minimize

from repro.core.ansatz import EnQodeAnsatz
from repro.core.optimizer import LBFGSOptimizer
from repro.core.symbolic import SymbolicState
from repro.errors import OptimizationError
from repro.utils.rng import as_rng
from repro.utils.timing import Timer


class BatchFidelityObjective:
    """Loss ``1 - F`` and exact gradients for ``B`` targets at once.

    The math is :class:`repro.core.objective.FidelityObjective` row-wise:
    with ``C[b] = conj(V^dagger x_b) * i^k / sqrt(2^n)`` precomputed for
    every target (one batched closing-layer pull-back), the overlaps for
    parameter matrix ``theta`` of shape ``(B, l)`` are

        S_b = sum_r C[b, r] * exp(i * (P @ theta_b)_r / 2)

    and both phases and derivative contractions are single ``(B, 2^n) @
    (2^n, l)`` products against the shared cached ``P/2``.
    """

    def __init__(
        self,
        symbolic: SymbolicState,
        ansatz: EnQodeAnsatz,
        targets: np.ndarray,
    ) -> None:
        targets = np.atleast_2d(np.asarray(targets, dtype=complex))
        dim = 2**symbolic.num_qubits
        if targets.ndim != 2 or targets.shape[1] != dim:
            raise OptimizationError(
                f"targets must be (B, {dim}), got {targets.shape}"
            )
        if not np.all(np.isfinite(targets)):
            raise OptimizationError("targets contain non-finite entries")
        norms = np.linalg.norm(targets, axis=1)
        if np.any(norms < 1e-12):
            raise OptimizationError("cannot embed the zero vector")
        targets = targets / norms[:, None]
        self.symbolic = symbolic
        self.ansatz = ansatz
        self.targets = targets
        # Pull all targets back through the closing layer in one pass.
        y = ansatz.apply_closing_layer_adjoint_batch(targets)
        self._coeff = np.conj(y) * symbolic.phase_factors / np.sqrt(dim)
        self._half_p = symbolic.half_phase_matrix
        # Contiguous real/imaginary parts feed the all-real hot path in
        # value_and_grad (complex temporaries and strided .real/.imag
        # views would otherwise dominate the optimizer's inner loop).
        self._coeff_real = np.ascontiguousarray(self._coeff.real)
        self._coeff_imag = np.ascontiguousarray(self._coeff.imag)

    @property
    def batch_size(self) -> int:
        return self._coeff.shape[0]

    @property
    def num_parameters(self) -> int:
        return self._half_p.shape[1]

    def subset(self, indices: np.ndarray) -> "BatchFidelityObjective":
        """A view-like objective over ``targets[indices]`` only.

        Used by the multi-restart driver's active-set masking: clusters
        that already reached the target fidelity drop out of later
        restarts, and the remaining ones are re-stacked without paying
        the closing-layer pull-back again (the precomputed coefficient
        rows are sliced, the shared ``P/2`` matrix is reused).
        """
        indices = np.asarray(indices, dtype=int)
        sub = object.__new__(BatchFidelityObjective)
        sub.symbolic = self.symbolic
        sub.ansatz = self.ansatz
        sub.targets = self.targets[indices]
        sub._coeff = self._coeff[indices]
        sub._half_p = self._half_p
        sub._coeff_real = self._coeff_real[indices]
        sub._coeff_imag = self._coeff_imag[indices]
        return sub

    # -- evaluations -------------------------------------------------------------

    def overlaps(self, thetas: np.ndarray) -> np.ndarray:
        """Complex overlaps ``<x_b| V |psi(theta_b)>`` for all rows."""
        thetas = self._as_matrix(thetas)
        phases = thetas @ self._half_p.T
        return np.sum(self._coeff * np.exp(1j * phases), axis=1)

    def fidelities(self, thetas: np.ndarray) -> np.ndarray:
        return np.abs(self.overlaps(thetas)) ** 2

    def value_and_grad(
        self, thetas: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample losses ``(B,)`` and gradients ``(B, l)`` in one pass.

        The whole computation runs in real arithmetic: for real phases
        ``exp(i phi)`` is exactly ``cos phi + i sin phi``, so with
        ``coeff = cr + i ci`` the terms split into ``tr = cr cos - ci
        sin`` and ``ti = cr sin + ci cos``, and the derivative
        contraction becomes two real matrix products (``tr/ti @ P/2``)
        instead of complex-times-real products that would upcast the
        shared ``P/2`` and allocate complex temporaries on every call of
        the optimizer's inner loop.  With ``T = terms @ P/2`` and
        overlap ``S``, the fidelity gradient ``2 Re(conj(S) * i T)``
        expands to ``2 (Im(S) Re(T) - Re(S) Im(T))``.

        The two term matrices live stacked in one ``(2B, 2^n)`` buffer,
        so the overlap reduction is a single row sum and the derivative
        contraction is a single gemm against ``P/2`` instead of two;
        ``sin`` reuses the phase buffer and the returned gradient is
        assembled in place inside the contraction's output.  Every
        buffer is allocated per call (no persistent scratch), keeping
        the objective re-entrant under the service's worker pool.
        """
        thetas = self._as_matrix(thetas)
        batch = self.batch_size
        phases = thetas @ self._half_p.T
        cos = np.cos(phases)
        sin = np.sin(phases, out=phases)
        terms = np.empty((2 * batch, cos.shape[1]))
        t_r = terms[:batch]
        t_i = terms[batch:]
        np.multiply(self._coeff_real, cos, out=t_r)
        t_r -= self._coeff_imag * sin
        np.multiply(self._coeff_real, sin, out=t_i)
        t_i += self._coeff_imag * cos
        sums = terms.sum(axis=1)
        s_real = sums[:batch]
        s_imag = sums[batch:]
        contracted = terms @ self._half_p
        t_r_p = contracted[:batch]
        t_i_p = contracted[batch:]
        # -grad_fidelity = 2 (Re(S) Im(T) - Im(S) Re(T)), built in place.
        t_r_p *= s_imag[:, None]
        t_i_p *= s_real[:, None]
        t_i_p -= t_r_p
        t_i_p *= 2.0
        losses = 1.0 - (s_real * s_real + s_imag * s_imag)
        return losses, t_i_p

    def stacked_value_and_grad(
        self, flat_theta: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Block-diagonal view for scipy: total loss + concatenated grad."""
        thetas = np.asarray(flat_theta, dtype=float).reshape(
            self.batch_size, self.num_parameters
        )
        losses, grads = self.value_and_grad(thetas)
        return float(losses.sum()), grads.ravel()

    def single_value_and_grad(self, index: int):
        """A per-sample closure (used by the convergence polish step)."""
        coeff = self._coeff[index]
        half_p = self._half_p

        def value_and_grad(theta: np.ndarray) -> tuple[float, np.ndarray]:
            phases = half_p @ np.asarray(theta, dtype=float)
            terms = coeff * np.exp(1j * phases)
            overlap = terms.sum()
            # Same real-split contraction as the batched value_and_grad.
            grad_fidelity = 2.0 * (
                overlap.imag * (terms.real @ half_p)
                - overlap.real * (terms.imag @ half_p)
            )
            return 1.0 - float(abs(overlap) ** 2), -grad_fidelity

        return value_and_grad

    def embedded_states(self, thetas: np.ndarray) -> np.ndarray:
        """The embedded statevectors ``V |psi(theta_b)>`` as ``(B, 2^n)``."""
        thetas = self._as_matrix(thetas)
        phases = thetas @ self._half_p.T
        dim = 2**self.symbolic.num_qubits
        psi = self.symbolic.phase_factors * np.exp(1j * phases) / np.sqrt(dim)
        return self.ansatz.apply_closing_layer_batch(psi)

    def _as_matrix(self, thetas: np.ndarray) -> np.ndarray:
        thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
        if thetas.shape != (self.batch_size, self.num_parameters):
            raise OptimizationError(
                f"thetas must be ({self.batch_size}, {self.num_parameters}), "
                f"got {thetas.shape}"
            )
        return thetas


@dataclass
class BatchOptimizationResult:
    """Outcome of one batched (stacked + polished) optimization."""

    thetas: np.ndarray
    fidelities: np.ndarray
    losses: np.ndarray
    num_iterations: int
    num_evaluations: int
    time: float
    converged: np.ndarray
    stacked_iterations: int = 0
    polish_runs: int = 0
    polish_iterations: np.ndarray = field(default=None)
    polish_evaluations: np.ndarray = field(default=None)
    sample_iterations: np.ndarray = field(default=None)

    @property
    def batch_size(self) -> int:
        return self.thetas.shape[0]

    def per_sample_iterations(self, index: int) -> int:
        """Iterations attributable to one sample.

        On the stacked (scipy) drive each stacked iteration advances
        every sample once (the per-sample analogue of one L-BFGS step);
        the per-row drive records each row's own count in
        ``sample_iterations``.  Either way the sample's own polish steps
        are added — comparable to the sequential path's
        ``num_iterations``, unlike :attr:`num_iterations` which totals
        the whole batch.
        """
        polish = (
            int(self.polish_iterations[index])
            if self.polish_iterations is not None
            else 0
        )
        own = (
            int(self.sample_iterations[index])
            if self.sample_iterations is not None
            else self.stacked_iterations
        )
        return own + polish


@dataclass
class BatchRestartResult:
    """Outcome of one multi-restart batched optimization (offline training).

    Per-cluster arrays are indexed like the objective's target rows.
    ``num_iterations``/``num_evaluations``/``time`` are whole-run totals;
    ``cluster_iterations``/``cluster_evaluations``/``cluster_times`` are
    the per-cluster attributions: each drive's shared cost is split
    evenly among the clusters active in it, while polish iterations and
    evaluations are attributed to their own row (wall time has no
    per-row measurement, so ``cluster_times`` stays an even share).
    They sum back to the totals and feed ``OfflineReport`` faithfully.
    """

    thetas: np.ndarray
    fidelities: np.ndarray
    losses: np.ndarray
    num_iterations: int
    num_evaluations: int
    time: float
    converged: np.ndarray
    restarts_used: np.ndarray
    histories: list[list[float]]
    cluster_iterations: np.ndarray
    cluster_evaluations: np.ndarray
    cluster_times: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.thetas.shape[0]


class BatchLBFGSOptimizer:
    """Stacked L-BFGS over a :class:`BatchFidelityObjective`.

    Two entry points mirror :class:`repro.core.optimizer.LBFGSOptimizer`:

    * :meth:`optimize` is warm-start mode (one stacked run from a given
      ``theta0`` matrix — the online path);
    * :meth:`optimize_restarts` is multi-restart global-training mode
      (the offline path): ``num_restarts`` stacked runs from the
      sequential optimizer's own restart draws, best-basin tracking per
      cluster, and ``target_fidelity`` early exit via active-set masking.

    ``gtol`` applies per gradient component, so the stacked stopping rule
    is the same test the per-sample runs use; ``ftol`` is divided by the
    batch size because scipy's relative-decrease rule sees the *sum* of
    losses.  Samples left above ``polish_threshold`` by a stacked run
    (early ``ftol`` exit or a hard sample dominating the line search) are
    individually re-polished from their stacked solution.

    ``polish_threshold`` trades wasted scipy calls against guaranteed
    convergence depth: a sample whose gradient inf-norm is ``g`` sits
    within ``~g^2 / curvature`` of its optimal fidelity, so at the
    default ``1e-7`` the residual fidelity error is far below the 1e-9
    equivalence budget while near-converged samples (the common case —
    warm starts land in the basin) skip the per-sample scipy overhead.
    """

    def __init__(
        self,
        max_iterations: int = 80,
        gtol: float = 1e-9,
        ftol: float = 1e-12,
        polish_threshold: float = 1e-7,
        num_restarts: int = 3,
        target_fidelity: float = 0.995,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if max_iterations < 1:
            raise OptimizationError("max_iterations must be >= 1")
        if num_restarts < 1:
            raise OptimizationError("num_restarts must be >= 1")
        self.max_iterations = max_iterations
        self.gtol = gtol
        self.ftol = ftol
        self.polish_threshold = polish_threshold
        self.num_restarts = num_restarts
        self.target_fidelity = target_fidelity
        self.seed = seed

    def optimize(
        self,
        objective: BatchFidelityObjective,
        theta0: np.ndarray,
    ) -> BatchOptimizationResult:
        theta0 = np.asarray(theta0, dtype=float)
        batch = objective.batch_size
        num_params = objective.num_parameters
        if theta0.shape != (batch, num_params):
            raise OptimizationError(
                f"theta0 must be ({batch}, {num_params}), got {theta0.shape}"
            )
        with Timer() as timer:
            stacked = minimize(
                objective.stacked_value_and_grad,
                theta0.ravel(),
                jac=True,
                method="L-BFGS-B",
                options={
                    "maxiter": self.max_iterations,
                    "gtol": self.gtol,
                    "ftol": self.ftol / max(batch, 1),
                },
            )
            thetas = np.asarray(stacked.x, dtype=float).reshape(
                batch, num_params
            )
            total_evals = int(stacked.nfev)
            # Per-sample convergence mask + individual polish for stragglers.
            converged = np.full(batch, bool(stacked.success))
            polish_iterations, polish_evals, polish_runs = self._polish(
                objective, thetas, converged
            )
            total_evals += int(polish_evals.sum())
            losses, _ = objective.value_and_grad(thetas)
        return BatchOptimizationResult(
            thetas=thetas,
            fidelities=1.0 - losses,
            losses=losses,
            num_iterations=int(stacked.nit) + int(polish_iterations.sum()),
            num_evaluations=total_evals,
            time=timer.elapsed,
            converged=converged,
            stacked_iterations=int(stacked.nit),
            polish_runs=polish_runs,
            polish_iterations=polish_iterations,
            polish_evaluations=polish_evals,
        )

    def _polish(
        self,
        objective: BatchFidelityObjective,
        thetas: np.ndarray,
        converged: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Individually re-run rows whose gradient is still above trigger.

        Mutates ``thetas``/``converged`` in place and returns the
        per-row polish iteration counts, per-row extra evaluation
        counts, and the number of polish runs.
        """
        batch = objective.batch_size
        _, grads = objective.value_and_grad(thetas)
        grad_norms = np.abs(grads).max(axis=1)
        polish_iterations = np.zeros(batch, dtype=int)
        polish_evals = np.zeros(batch, dtype=int)
        polish_runs = 0
        trigger = max(self.gtol, self.polish_threshold)
        for b in np.flatnonzero(grad_norms > trigger):
            single = minimize(
                objective.single_value_and_grad(int(b)),
                thetas[b],
                jac=True,
                method="L-BFGS-B",
                options={
                    "maxiter": self.max_iterations,
                    "gtol": self.gtol,
                    "ftol": self.ftol,
                },
            )
            thetas[b] = single.x
            converged[b] = bool(single.success)
            polish_iterations[b] = int(single.nit)
            polish_evals[b] = int(single.nfev)
            polish_runs += 1
        return polish_iterations, polish_evals, polish_runs

    def optimize_rows(
        self,
        objective: BatchFidelityObjective,
        theta0: np.ndarray,
    ) -> BatchOptimizationResult:
        """Per-row L-BFGS drive: independent curvature *and* step sizes.

        The scipy stacked drive (:meth:`optimize`) couples all rows
        through one shared L-BFGS memory and one shared line search.
        Warm starts don't care (near an optimum the unit Newton-like
        step is acceptable to every row at once), but on cold multi-
        restart offline training the compromise step length inflates
        everyone's iteration count ~2-3x: measured on MNIST-PCA cluster
        means at 6 qubits, sequential per-cluster runs need ~26
        iterations on average while every row of the stacked run rides
        to ~80.  This drive removes the coupling while keeping the one-
        BLAS-pass-per-iteration evaluation: each row holds its own
        limited-memory history (ring buffers, two-loop recursion
        vectorized over rows) and backtracks its own Armijo step, and
        rows that converge drop out of subsequent passes.  Rows the
        backtracking cannot improve are frozen and left to the same
        per-row scipy polish the stacked drive uses, so final
        convergence quality (``gtol``/``polish_threshold``) is
        identical.
        """
        theta0 = np.asarray(theta0, dtype=float)
        batch = objective.batch_size
        num_params = objective.num_parameters
        if theta0.shape != (batch, num_params):
            raise OptimizationError(
                f"theta0 must be ({batch}, {num_params}), got {theta0.shape}"
            )
        memory = 8  # limited-memory history length
        c1 = 1e-4  # Armijo sufficient-decrease constant
        max_backtracks = 30
        with Timer() as timer:
            thetas = theta0.copy()
            losses, grads = objective.value_and_grad(thetas)
            total_evals = batch
            # Histories live in one global ring buffer: every iteration
            # appends a slot for ALL rows (zeros — i.e. rho = 0 — for
            # rows that didn't advance), so the rows stay aligned and
            # no per-row rolling or gathering is ever needed.  A
            # zero-rho pair contributes exactly nothing to the two-loop
            # recursion, so validity masking is implicit.
            s_hist = np.zeros((memory, batch, num_params))
            y_hist = np.zeros((memory, batch, num_params))
            rho_hist = np.zeros((memory, batch))
            head = 0  # next slot to write
            filled = 0  # number of slots ever written (capped at memory)
            last_s = np.zeros((batch, num_params))
            last_y = np.zeros((batch, num_params))
            has_pair = np.zeros(batch, dtype=bool)
            iterations = np.zeros(batch, dtype=int)
            line_search_failed = np.zeros(batch, dtype=bool)
            flat_streak = np.zeros(batch, dtype=int)
            # Per-row initial step memory: rows whose landscape keeps
            # rejecting the unit step start the next search near their
            # last accepted step instead of re-discovering it (cuts the
            # Armijo pass count to ~1.1 evaluations per iteration).
            step_memory = np.ones(batch)
            trigger = max(self.gtol, self.polish_threshold)
            active = np.abs(grads).max(axis=1) > self.gtol
            act_obj = objective
            act_size = batch
            for _ in range(self.max_iterations):
                idx = np.flatnonzero(active)
                if idx.size == 0:
                    break
                # The active set only shrinks, so a size check detects
                # change; keep a sliced objective for it so the hot
                # first line-search pass skips per-call row slicing.
                if idx.size != act_size:
                    act_obj = objective.subset(idx)
                    act_size = idx.size
                if idx.size * 2 < batch:
                    # Most rows are done: slice the histories down so
                    # the recursion stops paying for inactive rows.
                    directions = self._two_loop(
                        grads[idx], s_hist[:, idx], y_hist[:, idx],
                        rho_hist[:, idx], head, filled,
                        last_s[idx], last_y[idx], has_pair[idx],
                    )
                else:
                    directions = self._two_loop(
                        grads, s_hist, y_hist, rho_hist, head, filled,
                        last_s, last_y, has_pair,
                    )[idx]
                g = grads[idx]
                slopes = np.einsum("bl,bl->b", directions, g)
                # Non-descent direction (stale curvature): reset to
                # steepest descent and drop that row's history.
                bad = slopes >= 0.0
                if np.any(bad):
                    directions[bad] = -g[bad]
                    slopes[bad] = -np.einsum(
                        "bl,bl->b", g[bad], g[bad]
                    )
                    rho_hist[:, idx[bad]] = 0.0
                    has_pair[idx[bad]] = False
                # First step of a fresh history: gradient-scaled, as in
                # scipy; afterwards the two-loop gamma makes alpha=1
                # right for most rows and the per-row step memory covers
                # the rest.
                alphas = np.minimum(2.0 * step_memory[idx], 1.0)
                fresh = ~has_pair[idx]
                if np.any(fresh):
                    grad_scale = np.linalg.norm(directions[fresh], axis=1)
                    alphas[fresh] = np.minimum(
                        1.0, 1.0 / np.maximum(grad_scale, 1e-12)
                    )
                # Per-row Armijo backtracking with quadratic
                # interpolation, evaluating only the rows still
                # searching.
                new_thetas = np.empty((idx.size, num_params))
                new_losses = np.empty(idx.size)
                new_grads = np.empty((idx.size, num_params))
                searching = np.arange(idx.size)
                accepted = np.zeros(idx.size, dtype=bool)
                for _ in range(max_backtracks):
                    rows = idx[searching]
                    trial = (
                        thetas[rows]
                        + alphas[searching, None] * directions[searching]
                    )
                    sub = (
                        act_obj
                        if searching.size == idx.size
                        else objective.subset(rows)
                    )
                    trial_losses, trial_grads = sub.value_and_grad(trial)
                    total_evals += searching.size
                    base = losses[rows]
                    ok = trial_losses <= (
                        base + c1 * alphas[searching] * slopes[searching]
                    )
                    if searching.size == idx.size and ok.all():
                        # Common case: every row accepts its first step.
                        new_thetas = trial
                        new_losses = trial_losses
                        new_grads = trial_grads
                        accepted[:] = True
                        searching = searching[:0]
                        break
                    hits = searching[ok]
                    new_thetas[hits] = trial[ok]
                    new_losses[hits] = trial_losses[ok]
                    new_grads[hits] = trial_grads[ok]
                    accepted[hits] = True
                    searching = searching[~ok]
                    if searching.size == 0:
                        break
                    # Minimizer of the quadratic through f(0), f'(0) and
                    # the failed trial, clipped into [0.1a, 0.5a] so the
                    # search always contracts.
                    a = alphas[searching]
                    slope = slopes[searching]
                    overshoot = (
                        trial_losses[~ok] - base[~ok] - slope * a
                    )
                    quad = np.where(
                        overshoot > 0.0,
                        -slope * a * a / np.maximum(2.0 * overshoot, 1e-300),
                        0.5 * a,
                    )
                    alphas[searching] = np.clip(quad, 0.1 * a, 0.5 * a)
                if searching.size:
                    # No acceptable step: freeze; polish will finish them.
                    frozen = idx[searching]
                    line_search_failed[frozen] = True
                    active[frozen] = False
                hit_rows = idx[accepted]
                if hit_rows.size == 0:
                    continue
                step_memory[hit_rows] = alphas[accepted]
                step = new_thetas[accepted] - thetas[hit_rows]
                grad_change = new_grads[accepted] - grads[hit_rows]
                curvature = np.einsum("bl,bl->b", step, grad_change)
                old_losses = losses[hit_rows]
                thetas[hit_rows] = new_thetas[accepted]
                losses[hit_rows] = new_losses[accepted]
                grads[hit_rows] = new_grads[accepted]
                iterations[hit_rows] += 1
                # Store (s, y) pairs with positive curvature (skip rule)
                # by appending one ring slot for everybody — zeros (a
                # no-op pair) for rows that didn't produce one.
                keep = curvature > 1e-10 * np.linalg.norm(
                    step, axis=1
                ) * np.linalg.norm(grad_change, axis=1)
                store = hit_rows[keep]
                if store.size:
                    s_hist[head] = 0.0
                    y_hist[head] = 0.0
                    rho_hist[head] = 0.0
                    s_hist[head, store] = step[keep]
                    y_hist[head, store] = grad_change[keep]
                    rho_hist[head, store] = 1.0 / curvature[keep]
                    last_s[store] = step[keep]
                    last_y[store] = grad_change[keep]
                    has_pair[store] = True
                    head = (head + 1) % memory
                    filled = min(filled + 1, memory)
                # Per-row stopping: scipy's gtol rule, plus an ftol-style
                # flat-decrease rule.  A single flat step with a still-
                # large gradient is usually a backtracked short step, not
                # convergence (stopping there would dump the row on the
                # expensive scipy polish), so flat rows only stop once
                # their gradient is below the polish trigger — or after
                # several flat steps in a row (genuinely stuck; polish
                # inherits them).
                hit_grad_norms = np.abs(grads[hit_rows]).max(axis=1)
                grad_done = hit_grad_norms <= self.gtol
                decrease = old_losses - losses[hit_rows]
                flat = decrease <= self.ftol * np.maximum(
                    np.maximum(np.abs(old_losses), np.abs(losses[hit_rows])),
                    1.0,
                )
                flat_streak[hit_rows] = np.where(
                    flat, flat_streak[hit_rows] + 1, 0
                )
                flat_done = flat & (
                    (hit_grad_norms <= trigger)
                    | (flat_streak[hit_rows] >= 5)
                )
                active[hit_rows[grad_done | flat_done]] = False
            converged = ~line_search_failed & ~active
            polish_iterations, polish_evals, polish_runs = self._polish(
                objective, thetas, converged
            )
            total_evals += int(polish_evals.sum())
            losses, _ = objective.value_and_grad(thetas)
        return BatchOptimizationResult(
            thetas=thetas,
            fidelities=1.0 - losses,
            losses=losses,
            num_iterations=int(iterations.sum() + polish_iterations.sum()),
            num_evaluations=total_evals,
            time=timer.elapsed,
            converged=converged,
            stacked_iterations=int(iterations.max(initial=0)),
            polish_runs=polish_runs,
            polish_iterations=polish_iterations,
            polish_evaluations=polish_evals,
            sample_iterations=iterations,
        )

    @staticmethod
    def _two_loop(
        grads: np.ndarray,
        s_hist: np.ndarray,
        y_hist: np.ndarray,
        rho_hist: np.ndarray,
        head: int,
        filled: int,
        last_s: np.ndarray,
        last_y: np.ndarray,
        has_pair: np.ndarray,
    ) -> np.ndarray:
        """Vectorized L-BFGS two-loop recursion over independent rows.

        Histories are ``(memory, batch, l)`` slots of one global ring
        (slot ``head - 1`` is newest, ``filled`` slots are in use).
        Rows that skipped an iteration hold zero-``rho`` pairs, which
        contribute exactly nothing to the recursion, so no validity
        masks are needed.  The initial Hessian scale uses each row's
        own most recent real pair (``last_s``/``last_y``).  Returns the
        search directions ``-H_b @ g_b`` for every row.
        """
        memory = s_hist.shape[0]
        q = grads.copy()
        scratch = np.empty_like(q)
        order = [(head - 1 - k) % memory for k in range(filled)]
        alpha = {}
        for j in order:  # newest -> oldest
            a = rho_hist[j] * np.einsum("bl,bl->b", s_hist[j], q)
            np.multiply(y_hist[j], a[:, None], out=scratch)
            q -= scratch
            alpha[j] = a
        if filled:
            # Initial scale gamma = (s.y) / (y.y) of the newest pair.
            y_sq = np.einsum("bl,bl->b", last_y, last_y)
            gamma = np.where(
                has_pair & (y_sq > 0.0),
                np.einsum("bl,bl->b", last_s, last_y)
                / np.maximum(y_sq, 1e-300),
                1.0,
            )
            q *= gamma[:, None]
        for j in reversed(order):  # oldest -> newest
            b = rho_hist[j] * np.einsum("bl,bl->b", y_hist[j], q)
            b -= alpha[j]
            np.multiply(s_hist[j], b[:, None], out=scratch)
            q -= scratch
        return -q

    def optimize_restarts(
        self, objective: BatchFidelityObjective
    ) -> BatchRestartResult:
        """Train all targets through stacked multi-restart L-BFGS.

        Restart ``r`` starts every cluster from
        :meth:`LBFGSOptimizer.draw_restart_start` draw ``r`` — exactly
        where a sequential per-cluster run seeded with the same integer
        would start it (each sequential ``optimize`` call opens a fresh
        stream from that seed, so draw ``r`` is identical across
        clusters; drawing the whole prefix up front consumes the same
        values).

        The schedule runs in two waves over the per-row drive
        (:meth:`optimize_rows` — independent L-BFGS state per row, one
        BLAS pass per iteration).  Wave one is restart 0 for every
        cluster; clusters whose fidelity reaches ``target_fidelity``
        drop out — the active-set form of the sequential early exit,
        which on well-covered data prunes most of the remaining work.
        Wave two runs *all* remaining restarts for *all* surviving
        clusters as one batch (one row per ``(cluster, restart)`` pair —
        the rows are independent, so batching across restarts is as
        exact as batching across clusters), amortizing the per-pass
        overhead across the full restart budget.  Afterwards each
        cluster's result is selected by
        replaying the sequential rule restart by restart — keep the best
        loss so far, stop at the first restart whose own fidelity
        reaches the target — so fidelities, ``restarts_used`` and
        ``history`` match the per-cluster loop draw for draw.
        """
        num_clusters = objective.batch_size
        num_params = objective.num_parameters
        num_restarts = self.num_restarts
        rng = as_rng(self.seed)
        starts = np.asarray(
            [
                LBFGSOptimizer.draw_restart_start(rng, num_params)
                for _ in range(num_restarts)
            ]
        )
        with Timer() as timer:
            # Wave one: restart 0, all clusters in one per-row drive.
            first = self.optimize_rows(
                objective,
                np.broadcast_to(starts[0], (num_clusters, num_params)),
            )
            survivors = np.flatnonzero(
                first.fidelities < self.target_fidelity
            )
            later = None
            if survivors.size and num_restarts > 1:
                # Wave two: every remaining restart of every surviving
                # cluster, one stacked problem of S * (R - 1) rows.
                row_clusters = np.tile(survivors, num_restarts - 1)
                row_restarts = np.repeat(
                    np.arange(1, num_restarts), survivors.size
                )
                later = self.optimize_rows(
                    objective.subset(row_clusters), starts[row_restarts]
                )
        # Per-cluster fidelity/loss tables: row r of ``fids[c]`` is what
        # sequential restart r of cluster c would have produced.
        total_iterations = first.num_iterations
        total_evaluations = first.num_evaluations
        best_thetas = first.thetas.copy()
        best_losses = first.losses.copy()
        best_converged = first.converged.copy()
        restarts_used = np.ones(num_clusters, dtype=int)
        histories: list[list[float]] = [
            [float(f)] for f in first.fidelities
        ]
        cluster_iterations = np.asarray(
            first.sample_iterations + first.polish_iterations, dtype=int
        )
        # Shared drive evaluations split evenly; each row's own polish
        # evaluations attributed to it individually.  Wall time has no
        # per-row measurement, so it stays an even share.
        first_shared = first.num_evaluations - int(
            first.polish_evaluations.sum()
        )
        cluster_evaluations = (
            np.full(num_clusters, first_shared / num_clusters)
            + first.polish_evaluations
        )
        cluster_times = np.full(num_clusters, first.time / num_clusters)
        if later is not None:
            total_iterations += later.num_iterations
            total_evaluations += later.num_evaluations
            num_rows = row_clusters.size
            row_iters = later.sample_iterations + later.polish_iterations
            later_shared = later.num_evaluations - int(
                later.polish_evaluations.sum()
            )
            position = {int(c): i for i, c in enumerate(survivors)}
            for row in range(num_rows):
                cluster = int(row_clusters[row])
                cluster_iterations[cluster] += int(row_iters[row])
                cluster_evaluations[cluster] += (
                    later_shared / num_rows
                    + later.polish_evaluations[row]
                )
                cluster_times[cluster] += later.time / num_rows
            for cluster in survivors:
                cluster = int(cluster)
                # Replay the sequential selection: restart 0 is already
                # the best so far; walk restarts 1..R-1 in order.
                for r in range(1, num_restarts):
                    row = (r - 1) * survivors.size + position[cluster]
                    fidelity = float(later.fidelities[row])
                    histories[cluster].append(fidelity)
                    restarts_used[cluster] = r + 1
                    if later.losses[row] < best_losses[cluster]:
                        best_losses[cluster] = float(later.losses[row])
                        best_thetas[cluster] = later.thetas[row]
                        best_converged[cluster] = bool(later.converged[row])
                    if fidelity >= self.target_fidelity:
                        break
        return BatchRestartResult(
            thetas=best_thetas,
            fidelities=1.0 - best_losses,
            losses=best_losses,
            num_iterations=total_iterations,
            num_evaluations=total_evaluations,
            time=timer.elapsed,
            converged=best_converged,
            restarts_used=restarts_used,
            histories=histories,
            cluster_iterations=cluster_iterations,
            cluster_evaluations=cluster_evaluations,
            cluster_times=cluster_times,
        )


class VQCObjective:
    """Batched hinge-loss objective for the VQC classifier head.

    The QML counterpart of :class:`BatchFidelityObjective`: where the
    encoder's batched objective exploits *one ansatz, many targets*,
    this one exploits *one circuit, many input states*.  The classifier
    ansatz is compiled once into a cached
    :class:`~repro.transpile.template.ParametricTemplate`; each
    evaluation re-binds a ``(K, P)`` theta matrix through
    :meth:`~repro.transpile.template.ParametricTemplate.bind_batch_ir`
    (zero ``Gate``/``Instruction`` objects) and propagates **all** ``B``
    embedded states through the bound IR in one stacked statevector walk
    (:meth:`~repro.transpile.bound.BoundCircuitBatch.evolve_states_row`
    — the batch rides as a trailing tensor axis through the same
    contraction kernel the per-state simulator uses).  Margins and
    losses therefore match the sequential
    :class:`repro.qml.vqc.VariationalClassifier` reference to ~1e-15,
    well inside the 1e-12 equivalence gate.

    Parameters
    ----------
    template:
        A :class:`~repro.transpile.template.ParametricTemplate` of the
        classifier ansatz (e.g. :class:`repro.qml.vqc.VQCAnsatz`).  Must
        have a trivial layout and bind circuits as wide as the states —
        otherwise the states would need re-indexing and this objective
        refuses rather than silently mis-propagating.
    states:
        ``(B, 2^n)`` complex matrix of embedded statevectors (rows are
        assumed unit-norm, as amplitude embeddings are by construction).
    labels:
        ``(B,)`` array of class labels in {0, 1}.
    margin:
        Hinge threshold: loss is ``mean(max(0, margin - y_i * <Z_0>_i))``
        with ``y_i = +1`` for label 0 and ``-1`` for label 1.
    """

    def __init__(
        self,
        template,
        states: np.ndarray,
        labels: np.ndarray,
        margin: float = 0.4,
    ) -> None:
        states = np.atleast_2d(np.asarray(states, dtype=complex))
        labels = np.asarray(labels)
        num_qubits = template.num_physical_qubits
        if not template.has_trivial_layout:
            raise OptimizationError(
                "VQCObjective needs a template with a trivial layout "
                "(no SWAPs, identity placement); use a nearest-neighbor "
                "classifier ansatz on a linear-chain backend, or the "
                "sequential reference engine"
            )
        if num_qubits != template.ansatz.num_qubits:
            raise OptimizationError(
                f"template binds {num_qubits}-qubit circuits but its "
                f"ansatz is {template.ansatz.num_qubits}-qubit; embedded "
                "states cannot be propagated through the padded register"
            )
        if states.ndim != 2 or states.shape[1] != 2**num_qubits:
            raise OptimizationError(
                f"states must be (B, {2 ** num_qubits}), got {states.shape}"
            )
        if states.shape[0] == 0:
            raise OptimizationError("VQCObjective needs at least one state")
        if labels.shape != (states.shape[0],):
            raise OptimizationError(
                f"labels must be ({states.shape[0]},), got {labels.shape}"
            )
        if set(np.unique(labels)) - {0, 1}:
            raise OptimizationError("labels must be binary 0/1")
        if margin <= 0.0:
            raise OptimizationError("margin must be > 0")
        self.template = template
        self.states = states
        self.labels = labels.astype(int)
        self.margin = float(margin)
        self.num_qubits = num_qubits
        #: y_i in {+1, -1}: label 0 -> +1, label 1 -> -1.
        self.signs = 1.0 - 2.0 * self.labels.astype(float)
        self.num_evaluations = 0

    @property
    def batch_size(self) -> int:
        return self.states.shape[0]

    @property
    def num_parameters(self) -> int:
        return self.template.ansatz.num_parameters

    def _select(self, indices) -> "tuple[np.ndarray, np.ndarray]":
        if indices is None:
            return self.states, self.signs
        indices = np.asarray(indices, dtype=int)
        return self.states[indices], self.signs[indices]

    def expectations(
        self, thetas: np.ndarray, indices=None
    ) -> np.ndarray:
        """``<Z_0>`` for every (theta row, state) pair as ``(K, B)``.

        One ``bind_batch_ir`` lowers all ``K`` theta rows; each bound
        row then evolves the whole state stack in one array walk.  With
        ``indices`` only that subset of states is propagated (the
        minibatch hook).
        """
        thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
        states, _ = self._select(indices)
        bound = self.template.bind_batch_ir(thetas)
        half = 2 ** (self.num_qubits - 1)
        values = np.empty((thetas.shape[0], states.shape[0]))
        for k in range(thetas.shape[0]):
            evolved = bound.evolve_states_row(k, states)
            probs = np.abs(evolved) ** 2
            # Qubit 0 is the most significant bit: Z_0 = +1 up top.
            values[k] = probs[:, :half].sum(axis=1) - probs[:, half:].sum(
                axis=1
            )
        self.num_evaluations += thetas.shape[0] * states.shape[0]
        return values

    def margins(self, theta: np.ndarray, indices=None) -> np.ndarray:
        """Signed margins ``y_i * <Z_0>_i`` for one theta."""
        _, signs = self._select(indices)
        return signs * self.expectations(theta, indices)[0]

    def losses(self, thetas: np.ndarray, indices=None) -> np.ndarray:
        """Hinge loss of each theta row (one bind for all of them).

        The SPSA driver evaluates its ``theta + c*delta`` /
        ``theta - c*delta`` pair through a single call here, so one
        optimizer step costs one template bind and two stacked
        propagations.
        """
        _, signs = self._select(indices)
        values = self.expectations(thetas, indices)
        hinge = np.maximum(0.0, self.margin - signs[None, :] * values)
        return hinge.mean(axis=1)

    def loss(self, theta: np.ndarray, indices=None) -> float:
        return float(self.losses(theta, indices)[0])

    def predictions(self, theta: np.ndarray, indices=None) -> np.ndarray:
        """Predicted labels in {0, 1} for every state."""
        values = self.expectations(theta, indices)[0]
        return (values < 0.0).astype(int)

    def accuracy(self, theta: np.ndarray) -> float:
        return float(np.mean(self.margins(theta) > 0.0))

    def __repr__(self) -> str:
        return (
            f"VQCObjective(batch={self.batch_size}, "
            f"qubits={self.num_qubits}, params={self.num_parameters}, "
            f"margin={self.margin})"
        )
