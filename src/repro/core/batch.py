"""Batched fidelity objective and optimizer (the online fast path).

EnQode's online stage solves one small, smooth, warm-started problem per
sample — and every problem shares the same ``P/2`` phase matrix and
``i^k`` factors, because every sample uses the same fixed-shape ansatz.
This module exploits that structure end to end:

* :class:`BatchFidelityObjective` evaluates loss and exact gradient for
  ``B`` targets in one BLAS pass: the per-sample ``terms`` vector becomes
  a ``(B, 2^n)`` matrix multiplied against the shared ``(2^n, l)`` half
  phase matrix, so the per-iteration cost is two matrix products instead
  of ``B`` Python-level objective calls.
* :class:`BatchLBFGSOptimizer` drives all samples concurrently with one
  **stacked** scipy L-BFGS run over the block-diagonal objective (the sum
  of per-sample losses; its gradient is the concatenation of per-sample
  gradients).  The stationary points of the stacked problem are exactly
  the per-sample optima.  ``ftol`` is tightened by ``1/B`` so the
  sum-scale stopping rule matches the per-sample rule, and any sample
  whose own gradient still exceeds ``gtol`` afterwards gets an
  individual warm-started polish run (per-sample convergence masking) —
  which is why batched results match the sequential path to ~1e-12 in
  fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import minimize

from repro.core.ansatz import EnQodeAnsatz
from repro.core.symbolic import SymbolicState
from repro.errors import OptimizationError
from repro.utils.timing import Timer


class BatchFidelityObjective:
    """Loss ``1 - F`` and exact gradients for ``B`` targets at once.

    The math is :class:`repro.core.objective.FidelityObjective` row-wise:
    with ``C[b] = conj(V^dagger x_b) * i^k / sqrt(2^n)`` precomputed for
    every target (one batched closing-layer pull-back), the overlaps for
    parameter matrix ``theta`` of shape ``(B, l)`` are

        S_b = sum_r C[b, r] * exp(i * (P @ theta_b)_r / 2)

    and both phases and derivative contractions are single ``(B, 2^n) @
    (2^n, l)`` products against the shared cached ``P/2``.
    """

    def __init__(
        self,
        symbolic: SymbolicState,
        ansatz: EnQodeAnsatz,
        targets: np.ndarray,
    ) -> None:
        targets = np.atleast_2d(np.asarray(targets, dtype=complex))
        dim = 2**symbolic.num_qubits
        if targets.ndim != 2 or targets.shape[1] != dim:
            raise OptimizationError(
                f"targets must be (B, {dim}), got {targets.shape}"
            )
        if not np.all(np.isfinite(targets)):
            raise OptimizationError("targets contain non-finite entries")
        norms = np.linalg.norm(targets, axis=1)
        if np.any(norms < 1e-12):
            raise OptimizationError("cannot embed the zero vector")
        targets = targets / norms[:, None]
        self.symbolic = symbolic
        self.ansatz = ansatz
        self.targets = targets
        # Pull all targets back through the closing layer in one pass.
        y = ansatz.apply_closing_layer_adjoint_batch(targets)
        self._coeff = np.conj(y) * symbolic.phase_factors / np.sqrt(dim)
        self._half_p = symbolic.half_phase_matrix

    @property
    def batch_size(self) -> int:
        return self._coeff.shape[0]

    @property
    def num_parameters(self) -> int:
        return self._half_p.shape[1]

    # -- evaluations -------------------------------------------------------------

    def overlaps(self, thetas: np.ndarray) -> np.ndarray:
        """Complex overlaps ``<x_b| V |psi(theta_b)>`` for all rows."""
        thetas = self._as_matrix(thetas)
        phases = thetas @ self._half_p.T
        return np.sum(self._coeff * np.exp(1j * phases), axis=1)

    def fidelities(self, thetas: np.ndarray) -> np.ndarray:
        return np.abs(self.overlaps(thetas)) ** 2

    def value_and_grad(
        self, thetas: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample losses ``(B,)`` and gradients ``(B, l)`` in one pass."""
        thetas = self._as_matrix(thetas)
        phases = thetas @ self._half_p.T
        terms = self._coeff * np.exp(1j * phases)
        overlaps = terms.sum(axis=1)
        d_overlaps = 1j * (terms @ self._half_p)
        grad_fidelity = 2.0 * np.real(np.conj(overlaps)[:, None] * d_overlaps)
        losses = 1.0 - np.abs(overlaps) ** 2
        return losses, -grad_fidelity

    def stacked_value_and_grad(
        self, flat_theta: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Block-diagonal view for scipy: total loss + concatenated grad."""
        thetas = np.asarray(flat_theta, dtype=float).reshape(
            self.batch_size, self.num_parameters
        )
        losses, grads = self.value_and_grad(thetas)
        return float(losses.sum()), grads.ravel()

    def single_value_and_grad(self, index: int):
        """A per-sample closure (used by the convergence polish step)."""
        coeff = self._coeff[index]
        half_p = self._half_p

        def value_and_grad(theta: np.ndarray) -> tuple[float, np.ndarray]:
            phases = half_p @ np.asarray(theta, dtype=float)
            terms = coeff * np.exp(1j * phases)
            overlap = terms.sum()
            d_overlap = 1j * (terms @ half_p)
            grad_fidelity = 2.0 * np.real(np.conj(overlap) * d_overlap)
            return 1.0 - float(abs(overlap) ** 2), -grad_fidelity

        return value_and_grad

    def embedded_states(self, thetas: np.ndarray) -> np.ndarray:
        """The embedded statevectors ``V |psi(theta_b)>`` as ``(B, 2^n)``."""
        thetas = self._as_matrix(thetas)
        phases = thetas @ self._half_p.T
        dim = 2**self.symbolic.num_qubits
        psi = self.symbolic.phase_factors * np.exp(1j * phases) / np.sqrt(dim)
        return self.ansatz.apply_closing_layer_batch(psi)

    def _as_matrix(self, thetas: np.ndarray) -> np.ndarray:
        thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
        if thetas.shape != (self.batch_size, self.num_parameters):
            raise OptimizationError(
                f"thetas must be ({self.batch_size}, {self.num_parameters}), "
                f"got {thetas.shape}"
            )
        return thetas


@dataclass
class BatchOptimizationResult:
    """Outcome of one batched (stacked + polished) optimization."""

    thetas: np.ndarray
    fidelities: np.ndarray
    losses: np.ndarray
    num_iterations: int
    num_evaluations: int
    time: float
    converged: np.ndarray
    stacked_iterations: int = 0
    polish_runs: int = 0
    polish_iterations: np.ndarray = field(default=None)

    @property
    def batch_size(self) -> int:
        return self.thetas.shape[0]

    def per_sample_iterations(self, index: int) -> int:
        """Iterations attributable to one sample.

        Each stacked iteration advances every sample once (the per-sample
        analogue of one L-BFGS step), plus the sample's own polish steps
        — comparable to the sequential path's ``num_iterations``, unlike
        :attr:`num_iterations` which totals the whole batch.
        """
        polish = (
            int(self.polish_iterations[index])
            if self.polish_iterations is not None
            else 0
        )
        return self.stacked_iterations + polish


class BatchLBFGSOptimizer:
    """Warm-started stacked L-BFGS over a :class:`BatchFidelityObjective`.

    Parameters mirror :class:`repro.core.optimizer.LBFGSOptimizer` in
    warm-start mode (one run, no restarts).  ``gtol`` applies per
    gradient component, so the stacked stopping rule is the same test the
    per-sample runs use; ``ftol`` is divided by the batch size because
    scipy's relative-decrease rule sees the *sum* of losses.  Samples
    left above ``polish_threshold`` by the stacked run (early ``ftol``
    exit or a hard sample dominating the line search) are individually
    re-polished from their stacked solution.

    ``polish_threshold`` trades wasted scipy calls against guaranteed
    convergence depth: a sample whose gradient inf-norm is ``g`` sits
    within ``~g^2 / curvature`` of its optimal fidelity, so at the
    default ``1e-7`` the residual fidelity error is far below the 1e-9
    equivalence budget while near-converged samples (the common case —
    warm starts land in the basin) skip the per-sample scipy overhead.
    """

    def __init__(
        self,
        max_iterations: int = 80,
        gtol: float = 1e-9,
        ftol: float = 1e-12,
        polish_threshold: float = 1e-7,
    ) -> None:
        if max_iterations < 1:
            raise OptimizationError("max_iterations must be >= 1")
        self.max_iterations = max_iterations
        self.gtol = gtol
        self.ftol = ftol
        self.polish_threshold = polish_threshold

    def optimize(
        self,
        objective: BatchFidelityObjective,
        theta0: np.ndarray,
    ) -> BatchOptimizationResult:
        theta0 = np.asarray(theta0, dtype=float)
        batch = objective.batch_size
        num_params = objective.num_parameters
        if theta0.shape != (batch, num_params):
            raise OptimizationError(
                f"theta0 must be ({batch}, {num_params}), got {theta0.shape}"
            )
        with Timer() as timer:
            stacked = minimize(
                objective.stacked_value_and_grad,
                theta0.ravel(),
                jac=True,
                method="L-BFGS-B",
                options={
                    "maxiter": self.max_iterations,
                    "gtol": self.gtol,
                    "ftol": self.ftol / max(batch, 1),
                },
            )
            thetas = np.asarray(stacked.x, dtype=float).reshape(
                batch, num_params
            )
            total_evals = int(stacked.nfev)
            # Per-sample convergence mask + individual polish for stragglers.
            _, grads = objective.value_and_grad(thetas)
            grad_norms = np.abs(grads).max(axis=1)
            converged = np.full(batch, bool(stacked.success))
            polish_iterations = np.zeros(batch, dtype=int)
            polish_runs = 0
            trigger = max(self.gtol, self.polish_threshold)
            for b in np.flatnonzero(grad_norms > trigger):
                single = minimize(
                    objective.single_value_and_grad(int(b)),
                    thetas[b],
                    jac=True,
                    method="L-BFGS-B",
                    options={
                        "maxiter": self.max_iterations,
                        "gtol": self.gtol,
                        "ftol": self.ftol,
                    },
                )
                thetas[b] = single.x
                converged[b] = bool(single.success)
                polish_iterations[b] = int(single.nit)
                total_evals += int(single.nfev)
                polish_runs += 1
            losses, _ = objective.value_and_grad(thetas)
        return BatchOptimizationResult(
            thetas=thetas,
            fidelities=1.0 - losses,
            losses=losses,
            num_iterations=int(stacked.nit) + int(polish_iterations.sum()),
            num_evaluations=total_evals,
            time=timer.elapsed,
            converged=converged,
            stacked_iterations=int(stacked.nit),
            polish_runs=polish_runs,
            polish_iterations=polish_iterations,
        )
