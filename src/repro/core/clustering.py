"""k-means clustering and the paper's cluster-count selection rule.

EnQode partitions each dataset with k-means (Sec. III-C) and trains one
ansatz per cluster mean.  The number of clusters follows Sec. IV-A: "The
number of clusters is chosen such that the state fidelity between any
datapoint and its nearest cluster is at least 0.95" — implemented by
:func:`select_num_clusters`, which grows ``k`` until
:func:`min_nearest_fidelity` crosses the threshold.

Implemented from scratch (no scikit-learn offline): k-means++ seeding and
Lloyd iterations with several restarts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError
from repro.utils.rng import as_rng


def dot_fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """Squared normalized overlap |<a|b>|^2 of two real vectors.

    This is the state fidelity of the two exactly-embedded pure states,
    the quantity the Sec. IV-A cluster rule thresholds at 0.95.
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom < 1e-300:
        raise ClusteringError("fidelity of a zero vector is undefined")
    return float((a @ b) / denom) ** 2


class KMeans:
    """Lloyd's algorithm with k-means++ seeding.

    Attributes after :meth:`fit`: ``centers_`` (k, d), ``labels_`` (N,),
    ``inertia_`` (sum of squared distances), ``n_iter_``.
    """

    def __init__(
        self,
        num_clusters: int,
        max_iterations: int = 300,
        tol: float = 1e-10,
        num_init: int = 4,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if num_clusters < 1:
            raise ClusteringError("num_clusters must be >= 1")
        if max_iterations < 1:
            # Lloyd's loop body must run at least once, otherwise the
            # iteration counter is never bound and centers never update.
            raise ClusteringError("max_iterations must be >= 1")
        if num_init < 1:
            raise ClusteringError("num_init must be >= 1")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        self.tol = tol
        self.num_init = num_init
        self.seed = seed
        self.centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = np.inf
        self.n_iter_: int = 0

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _distances_sq(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """(N, k) squared Euclidean distances (clipped: the expanded form
        can dip infinitesimally below zero in floating point)."""
        dist_sq = (
            np.sum(data**2, axis=1)[:, None]
            - 2.0 * data @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        return np.clip(dist_sq, 0.0, None)

    def _init_centers(
        self,
        data: np.ndarray,
        rng: np.random.Generator,
        initial: np.ndarray | None = None,
    ) -> np.ndarray:
        """k-means++ seeding, optionally extending ``initial`` centers.

        With ``initial`` given (the warm-start path of
        :func:`select_num_clusters`), those centers are kept and only the
        missing ``num_clusters - len(initial)`` seeds are drawn with the
        k-means++ rule — distances to the existing centers already steer
        the draws toward uncovered regions.
        """
        n_samples = data.shape[0]
        if initial is not None:
            centers = [np.asarray(c, dtype=float) for c in initial]
        else:
            centers = [data[rng.integers(n_samples)]]
        while len(centers) < self.num_clusters:
            dist_sq = self._distances_sq(data, np.asarray(centers)).min(axis=1)
            total = dist_sq.sum()
            if total <= 0.0:  # all points identical to centers: pick any
                centers.append(data[rng.integers(n_samples)])
                continue
            probabilities = dist_sq / total
            centers.append(data[rng.choice(n_samples, p=probabilities)])
        return np.asarray(centers)

    def _lloyd(
        self, data: np.ndarray, centers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        labels = np.zeros(data.shape[0], dtype=int)
        inertia = np.inf
        for iteration in range(1, self.max_iterations + 1):
            dist_sq = self._distances_sq(data, centers)
            labels = np.argmin(dist_sq, axis=1)
            new_inertia = float(dist_sq[np.arange(data.shape[0]), labels].sum())
            # Vectorized center update: scatter-add member sums through a
            # one-hot indicator product (one BLAS call instead of a
            # Python loop over clusters); empty clusters keep their
            # previous center, as before.
            counts = np.bincount(labels, minlength=self.num_clusters)
            one_hot = np.zeros(
                (self.num_clusters, data.shape[0]), dtype=data.dtype
            )
            one_hot[labels, np.arange(data.shape[0])] = 1.0
            sums = one_hot @ data
            new_centers = centers.copy()
            occupied = counts > 0
            new_centers[occupied] = (
                sums[occupied] / counts[occupied][:, None]
            )
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if abs(inertia - new_inertia) <= self.tol or shift <= self.tol:
                inertia = new_inertia
                break
            inertia = new_inertia
        return centers, labels, inertia, iteration

    # -- API --------------------------------------------------------------------

    def fit(
        self, data: np.ndarray, init_centers: np.ndarray | None = None
    ) -> "KMeans":
        """Fit ``num_clusters`` centers to ``data``.

        ``init_centers`` (shape ``(m, d)`` with ``m <= num_clusters``)
        switches from ``num_init`` independent k-means++ restarts to a
        single warm-started Lloyd run seeded from those centers (extended
        to ``num_clusters`` with k-means++ draws) — the incremental mode
        :func:`select_num_clusters` uses while growing ``k``.
        """
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ClusteringError(f"expected 2-D data, got shape {data.shape}")
        if data.shape[0] < self.num_clusters:
            raise ClusteringError(
                f"cannot form {self.num_clusters} clusters from "
                f"{data.shape[0]} samples"
            )
        rng = as_rng(self.seed)
        if init_centers is not None:
            init_centers = np.asarray(init_centers, dtype=float)
            if (
                init_centers.ndim != 2
                or init_centers.shape[1] != data.shape[1]
                or not 1 <= init_centers.shape[0] <= self.num_clusters
            ):
                raise ClusteringError(
                    f"init_centers must be (1 <= m <= {self.num_clusters}, "
                    f"{data.shape[1]}), got {init_centers.shape}"
                )
        best = None
        num_runs = 1 if init_centers is not None else self.num_init
        for _ in range(num_runs):
            centers = self._init_centers(data, rng, initial=init_centers)
            centers, labels, inertia, n_iter = self._lloyd(data, centers)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, n_iter)
        self.centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        if self.centers_ is None:
            raise ClusteringError("KMeans.predict called before fit")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        return np.argmin(self._distances_sq(data, self.centers_), axis=1)


def nearest_center(
    sample: np.ndarray, centers: np.ndarray
) -> tuple[int, float]:
    """Index of and Euclidean distance to the closest center (Sec. III-D)."""
    sample = np.asarray(sample, dtype=float).ravel()
    indices, distances = nearest_centers(sample[None, :], centers)
    return int(indices[0]), float(distances[0])


def nearest_centers(
    samples: np.ndarray, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`nearest_center` over a ``(B, d)`` sample matrix.

    Returns ``(indices, distances)`` of shapes ``(B,)``.  Computed with
    the same differences-then-norm arithmetic as the scalar version so
    batch and per-sample cluster assignments agree exactly (the expanded
    ``|a|^2 - 2ab + |b|^2`` form can flip ties).
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    centers = np.asarray(centers, dtype=float)
    distances = np.linalg.norm(
        samples[:, None, :] - centers[None, :, :], axis=2
    )
    indices = np.argmin(distances, axis=1)
    return indices, distances[np.arange(samples.shape[0]), indices]


def min_nearest_fidelity(data: np.ndarray, centers: np.ndarray) -> float:
    """min over samples of max over centers of |<x, c>|^2 (normalized).

    Zero-norm centers have no direction and are excluded from the max;
    if *every* center is zero the quantity is undefined and a
    :class:`ClusteringError` is raised (rather than an opaque numpy
    reduction error on an empty axis).  A zero-norm data row is always
    an error: its fidelity is undefined and would otherwise propagate
    as a silent NaN through the cluster-count search.
    """
    data = np.asarray(data, dtype=float)
    centers = np.asarray(centers, dtype=float)
    data_norms = np.linalg.norm(data, axis=1, keepdims=True)
    if np.any(data_norms < 1e-300):
        raise ClusteringError(
            "min_nearest_fidelity is undefined for zero-norm data rows"
        )
    data_unit = data / data_norms
    norms = np.linalg.norm(centers, axis=1)
    safe = norms > 1e-300
    if not np.any(safe):
        raise ClusteringError(
            "min_nearest_fidelity is undefined: all cluster centers have "
            "zero norm"
        )
    centers_unit = centers[safe] / norms[safe][:, None]
    overlaps = (data_unit @ centers_unit.T) ** 2
    return float(overlaps.max(axis=1).min())


def select_num_clusters(
    data: np.ndarray,
    min_fidelity: float = 0.95,
    max_clusters: int = 64,
    seed: "int | np.random.Generator | None" = None,
    num_init: int = 4,
    warm_start: bool = True,
) -> KMeans:
    """Grow ``k`` until every sample's nearest-center fidelity >= threshold.

    Returns the fitted :class:`KMeans` for the smallest satisfying ``k``
    (or for ``max_clusters`` if the threshold is never met, with the
    shortfall left to the caller to inspect via
    :func:`min_nearest_fidelity`).

    With ``warm_start`` (the default) each step seeds the ``k'``-means
    init from the previous step's ``k`` centers — one Lloyd run that
    only has to place the ``k' - k`` new centers — instead of
    ``num_init`` full k-means++ restarts per step, which made the
    growing search quadratic-ish in the final ``k``.  ``warm_start=
    False`` restores the independent-restart search.
    """
    data = np.asarray(data, dtype=float)
    rng = as_rng(seed)
    k = 1
    best = None
    previous_centers = None
    while k <= min(max_clusters, data.shape[0]):
        model = KMeans(k, num_init=num_init, seed=rng).fit(
            data, init_centers=previous_centers if warm_start else None
        )
        best = model
        if min_nearest_fidelity(data, model.centers_) >= min_fidelity:
            return model
        previous_centers = model.centers_
        # Grow geometrically-ish to keep the search cheap for large k.
        k += max(1, k // 3)
    return best
