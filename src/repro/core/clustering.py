"""k-means clustering and the paper's cluster-count selection rule.

EnQode partitions each dataset with k-means (Sec. III-C) and trains one
ansatz per cluster mean.  The number of clusters follows Sec. IV-A: "The
number of clusters is chosen such that the state fidelity between any
datapoint and its nearest cluster is at least 0.95" — implemented by
:func:`select_num_clusters`, which grows ``k`` until
:func:`min_nearest_fidelity` crosses the threshold.

Implemented from scratch (no scikit-learn offline): k-means++ seeding and
Lloyd iterations with several restarts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError
from repro.utils.rng import as_rng


def dot_fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """Squared normalized overlap |<a|b>|^2 of two real vectors.

    This is the state fidelity of the two exactly-embedded pure states,
    the quantity the Sec. IV-A cluster rule thresholds at 0.95.
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom < 1e-300:
        raise ClusteringError("fidelity of a zero vector is undefined")
    return float((a @ b) / denom) ** 2


class KMeans:
    """Lloyd's algorithm with k-means++ seeding.

    Attributes after :meth:`fit`: ``centers_`` (k, d), ``labels_`` (N,),
    ``inertia_`` (sum of squared distances), ``n_iter_``.
    """

    def __init__(
        self,
        num_clusters: int,
        max_iterations: int = 300,
        tol: float = 1e-10,
        num_init: int = 4,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if num_clusters < 1:
            raise ClusteringError("num_clusters must be >= 1")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        self.tol = tol
        self.num_init = num_init
        self.seed = seed
        self.centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = np.inf
        self.n_iter_: int = 0

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _distances_sq(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """(N, k) squared Euclidean distances (clipped: the expanded form
        can dip infinitesimally below zero in floating point)."""
        dist_sq = (
            np.sum(data**2, axis=1)[:, None]
            - 2.0 * data @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        return np.clip(dist_sq, 0.0, None)

    def _init_centers(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """k-means++ seeding."""
        n_samples = data.shape[0]
        centers = [data[rng.integers(n_samples)]]
        while len(centers) < self.num_clusters:
            dist_sq = self._distances_sq(data, np.asarray(centers)).min(axis=1)
            total = dist_sq.sum()
            if total <= 0.0:  # all points identical to centers: pick any
                centers.append(data[rng.integers(n_samples)])
                continue
            probabilities = dist_sq / total
            centers.append(data[rng.choice(n_samples, p=probabilities)])
        return np.asarray(centers)

    def _lloyd(
        self, data: np.ndarray, centers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        labels = np.zeros(data.shape[0], dtype=int)
        inertia = np.inf
        for iteration in range(1, self.max_iterations + 1):
            dist_sq = self._distances_sq(data, centers)
            labels = np.argmin(dist_sq, axis=1)
            new_inertia = float(dist_sq[np.arange(data.shape[0]), labels].sum())
            new_centers = centers.copy()
            for cluster in range(self.num_clusters):
                members = data[labels == cluster]
                if members.shape[0] > 0:
                    new_centers[cluster] = members.mean(axis=0)
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if abs(inertia - new_inertia) <= self.tol or shift <= self.tol:
                inertia = new_inertia
                break
            inertia = new_inertia
        return centers, labels, inertia, iteration

    # -- API --------------------------------------------------------------------

    def fit(self, data: np.ndarray) -> "KMeans":
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ClusteringError(f"expected 2-D data, got shape {data.shape}")
        if data.shape[0] < self.num_clusters:
            raise ClusteringError(
                f"cannot form {self.num_clusters} clusters from "
                f"{data.shape[0]} samples"
            )
        rng = as_rng(self.seed)
        best = None
        for _ in range(self.num_init):
            centers = self._init_centers(data, rng)
            centers, labels, inertia, n_iter = self._lloyd(data, centers)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, n_iter)
        self.centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        if self.centers_ is None:
            raise ClusteringError("KMeans.predict called before fit")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        return np.argmin(self._distances_sq(data, self.centers_), axis=1)


def nearest_center(
    sample: np.ndarray, centers: np.ndarray
) -> tuple[int, float]:
    """Index of and Euclidean distance to the closest center (Sec. III-D)."""
    sample = np.asarray(sample, dtype=float).ravel()
    indices, distances = nearest_centers(sample[None, :], centers)
    return int(indices[0]), float(distances[0])


def nearest_centers(
    samples: np.ndarray, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`nearest_center` over a ``(B, d)`` sample matrix.

    Returns ``(indices, distances)`` of shapes ``(B,)``.  Computed with
    the same differences-then-norm arithmetic as the scalar version so
    batch and per-sample cluster assignments agree exactly (the expanded
    ``|a|^2 - 2ab + |b|^2`` form can flip ties).
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    centers = np.asarray(centers, dtype=float)
    distances = np.linalg.norm(
        samples[:, None, :] - centers[None, :, :], axis=2
    )
    indices = np.argmin(distances, axis=1)
    return indices, distances[np.arange(samples.shape[0]), indices]


def min_nearest_fidelity(data: np.ndarray, centers: np.ndarray) -> float:
    """min over samples of max over centers of |<x, c>|^2 (normalized)."""
    data = np.asarray(data, dtype=float)
    centers = np.asarray(centers, dtype=float)
    data_unit = data / np.linalg.norm(data, axis=1, keepdims=True)
    norms = np.linalg.norm(centers, axis=1)
    safe = norms > 1e-300
    centers_unit = centers[safe] / norms[safe][:, None]
    overlaps = (data_unit @ centers_unit.T) ** 2
    return float(overlaps.max(axis=1).min())


def select_num_clusters(
    data: np.ndarray,
    min_fidelity: float = 0.95,
    max_clusters: int = 64,
    seed: "int | np.random.Generator | None" = None,
    num_init: int = 4,
) -> KMeans:
    """Grow ``k`` until every sample's nearest-center fidelity >= threshold.

    Returns the fitted :class:`KMeans` for the smallest satisfying ``k``
    (or for ``max_clusters`` if the threshold is never met, with the
    shortfall left to the caller to inspect via
    :func:`min_nearest_fidelity`).
    """
    data = np.asarray(data, dtype=float)
    rng = as_rng(seed)
    k = 1
    best = None
    while k <= min(max_clusters, data.shape[0]):
        model = KMeans(k, num_init=num_init, seed=rng).fit(data)
        best = model
        if min_nearest_fidelity(data, model.centers_) >= min_fidelity:
            return model
        # Grow geometrically-ish to keep the search cheap for large k.
        k += max(1, k // 3)
    return best
