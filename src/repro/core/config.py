"""Configuration dataclass for the EnQode encoder."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizationError


@dataclass(frozen=True)
class EnQodeConfig:
    """All tunables of the EnQode pipeline, with the paper's defaults.

    Attributes
    ----------
    num_qubits, num_layers:
        Ansatz geometry (paper: 8 qubits, 8 layers -> 64 Rz parameters).
    entangler, alternate_orientation:
        Entangling-gate choice (paper: CY, alternating arrangement).
    min_cluster_fidelity:
        Sec. IV-A rule: clusters are added until every sample has
        nearest-cluster fidelity at least this value (paper: 0.95).
    max_clusters:
        Safety cap for the cluster search.
    offline_restarts, offline_max_iterations:
        L-BFGS budget when training a cluster mean from scratch.
    online_max_iterations:
        L-BFGS budget for transfer-learned per-sample fine-tuning
        (small, keeping online latency low and uniform — Sec. III-D).
    target_fidelity:
        Early-exit threshold for offline restarts.
    optimization_level:
        Transpiler effort used when lowering embedding circuits.
    seed:
        Master seed for clustering and optimizer restarts.
    """

    num_qubits: int = 8
    num_layers: int = 8
    entangler: str = "cy"
    alternate_orientation: bool = True
    min_cluster_fidelity: float = 0.95
    max_clusters: int = 64
    offline_restarts: int = 6
    offline_max_iterations: int = 1500
    online_max_iterations: int = 80
    target_fidelity: float = 0.995
    gtol: float = 1e-9
    ftol: float = 1e-12
    optimization_level: int = 1
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_qubits < 2:
            raise OptimizationError("num_qubits must be >= 2")
        if self.num_layers < 1:
            raise OptimizationError("num_layers must be >= 1")
        if not 0.0 < self.min_cluster_fidelity <= 1.0:
            raise OptimizationError(
                "min_cluster_fidelity must be in (0, 1]"
            )
        if self.online_max_iterations < 1 or self.offline_max_iterations < 1:
            raise OptimizationError("iteration budgets must be positive")

    @property
    def num_amplitudes(self) -> int:
        return 2**self.num_qubits
