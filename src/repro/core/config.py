"""Configuration dataclasses for the EnQode encoder and serving layer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizationError, ServiceError


@dataclass(frozen=True)
class EnQodeConfig:
    """All tunables of the EnQode pipeline, with the paper's defaults.

    Attributes
    ----------
    num_qubits, num_layers:
        Ansatz geometry (paper: 8 qubits, 8 layers -> 64 Rz parameters).
    entangler, alternate_orientation:
        Entangling-gate choice (paper: CY, alternating arrangement).
    min_cluster_fidelity:
        Sec. IV-A rule: clusters are added until every sample has
        nearest-cluster fidelity at least this value (paper: 0.95).
    max_clusters:
        Safety cap for the cluster search.
    offline_restarts, offline_max_iterations:
        L-BFGS budget when training a cluster mean from scratch.
    offline_batch:
        Train all cluster means through one stacked multi-restart
        L-BFGS drive (:meth:`repro.core.batch.BatchLBFGSOptimizer.
        optimize_restarts`) instead of a sequential per-cluster loop —
        the Fig. 9(b) offline analogue of the batched online path.
        Restart draws come from the same RNG stream as the sequential
        loop, so the two paths start every cluster identically and
        agree to ~1e-9 on well-covered clusters; on hard multi-basin
        cluster means individual restarts may descend into different
        local optima (same mean quality, different per-cluster draws of
        the restart lottery).  Set ``False`` to fall back to exact
        per-cluster training (benchmark baseline / escape hatch).
    offline_polish_threshold:
        Gradient inf-norm above which a cluster left unconverged by a
        stacked offline run gets an individual warm-started polish run
        (see :class:`repro.core.batch.BatchLBFGSOptimizer`); only used
        when ``offline_batch`` is on.
    warm_start_cluster_search:
        Seed each step of the growing-``k`` cluster search from the
        previous step's centers (one Lloyd run per step) instead of
        independent k-means++ restarts at every ``k`` — see
        :func:`repro.core.clustering.select_num_clusters`.
    online_max_iterations:
        L-BFGS budget for transfer-learned per-sample fine-tuning
        (small, keeping online latency low and uniform — Sec. III-D).
    online_batch_engine:
        Which batched drive fine-tunes a multi-row online batch:
        ``"rows"`` (the default) runs the per-row vectorized L-BFGS
        (:meth:`repro.core.batch.BatchLBFGSOptimizer.optimize_rows`),
        ``"stacked"`` runs one scipy L-BFGS over the block-diagonal
        summed objective (the pre-PR-4 engine).  Measured on
        warm-started MNIST-PCA batches of 64 the per-row engine is
        1.3-1.5x faster at 4-8 qubits (see
        ``BENCH_batch_throughput.json``, ``finetune_engines``): even in
        warm basins the stacked drive's shared line search makes every
        row wait for the slowest one, while the per-row engine drops
        converged rows out of later passes.  Both engines share the
        scipy polish backstop, so final fidelities agree to ~1e-13;
        flip back to ``"stacked"`` to reproduce the historical batch
        trajectories exactly.  Caveat: the engines count
        ``num_evaluations`` in different units — ``"stacked"`` reports
        scipy's whole-batch objective passes split evenly across rows
        (~1 per sample), ``"rows"`` reports each row's own evaluations
        (~13 per sample, commensurate with the sequential per-sample
        path) — so ``evals_per_sample`` stats are not comparable
        across the knob.
    target_fidelity:
        Early-exit threshold for offline restarts.
    optimization_level:
        Transpiler effort used when lowering embedding circuits.
    seed:
        Master seed for clustering and optimizer restarts.
    """

    num_qubits: int = 8
    num_layers: int = 8
    entangler: str = "cy"
    alternate_orientation: bool = True
    min_cluster_fidelity: float = 0.95
    max_clusters: int = 64
    offline_restarts: int = 6
    offline_max_iterations: int = 1500
    offline_batch: bool = True
    offline_polish_threshold: float = 1e-7
    warm_start_cluster_search: bool = True
    online_max_iterations: int = 80
    online_batch_engine: str = "rows"
    target_fidelity: float = 0.995
    gtol: float = 1e-9
    ftol: float = 1e-12
    optimization_level: int = 1
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_qubits < 2:
            raise OptimizationError("num_qubits must be >= 2")
        if self.num_layers < 1:
            raise OptimizationError("num_layers must be >= 1")
        if not 0.0 < self.min_cluster_fidelity <= 1.0:
            raise OptimizationError(
                "min_cluster_fidelity must be in (0, 1]"
            )
        if self.max_clusters < 1:
            raise OptimizationError("max_clusters must be >= 1")
        if self.online_max_iterations < 1 or self.offline_max_iterations < 1:
            raise OptimizationError("iteration budgets must be positive")
        if self.offline_restarts < 1:
            raise OptimizationError("offline_restarts must be >= 1")
        if self.offline_polish_threshold < 0.0:
            raise OptimizationError(
                "offline_polish_threshold must be non-negative"
            )
        if self.online_batch_engine not in ("stacked", "rows"):
            raise OptimizationError(
                f"online_batch_engine must be 'stacked' or 'rows', "
                f"got {self.online_batch_engine!r}"
            )
        if not 0.0 < self.target_fidelity <= 1.0:
            raise OptimizationError("target_fidelity must be in (0, 1]")
        if self.gtol <= 0.0 or self.ftol <= 0.0:
            raise OptimizationError("gtol and ftol must be > 0")
        if self.optimization_level not in (0, 1):
            raise OptimizationError(
                f"optimization_level must be 0 or 1 (the transpiler's "
                f"supported range), got {self.optimization_level}"
            )

    @property
    def num_amplitudes(self) -> int:
        return 2**self.num_qubits


@dataclass(frozen=True)
class QMLConfig:
    """Tunables of the VQC classifier head and its SPSA trainer.

    Attributes
    ----------
    num_qubits, num_layers:
        Classifier-ansatz geometry.  ``num_qubits`` must match the
        embedding register (the classifier consumes embedded
        ``2**num_qubits``-amplitude states directly).
    margin:
        Hinge threshold of the training loss
        ``mean(max(0, margin - y_i * <Z_0>_i))``.
    num_steps:
        SPSA iterations.
    spsa_a, spsa_c:
        SPSA gain sequences ``a_k = spsa_a / k**0.602`` and
        ``c_k = spsa_c / k**0.101`` (the standard Spall exponents).
    minibatch_size:
        Optional number of samples drawn (without replacement) per SPSA
        step; ``None`` uses the full batch every step.  Minibatch draws
        come from the same RNG stream as the perturbation directions,
        so the batched and reference engines walk identical
        trajectories.
    eval_every:
        Record full-batch loss/accuracy into the training history every
        this many steps (plus the final step).
    engine:
        ``"batched"`` (default) trains through
        :class:`repro.core.batch.VQCObjective` — one cached
        :class:`~repro.transpile.template.ParametricTemplate` bind per
        SPSA step evaluating the theta+/theta- pair, all states
        propagated in one stacked walk.  ``"reference"`` trains through
        the sequential per-state
        :class:`repro.qml.vqc.VariationalClassifier` path.  Both draw
        from one RNG stream; single evaluations agree to ~1e-15 and
        whole trajectories to ~1e-9 (float non-associativity compounds
        over steps).
    optimization_level:
        Transpiler effort for the classifier template (batched engine).
    seed:
        Seed for theta initialization and the SPSA stream.
    """

    num_qubits: int = 8
    num_layers: int = 2
    margin: float = 0.4
    num_steps: int = 120
    spsa_a: float = 0.25
    spsa_c: float = 0.15
    minibatch_size: "int | None" = None
    eval_every: int = 10
    engine: str = "batched"
    optimization_level: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_qubits < 2:
            raise OptimizationError("num_qubits must be >= 2")
        if self.num_layers < 1:
            raise OptimizationError("num_layers must be >= 1")
        if self.margin <= 0.0:
            raise OptimizationError("margin must be > 0")
        if self.num_steps < 1:
            raise OptimizationError("num_steps must be >= 1")
        if self.spsa_a <= 0.0 or self.spsa_c <= 0.0:
            raise OptimizationError("spsa_a and spsa_c must be > 0")
        if self.minibatch_size is not None and self.minibatch_size < 1:
            raise OptimizationError(
                "minibatch_size must be >= 1 (or None for full batch)"
            )
        if self.eval_every < 1:
            raise OptimizationError("eval_every must be >= 1")
        if self.engine not in ("batched", "reference"):
            raise OptimizationError(
                f"engine must be 'batched' or 'reference', "
                f"got {self.engine!r}"
            )
        if self.optimization_level not in (0, 1):
            raise OptimizationError(
                f"optimization_level must be 0 or 1, "
                f"got {self.optimization_level}"
            )

    @property
    def num_amplitudes(self) -> int:
        return 2**self.num_qubits

    @property
    def num_parameters(self) -> int:
        return 2 * self.num_qubits * self.num_layers


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the :class:`repro.service.EncodingService` front end.

    Attributes
    ----------
    backend:
        Execution backend for micro-batch flushes.  ``"sync"`` (the
        default) flushes inline from ``submit``/``poll``/``flush`` calls
        — deterministic and single-threaded, but the ``max_delay``
        deadline only fires when some call happens to arrive.
        ``"thread"`` runs a daemon flusher thread that wakes on the
        earliest pending deadline and on full-queue events, plus a
        worker pool of ``workers`` threads executing flushes for
        different keys concurrently; the service must be
        ``start()``-ed before submitting and ``stop()``-ed when done.
        ``"process"`` keeps the same flusher/worker plumbing but
        executes each flush in one of ``workers`` *worker processes*
        that own fitted-encoder replicas (bundles shipped at spawn via
        the JSON serialization, responses returned as the binary wire
        record and decoded by template rebind — float-bit identical to
        ``encode_batch``), escaping the GIL for CPU-bound fine-tuning.
        Requires ``use_template=True`` (the wire response is a
        template-bound record).
    workers:
        Worker-pool size for the ``"thread"`` and ``"process"``
        backends (ignored by ``"sync"``).  At most one flush per
        registry key — and at most one flush per underlying encoder
        pipeline — is in flight at any time, so a key's requests
        complete in submission order and every flush is
        instruction-identical to ``encode_batch`` on the same samples;
        ``workers`` bounds how many *different* keys encode
        concurrently.  Under ``"process"`` it is also the process-fleet
        size: every worker process holds replicas of *all* registered
        encoders, and ``shard_strategy`` routes each key to one of
        them.
    max_batch:
        Size trigger: a key's queue reaching this many pending requests
        is flushed immediately.
    max_delay:
        Optional latency deadline in seconds: a queue whose oldest
        request has waited this long is flushed — at the next
        ``submit``/``poll`` under the sync backend, by the background
        flusher (without requiring traffic) under the thread backend.
        ``None`` disables the deadline.
    use_template:
        Lower flushes via the cached parametric transpile template (the
        fast path) or full per-sample transpiles (escape hatch).
    max_pending_per_key:
        Admission control: the most requests one key's queue may hold.
        A ``submit`` that would exceed it is handled per
        ``overload_policy`` *before* enqueueing, so overload is decided
        in O(1) at the front door instead of melting down the worker
        pool.  ``None`` (default) disables the per-key budget.
    max_pending_total:
        Admission control: the most requests all queues together may
        hold (the global memory/latency budget).  ``None`` disables it.
    overload_policy:
        What an over-budget ``submit`` does.  ``"reject"`` (default)
        raises a typed :class:`repro.errors.OverloadError` immediately —
        the caller sees backpressure and can retry later.  ``"degrade"``
        sheds load gracefully: the sample is served *inline* by binding
        its routed cluster-centroid parameters through the cached
        template with the finetune stage skipped entirely — the paper's
        offline/online split exploited as a fallback.  Degraded
        responses come back in microseconds with ``degraded=True`` and
        the centroid's (lower) fidelity instead of queueing behind a
        saturated fine-tune pipeline.
    flush_timeout:
        Thread backend only: seconds a dispatched flush may execute
        before the flusher *abandons* it — its tickets fail with
        :class:`repro.errors.DeadlineExceededError`, its key is freed
        for follow-up traffic, and the (unkillable) pipeline run's
        eventual result is discarded.  This bounds head-of-line
        blocking when one fine-tune wedges.  ``None`` (default)
        disables it.  The sync backend ignores it (a sync flush runs on
        the caller's thread; there is nobody to abandon it).
    retry_attempts:
        Most retries of a failing flush whose exception the service's
        transient classifier accepts (default classifier: the
        exception's ``transient`` attribute is truthy).  Retries re-run
        the *same* batch through the same pipeline — deterministic
        numerics — with exponential backoff and full jitter between
        attempts, and each request carries its attempt count across
        worker-death requeues so the budget is per ticket, not per
        dispatch.  ``0`` (default) disables retries.
    retry_backoff:
        Base backoff in seconds: attempt ``k`` sleeps
        ``retry_backoff * 2**k`` scaled by jitter.  ``0.0`` retries
        immediately (useful in tests).
    retry_jitter:
        Fraction of each backoff randomized away (full-jitter style):
        the sleep is uniform in
        ``[delay * (1 - retry_jitter), delay]``.  ``0.0`` is
        deterministic backoff, ``1.0`` is full jitter.
    retry_seed:
        Seed of the jitter RNG (retries stay reproducible).
    breaker_threshold:
        Per-key circuit breaker: after this many *consecutive* flush
        failures the key's breaker opens and submissions for it fail
        fast with :class:`repro.errors.CircuitOpenError` — a poisoned
        bundle stops burning workers.  After ``breaker_reset_timeout``
        seconds the breaker goes half-open: one probe batch is admitted;
        success closes the breaker, failure re-opens it for another
        timeout.  ``None`` (default) disables the breaker.
    breaker_reset_timeout:
        Seconds an open breaker waits before allowing the half-open
        probe.
    shard_strategy:
        Process backend only: how registry keys map onto worker
        processes.  ``"rendezvous"`` (default) uses highest-random-
        weight hashing over the *alive* fleet — when a worker dies only
        its own keys move, and they move straight to survivors (every
        process holds every bundle, so rerouting needs no data motion).
        ``"modulo"`` hashes the key modulo the fleet size and probes
        forward past dead slots — simpler to reason about, but a death
        reshuffles more keys.  Both use a stable content hash (never
        Python's per-process-salted ``hash``), so ``key -> worker`` is
        reproducible across runs and across the parent/bench tooling.
    spawn_timeout:
        Process backend only: seconds to wait for a worker process to
        come up and complete its ready handshake (covers interpreter
        start, imports, and deserializing every encoder bundle).
        Fleet spawn waits this long *per fleet*, respawns this long per
        replacement worker.
    handshake_timeout:
        Process backend only: seconds to wait for a worker's
        acknowledgement of a control message (e.g. shipping a newly
        ``register()``-ed bundle to the live fleet).  A worker that is
        mid-flush finishes that flush first, so size this above the
        slowest expected flush.
    """

    backend: str = "sync"
    workers: int = 4
    max_batch: int = 32
    max_delay: "float | None" = None
    use_template: bool = True
    max_pending_per_key: "int | None" = None
    max_pending_total: "int | None" = None
    overload_policy: str = "reject"
    flush_timeout: "float | None" = None
    retry_attempts: int = 0
    retry_backoff: float = 0.05
    retry_jitter: float = 0.5
    retry_seed: int = 0
    breaker_threshold: "int | None" = None
    breaker_reset_timeout: float = 30.0
    shard_strategy: str = "rendezvous"
    spawn_timeout: float = 60.0
    handshake_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.backend not in ("sync", "thread", "process"):
            raise ServiceError(
                f"backend must be 'sync', 'thread' or 'process', "
                f"got {self.backend!r}"
            )
        if self.backend == "process" and not self.use_template:
            raise ServiceError(
                "backend='process' requires use_template=True: worker "
                "responses cross the boundary as template-bound wire "
                "records"
            )
        if self.workers < 1:
            raise ServiceError("workers must be >= 1")
        if self.max_batch < 1:
            raise ServiceError("max_batch must be >= 1")
        if self.max_delay is not None and self.max_delay < 0.0:
            raise ServiceError("max_delay must be non-negative (or None)")
        if self.max_pending_per_key is not None and self.max_pending_per_key < 1:
            raise ServiceError("max_pending_per_key must be >= 1 (or None)")
        if self.max_pending_total is not None and self.max_pending_total < 1:
            raise ServiceError("max_pending_total must be >= 1 (or None)")
        if self.overload_policy not in ("reject", "degrade"):
            raise ServiceError(
                f"overload_policy must be 'reject' or 'degrade', "
                f"got {self.overload_policy!r}"
            )
        if self.flush_timeout is not None and self.flush_timeout <= 0.0:
            raise ServiceError("flush_timeout must be > 0 (or None)")
        if self.retry_attempts < 0:
            raise ServiceError("retry_attempts must be >= 0")
        if self.retry_backoff < 0.0:
            raise ServiceError("retry_backoff must be non-negative")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ServiceError("retry_jitter must be in [0, 1]")
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ServiceError("breaker_threshold must be >= 1 (or None)")
        if self.breaker_reset_timeout < 0.0:
            raise ServiceError("breaker_reset_timeout must be non-negative")
        if self.shard_strategy not in ("rendezvous", "modulo"):
            raise ServiceError(
                f"shard_strategy must be 'rendezvous' or 'modulo', "
                f"got {self.shard_strategy!r}"
            )
        if self.spawn_timeout <= 0.0:
            raise ServiceError("spawn_timeout must be > 0")
        if self.handshake_timeout <= 0.0:
            raise ServiceError("handshake_timeout must be > 0")
