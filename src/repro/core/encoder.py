"""The EnQode encoder: the paper's end-to-end amplitude-embedding pipeline.

Offline (:meth:`EnQodeEncoder.fit`, Sec. III-C): k-means the dataset with
the 0.95 nearest-cluster-fidelity rule (warm-starting each step of the
growing-``k`` search from the previous step's centers), then train the
fixed-shape ansatz against every cluster mean — by default through one
stacked multi-restart symbolic L-BFGS drive over all means at once (the
Fig. 9(b) offline fast path; ``config.offline_batch=False`` restores the
sequential per-cluster loop).

Online (:meth:`EnQodeEncoder.encode`, Sec. III-D): map a sample to its
nearest cluster, fine-tune that cluster's parameters for the sample, bind
them into the ansatz, and transpile to the backend.  Every sample gets a
circuit with **identical shape** — identical depth, gate counts, and
noise exposure — which is EnQode's core claim.

Batched online (:meth:`EnQodeEncoder.encode_batch`): the fixed shape
also means every sample's *compilation* is the same work with different
Rz angles, so the batch path (i) fine-tunes all samples concurrently via
the batched optimizer in :mod:`repro.core.batch` and (ii) transpiles the
ansatz **once** into a cached parametric template
(:func:`repro.transpile.transpiler.transpile_template`), lowering the
whole batch through one vectorized ``bind_batch`` sweep.  This is the amortized form of the paper's Fig. 9(a)
millisecond-compile-latency claim; results are numerically equivalent to
the per-sample loop (same cluster assignments, fidelities, and
transpiled circuits).

Both entry points are thin shims over the shared stage pipeline of
:mod:`repro.core.pipeline` (route → finetune → bind → lower): ``encode``
is a pipeline run of batch size one in full-transpile mode, and
``encode_batch`` is a pipeline run in template mode.  New code that
serves a *stream* of samples should prefer
:class:`repro.service.EncodingService`, which drives the same pipeline
through a micro-batcher; the shims stay for one-off and big-batch use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ansatz import EnQodeAnsatz
from repro.core.batch import BatchFidelityObjective, BatchLBFGSOptimizer
from repro.core.clustering import (
    KMeans,
    min_nearest_fidelity,
    select_num_clusters,
)
from repro.core.config import EnQodeConfig
from repro.core.objective import FidelityObjective
from repro.core.optimizer import LBFGSOptimizer, OptimizationResult
from repro.core.pipeline import EncodedSample, EncodePipeline
from repro.core.symbolic import SymbolicState
from repro.core.transfer import TransferLearner
from repro.data.preprocess import prepare_amplitudes
from repro.errors import OptimizationError
from repro.hardware.backend import Backend
from repro.utils.timing import Timer

__all__ = [
    "ClusterModel",
    "EncodedSample",
    "EnQodeEncoder",
    "OfflineReport",
]


@dataclass
class ClusterModel:
    """One trained cluster: its mean state and optimized parameters."""

    center: np.ndarray
    theta: np.ndarray
    fidelity: float
    training_time: float
    result: OptimizationResult


@dataclass
class OfflineReport:
    """Summary of :meth:`EnQodeEncoder.fit` (the Fig. 9(b) numbers)."""

    num_clusters: int
    total_time: float
    clustering_time: float
    training_time: float
    min_nearest_fidelity: float
    cluster_fidelities: list[float] = field(default_factory=list)
    cluster_times: list[float] = field(default_factory=list)

    @property
    def mean_cluster_fidelity(self) -> float:
        return float(np.mean(self.cluster_fidelities))


class EnQodeEncoder:
    """Cluster-train offline, transfer-learn online (the paper's system)."""

    def __init__(
        self,
        backend: Backend,
        config: EnQodeConfig | None = None,
        preprocessor=None,
    ) -> None:
        self.backend = backend
        self.config = config or EnQodeConfig()
        if 2**self.config.num_qubits > 2**backend.num_qubits:
            raise OptimizationError(
                f"{self.config.num_qubits}-qubit encoder cannot target "
                f"{backend.num_qubits}-qubit backend"
            )
        if (
            preprocessor is not None
            and preprocessor.output_size != self.config.num_amplitudes
        ):
            raise OptimizationError(
                f"preprocessor emits {preprocessor.output_size}-wide rows "
                f"but the encoder embeds "
                f"{self.config.num_amplitudes} amplitudes"
            )
        #: Optional trainable classical embedding (NQE-style, see
        #: :class:`repro.data.trainable.TrainableEmbedding`) applied to
        #: every raw sample before clustering/routing; when set, this
        #: encoder accepts ``input_size``-wide rows everywhere.
        self.preprocessor = preprocessor
        self.ansatz = EnQodeAnsatz(
            self.config.num_qubits,
            self.config.num_layers,
            self.config.entangler,
            self.config.alternate_orientation,
        )
        self.symbolic = SymbolicState.from_ansatz(self.ansatz)
        self.kmeans: KMeans | None = None
        self.cluster_models: list[ClusterModel] = []
        self.offline_report: OfflineReport | None = None
        self._transfer: TransferLearner | None = None
        self._pipeline: EncodePipeline | None = None

    # -- offline ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._transfer is not None

    @property
    def input_size(self) -> int:
        """Raw-sample width this encoder accepts: the preprocessor's
        input width when one is attached, else ``2**num_qubits``."""
        if self.preprocessor is not None:
            return self.preprocessor.input_size
        return self.config.num_amplitudes

    def project(self, sample: np.ndarray) -> np.ndarray:
        """Map one raw sample to its unit-norm embedded vector.

        This is the vector the encoder's circuits actually embed — the
        preprocessed-and-renormalized row when a preprocessor is
        attached, the normalized sample itself otherwise.  Routing
        (:func:`repro.core.multiclass.nearest_class`) compares cluster
        centers against *this*, so per-class encoders with different
        preprocessors stay comparable.
        """
        sample = np.asarray(sample, dtype=float).ravel()
        if sample.size != self.input_size:
            raise OptimizationError(
                f"sample has {sample.size} features, expected "
                f"{self.input_size}"
            )
        if self.preprocessor is not None:
            return self.preprocessor.transform(sample[None, :])[0]
        norm = np.linalg.norm(sample)
        if norm < 1e-12:
            raise OptimizationError("cannot embed a zero sample")
        return sample / norm

    def _guard_preprocessor_kwargs(
        self, normalize: bool, pad_with: "float | None"
    ) -> None:
        if self.preprocessor is not None and (
            pad_with is not None or not normalize
        ):
            raise OptimizationError(
                "normalize=False / pad_with are raw-amplitude input "
                "conveniences and cannot be combined with a trainable "
                "preprocessor (which defines its own input width and "
                "renormalizes its output)"
            )

    def fit(
        self,
        samples: np.ndarray,
        *,
        normalize: bool = True,
        pad_with: "float | None" = None,
    ) -> OfflineReport:
        """Cluster ``samples`` and train one ansatz per cluster mean.

        ``normalize``/``pad_with`` are PennyLane ``AmplitudeEmbedding``
        input conveniences (see
        :func:`repro.data.preprocess.prepare_amplitudes`): with
        ``pad_with`` set, rows shorter than ``2^n`` are right-padded
        with that constant before embedding; with ``normalize=False``
        rows must already be unit-norm (a
        :class:`~repro.errors.DataError` otherwise).  The defaults
        reproduce the historical behaviour exactly — full-length rows,
        normalized here.

        With ``config.offline_batch`` (the default) all cluster means are
        trained through **one stacked multi-restart L-BFGS drive**
        (:meth:`repro.core.batch.BatchLBFGSOptimizer.optimize_restarts`)
        instead of a sequential per-cluster loop: every restart evaluates
        all still-unconverged clusters in one BLAS pass, restart draws
        come from the same RNG stream the sequential loop would use, and
        clusters that reach ``config.target_fidelity`` drop out of later
        restarts.  On well-covered clusters (tight means, the regime the
        paper's Sec. IV-A fidelity rule targets) cluster fidelities
        match the sequential path to ~1e-9 at a fraction of the wall
        time — the offline analogue of :meth:`encode_batch`, serving
        the paper's Fig. 9(b) offline-overhead numbers.  On hard
        multi-basin cluster means (coarse clustering, larger qubit
        counts) the two paths take different descent trajectories and a
        losing restart can land in a different local optimum — per-
        cluster fidelities may then differ in either direction, with
        the same mean quality; ``offline_batch=False`` restores the
        exact sequential behaviour.
        """
        self._guard_preprocessor_kwargs(normalize, pad_with)
        if self.preprocessor is not None:
            # The learned map runs before clustering, so the cluster
            # centers (and everything downstream) live in the embedded
            # feature space — exactly what routing will compare against.
            samples = self.preprocessor.transform(samples)
        elif pad_with is not None or not normalize:
            samples = prepare_amplitudes(
                samples,
                self.config.num_amplitudes,
                normalize=normalize,
                pad_with=pad_with,
            )
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2 or samples.shape[1] != self.config.num_amplitudes:
            raise OptimizationError(
                f"samples must be (N, {self.config.num_amplitudes}), "
                f"got {samples.shape}"
            )
        norms = np.linalg.norm(samples, axis=1, keepdims=True)
        if np.any(norms < 1e-12):
            raise OptimizationError(
                "cannot fit on a zero sample row (amplitude embedding is "
                "undefined for the zero vector)"
            )
        samples = samples / norms

        with Timer() as cluster_timer:
            self.kmeans = select_num_clusters(
                samples,
                min_fidelity=self.config.min_cluster_fidelity,
                max_clusters=self.config.max_clusters,
                seed=self.config.seed,
                warm_start=self.config.warm_start_cluster_search,
            )
        centers = self.kmeans.centers_

        with Timer() as training_timer:
            if self.config.offline_batch:
                self.cluster_models = self._train_clusters_batched(centers)
            else:
                self.cluster_models = self._train_clusters_sequential(centers)

        self._transfer = TransferLearner(
            self.ansatz,
            self.symbolic,
            centers=np.asarray([m.center for m in self.cluster_models]),
            cluster_thetas=np.asarray([m.theta for m in self.cluster_models]),
            max_iterations=self.config.online_max_iterations,
            gtol=self.config.gtol,
            ftol=self.config.ftol,
            batch_engine=self.config.online_batch_engine,
        )
        self.offline_report = OfflineReport(
            num_clusters=len(self.cluster_models),
            total_time=cluster_timer.elapsed + training_timer.elapsed,
            clustering_time=cluster_timer.elapsed,
            training_time=training_timer.elapsed,
            min_nearest_fidelity=min_nearest_fidelity(samples, centers),
            cluster_fidelities=[m.fidelity for m in self.cluster_models],
            cluster_times=[m.training_time for m in self.cluster_models],
        )
        return self.offline_report

    def _train_clusters_sequential(
        self, centers: np.ndarray
    ) -> list[ClusterModel]:
        """The per-cluster training loop (escape hatch / bench baseline)."""
        optimizer = LBFGSOptimizer(
            max_iterations=self.config.offline_max_iterations,
            gtol=self.config.gtol,
            ftol=self.config.ftol,
            num_restarts=self.config.offline_restarts,
            target_fidelity=self.config.target_fidelity,
            seed=self.config.seed,
        )
        models = []
        for center in centers:
            unit_center = center / np.linalg.norm(center)
            objective = FidelityObjective(
                self.symbolic, self.ansatz, unit_center
            )
            with Timer() as one_timer:
                result = optimizer.optimize(objective)
            models.append(
                ClusterModel(
                    center=unit_center,
                    theta=result.theta,
                    fidelity=result.fidelity,
                    training_time=one_timer.elapsed,
                    result=result,
                )
            )
        return models

    def _train_clusters_batched(
        self, centers: np.ndarray
    ) -> list[ClusterModel]:
        """One stacked multi-restart drive over all cluster means.

        Per-cluster ``training_time``/iteration/evaluation numbers come
        from the batch result's attribution arrays (each drive's shared
        cost split evenly over the clusters active in it, polish
        iterations/evaluations individual, wall time an even share), so
        ``OfflineReport.cluster_times`` stays faithful: it sums back to
        the batched training wall time.
        """
        unit_centers = centers / np.linalg.norm(
            centers, axis=1, keepdims=True
        )
        objective = BatchFidelityObjective(
            self.symbolic, self.ansatz, unit_centers
        )
        optimizer = BatchLBFGSOptimizer(
            max_iterations=self.config.offline_max_iterations,
            gtol=self.config.gtol,
            ftol=self.config.ftol,
            polish_threshold=self.config.offline_polish_threshold,
            num_restarts=self.config.offline_restarts,
            target_fidelity=self.config.target_fidelity,
            seed=self.config.seed,
        )
        run = optimizer.optimize_restarts(objective)
        # Integerize the fractional per-cluster evaluation shares with
        # largest-remainder rounding so they sum back to the exact run
        # total (the same contract embed_batch keeps for its samples).
        evaluations = np.floor(run.cluster_evaluations).astype(int)
        deficit = int(run.num_evaluations - evaluations.sum())
        if deficit > 0:
            order = np.argsort(evaluations - run.cluster_evaluations)
            for i in range(deficit):
                evaluations[order[i % order.size]] += 1
        models = []
        for c in range(run.batch_size):
            result = OptimizationResult(
                theta=np.array(run.thetas[c]),
                fidelity=float(run.fidelities[c]),
                loss=float(run.losses[c]),
                num_iterations=int(run.cluster_iterations[c]),
                num_evaluations=int(evaluations[c]),
                time=float(run.cluster_times[c]),
                converged=bool(run.converged[c]),
                restarts_used=int(run.restarts_used[c]),
                history=run.histories[c],
            )
            models.append(
                ClusterModel(
                    center=unit_centers[c],
                    theta=result.theta,
                    fidelity=result.fidelity,
                    training_time=result.time,
                    result=result,
                )
            )
        return models

    # -- online --------------------------------------------------------------------

    @property
    def pipeline(self) -> EncodePipeline:
        """The shared route → finetune → bind → lower stage pipeline.

        Built lazily from the fitted transfer learner and rebuilt if the
        models are replaced (a refit, or a reload through
        :mod:`repro.core.serialization`).  ``encode``/``encode_batch``
        and :class:`repro.service.EncodingService` all execute this one
        object, so there is a single implementation of the online path.
        """
        if not self.is_fitted:
            raise OptimizationError(
                "EnQodeEncoder has no pipeline before fit (or reload)"
            )
        if (
            self._pipeline is None
            or self._pipeline.transfer is not self._transfer
        ):
            self._pipeline = EncodePipeline(
                self.ansatz,
                self.backend,
                self.config.optimization_level,
                self._transfer,
                preprocessor=self.preprocessor,
            )
        return self._pipeline

    def encode(
        self,
        sample: np.ndarray,
        *,
        normalize: bool = True,
        pad_with: "float | None" = None,
    ) -> EncodedSample:
        """Embed one sample via transfer learning (the "real-time" path).

        Compatibility shim: a :meth:`pipeline` run of batch size one in
        full-transpile mode, which preserves the historical one-off
        behaviour exactly (sequential scipy fine-tune, per-call
        transpile).  ``normalize``/``pad_with`` are the PennyLane
        ``AmplitudeEmbedding`` input conveniences of
        :func:`repro.data.preprocess.prepare_amplitudes`; the defaults
        are the historical behaviour.  Streaming callers should use
        :class:`repro.service.EncodingService` instead, which batches
        submissions into the template fast path.
        """
        if not self.is_fitted:
            raise OptimizationError("EnQodeEncoder.encode called before fit")
        self._guard_preprocessor_kwargs(normalize, pad_with)
        sample = np.asarray(sample, dtype=float).ravel()
        if pad_with is not None or not normalize:
            sample = prepare_amplitudes(
                sample,
                self.config.num_amplitudes,
                normalize=normalize,
                pad_with=pad_with,
            )[0]
        if sample.size != self.input_size:
            raise OptimizationError(
                f"sample has {sample.size} features, expected "
                f"{self.input_size}"
            )
        return self.pipeline.run(sample[None, :], use_template=False)[0]

    def encode_batch(
        self,
        samples: np.ndarray,
        use_template: bool = True,
        *,
        normalize: bool = True,
        pad_with: "float | None" = None,
    ) -> list[EncodedSample]:
        """Embed a ``(B, 2^n)`` sample matrix through the batched fast path.

        Compatibility shim over a :meth:`pipeline` run in template mode.
        Produces the same :class:`EncodedSample` list as ``[self.encode(x)
        for x in samples]`` — identical cluster assignments, fidelities,
        and transpiled circuits — but:

        * all ``B`` fine-tunes run concurrently through one batched
          L-BFGS drive over a :class:`~repro.core.batch.
          BatchFidelityObjective` (one BLAS pass per iteration; the
          engine is selected by ``config.online_batch_engine``);
        * the ansatz is transpiled once per (ansatz, backend,
          optimization_level) into a cached parametric template, and the
          whole batch re-binds its Rz angles through one vectorized
          :meth:`~repro.transpile.template.ParametricTemplate.bind_batch`
          sweep (stacked 2x2 composition + batched ZYZ resynthesis,
          instruction-identical to per-sample binds).

        A single-row batch uses the sequential fine-tune engine (it *is*
        ``encode``, modulo the template), so micro-batches of any size
        stay consistent with the one-off path.  ``use_template=False``
        falls back to full per-sample transpiles (still with batched
        optimization); it exists for benchmarking and as an escape
        hatch.  Per-sample ``compile_time`` reports each sample's share
        of the batch optimization (and of the one-time template build,
        on a cache miss) plus its own bind time, so the sum over a batch
        tracks actual wall time.  ``normalize``/``pad_with`` are the
        same ``AmplitudeEmbedding`` input conveniences as on
        :meth:`encode`.
        """
        if not self.is_fitted:
            raise OptimizationError(
                "EnQodeEncoder.encode_batch called before fit"
            )
        self._guard_preprocessor_kwargs(normalize, pad_with)
        if pad_with is not None or not normalize:
            samples = prepare_amplitudes(
                samples,
                self.config.num_amplitudes,
                normalize=normalize,
                pad_with=pad_with,
            )
        return self.pipeline.run(samples, use_template=use_template)

    # -- introspection ----------------------------------------------------------------

    def cluster_centers(self) -> np.ndarray:
        """Unit-norm cluster centers (available after fit *or* reload)."""
        if not self.cluster_models:
            raise OptimizationError("encoder not fitted")
        return np.asarray([model.center for model in self.cluster_models])

    def __repr__(self) -> str:
        state = (
            f"fitted, clusters={len(self.cluster_models)}"
            if self.is_fitted
            else "unfitted"
        )
        return f"EnQodeEncoder({self.ansatz!r}, {state})"
