"""Per-class EnQode training — the paper's full-dataset workflow.

Sec. IV-A reports offline cost "per dataset and class": EnQode trains an
independent set of cluster models for every class of a dataset.  This
facade manages that collection: fit one encoder per class, route encode
requests, and aggregate the offline reports (what Fig. 9(b) plots).

.. deprecated::
    The *serving* half of this class (``encode``/``encode_auto``) is a
    compatibility shim.  Online traffic should go through
    :class:`repro.service.EncodingService`, which holds the same
    per-class encoders in an :class:`repro.service.EncoderRegistry`
    (``EncoderRegistry.from_per_class``), adds micro-batching, and
    exposes request/response records with latency accounting.  The
    offline half (``fit``/``total_offline_time``) remains the supported
    way to train a per-class model collection.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.clustering import nearest_center
from repro.core.config import EnQodeConfig
from repro.core.encoder import EncodedSample, EnQodeEncoder, OfflineReport
from repro.data.preprocess import EmbeddingDataset
from repro.errors import OptimizationError
from repro.hardware.backend import Backend


def nearest_class(
    sample: np.ndarray, encoders: Mapping[int, EnQodeEncoder]
) -> int:
    """The class whose nearest cluster center is closest to ``sample``.

    The natural extension of Sec. III-D's nearest-cluster assignment
    across several trained models: each class is represented by its best
    (closest) cluster center, and ties go to the earliest-registered
    class.  Shared by :meth:`PerClassEnQode.encode_auto` and the service
    registry's automatic routing
    (:meth:`repro.service.EncoderRegistry.route`), so both serving paths
    make identical routing decisions.
    """
    if not encoders:
        raise OptimizationError("no encoders to route between")
    sample = np.asarray(sample, dtype=float).ravel()
    norm = np.linalg.norm(sample)
    if norm < 1e-12:
        raise OptimizationError("cannot route the zero vector")
    unit = sample / norm
    best_label, best_distance = None, np.inf
    for label, encoder in encoders.items():
        # Compare in each encoder's *embedded* space (the identity map
        # for preprocessor-free encoders) with the same nearest-center
        # arithmetic the route stage uses, so class-level and
        # cluster-level assignments cannot drift apart.
        projected = (
            encoder.project(unit) if hasattr(encoder, "project") else unit
        )
        _, nearest = nearest_center(projected, encoder.cluster_centers())
        if nearest < best_distance:
            best_label, best_distance = label, nearest
    return best_label


class PerClassEnQode:
    """One :class:`EnQodeEncoder` per dataset class (Sec. III-C setup)."""

    def __init__(
        self, backend: Backend, config: EnQodeConfig | None = None
    ) -> None:
        self.backend = backend
        self.config = config or EnQodeConfig()
        self.encoders: dict[int, EnQodeEncoder] = {}

    # -- offline -----------------------------------------------------------------

    def fit(self, dataset: EmbeddingDataset) -> dict[int, OfflineReport]:
        """Train cluster models for every class; returns per-class reports."""
        reports = {}
        for label in dataset.classes():
            label = int(label)
            encoder = EnQodeEncoder(self.backend, self.config)
            reports[label] = encoder.fit(dataset.class_slice(label))
            self.encoders[label] = encoder
        return reports

    @property
    def is_fitted(self) -> bool:
        return bool(self.encoders)

    def classes(self) -> list[int]:
        return sorted(self.encoders)

    # -- online (deprecated shims — see repro.service) -----------------------------

    def encoder_for(self, label: int) -> EnQodeEncoder:
        try:
            return self.encoders[int(label)]
        except KeyError:
            raise OptimizationError(
                f"no encoder trained for class {label}; "
                f"available: {self.classes()}"
            ) from None

    def encode(self, sample: np.ndarray, label: int) -> EncodedSample:
        """Embed ``sample`` with its class's trained models.

        .. deprecated:: prefer ``EncodingService.submit(sample,
           key=label)`` for serving traffic.
        """
        return self.encoder_for(label).encode(sample)

    def encode_auto(self, sample: np.ndarray) -> EncodedSample:
        """Embed a sample of unknown class.

        Picks the class via :func:`nearest_class`, then transfer-learns
        there.

        .. deprecated:: prefer ``EncodingService.submit(sample)`` (no
           key), which applies the same routing rule through the
           registry and micro-batches the fine-tune.
        """
        if not self.is_fitted:
            raise OptimizationError("PerClassEnQode.encode_auto before fit")
        return self.encoders[nearest_class(sample, self.encoders)].encode(
            sample
        )

    # -- reporting ----------------------------------------------------------------

    def total_offline_time(self) -> float:
        """Sum of per-class offline costs (the paper's <200 s per class)."""
        return sum(
            encoder.offline_report.total_time
            for encoder in self.encoders.values()
            if encoder.offline_report is not None
        )

    def __repr__(self) -> str:
        return (
            f"PerClassEnQode(classes={self.classes()}, "
            f"backend={self.backend.name!r})"
        )
