"""Per-class EnQode training — the paper's full-dataset workflow.

Sec. IV-A reports offline cost "per dataset and class": EnQode trains an
independent set of cluster models for every class of a dataset.  This
facade manages that collection: fit one encoder per class, route encode
requests, and aggregate the offline reports (what Fig. 9(b) plots).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import EnQodeConfig
from repro.core.encoder import EncodedSample, EnQodeEncoder, OfflineReport
from repro.data.preprocess import EmbeddingDataset
from repro.errors import OptimizationError
from repro.hardware.backend import Backend


class PerClassEnQode:
    """One :class:`EnQodeEncoder` per dataset class (Sec. III-C setup)."""

    def __init__(
        self, backend: Backend, config: EnQodeConfig | None = None
    ) -> None:
        self.backend = backend
        self.config = config or EnQodeConfig()
        self.encoders: dict[int, EnQodeEncoder] = {}

    # -- offline -----------------------------------------------------------------

    def fit(self, dataset: EmbeddingDataset) -> dict[int, OfflineReport]:
        """Train cluster models for every class; returns per-class reports."""
        reports = {}
        for label in dataset.classes():
            label = int(label)
            encoder = EnQodeEncoder(self.backend, self.config)
            reports[label] = encoder.fit(dataset.class_slice(label))
            self.encoders[label] = encoder
        return reports

    @property
    def is_fitted(self) -> bool:
        return bool(self.encoders)

    def classes(self) -> list[int]:
        return sorted(self.encoders)

    # -- online ------------------------------------------------------------------

    def encoder_for(self, label: int) -> EnQodeEncoder:
        try:
            return self.encoders[int(label)]
        except KeyError:
            raise OptimizationError(
                f"no encoder trained for class {label}; "
                f"available: {self.classes()}"
            ) from None

    def encode(self, sample: np.ndarray, label: int) -> EncodedSample:
        """Embed ``sample`` with its class's trained models."""
        return self.encoder_for(label).encode(sample)

    def encode_auto(self, sample: np.ndarray) -> EncodedSample:
        """Embed a sample of unknown class.

        Picks the class whose nearest cluster center is closest to the
        sample (the natural extension of Sec. III-D's nearest-cluster
        assignment across all trained models), then transfer-learns there.
        """
        if not self.is_fitted:
            raise OptimizationError("PerClassEnQode.encode_auto before fit")
        sample = np.asarray(sample, dtype=float).ravel()
        unit = sample / np.linalg.norm(sample)
        best_label, best_distance = None, np.inf
        for label, encoder in self.encoders.items():
            centers = encoder.cluster_centers()
            distances = np.linalg.norm(centers - unit[None, :], axis=1)
            nearest = float(distances.min())
            if nearest < best_distance:
                best_label, best_distance = label, nearest
        return self.encoders[best_label].encode(sample)

    # -- reporting ----------------------------------------------------------------

    def total_offline_time(self) -> float:
        """Sum of per-class offline costs (the paper's <200 s per class)."""
        return sum(
            encoder.offline_report.total_time
            for encoder in self.encoders.values()
            if encoder.offline_report is not None
        )

    def __repr__(self) -> str:
        return (
            f"PerClassEnQode(classes={self.classes()}, "
            f"backend={self.backend.name!r})"
        )
