"""Fidelity objective with a closed-form (symbolic) Jacobian (Sec. III-B).

The embedded state is ``V |psi(theta)>`` with ``V`` the fixed closing
layer, so the fidelity against a real target ``x`` is

    F(theta) = |<x| V |psi(theta)>|^2 = |<y | psi(theta)>|^2,
    y := V^dagger x   (precomputed once per target),

and with ``psi_r = c_r * exp(i phi_r)``, ``phi = P @ theta / 2`` the
overlap is ``S = sum_r conj(y_r) c_r e^{i phi_r}``; every partial
derivative is just that sum reweighted by ``i P_rj / 2`` — the "simple
partial derivatives of an exponential composed with a linear function"
the paper exploits for fast L-BFGS.
"""

from __future__ import annotations

import numpy as np

from repro.core.ansatz import EnQodeAnsatz
from repro.core.symbolic import SymbolicState
from repro.errors import OptimizationError


class FidelityObjective:
    """Loss ``1 - F(theta)`` with analytic gradient for one target vector."""

    def __init__(
        self,
        symbolic: SymbolicState,
        ansatz: EnQodeAnsatz,
        target: np.ndarray,
    ) -> None:
        target = np.asarray(target, dtype=complex).ravel()
        dim = 2**symbolic.num_qubits
        if target.size != dim:
            raise OptimizationError(
                f"target has dim {target.size}, ansatz produces {dim}"
            )
        norm = np.linalg.norm(target)
        if norm < 1e-12:
            raise OptimizationError("cannot embed the zero vector")
        target = target / norm
        self.symbolic = symbolic
        self.ansatz = ansatz
        self.target = target
        # Pull the target back through the closing layer once.
        y = ansatz.apply_closing_layer_adjoint(target)
        # Per-basis-state constant: conj(y_r) * i^{k_r} / sqrt(2^n).
        self._coeff = np.conj(y) * symbolic.phase_factors / np.sqrt(dim)
        # P/2 enters every phase and derivative; shared (cached) with every
        # other objective built on the same SymbolicState, so constructing
        # one objective per sample allocates nothing of size (2^n, l).
        self._half_p = symbolic.half_phase_matrix

    # -- evaluations -------------------------------------------------------------

    def overlap(self, theta: np.ndarray) -> complex:
        """The complex overlap ``<target| V |psi(theta)>``."""
        phases = self._half_p @ np.asarray(theta, dtype=float)
        return complex(np.sum(self._coeff * np.exp(1j * phases)))

    def fidelity(self, theta: np.ndarray) -> float:
        return float(abs(self.overlap(theta)) ** 2)

    def value_and_grad(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        """Loss ``1 - F`` and its exact gradient, in one vectorized pass."""
        theta = np.asarray(theta, dtype=float)
        phases = self._half_p @ theta
        terms = self._coeff * np.exp(1j * phases)
        overlap = terms.sum()
        # dS/dtheta_j = sum_r terms_r * i * P_rj / 2; contracting the real
        # and imaginary parts separately keeps the product real @ real
        # (numpy would otherwise upcast P/2 to complex on every call).
        grad_fidelity = 2.0 * (
            overlap.imag * (terms.real @ self._half_p)
            - overlap.real * (terms.imag @ self._half_p)
        )
        loss = 1.0 - float(abs(overlap) ** 2)
        return loss, -grad_fidelity

    def numerical_grad(self, theta: np.ndarray, eps: float = 1e-6) -> np.ndarray:
        """Finite-difference gradient of the loss (ablation A4 / tests)."""
        theta = np.asarray(theta, dtype=float)
        grad = np.zeros_like(theta)
        for j in range(theta.size):
            forward = theta.copy()
            backward = theta.copy()
            forward[j] += eps
            backward[j] -= eps
            grad[j] = (
                (1.0 - self.fidelity(forward)) - (1.0 - self.fidelity(backward))
            ) / (2.0 * eps)
        return grad

    def embedded_state(self, theta: np.ndarray) -> np.ndarray:
        """The embedded statevector ``V |psi(theta)>``."""
        return self.symbolic.embedded_amplitudes(theta, self.ansatz)
