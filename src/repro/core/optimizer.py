"""L-BFGS optimization driver for the symbolic fidelity objective.

The paper uses scipy's Limited-memory BFGS with the symbolic Jacobian
(Sec. III-B): "we compute gradients and estimate the inverse Hessian by
supplying a symbolic representation of the Jacobian".  The driver adds
random restarts (offline training) and a warm-start entry point (online
transfer learning).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import minimize

from repro.core.objective import FidelityObjective
from repro.errors import OptimizationError
from repro.utils.rng import as_rng
from repro.utils.timing import Timer


@dataclass
class OptimizationResult:
    """Outcome of one (possibly multi-restart) optimization."""

    theta: np.ndarray
    fidelity: float
    loss: float
    num_iterations: int
    num_evaluations: int
    time: float
    converged: bool
    restarts_used: int = 1
    history: list[float] = field(default_factory=list)


class LBFGSOptimizer:
    """scipy L-BFGS-B wrapper with analytic gradients and restarts.

    Parameters
    ----------
    max_iterations:
        Per-restart iteration cap (offline uses a large cap; online
        transfer learning uses a small one for bounded latency).
    gtol, ftol:
        scipy convergence tolerances.
    num_restarts:
        Independent random initializations; the best result wins.
    target_fidelity:
        Early-exit threshold — once a restart reaches it, stop restarting.
    seed:
        RNG seed for the random initializations.
    """

    def __init__(
        self,
        max_iterations: int = 600,
        gtol: float = 1e-9,
        ftol: float = 1e-12,
        num_restarts: int = 3,
        target_fidelity: float = 0.995,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if max_iterations < 1:
            raise OptimizationError("max_iterations must be >= 1")
        if num_restarts < 1:
            raise OptimizationError("num_restarts must be >= 1")
        self.max_iterations = max_iterations
        self.gtol = gtol
        self.ftol = ftol
        self.num_restarts = num_restarts
        self.target_fidelity = target_fidelity
        self.seed = seed

    # -- restart draws ---------------------------------------------------------

    @staticmethod
    def draw_restart_start(
        rng: np.random.Generator, num_params: int
    ) -> np.ndarray:
        """The restart initialization draw: uniform in ``[-pi, pi)^l``.

        Factored out so the batched offline driver
        (:class:`repro.core.batch.BatchLBFGSOptimizer`) consumes the
        *same* RNG stream — restart ``r`` of a stacked run starts every
        cluster exactly where restart ``r`` of a sequential
        :meth:`optimize` call would start it, which is what makes
        batched-vs-sequential offline training comparable draw for draw.
        """
        return rng.uniform(-np.pi, np.pi, size=num_params)

    # -- single run -----------------------------------------------------------

    def _run_once(
        self,
        objective: FidelityObjective,
        theta0: np.ndarray,
        max_iterations: int | None = None,
    ):
        return minimize(
            objective.value_and_grad,
            np.asarray(theta0, dtype=float),
            jac=True,
            method="L-BFGS-B",
            options={
                "maxiter": max_iterations or self.max_iterations,
                "gtol": self.gtol,
                "ftol": self.ftol,
            },
        )

    def optimize(
        self,
        objective: FidelityObjective,
        theta0: np.ndarray | None = None,
        max_iterations: int | None = None,
    ) -> OptimizationResult:
        """Minimize ``1 - F``; restart randomly unless ``theta0`` is given.

        A provided ``theta0`` turns this into warm-start (transfer
        learning) mode: exactly one run from that initialization.
        """
        rng = as_rng(self.seed)
        num_params = objective.symbolic.phase_matrix.shape[1]
        restarts = 1 if theta0 is not None else self.num_restarts
        best = None
        total_iters = 0
        total_evals = 0
        history: list[float] = []
        with Timer() as timer:
            for attempt in range(restarts):
                if theta0 is not None:
                    start = np.asarray(theta0, dtype=float)
                else:
                    start = self.draw_restart_start(rng, num_params)
                result = self._run_once(objective, start, max_iterations)
                total_iters += int(result.nit)
                total_evals += int(result.nfev)
                fidelity = 1.0 - float(result.fun)
                history.append(fidelity)
                if best is None or result.fun < best.fun:
                    best = result
                if fidelity >= self.target_fidelity:
                    break
        assert best is not None
        return OptimizationResult(
            theta=np.asarray(best.x, dtype=float),
            fidelity=1.0 - float(best.fun),
            loss=float(best.fun),
            num_iterations=total_iters,
            num_evaluations=total_evals,
            time=timer.elapsed,
            converged=bool(best.success),
            restarts_used=len(history),
            history=history,
        )
