"""Explicit online-serving pipeline stages (the Sec. III-D data path).

Every online path through EnQode — one-off :meth:`EnQodeEncoder.encode`,
big-batch :meth:`EnQodeEncoder.encode_batch`, and the streaming
:class:`repro.service.EncodingService` — performs the same four steps:

``route``
    Nearest-cluster assignment: match each sample to the trained cluster
    whose center is closest, yielding the warm-start parameters.
``finetune``
    Transfer-learned L-BFGS: fine-tune the warm start for the sample's
    own amplitudes (sequential scipy for one row, the stacked batched
    drive of :mod:`repro.core.batch` for two or more).
``bind``
    Angles → ansatz: instantiate the fixed-shape logical circuit for a
    parameter vector.
``lower``
    Lower to the backend: either bind the cached parametric transpile
    template (:func:`repro.transpile.transpiler.transpile_template`) or
    run the full per-circuit transpile pipeline.

Historically each caller hand-maintained its own copy of this sequence;
this module makes the stages first-class objects so all paths execute
the *same* code.  :class:`EncodePipeline` composes them; ``encode`` is
literally :meth:`EncodePipeline.run` on a batch of size one, and the
service's micro-batch flushes are :meth:`EncodePipeline.run` on whatever
accumulated.  A single-row run uses the sequential fine-tune engine and
a multi-row run uses the stacked one, so the shims over this pipeline
are numerically identical to the pre-pipeline code paths they replaced.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.ansatz import EnQodeAnsatz
from repro.core.batch import BatchFidelityObjective
from repro.core.clustering import nearest_centers
from repro.core.transfer import TransferLearner, TransferOutcome
from repro.errors import OptimizationError
from repro.hardware.backend import Backend
from repro.quantum.circuit import QuantumCircuit
from repro.transpile.metrics import CircuitMetrics
from repro.transpile.template import (
    GLOBAL_TEMPLATE_CACHE,
    ParametricTemplate,
)
from repro.transpile.transpiler import (
    TranspileResult,
    transpile,
    transpile_template,
)
from repro.utils.timing import Timer


@dataclass
class EncodedSample:
    """One online-embedded sample, ready for a downstream QML circuit."""

    target: np.ndarray
    theta: np.ndarray
    cluster_index: int
    ideal_fidelity: float
    transpiled: TranspileResult
    compile_time: float
    optimizer_iterations: int
    optimizer_evaluations: int = 0
    ansatz: EnQodeAnsatz | None = None
    logical: QuantumCircuit | None = None

    @property
    def logical_circuit(self) -> QuantumCircuit:
        """The bound logical ansatz circuit (built lazily on first use).

        The batched fast path never needs it — the template binds the
        transpiled circuit directly from the angles — so constructing it
        eagerly for every sample would be pure overhead.
        """
        if self.logical is None:
            if self.ansatz is None:
                raise OptimizationError(
                    "EncodedSample has neither a prebuilt logical circuit "
                    "nor an ansatz to build one from"
                )
            self.logical = self.ansatz.circuit(self.theta)
        return self.logical

    @property
    def circuit(self) -> QuantumCircuit:
        """The hardware-native embedding circuit."""
        return self.transpiled.circuit

    def metrics(self) -> CircuitMetrics:
        return self.transpiled.metrics()

    def physical_target(self) -> np.ndarray:
        return self.transpiled.embed_target(self.target)


@dataclass
class RoutePlan:
    """Output of the *route* stage: cluster assignments + warm starts."""

    samples: np.ndarray
    indices: np.ndarray
    distances: np.ndarray
    theta0: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.samples.shape[0]


class PreprocessStage:
    """Optional trainable classical embedding ahead of routing.

    Wraps a :class:`repro.data.trainable.TrainableEmbedding` (or any
    object with ``transform``/``input_size``/``output_size``): raw
    feature rows are mapped through the learned linear map and
    renormalized *before* cluster routing, so the encoder's circuits
    embed the learned feature space while ``fit``/``encode``/
    ``encode_batch``/the service keep their signatures — only the
    accepted input width changes (``input_size`` instead of
    ``2**num_qubits``).
    """

    def __init__(self, preprocessor) -> None:
        self.preprocessor = preprocessor

    @property
    def input_size(self) -> int:
        return self.preprocessor.input_size

    def run(self, samples: np.ndarray) -> np.ndarray:
        return self.preprocessor.transform(samples)


class RouteStage:
    """Nearest-cluster assignment over the trained centers (Sec. III-D)."""

    def __init__(self, transfer: TransferLearner) -> None:
        self.transfer = transfer

    def run(self, samples: np.ndarray) -> RoutePlan:
        """Match each unit-norm row to its nearest cluster center."""
        indices, distances = nearest_centers(samples, self.transfer.centers)
        return RoutePlan(
            samples=samples,
            indices=indices,
            distances=distances,
            theta0=self.transfer.cluster_thetas[indices],
        )


class FinetuneStage:
    """Transfer-learned L-BFGS fine-tune from the routed warm starts.

    One row runs the sequential scipy optimizer (the engine ``encode``
    has always used); two or more rows run the stacked batched drive
    (the ``encode_batch`` engine) — see
    :meth:`repro.core.transfer.TransferLearner.finetune`.
    """

    def __init__(self, transfer: TransferLearner) -> None:
        self.transfer = transfer

    def run(self, plan: RoutePlan) -> list[TransferOutcome]:
        return self.transfer.finetune(
            plan.samples, plan.indices, plan.distances
        )


class BindStage:
    """Angles → logical circuit: instantiate the fixed-shape ansatz."""

    def __init__(self, ansatz: EnQodeAnsatz) -> None:
        self.ansatz = ansatz

    def run(self, theta: np.ndarray) -> QuantumCircuit:
        return self.ansatz.circuit(theta)


class LowerStage:
    """Lower a bound embedding to the backend's native gate set.

    Two modes, numerically identical (asserted at template build):

    * :meth:`template` returns the cached parametric template for the
      pipeline's (ansatz, backend, optimization_level) — lowering is
      then one cheap vectorized angle re-bind for the whole batch
      (:meth:`repro.transpile.template.ParametricTemplate.bind_batch`),
      yielding lazy compact-IR circuits
      (:class:`repro.transpile.bound.BoundCircuit`: packed angle arrays
      per sample, instructions materialized only on demand);
    * :meth:`run` performs the full transpile of a logical circuit (the
      escape hatch, and the mode the one-off ``encode`` shim keeps for
      behavioural compatibility).
    """

    def __init__(
        self, ansatz: EnQodeAnsatz, backend: Backend, optimization_level: int
    ) -> None:
        self.ansatz = ansatz
        self.backend = backend
        self.optimization_level = optimization_level

    def template(self) -> ParametricTemplate:
        return transpile_template(
            self.ansatz, self.backend, self.optimization_level
        )

    def template_reported(self) -> "tuple[ParametricTemplate, bool]":
        """The cached template plus whether the fetch was a cache hit.

        Concurrent service flushes attribute hits/misses per run through
        this flag instead of diffing the global cache counters (which
        races across threads).
        """
        return GLOBAL_TEMPLATE_CACHE.get_reported(
            self.ansatz, self.backend, self.optimization_level
        )

    def run(self, logical: QuantumCircuit) -> TranspileResult:
        return transpile(
            logical,
            self.backend,
            optimization_level=self.optimization_level,
        )


@dataclass
class PipelineStats:
    """Aggregate stage counters for one :class:`EncodePipeline`.

    The four timing buckets mirror the stage split: ``route_seconds``
    (nearest-cluster assignment), ``finetune_seconds`` (the L-BFGS
    drive), ``bind_seconds`` (instantiating circuits from angles — the
    batched template bind in template mode, the logical-circuit build
    otherwise), and ``lower_seconds`` (template fetch/build plus any
    full per-sample transpiles).  ``template_binds`` counts every *row*
    lowered through a cached template (a ``bind_batch`` of ``B``
    samples counts ``B``), feeding the serving layer's bind
    accounting.  ``batch_sizes`` keeps only the most recent runs
    (bounded) so a long-lived serving pipeline does not grow memory
    with traffic; the totals are exact running aggregates.
    """

    runs: int = 0
    samples: int = 0
    route_seconds: float = 0.0
    finetune_seconds: float = 0.0
    bind_seconds: float = 0.0
    lower_seconds: float = 0.0
    template_binds: int = 0
    batch_sizes: "deque[int]" = field(
        default_factory=lambda: deque(maxlen=1024)
    )


@dataclass
class PipelineRunReport:
    """Per-run stage accounting for one :meth:`EncodePipeline.run`.

    Each run accumulates its own report and applies it to the shared
    :class:`PipelineStats` in a single locked step when it completes, so
    concurrent runs (service worker-pool flushes sharing one pipeline)
    never interleave half-applied counters, and callers can read *this
    run's* contribution directly instead of diffing the shared totals
    (which races when flushes overlap).  ``template_hit`` is ``None``
    for full-transpile runs, else whether the template fetch hit the
    process-wide cache.
    """

    batch_size: int = 0
    route_seconds: float = 0.0
    finetune_seconds: float = 0.0
    bind_seconds: float = 0.0
    lower_seconds: float = 0.0
    template_binds: int = 0
    template_hit: "bool | None" = None


class EncodePipeline:
    """The composed route → finetune → bind → lower online pipeline.

    Built once per fitted encoder (see
    :attr:`repro.core.encoder.EnQodeEncoder.pipeline`) and shared by the
    ``encode``/``encode_batch`` shims and the serving layer, so there is
    exactly one implementation of the online data path.
    """

    def __init__(
        self,
        ansatz: EnQodeAnsatz,
        backend: Backend,
        optimization_level: int,
        transfer: TransferLearner,
        preprocessor=None,
    ) -> None:
        self.ansatz = ansatz
        self.backend = backend
        if preprocessor is not None:
            if preprocessor.output_size != 2**ansatz.num_qubits:
                raise OptimizationError(
                    f"preprocessor emits {preprocessor.output_size}-wide "
                    f"rows but the ansatz embeds "
                    f"{2 ** ansatz.num_qubits} amplitudes"
                )
            self.preprocess = PreprocessStage(preprocessor)
        else:
            self.preprocess = None
        self.route = RouteStage(transfer)
        self.finetune = FinetuneStage(transfer)
        self.bind = BindStage(ansatz)
        self.lower = LowerStage(ansatz, backend, optimization_level)
        #: Optional chaos hook (see :mod:`repro.service.resilience`):
        #: when set, every stage of :meth:`run_reported` fires its site
        #: through it before executing, letting tests inject stage
        #: exceptions and latency deterministically.  ``None`` costs
        #: one attribute check per stage.
        self.fault_injector = None
        self.stats = PipelineStats()
        # Guards stats application only.  The stages themselves are
        # re-entrant — every run builds its own objective/optimizer/plan
        # objects and the template cache has its own lock — so the
        # service's thread backend may run flushes for different keys
        # through one pipeline concurrently without corrupting results;
        # this lock just keeps the shared counters whole-flush-atomic.
        self._stats_lock = threading.Lock()

    @property
    def transfer(self) -> TransferLearner:
        return self.route.transfer

    @property
    def num_amplitudes(self) -> int:
        return 2**self.ansatz.num_qubits

    @property
    def input_size(self) -> int:
        """Accepted raw-sample width: the preprocessor's input when one
        is attached, else the embedding width itself."""
        if self.preprocess is not None:
            return self.preprocess.input_size
        return self.num_amplitudes

    def prepare(self, samples: np.ndarray) -> np.ndarray:
        """Validate, preprocess, and unit-normalize a sample matrix.

        Accepts ``(B, input_size)`` raw rows; with a preprocessor
        attached they pass through the learned map (already
        renormalized) first, so every downstream stage — and every
        caller of this pipeline — only ever sees ``(B, 2^n)`` unit
        rows.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        if self.preprocess is not None:
            if samples.shape[0] == 0:
                return np.empty((0, self.num_amplitudes))
            samples = self.preprocess.run(samples)
        if samples.ndim != 2 or samples.shape[1] != self.num_amplitudes:
            raise OptimizationError(
                f"samples must be (B, {self.num_amplitudes}), "
                f"got {samples.shape}"
            )
        if samples.shape[0] == 0:
            return samples
        norms = np.linalg.norm(samples, axis=1, keepdims=True)
        if np.any(norms < 1e-12):
            raise OptimizationError("cannot embed a zero sample row")
        return samples / norms

    def run(
        self, samples: np.ndarray, use_template: bool = True
    ) -> list[EncodedSample]:
        """Drive ``samples`` through all four stages (see ``run_reported``)."""
        return self.run_reported(samples, use_template=use_template)[0]

    def run_reported(
        self, samples: np.ndarray, use_template: bool = True
    ) -> "tuple[list[EncodedSample], PipelineRunReport]":
        """Drive ``samples`` through all four stages, with a run report.

        With ``use_template`` the whole batch lowers through one
        vectorized :meth:`ParametricTemplate.bind_batch` sweep over the
        cached parametric template (the batch/service fast path); each
        :attr:`EncodedSample.circuit` is then a lazy compact-IR view
        (:class:`repro.transpile.bound.BoundCircuit`) that simulates
        straight off the packed bind arrays and materializes an
        instruction stream identical to a per-sample bind only when
        iterated.  Without ``use_template`` each
        sample's logical circuit is built by the *bind* stage and fully
        transpiled (the one-off ``encode`` behaviour).  Per-sample
        ``compile_time`` carries an even share of the shared stage work
        (routing, fine-tune drive, one-time template build on a cache
        miss, and the batched bind sweep in template mode) plus any
        per-sample lowering time, so it sums back to actual wall time
        over the batch.

        The returned :class:`PipelineRunReport` is this run's own stage
        accounting; the shared :attr:`stats` totals absorb it in one
        locked step at the end, so overlapping runs from the service's
        worker pool stay whole-flush-atomic.
        """
        samples = self.prepare(samples)
        report = PipelineRunReport(batch_size=samples.shape[0])
        if samples.shape[0] == 0:
            return [], report
        self._fire_fault("route")
        with Timer() as route_timer:
            plan = self.route.run(samples)
        self._fire_fault("finetune")
        with Timer() as tune_timer:
            outcomes = self.finetune.run(plan)
        self._fire_fault("lower")
        with Timer() as template_timer:
            # On a cold cache this pays the one-time structural transpile;
            # its cost is amortized into every sample's compile_time below.
            if use_template:
                template, report.template_hit = self.lower.template_reported()
            else:
                template = None
        self._fire_fault("bind")
        shared_time = (
            route_timer.elapsed + tune_timer.elapsed + template_timer.elapsed
        ) / len(outcomes)

        encoded: list[EncodedSample] = []
        bind_seconds = 0.0
        lower_seconds = template_timer.elapsed
        if template is not None:
            # The whole batch lowers through one vectorized
            # ParametricTemplate.bind_batch sweep; each sample's
            # compile_time carries an even share of it.
            thetas = np.asarray([outcome.theta for outcome in outcomes])
            with Timer() as bind_timer:
                transpiled_batch = template.bind_batch(thetas)
            bind_seconds = bind_timer.elapsed
            bind_share = bind_timer.elapsed / len(outcomes)
            report.template_binds = len(outcomes)
            for sample, outcome, transpiled in zip(
                samples, outcomes, transpiled_batch
            ):
                encoded.append(
                    EncodedSample(
                        target=sample,
                        theta=outcome.theta,
                        cluster_index=outcome.cluster_index,
                        ideal_fidelity=outcome.fidelity,
                        transpiled=transpiled,
                        compile_time=shared_time + bind_share,
                        optimizer_iterations=outcome.result.num_iterations,
                        optimizer_evaluations=outcome.result.num_evaluations,
                        ansatz=self.ansatz,
                        logical=None,
                    )
                )
        else:
            for sample, outcome in zip(samples, outcomes):
                with Timer() as bind_timer:
                    logical = self.bind.run(outcome.theta)
                with Timer() as lower_timer:
                    transpiled = self.lower.run(logical)
                bind_seconds += bind_timer.elapsed
                lower_seconds += lower_timer.elapsed
                encoded.append(
                    EncodedSample(
                        target=sample,
                        theta=outcome.theta,
                        cluster_index=outcome.cluster_index,
                        ideal_fidelity=outcome.fidelity,
                        transpiled=transpiled,
                        compile_time=shared_time
                        + bind_timer.elapsed
                        + lower_timer.elapsed,
                        optimizer_iterations=outcome.result.num_iterations,
                        optimizer_evaluations=outcome.result.num_evaluations,
                        ansatz=self.ansatz,
                        logical=logical,
                    )
                )
        report.route_seconds = route_timer.elapsed
        report.finetune_seconds = tune_timer.elapsed
        report.bind_seconds = bind_seconds
        report.lower_seconds = lower_seconds
        self._apply_report(report, len(encoded))
        return encoded, report

    def run_degraded(
        self, samples: np.ndarray, use_template: bool = True
    ) -> list[EncodedSample]:
        """Finetune-skipped fallback (see :meth:`run_degraded_reported`)."""
        return self.run_degraded_reported(
            samples, use_template=use_template
        )[0]

    def run_degraded_reported(
        self, samples: np.ndarray, use_template: bool = True
    ) -> "tuple[list[EncodedSample], PipelineRunReport]":
        """Route and bind only: the *finetune* stage is skipped entirely.

        This is the paper's offline/online split exploited as a
        graceful-degradation fallback (the service's ``"degrade"``
        overload policy): each sample binds its routed cluster's
        *centroid* parameters directly — the warm start the finetune
        stage would have polished — so the cost is one nearest-center
        assignment plus one template re-bind, microseconds instead of
        an L-BFGS drive.  The reported fidelity is the sample's true
        fidelity *at the centroid parameters* (evaluated exactly, one
        vectorized objective pass), so callers see honestly how much
        quality the shortcut gave up;
        ``optimizer_iterations == optimizer_evaluations == 0`` marks
        the skipped stage.  Deliberately a separate method rather than
        a flag on :meth:`run_reported` — the fault-free full path must
        stay byte-for-byte untouched.

        No fault sites fire here: this path *is* the fallback, and it
        runs inline on the submitting thread.
        """
        samples = self.prepare(samples)
        report = PipelineRunReport(batch_size=samples.shape[0])
        if samples.shape[0] == 0:
            return [], report
        with Timer() as route_timer:
            plan = self.route.run(samples)
            thetas = np.asarray(plan.theta0, dtype=float)
            objective = BatchFidelityObjective(
                self.transfer.symbolic, self.ansatz, samples
            )
            fidelities = objective.fidelities(thetas)
        with Timer() as template_timer:
            if use_template:
                template, report.template_hit = self.lower.template_reported()
            else:
                template = None
        shared_time = (
            route_timer.elapsed + template_timer.elapsed
        ) / samples.shape[0]

        encoded: list[EncodedSample] = []
        bind_seconds = 0.0
        lower_seconds = template_timer.elapsed
        if template is not None:
            with Timer() as bind_timer:
                transpiled_batch = template.bind_batch(thetas)
            bind_seconds = bind_timer.elapsed
            bind_share = bind_timer.elapsed / samples.shape[0]
            report.template_binds = samples.shape[0]
            for row in range(samples.shape[0]):
                encoded.append(
                    EncodedSample(
                        target=samples[row],
                        theta=thetas[row],
                        cluster_index=int(plan.indices[row]),
                        ideal_fidelity=float(fidelities[row]),
                        transpiled=transpiled_batch[row],
                        compile_time=shared_time + bind_share,
                        optimizer_iterations=0,
                        optimizer_evaluations=0,
                        ansatz=self.ansatz,
                        logical=None,
                    )
                )
        else:
            for row in range(samples.shape[0]):
                with Timer() as bind_timer:
                    logical = self.bind.run(thetas[row])
                with Timer() as lower_timer:
                    transpiled = self.lower.run(logical)
                bind_seconds += bind_timer.elapsed
                lower_seconds += lower_timer.elapsed
                encoded.append(
                    EncodedSample(
                        target=samples[row],
                        theta=thetas[row],
                        cluster_index=int(plan.indices[row]),
                        ideal_fidelity=float(fidelities[row]),
                        transpiled=transpiled,
                        compile_time=shared_time
                        + bind_timer.elapsed
                        + lower_timer.elapsed,
                        optimizer_iterations=0,
                        optimizer_evaluations=0,
                        ansatz=self.ansatz,
                        logical=logical,
                    )
                )
        report.route_seconds = route_timer.elapsed
        report.bind_seconds = bind_seconds
        report.lower_seconds = lower_seconds
        self._apply_report(report, len(encoded))
        return encoded, report

    def _fire_fault(self, site: str) -> None:
        injector = self.fault_injector
        if injector is not None:
            injector.fire(site)

    def _apply_report(self, report: PipelineRunReport, count: int) -> None:
        with self._stats_lock:
            self.stats.runs += 1
            self.stats.samples += count
            self.stats.route_seconds += report.route_seconds
            self.stats.finetune_seconds += report.finetune_seconds
            self.stats.bind_seconds += report.bind_seconds
            self.stats.lower_seconds += report.lower_seconds
            self.stats.template_binds += report.template_binds
            self.stats.batch_sizes.append(count)
        return None

    def __repr__(self) -> str:
        return (
            f"EncodePipeline({self.ansatz!r}, {self.backend.name!r}, "
            f"level={self.lower.optimization_level}, "
            f"runs={self.stats.runs})"
        )


__all__ = [
    "BindStage",
    "EncodePipeline",
    "EncodedSample",
    "FinetuneStage",
    "LowerStage",
    "PipelineRunReport",
    "PipelineStats",
    "PreprocessStage",
    "RoutePlan",
    "RouteStage",
]
