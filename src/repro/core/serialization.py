"""Persist and restore trained EnQode models.

Sec. III-C: "The trained cluster models are then stored and used to
support online training and inference."  This module makes that concrete:
a fitted :class:`~repro.core.encoder.EnQodeEncoder`'s cluster centers,
optimized parameters, and configuration round-trip through a plain JSON
document, so offline training can run once (e.g. in a batch job) and the
online embedding service can reload the models anywhere.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import numpy as np

from repro.core.config import EnQodeConfig
from repro.core.encoder import ClusterModel, EnQodeEncoder, OfflineReport
from repro.core.optimizer import OptimizationResult
from repro.core.transfer import TransferLearner
from repro.errors import OptimizationError

FORMAT_VERSION = 1


def encoder_to_dict(encoder: EnQodeEncoder) -> dict:
    """Serializable snapshot of a fitted encoder (models + config)."""
    if not encoder.is_fitted:
        raise OptimizationError("cannot serialize an unfitted encoder")
    return {
        "format_version": FORMAT_VERSION,
        "config": dataclasses.asdict(encoder.config),
        "clusters": [
            {
                "center": model.center.tolist(),
                "theta": model.theta.tolist(),
                "fidelity": model.fidelity,
                "training_time": model.training_time,
            }
            for model in encoder.cluster_models
        ],
    }


def save_encoder(encoder: EnQodeEncoder, path: "str | pathlib.Path") -> None:
    """Write a fitted encoder's models to ``path`` as JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(encoder_to_dict(encoder), indent=1))


def encoder_from_dict(payload: dict, backend) -> EnQodeEncoder:
    """Rebuild a ready-to-encode encoder from :func:`encoder_to_dict`."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise OptimizationError(
            f"unsupported EnQode model format {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    config = EnQodeConfig(**payload["config"])
    encoder = EnQodeEncoder(backend, config)
    models = []
    for entry in payload["clusters"]:
        center = np.asarray(entry["center"], dtype=float)
        theta = np.asarray(entry["theta"], dtype=float)
        if center.size != config.num_amplitudes:
            raise OptimizationError(
                f"stored center has dim {center.size}, config expects "
                f"{config.num_amplitudes}"
            )
        if theta.size != encoder.ansatz.num_parameters:
            raise OptimizationError(
                f"stored theta has {theta.size} parameters, ansatz has "
                f"{encoder.ansatz.num_parameters}"
            )
        models.append(
            ClusterModel(
                center=center,
                theta=theta,
                fidelity=float(entry["fidelity"]),
                training_time=float(entry.get("training_time", 0.0)),
                result=OptimizationResult(
                    theta=theta,
                    fidelity=float(entry["fidelity"]),
                    loss=1.0 - float(entry["fidelity"]),
                    num_iterations=0,
                    num_evaluations=0,
                    time=0.0,
                    converged=True,
                ),
            )
        )
    if not models:
        raise OptimizationError("stored model has no clusters")
    encoder.cluster_models = models
    encoder._transfer = TransferLearner(
        encoder.ansatz,
        encoder.symbolic,
        centers=np.asarray([m.center for m in models]),
        cluster_thetas=np.asarray([m.theta for m in models]),
        max_iterations=config.online_max_iterations,
        gtol=config.gtol,
        ftol=config.ftol,
    )
    encoder.offline_report = OfflineReport(
        num_clusters=len(models),
        total_time=0.0,
        clustering_time=0.0,
        training_time=sum(m.training_time for m in models),
        min_nearest_fidelity=float("nan"),
        cluster_fidelities=[m.fidelity for m in models],
        cluster_times=[m.training_time for m in models],
    )
    return encoder


def load_encoder(path: "str | pathlib.Path", backend) -> EnQodeEncoder:
    """Read a fitted encoder back from :func:`save_encoder` output."""
    payload = json.loads(pathlib.Path(path).read_text())
    return encoder_from_dict(payload, backend)
