"""Persist and restore trained EnQode models.

Sec. III-C: "The trained cluster models are then stored and used to
support online training and inference."  This module makes that concrete:
a fitted :class:`~repro.core.encoder.EnQodeEncoder`'s cluster centers,
optimized parameters, and configuration round-trip through a plain JSON
document, so offline training can run once (e.g. in a batch job) and the
online embedding service (:class:`repro.service.EncodingService`) can
reload the models anywhere.

Every bundle carries a ``schema_version``; readers reject a mismatched
or missing version with a :class:`~repro.errors.SerializationError`
naming the found and expected versions, so a service-side model reload
fails loudly at load time instead of with a ``KeyError`` halfway through
reconstruction.  (``format_version`` is still written and accepted as a
legacy alias for version-1 bundles produced before ``schema_version``
existed.)

:func:`check_schema_version` is the single version gate shared by every
persisted artifact in the stack — JSON model bundles (here and in
:mod:`repro.qml.serving`), the binary wire format
(:mod:`repro.io.wire`), and the ``OPENQASM`` header line
(:mod:`repro.io.qasm`) all route their accept/reject decision through
it, so a stale artifact of any format fails with the same error shape.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import numpy as np

from repro.core.config import EnQodeConfig
from repro.core.encoder import ClusterModel, EnQodeEncoder, OfflineReport
from repro.core.optimizer import OptimizationResult
from repro.core.transfer import TransferLearner
from repro.data.trainable import TrainableEmbedding
from repro.errors import OptimizationError, SerializationError

#: Current bundle schema.  Version 1: top-level ``config`` +
#: ``clusters`` (each with ``center``/``theta``/``fidelity`` and an
#: optional ``training_time``).
SCHEMA_VERSION = 1

#: Legacy name kept for callers that imported it.
FORMAT_VERSION = SCHEMA_VERSION


def encoder_to_dict(encoder: EnQodeEncoder) -> dict:
    """Serializable snapshot of a fitted encoder (models + config)."""
    if not encoder.is_fitted:
        raise OptimizationError("cannot serialize an unfitted encoder")
    payload = {
        "schema_version": SCHEMA_VERSION,
        # Legacy alias so version-1 bundles stay readable by pre-
        # ``schema_version`` checkouts.
        "format_version": FORMAT_VERSION,
        "config": dataclasses.asdict(encoder.config),
        "clusters": [
            {
                "center": model.center.tolist(),
                "theta": model.theta.tolist(),
                "fidelity": model.fidelity,
                "training_time": model.training_time,
            }
            for model in encoder.cluster_models
        ],
    }
    if encoder.preprocessor is not None:
        payload["preprocessor"] = encoder.preprocessor.to_dict()
    return payload


def save_encoder(encoder: EnQodeEncoder, path: "str | pathlib.Path") -> None:
    """Write a fitted encoder's models to ``path`` as JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(encoder_to_dict(encoder), indent=1))


def check_schema_version(
    found,
    expected,
    what: str,
    *,
    field: str = "schema_version",
    remedy: str = "re-export it with a matching build",
) -> None:
    """The one version gate for every persisted artifact.

    ``found`` is ``None`` when the artifact carries no version at all, a
    ``{field_name: value}`` mapping when it stamps several fields
    (bundles write both ``schema_version`` and the legacy
    ``format_version`` alias, and *every* stamped field must agree with
    the reader), or a bare scalar.  ``expected`` is the accepted version
    or a tuple of accepted versions (the QASM reader accepts both
    ``2.0`` and ``3.0`` headers).  Raises
    :class:`~repro.errors.SerializationError` naming the found and
    expected versions; never returns a value.
    """
    accepted = expected if isinstance(expected, tuple) else (expected,)
    accepted_label = " or ".join(str(version) for version in accepted)
    if found is None:
        raise SerializationError(
            f"{what} has no {field} field "
            f"(expected {field}={accepted_label}); "
            f"is this really a {what}?"
        )
    if not isinstance(found, dict):
        found = {field: found}
    mismatched = {k: v for k, v in found.items() if v not in accepted}
    if mismatched:
        label = ", ".join(f"{k}={v!r}" for k, v in mismatched.items())
        raise SerializationError(
            f"unsupported {what} version ({label}; this build reads "
            f"{field}={accepted_label}); {remedy}"
        )


def check_schema(payload: dict) -> None:
    """Reject unknown model-bundle schema versions with an actionable error."""
    found = {
        key: payload[key]
        for key in ("schema_version", "format_version")
        if key in payload
    }
    check_schema_version(
        found or None,
        SCHEMA_VERSION,
        "stored EnQode model bundle",
        remedy="re-export the model with a matching build",
    )


def require_section(payload: dict, key: str, what: str = "stored EnQode model"):
    """``payload[key]`` or a :class:`SerializationError` naming the hole."""
    try:
        return payload[key]
    except KeyError:
        raise SerializationError(
            f"{what} is missing the {key!r} section"
        ) from None


# Pre-refactor private names (PR 8 made the helpers public so the wire
# and QASM readers share them); kept so older call sites keep importing.
_check_schema = check_schema
_require = require_section


def encoder_from_dict(payload: dict, backend) -> EnQodeEncoder:
    """Rebuild a ready-to-encode encoder from :func:`encoder_to_dict`."""
    check_schema(payload)
    config = EnQodeConfig(**require_section(payload, "config"))
    preprocessor = None
    if payload.get("preprocessor") is not None:
        preprocessor = TrainableEmbedding.from_dict(payload["preprocessor"])
    encoder = EnQodeEncoder(backend, config, preprocessor=preprocessor)
    models = []
    for entry in require_section(payload, "clusters"):
        center = np.asarray(require_section(entry, "center"), dtype=float)
        theta = np.asarray(require_section(entry, "theta"), dtype=float)
        if center.size != config.num_amplitudes:
            raise SerializationError(
                f"stored center has dim {center.size}, config expects "
                f"{config.num_amplitudes}"
            )
        if theta.size != encoder.ansatz.num_parameters:
            raise SerializationError(
                f"stored theta has {theta.size} parameters, ansatz has "
                f"{encoder.ansatz.num_parameters}"
            )
        models.append(
            ClusterModel(
                center=center,
                theta=theta,
                fidelity=float(require_section(entry, "fidelity")),
                training_time=float(entry.get("training_time", 0.0)),
                result=OptimizationResult(
                    theta=theta,
                    fidelity=float(entry["fidelity"]),
                    loss=1.0 - float(entry["fidelity"]),
                    num_iterations=0,
                    num_evaluations=0,
                    time=0.0,
                    converged=True,
                ),
            )
        )
    if not models:
        raise SerializationError("stored model has no clusters")
    encoder.cluster_models = models
    encoder._transfer = TransferLearner(
        encoder.ansatz,
        encoder.symbolic,
        centers=np.asarray([m.center for m in models]),
        cluster_thetas=np.asarray([m.theta for m in models]),
        max_iterations=config.online_max_iterations,
        gtol=config.gtol,
        ftol=config.ftol,
        batch_engine=config.online_batch_engine,
    )
    encoder.offline_report = OfflineReport(
        num_clusters=len(models),
        total_time=0.0,
        clustering_time=0.0,
        training_time=sum(m.training_time for m in models),
        min_nearest_fidelity=float("nan"),
        cluster_fidelities=[m.fidelity for m in models],
        cluster_times=[m.training_time for m in models],
    )
    return encoder


def load_encoder(path: "str | pathlib.Path", backend) -> EnQodeEncoder:
    """Read a fitted encoder back from :func:`save_encoder` output."""
    payload = json.loads(pathlib.Path(path).read_text())
    if not isinstance(payload, dict):
        raise SerializationError(
            f"{path} does not contain an EnQode model bundle "
            f"(top-level JSON value is {type(payload).__name__})"
        )
    return encoder_from_dict(payload, backend)
