"""Symbolic phase-state representation of the EnQode ansatz (Eq. 6).

After the opening ``Rx(-pi/2)`` layer every computational-basis amplitude
has magnitude ``2^(-n/2)``, and the gates that follow preserve that:

* ``Rz(theta_j)`` multiplies each amplitude by ``exp(+-i theta_j / 2)``
  (sign = the acted-on qubit's bit value);
* ``CY``/``CX``/``CZ`` map basis states to basis states with a phase in
  ``{1, i, -1, -i}``.

The pre-closing state is therefore **exactly**

    psi_r(theta) = 2^(-n/2) * i^(k_r) * exp(i * (P @ theta)_r / 2)

with integer data: ``k_r`` in Z_4 and ``P`` in {-1, 0, +1}^(2^n x l)
(entries of P are +-1 for every parameter since each Rz touches every
basis state).  Both are computed by exact integer propagation — no
floating-point circuit simulation — and give closed-form fidelity values
and Jacobians for the optimizer (Sec. III-B).
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.core.ansatz import EnQodeAnsatz
from repro.errors import OptimizationError
from repro.utils.linalg import popcount


class SymbolicState:
    """Integer-exact symbolic form of the ansatz's pre-closing state.

    Attributes
    ----------
    k_pow:
        ``(2^n,)`` int array; amplitude ``r`` carries the phase factor
        ``i ** k_pow[r]``.
    phase_matrix:
        ``(2^n, l)`` int8 array ``P``; amplitude ``r`` carries
        ``exp(i * (P[r] @ theta) / 2)``.
    """

    def __init__(self, num_qubits: int, k_pow: np.ndarray, phase_matrix: np.ndarray):
        dim = 2**num_qubits
        if k_pow.shape != (dim,) or phase_matrix.shape[0] != dim:
            raise OptimizationError("symbolic state shape mismatch")
        self.num_qubits = num_qubits
        self.k_pow = k_pow
        self.phase_matrix = phase_matrix

    # -- cached derived arrays ----------------------------------------------------
    #
    # Every per-sample FidelityObjective needs P/2 as a float matrix and the
    # i^k phase factors.  Computing them here once (instead of inside each
    # objective constructor) makes per-sample objective construction
    # allocation-free — the batch encoder builds thousands of objectives
    # against one SymbolicState.

    @cached_property
    def half_phase_matrix(self) -> np.ndarray:
        """``P/2`` as a read-only float array (shared, computed once)."""
        half = self.phase_matrix.astype(float) / 2.0
        half.setflags(write=False)
        return half

    @cached_property
    def phase_factors(self) -> np.ndarray:
        """``i ** k_pow`` as a read-only complex array (shared)."""
        factors = 1j ** self.k_pow
        factors.setflags(write=False)
        return factors

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_ansatz(cls, ansatz: EnQodeAnsatz) -> "SymbolicState":
        """Propagate the ansatz structure exactly with integer arithmetic."""
        n = ansatz.num_qubits
        dim = 2**n
        indices = np.arange(dim)
        # Opening Rx(-pi/2) layer: amplitude r = 2^(-n/2) * i^popcount(r).
        k_pow = _popcount(indices) % 4
        phase = np.zeros((dim, ansatz.num_parameters), dtype=np.int8)

        for layer in range(ansatz.num_layers):
            for qubit in range(n):
                j = ansatz.parameter_index(layer, qubit)
                bit = (indices >> (n - 1 - qubit)) & 1
                # Rz = diag(e^{-i t/2}, e^{+i t/2}): sign -1 for bit 0.
                phase[:, j] += np.where(bit == 1, 1, -1).astype(np.int8)
            for control, target in ansatz.entangling_pairs(layer):
                k_pow, phase = _apply_entangler(
                    ansatz.entangler, k_pow, phase, indices, n, control, target
                )
        return cls(n, k_pow % 4, phase)

    # -- evaluation ---------------------------------------------------------------

    def amplitudes(self, theta: np.ndarray) -> np.ndarray:
        """The pre-closing statevector ``|psi(theta)>`` (Eq. 6)."""
        theta = np.asarray(theta, dtype=float).ravel()
        if theta.size != self.phase_matrix.shape[1]:
            raise OptimizationError(
                f"expected {self.phase_matrix.shape[1]} parameters, "
                f"got {theta.size}"
            )
        phases = self.half_phase_matrix @ theta
        return (
            self.phase_factors
            * np.exp(1j * phases)
            / np.sqrt(2**self.num_qubits)
        )

    def embedded_amplitudes(
        self, theta: np.ndarray, ansatz: EnQodeAnsatz
    ) -> np.ndarray:
        """The final embedded state ``V |psi(theta)>`` (closing layer applied)."""
        return ansatz.apply_closing_layer(self.amplitudes(theta))

    def __repr__(self) -> str:
        return (
            f"SymbolicState(qubits={self.num_qubits}, "
            f"params={self.phase_matrix.shape[1]})"
        )


def _popcount(values: np.ndarray) -> np.ndarray:
    """Vectorized per-element popcount (see :func:`repro.utils.linalg.popcount`)."""
    return popcount(values)


def _apply_entangler(
    name: str,
    k_pow: np.ndarray,
    phase: np.ndarray,
    indices: np.ndarray,
    num_qubits: int,
    control: int,
    target: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Push a CY/CX/CZ through the symbolic state (exact, integer)."""
    control_bit = (indices >> (num_qubits - 1 - control)) & 1
    target_bit = (indices >> (num_qubits - 1 - target)) & 1
    target_mask = 1 << (num_qubits - 1 - target)

    if name == "cz":
        # Diagonal: phase -1 (= i^2) when both bits are 1; no permutation.
        new_k = k_pow + 2 * (control_bit & target_bit)
        return new_k % 4, phase

    # CX / CY / CRy permute: when the control bit is 1, the *source* of
    # the new amplitude at r is r with the target bit flipped.
    source = np.where(control_bit == 1, indices ^ target_mask, indices)
    new_k = k_pow[source].copy()
    new_phase = phase[source]
    if name == "cy":
        # Y|0> = i|1>, Y|1> = -i|0>: destination target-bit 1 gains i,
        # destination target-bit 0 gains -i (= i^3).
        gain = np.where(target_bit == 1, 1, 3)
        new_k = new_k + np.where(control_bit == 1, gain, 0)
    elif name == "cry":
        # CRy(pi): |10> -> |11>, |11> -> -|10>: gains 1 and -1 (= i^2).
        gain = np.where(target_bit == 1, 0, 2)
        new_k = new_k + np.where(control_bit == 1, gain, 0)
    return new_k % 4, new_phase


def build_symbolic(ansatz: EnQodeAnsatz) -> SymbolicState:
    """Convenience wrapper around :meth:`SymbolicState.from_ansatz`."""
    return SymbolicState.from_ansatz(ansatz)
