"""Transfer learning: warm-started per-sample embedding (Sec. III-D).

A new sample is matched to its nearest cluster (Euclidean distance to the
centroids); that cluster's trained parameters initialize a short L-BFGS
fine-tune of the sample's own embedding.  Because the initialization is
already close, the online step is fast and its latency is uniform — the
property Fig. 9(a) measures.

Three entry points: :meth:`TransferLearner.embed` fine-tunes one sample,
:meth:`TransferLearner.embed_batch` fine-tunes a whole sample matrix
concurrently — vectorized nearest-center matching, one
:class:`~repro.core.batch.BatchFidelityObjective`, and a single stacked
L-BFGS drive (see :mod:`repro.core.batch`) that returns the same
fidelities as the per-sample loop at a fraction of the cost — and
:meth:`TransferLearner.finetune` is the shared engine behind both: it
takes precomputed cluster assignments (the pipeline's *route* stage
output, see :mod:`repro.core.pipeline`) and dispatches one row to the
sequential optimizer and several rows to the stacked drive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ansatz import EnQodeAnsatz
from repro.core.batch import BatchFidelityObjective, BatchLBFGSOptimizer
from repro.core.clustering import nearest_center, nearest_centers
from repro.core.objective import FidelityObjective
from repro.core.optimizer import LBFGSOptimizer, OptimizationResult
from repro.core.symbolic import SymbolicState
from repro.errors import OptimizationError


@dataclass
class TransferOutcome:
    """Result of one warm-started sample embedding."""

    cluster_index: int
    cluster_distance: float
    result: OptimizationResult

    @property
    def theta(self) -> np.ndarray:
        return self.result.theta

    @property
    def fidelity(self) -> float:
        return self.result.fidelity


class TransferLearner:
    """Embeds samples by fine-tuning from pre-trained cluster parameters."""

    def __init__(
        self,
        ansatz: EnQodeAnsatz,
        symbolic: SymbolicState,
        centers: np.ndarray,
        cluster_thetas: np.ndarray,
        max_iterations: int = 80,
        gtol: float = 1e-9,
        ftol: float = 1e-12,
        batch_engine: str = "stacked",
    ) -> None:
        centers = np.asarray(centers, dtype=float)
        cluster_thetas = np.asarray(cluster_thetas, dtype=float)
        if centers.shape[0] != cluster_thetas.shape[0]:
            raise OptimizationError(
                "one trained parameter vector per cluster center required"
            )
        if cluster_thetas.shape[1] != ansatz.num_parameters:
            raise OptimizationError("cluster theta size != ansatz parameters")
        if batch_engine not in ("stacked", "rows"):
            raise OptimizationError(
                f"batch_engine must be 'stacked' or 'rows', "
                f"got {batch_engine!r}"
            )
        self.ansatz = ansatz
        self.symbolic = symbolic
        self.centers = centers
        self.cluster_thetas = cluster_thetas
        #: Multi-row drive selection — see EnQodeConfig.online_batch_engine.
        self.batch_engine = batch_engine
        self._optimizer = LBFGSOptimizer(
            max_iterations=max_iterations, gtol=gtol, ftol=ftol, num_restarts=1
        )

    def embed(self, sample: np.ndarray) -> TransferOutcome:
        """Warm-start from the nearest cluster and fine-tune for ``sample``."""
        sample = np.asarray(sample, dtype=float).ravel()
        index, distance = nearest_center(sample, self.centers)
        return self._finetune_single(sample, index, distance)

    def embed_batch(self, samples: np.ndarray) -> list[TransferOutcome]:
        """Warm-start and fine-tune a ``(B, 2^n)`` sample matrix at once.

        Matches every row to its nearest cluster in one vectorized pass,
        then drives all fine-tunes concurrently through the stacked
        batched optimizer.  Returns one :class:`TransferOutcome` per row,
        in input order.  Each outcome's ``num_iterations`` is the
        per-sample attribution (stacked steps + that sample's polish
        steps — comparable to a sequential run); evaluation counts and
        wall time are batch totals divided evenly.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        if samples.shape[0] == 0:
            return []
        indices, distances = nearest_centers(samples, self.centers)
        return self._finetune_stacked(samples, indices, distances)

    def finetune(
        self,
        samples: np.ndarray,
        indices: np.ndarray,
        distances: np.ndarray,
    ) -> list[TransferOutcome]:
        """Fine-tune rows whose cluster assignments are already known.

        This is the engine behind the pipeline's *finetune* stage (see
        :mod:`repro.core.pipeline`): routing has happened, warm starts are
        ``cluster_thetas[indices]``.  A single row runs the sequential
        scipy L-BFGS exactly as :meth:`embed` always has; two or more
        rows run the batched drive selected by ``batch_engine`` —
        ``"rows"`` (the per-row vectorized engine, the measured
        warm-start winner and the ``EnQodeConfig`` default) or
        ``"stacked"`` (the historical scipy block-diagonal drive) —
        so every caller of the stage (``encode``, ``encode_batch``,
        :class:`repro.service.EncodingService`) gets the same
        configured numerics.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        if samples.shape[0] == 0:
            return []
        if samples.shape[0] == 1:
            return [
                self._finetune_single(
                    samples[0], int(indices[0]), float(distances[0])
                )
            ]
        return self._finetune_stacked(samples, indices, distances)

    def _finetune_single(
        self, sample: np.ndarray, index: int, distance: float
    ) -> TransferOutcome:
        objective = FidelityObjective(self.symbolic, self.ansatz, sample)
        result = self._optimizer.optimize(
            objective, theta0=self.cluster_thetas[index]
        )
        return TransferOutcome(
            cluster_index=index, cluster_distance=distance, result=result
        )

    def _finetune_stacked(
        self,
        samples: np.ndarray,
        indices: np.ndarray,
        distances: np.ndarray,
    ) -> list[TransferOutcome]:
        objective = BatchFidelityObjective(self.symbolic, self.ansatz, samples)
        optimizer = BatchLBFGSOptimizer(
            max_iterations=self._optimizer.max_iterations,
            gtol=self._optimizer.gtol,
            ftol=self._optimizer.ftol,
        )
        theta0 = self.cluster_thetas[indices]
        if self.batch_engine == "rows":
            batch = optimizer.optimize_rows(objective, theta0)
        else:
            batch = optimizer.optimize(objective, theta0)
        # Evaluations are a batch total: attribute them evenly, spreading
        # the integer remainder over the first rows so the per-sample
        # counts sum back to the exact total (summed stats then match the
        # sequential path instead of inflating B-fold).
        base_evals, extra_evals = divmod(
            batch.num_evaluations, batch.batch_size
        )
        outcomes = []
        for b in range(batch.batch_size):
            result = OptimizationResult(
                theta=batch.thetas[b],
                fidelity=float(batch.fidelities[b]),
                loss=float(batch.losses[b]),
                num_iterations=batch.per_sample_iterations(b),
                num_evaluations=base_evals + (1 if b < extra_evals else 0),
                time=batch.time / batch.batch_size,
                converged=bool(batch.converged[b]),
                restarts_used=1,
                history=[float(batch.fidelities[b])],
            )
            outcomes.append(
                TransferOutcome(
                    cluster_index=int(indices[b]),
                    cluster_distance=float(distances[b]),
                    result=result,
                )
            )
        return outcomes

    def embed_cold(self, sample: np.ndarray, seed: int = 0) -> TransferOutcome:
        """Ablation A5 contrast: same iteration budget, random init."""
        sample = np.asarray(sample, dtype=float).ravel()
        objective = FidelityObjective(self.symbolic, self.ansatz, sample)
        cold = LBFGSOptimizer(
            max_iterations=self._optimizer.max_iterations,
            gtol=self._optimizer.gtol,
            ftol=self._optimizer.ftol,
            num_restarts=1,
            seed=seed,
        )
        rng_theta = np.random.default_rng(seed).uniform(
            -np.pi, np.pi, self.ansatz.num_parameters
        )
        result = cold.optimize(objective, theta0=rng_theta)
        return TransferOutcome(
            cluster_index=-1, cluster_distance=float("nan"), result=result
        )
