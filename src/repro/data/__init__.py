"""Data pipeline: synthetic image datasets, PCA, and AE preprocessing."""

from repro.data.datasets import DATASET_NAMES, load_all_datasets, load_dataset
from repro.data.pca import PCA
from repro.data.preprocess import (
    EmbeddingDataset,
    normalize_rows,
    prepare_amplitudes,
    prepare_embedding_dataset,
)
from repro.data.synthetic import (
    synthetic_cifar10,
    synthetic_fashion_mnist,
    synthetic_mnist,
)
from repro.data.trainable import TrainableEmbedding

__all__ = [
    "DATASET_NAMES",
    "EmbeddingDataset",
    "PCA",
    "load_all_datasets",
    "load_dataset",
    "normalize_rows",
    "prepare_amplitudes",
    "prepare_embedding_dataset",
    "TrainableEmbedding",
    "synthetic_cifar10",
    "synthetic_fashion_mnist",
    "synthetic_mnist",
]
