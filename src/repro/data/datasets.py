"""Dataset registry reproducing the paper's evaluation data setup.

Sec. IV-B: three image datasets (MNIST, F-MNIST, CIFAR), 5 randomly
sampled classes each, 500 images per class, PCA to ``2^n`` features,
normalized.  :func:`load_dataset` runs that pipeline for the synthetic
stand-ins (see :mod:`repro.data.synthetic` for why they are synthetic and
what is preserved).
"""

from __future__ import annotations

from repro.data.preprocess import EmbeddingDataset, prepare_embedding_dataset
from repro.data.synthetic import (
    synthetic_cifar10,
    synthetic_fashion_mnist,
    synthetic_mnist,
)
from repro.errors import DataError
from repro.utils.rng import as_rng

DATASET_NAMES = ("mnist", "fmnist", "cifar")

_GENERATORS = {
    "mnist": synthetic_mnist,
    "fmnist": synthetic_fashion_mnist,
    "cifar": synthetic_cifar10,
}


def load_dataset(
    name: str,
    num_classes: int = 5,
    samples_per_class: int = 500,
    num_features: int = 256,
    seed: int = 0,
) -> EmbeddingDataset:
    """Generate + preprocess one of the paper's three datasets.

    ``num_classes`` classes are sampled at random (seeded) from the ten
    available, matching the paper's "randomly sampled 5 classes".
    """
    key = name.lower().replace("-", "").replace("_", "")
    if key == "fashionmnist":
        key = "fmnist"
    if key == "cifar10":
        key = "cifar"
    if key not in _GENERATORS:
        raise DataError(f"unknown dataset {name!r}; options: {DATASET_NAMES}")
    rng = as_rng(seed)
    classes = sorted(
        int(c) for c in rng.choice(10, size=num_classes, replace=False)
    )
    images, labels = _GENERATORS[key](
        classes=classes, samples_per_class=samples_per_class, seed=seed + 1
    )
    return prepare_embedding_dataset(key, images, labels, num_features)


def load_all_datasets(
    num_classes: int = 5,
    samples_per_class: int = 500,
    num_features: int = 256,
    seed: int = 0,
) -> dict[str, EmbeddingDataset]:
    """All three evaluation datasets, keyed by canonical name."""
    return {
        name: load_dataset(
            name,
            num_classes=num_classes,
            samples_per_class=samples_per_class,
            num_features=num_features,
            seed=seed,
        )
        for name in DATASET_NAMES
    }
