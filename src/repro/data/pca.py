"""Principal Component Analysis, implemented on SVD (no sklearn offline).

The paper reduces each image dataset to ``2^n`` features with PCA and
normalizes the result for amplitude embedding (Sec. IV-B).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


class PCA:
    """Fit/transform PCA with ``num_components`` directions.

    Components are deterministic up to sign; signs are fixed so the
    largest-magnitude loading of each component is positive, making the
    pipeline reproducible across runs and platforms.
    """

    def __init__(self, num_components: int) -> None:
        if num_components < 1:
            raise DataError("num_components must be positive")
        self.num_components = num_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "PCA":
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise DataError(f"expected 2-D data, got shape {data.shape}")
        n_samples, n_features = data.shape
        if self.num_components > min(n_samples, n_features):
            raise DataError(
                f"cannot extract {self.num_components} components from "
                f"data of shape {data.shape}"
            )
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        components = vt[: self.num_components]
        # Deterministic sign convention.
        anchor = np.argmax(np.abs(components), axis=1)
        signs = np.sign(components[np.arange(components.shape[0]), anchor])
        signs[signs == 0] = 1.0
        self.components_ = components * signs[:, None]
        variance = (singular_values**2) / max(n_samples - 1, 1)
        self.explained_variance_ = variance[: self.num_components]
        self.explained_variance_ratio_ = self.explained_variance_ / variance.sum()
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise DataError("PCA.transform called before fit")
        data = np.asarray(data, dtype=float)
        return (data - self.mean_) @ self.components_.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise DataError("PCA.inverse_transform called before fit")
        return np.asarray(features, dtype=float) @ self.components_ + self.mean_
