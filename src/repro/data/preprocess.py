"""Preprocessing pipeline: images -> PCA features -> unit amplitude vectors.

Mirrors Sec. IV-B: reduce each dataset with PCA to ``2^n`` features, then
normalize every feature vector for amplitude embedding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.pca import PCA
from repro.errors import DataError


def normalize_rows(features: np.ndarray, min_norm: float = 1e-12) -> np.ndarray:
    """Scale every row to unit Euclidean norm (AE compatibility)."""
    features = np.asarray(features, dtype=float)
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    if np.any(norms < min_norm):
        raise DataError("a sample has (near-)zero norm and cannot be embedded")
    return features / norms


@dataclass
class EmbeddingDataset:
    """A dataset ready for amplitude embedding."""

    name: str
    amplitudes: np.ndarray  # (N, 2^n) unit rows
    labels: np.ndarray  # (N,)
    pca: PCA
    raw_dim: int

    @property
    def num_samples(self) -> int:
        return self.amplitudes.shape[0]

    @property
    def num_features(self) -> int:
        return self.amplitudes.shape[1]

    def classes(self) -> np.ndarray:
        return np.unique(self.labels)

    def class_slice(self, label: int) -> np.ndarray:
        """Amplitude rows of one class."""
        return self.amplitudes[self.labels == label]


def prepare_embedding_dataset(
    name: str,
    images: np.ndarray,
    labels: np.ndarray,
    num_features: int = 256,
) -> EmbeddingDataset:
    """PCA-reduce and normalize a raw image dataset (paper Sec. IV-B)."""
    images = np.asarray(images, dtype=float)
    labels = np.asarray(labels)
    if images.ndim != 2 or images.shape[0] != labels.shape[0]:
        raise DataError(
            f"inconsistent dataset shapes {images.shape} / {labels.shape}"
        )
    if num_features & (num_features - 1):
        raise DataError(f"num_features={num_features} is not a power of two")
    pca = PCA(num_features)
    features = pca.fit_transform(images)
    return EmbeddingDataset(
        name=name,
        amplitudes=normalize_rows(features),
        labels=labels,
        pca=pca,
        raw_dim=images.shape[1],
    )
