"""Preprocessing pipeline: images -> PCA features -> unit amplitude vectors.

Mirrors Sec. IV-B: reduce each dataset with PCA to ``2^n`` features, then
normalize every feature vector for amplitude embedding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.pca import PCA
from repro.errors import DataError


def normalize_rows(features: np.ndarray, min_norm: float = 1e-12) -> np.ndarray:
    """Scale every row to unit Euclidean norm (AE compatibility)."""
    features = np.asarray(features, dtype=float)
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    if np.any(norms < min_norm):
        raise DataError("a sample has (near-)zero norm and cannot be embedded")
    return features / norms


def prepare_amplitudes(
    features: np.ndarray,
    num_amplitudes: int,
    *,
    normalize: bool = True,
    pad_with: "float | None" = None,
    min_norm: float = 1e-12,
) -> np.ndarray:
    """Feature rows -> a ``(B, num_amplitudes)`` amplitude matrix.

    The input conveniences of PennyLane's ``AmplitudeEmbedding``:

    * ``pad_with`` — rows shorter than ``num_amplitudes`` are
      right-padded with this constant (without it, any length mismatch
      is an error); rows can never be *longer* than ``num_amplitudes``.
    * ``normalize`` — scale every (padded) row to unit norm.  With
      ``normalize=False`` rows must already be unit-norm (to 1e-6), as
      amplitude embedding is undefined otherwise.

    Accepts a single 1-d feature vector or a 2-d batch; always returns
    the 2-d form.  Raises :class:`~repro.errors.DataError` on any
    mismatch, so callers can tell input problems from optimization
    failures.
    """
    features = np.atleast_2d(np.asarray(features, dtype=float))
    if features.ndim != 2:
        raise DataError(
            f"features must be 1-d or 2-d, got shape {features.shape}"
        )
    width = features.shape[1]
    if width > num_amplitudes:
        raise DataError(
            f"feature rows of length {width} exceed the {num_amplitudes} "
            f"available amplitudes"
        )
    if width < num_amplitudes:
        if pad_with is None:
            raise DataError(
                f"feature rows of length {width} need {num_amplitudes} "
                f"amplitudes; pass pad_with= to right-pad them"
            )
        padded = np.full(
            (features.shape[0], num_amplitudes), float(pad_with)
        )
        padded[:, :width] = features
        features = padded
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    if np.any(norms < min_norm):
        raise DataError("a sample has (near-)zero norm and cannot be embedded")
    if normalize:
        return features / norms
    if np.any(np.abs(norms - 1.0) > 1e-6):
        raise DataError(
            "features are not unit-norm; pass normalize=True to scale them"
        )
    return features


@dataclass
class EmbeddingDataset:
    """A dataset ready for amplitude embedding."""

    name: str
    amplitudes: np.ndarray  # (N, 2^n) unit rows
    labels: np.ndarray  # (N,)
    pca: PCA
    raw_dim: int

    @property
    def num_samples(self) -> int:
        return self.amplitudes.shape[0]

    @property
    def num_features(self) -> int:
        return self.amplitudes.shape[1]

    def classes(self) -> np.ndarray:
        return np.unique(self.labels)

    def class_slice(self, label: int) -> np.ndarray:
        """Amplitude rows of one class."""
        return self.amplitudes[self.labels == label]


def prepare_embedding_dataset(
    name: str,
    images: np.ndarray,
    labels: np.ndarray,
    num_features: int = 256,
) -> EmbeddingDataset:
    """PCA-reduce and normalize a raw image dataset (paper Sec. IV-B)."""
    images = np.asarray(images, dtype=float)
    labels = np.asarray(labels)
    if images.ndim != 2 or images.shape[0] != labels.shape[0]:
        raise DataError(
            f"inconsistent dataset shapes {images.shape} / {labels.shape}"
        )
    if num_features & (num_features - 1):
        raise DataError(f"num_features={num_features} is not a power of two")
    pca = PCA(num_features)
    features = pca.fit_transform(images)
    return EmbeddingDataset(
        name=name,
        amplitudes=normalize_rows(features),
        labels=labels,
        pca=pca,
        raw_dim=images.shape[1],
    )
