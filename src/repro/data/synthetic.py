"""Synthetic stand-ins for MNIST, Fashion-MNIST, and CIFAR-10.

The evaluation environment has no network, so the three benchmark image
datasets are replaced by parametric generators that preserve the two
properties the paper's pipeline actually depends on:

* **within-class cluster structure** — samples of a class are smooth
  deformations of shared templates, so k-means finds tight clusters and
  cluster means are representative (Sec. III-C);
* **concentrated PCA spectra** — images are spatially smooth, so most
  energy lands in the leading principal components, which is what makes
  low-depth approximate embedding viable at ~90% fidelity.

Generators are fully deterministic given a seed, and quantize to 8-bit
like the real datasets.

* :func:`synthetic_mnist` renders digit-like pen strokes (piecewise-linear
  skeletons per class, jittered anchors, Gaussian brush);
* :func:`synthetic_fashion_mnist` renders garment-like silhouettes
  (class-specific rectangle/ellipse compositions with texture noise);
* :func:`synthetic_cifar10` renders 32x32 RGB scenes (class-specific
  palettes, low-pass random fields, and simple foreground blobs).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.utils.rng import as_rng

# ---------------------------------------------------------------------------
# Shared raster helpers
# ---------------------------------------------------------------------------


def _gaussian_brush(
    canvas: np.ndarray, points: np.ndarray, sigma: float, intensity: float
) -> None:
    """Stamp a Gaussian blob at each (row, col) point (in place)."""
    size = canvas.shape[0]
    rows = np.arange(size)[:, None]
    cols = np.arange(size)[None, :]
    for r, c in points:
        canvas += intensity * np.exp(
            -((rows - r) ** 2 + (cols - c) ** 2) / (2.0 * sigma**2)
        )


def _stroke_points(anchors: np.ndarray, steps_per_segment: int = 12) -> np.ndarray:
    """Densify a piecewise-linear path through ``anchors``."""
    segments = []
    for start, end in zip(anchors[:-1], anchors[1:]):
        t = np.linspace(0.0, 1.0, steps_per_segment, endpoint=False)[:, None]
        segments.append(start[None, :] * (1 - t) + end[None, :] * t)
    segments.append(anchors[-1:])
    return np.concatenate(segments, axis=0)


def _quantize(images: np.ndarray) -> np.ndarray:
    """Clip to [0, 1] and quantize to 8 bits (like real image datasets)."""
    clipped = np.clip(images, 0.0, 1.0)
    return np.round(clipped * 255.0) / 255.0


def _gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """FFT Gaussian blur (soft edges, like photographed garments at 28x28)."""
    size = image.shape[0]
    freq_r = np.fft.fftfreq(size)[:, None]
    freq_c = np.fft.fftfreq(size)[None, :]
    kernel = np.exp(-2.0 * (np.pi * sigma) ** 2 * (freq_r**2 + freq_c**2))
    return np.real(np.fft.ifft2(np.fft.fft2(image) * kernel))


def _smooth_field(
    rng: np.random.Generator, size: int, correlation: float
) -> np.ndarray:
    """A smooth random field: white noise low-passed with a Gaussian kernel."""
    noise = rng.normal(size=(size, size))
    freq_r = np.fft.fftfreq(size)[:, None]
    freq_c = np.fft.fftfreq(size)[None, :]
    kernel = np.exp(-((freq_r**2 + freq_c**2) * (correlation * size) ** 2))
    field = np.real(np.fft.ifft2(np.fft.fft2(noise) * kernel))
    field -= field.min()
    peak = field.max()
    return field / peak if peak > 0 else field


# ---------------------------------------------------------------------------
# MNIST-like digits
# ---------------------------------------------------------------------------

# Digit skeletons on a [0, 1]^2 canvas as (row, col) anchor lists.
_DIGIT_SKELETONS: dict[int, list[tuple[float, float]]] = {
    0: [(0.2, 0.5), (0.35, 0.25), (0.65, 0.25), (0.8, 0.5), (0.65, 0.75),
        (0.35, 0.75), (0.2, 0.5)],
    1: [(0.25, 0.45), (0.15, 0.55), (0.85, 0.55)],
    2: [(0.25, 0.3), (0.15, 0.55), (0.35, 0.7), (0.8, 0.25), (0.85, 0.7)],
    3: [(0.18, 0.3), (0.3, 0.7), (0.5, 0.45), (0.7, 0.7), (0.85, 0.3)],
    4: [(0.15, 0.6), (0.55, 0.25), (0.55, 0.8), (0.55, 0.6), (0.9, 0.6)],
    5: [(0.2, 0.7), (0.2, 0.3), (0.5, 0.3), (0.55, 0.7), (0.8, 0.65),
        (0.85, 0.35)],
    6: [(0.2, 0.65), (0.5, 0.3), (0.8, 0.4), (0.75, 0.7), (0.5, 0.65)],
    7: [(0.2, 0.25), (0.2, 0.75), (0.85, 0.4)],
    8: [(0.3, 0.35), (0.2, 0.5), (0.3, 0.65), (0.45, 0.5), (0.3, 0.35),
        (0.45, 0.5), (0.7, 0.65), (0.85, 0.5), (0.7, 0.35), (0.45, 0.5)],
    9: [(0.35, 0.65), (0.25, 0.35), (0.5, 0.3), (0.45, 0.7), (0.85, 0.55)],
}


def _render_digit(
    rng: np.random.Generator, digit: int, size: int = 28
) -> np.ndarray:
    anchors = np.asarray(_DIGIT_SKELETONS[digit], dtype=float)
    # Per-sample deformation: anchor jitter + small affine transform.
    # Kept mild so classes form tight manifolds, as handwritten digits do
    # after the usual centering/size normalization of MNIST.
    anchors = anchors + rng.normal(scale=0.006, size=anchors.shape)
    angle = rng.normal(scale=0.012)
    scale = 1.0 + rng.normal(scale=0.01)
    shift = rng.normal(scale=0.005, size=2)
    rotation = np.array(
        [[np.cos(angle), -np.sin(angle)], [np.sin(angle), np.cos(angle)]]
    )
    center = np.array([0.5, 0.5])
    anchors = (anchors - center) @ rotation.T * scale + center + shift
    points = _stroke_points(anchors) * (size - 1)
    canvas = np.zeros((size, size))
    sigma = 1.2 + rng.normal(scale=0.03)
    _gaussian_brush(canvas, points, sigma=max(sigma, 0.9), intensity=0.55)
    canvas = np.clip(canvas, 0.0, 1.0) * (0.95 + 0.05 * rng.random())
    return canvas


def synthetic_mnist(
    classes: "list[int] | None" = None,
    samples_per_class: int = 500,
    seed: int = 0,
    image_size: int = 28,
) -> tuple[np.ndarray, np.ndarray]:
    """Digit-stroke dataset; returns ``(X, y)`` with X in [0,1]^(N, size^2)."""
    classes = list(range(10)) if classes is None else list(classes)
    _check_classes(classes, _DIGIT_SKELETONS)
    rng = as_rng(seed)
    images, labels = [], []
    for label in classes:
        for _ in range(samples_per_class):
            images.append(_render_digit(rng, label, image_size).ravel())
            labels.append(label)
    return _quantize(np.asarray(images)), np.asarray(labels)


# ---------------------------------------------------------------------------
# Fashion-MNIST-like garments
# ---------------------------------------------------------------------------


def _rect_mask(size, top, bottom, left, right) -> np.ndarray:
    rows = np.arange(size)[:, None] / (size - 1)
    cols = np.arange(size)[None, :] / (size - 1)
    return (
        (rows >= top) & (rows <= bottom) & (cols >= left) & (cols <= right)
    ).astype(float)


def _ellipse_mask(size, center_r, center_c, radius_r, radius_c) -> np.ndarray:
    rows = np.arange(size)[:, None] / (size - 1)
    cols = np.arange(size)[None, :] / (size - 1)
    return (
        ((rows - center_r) / radius_r) ** 2 + ((cols - center_c) / radius_c) ** 2
        <= 1.0
    ).astype(float)


def _garment_template(
    rng: np.random.Generator, label: int, size: int
) -> np.ndarray:
    """Class-specific silhouette with jittered proportions."""
    j = lambda scale=0.004: rng.normal(scale=scale)  # noqa: E731 — local jitter
    if label == 0:  # t-shirt: torso + sleeves
        torso = _rect_mask(size, 0.25 + j(), 0.85 + j(), 0.3 + j(), 0.7 + j())
        sleeves = _rect_mask(size, 0.25 + j(), 0.45 + j(), 0.1 + j(), 0.9 + j())
        return np.clip(torso + sleeves, 0, 1)
    if label == 1:  # trousers: two legs
        left = _rect_mask(size, 0.15 + j(), 0.9 + j(), 0.3 + j(), 0.47 + j())
        right = _rect_mask(size, 0.15 + j(), 0.9 + j(), 0.53 + j(), 0.7 + j())
        hip = _rect_mask(size, 0.15 + j(), 0.4 + j(), 0.3 + j(), 0.7 + j())
        return np.clip(left + right + hip, 0, 1)
    if label == 2:  # pullover: wide torso + long sleeves
        torso = _rect_mask(size, 0.2 + j(), 0.85 + j(), 0.25 + j(), 0.75 + j())
        sleeves = _rect_mask(size, 0.2 + j(), 0.8 + j(), 0.05 + j(), 0.95 + j())
        return np.clip(torso + 0.9 * sleeves, 0, 1)
    if label == 3:  # dress: fitted top flaring to a skirt
        top = _rect_mask(size, 0.15 + j(), 0.5 + j(), 0.35 + j(), 0.65 + j())
        skirt = _ellipse_mask(size, 0.75 + j(), 0.5 + j(), 0.3, 0.32 + j())
        return np.clip(top + skirt, 0, 1)
    if label == 4:  # coat: torso + collar + long sleeves
        torso = _rect_mask(size, 0.18 + j(), 0.92 + j(), 0.28 + j(), 0.72 + j())
        sleeves = _rect_mask(size, 0.18 + j(), 0.9 + j(), 0.08 + j(), 0.92 + j())
        collar = _ellipse_mask(size, 0.15 + j(), 0.5 + j(), 0.08, 0.18)
        return np.clip(torso + 0.85 * sleeves + collar, 0, 1)
    if label == 5:  # sandal: sole + straps
        sole = _ellipse_mask(size, 0.75 + j(), 0.5 + j(), 0.12, 0.4 + j())
        strap1 = _rect_mask(size, 0.35 + j(), 0.72, 0.25 + j(), 0.35 + j())
        strap2 = _rect_mask(size, 0.35 + j(), 0.72, 0.6 + j(), 0.7 + j())
        return np.clip(sole + strap1 + strap2, 0, 1)
    if label == 6:  # shirt: torso + buttons line
        torso = _rect_mask(size, 0.2 + j(), 0.88 + j(), 0.3 + j(), 0.7 + j())
        placket = _rect_mask(size, 0.2 + j(), 0.88, 0.48, 0.52)
        sleeves = _rect_mask(size, 0.2 + j(), 0.6 + j(), 0.12 + j(), 0.88 + j())
        return np.clip(torso + 0.6 * sleeves - 0.3 * placket, 0, 1)
    if label == 7:  # sneaker: low profile wedge
        body = _ellipse_mask(size, 0.7 + j(), 0.45 + j(), 0.18, 0.42 + j())
        toe = _ellipse_mask(size, 0.75 + j(), 0.75 + j(), 0.1, 0.15)
        return np.clip(body + toe, 0, 1)
    if label == 8:  # bag: body + handle
        body = _rect_mask(size, 0.45 + j(), 0.9 + j(), 0.2 + j(), 0.8 + j())
        handle = _ellipse_mask(size, 0.38 + j(), 0.5 + j(), 0.22, 0.3) - \
            _ellipse_mask(size, 0.38 + j(0.01), 0.5 + j(0.01), 0.12, 0.2)
        return np.clip(body + np.clip(handle, 0, 1), 0, 1)
    if label == 9:  # ankle boot: shaft + foot
        shaft = _rect_mask(size, 0.2 + j(), 0.75 + j(), 0.35 + j(), 0.6 + j())
        foot = _ellipse_mask(size, 0.78 + j(), 0.55 + j(), 0.14, 0.35 + j())
        return np.clip(shaft + foot, 0, 1)
    raise DataError(f"fashion class {label} out of range 0-9")


def synthetic_fashion_mnist(
    classes: "list[int] | None" = None,
    samples_per_class: int = 500,
    seed: int = 0,
    image_size: int = 28,
) -> tuple[np.ndarray, np.ndarray]:
    """Garment-silhouette dataset; same interface as :func:`synthetic_mnist`."""
    classes = list(range(10)) if classes is None else list(classes)
    if any(c < 0 or c > 9 for c in classes):
        raise DataError(f"fashion classes must be 0-9, got {classes}")
    rng = as_rng(seed)
    images, labels = [], []
    for label in classes:
        for _ in range(samples_per_class):
            silhouette = _gaussian_blur(
                _garment_template(rng, label, image_size),
                sigma=1.3 + 0.1 * rng.random(),
            )
            texture = 0.035 * _smooth_field(rng, image_size, 0.12)
            brightness = 0.92 + 0.06 * rng.random()
            image = np.clip(silhouette * brightness + texture * silhouette, 0, 1)
            images.append(image.ravel())
            labels.append(label)
    return _quantize(np.asarray(images)), np.asarray(labels)


# ---------------------------------------------------------------------------
# CIFAR-10-like color scenes
# ---------------------------------------------------------------------------

# (sky/background RGB, object RGB, background correlation, object size)
_CIFAR_RECIPES: dict[int, tuple] = {
    0: ((0.55, 0.7, 0.9), (0.75, 0.75, 0.78), 0.25, 0.45),  # airplane
    1: ((0.45, 0.45, 0.5), (0.7, 0.15, 0.15), 0.18, 0.5),   # automobile
    2: ((0.5, 0.75, 0.55), (0.55, 0.45, 0.3), 0.2, 0.3),    # bird
    3: ((0.6, 0.55, 0.45), (0.35, 0.3, 0.25), 0.15, 0.45),  # cat
    4: ((0.45, 0.6, 0.35), (0.5, 0.4, 0.3), 0.22, 0.5),     # deer
    5: ((0.55, 0.5, 0.45), (0.45, 0.35, 0.3), 0.15, 0.5),   # dog
    6: ((0.35, 0.55, 0.35), (0.3, 0.5, 0.25), 0.2, 0.3),    # frog
    7: ((0.5, 0.6, 0.4), (0.5, 0.35, 0.25), 0.2, 0.55),     # horse
    8: ((0.4, 0.55, 0.8), (0.6, 0.6, 0.65), 0.3, 0.5),      # ship
    9: ((0.5, 0.5, 0.55), (0.35, 0.6, 0.3), 0.18, 0.55),    # truck
}


def synthetic_cifar10(
    classes: "list[int] | None" = None,
    samples_per_class: int = 500,
    seed: int = 0,
    image_size: int = 32,
) -> tuple[np.ndarray, np.ndarray]:
    """Color-scene dataset; X rows are flattened ``size*size*3`` images."""
    classes = list(range(10)) if classes is None else list(classes)
    _check_classes(classes, _CIFAR_RECIPES)
    rng = as_rng(seed)
    images, labels = [], []
    rows = np.arange(image_size)[:, None] / (image_size - 1)
    cols = np.arange(image_size)[None, :] / (image_size - 1)
    for label in classes:
        background, foreground, correlation, obj_size = _CIFAR_RECIPES[label]
        # A fixed per-class backdrop keeps samples of a class coherent;
        # each sample adds a weaker private field on top.
        class_field = _smooth_field(rng, image_size, correlation)
        for _ in range(samples_per_class):
            image = np.empty((image_size, image_size, 3))
            field = 0.85 * class_field + 0.15 * _smooth_field(
                rng, image_size, correlation
            )
            center_r = 0.5 + rng.normal(scale=0.02)
            center_c = 0.5 + rng.normal(scale=0.02)
            radius = obj_size * (1.0 + rng.normal(scale=0.03)) / 2.0
            blob = np.exp(
                -(((rows - center_r) ** 2 + (cols - center_c) ** 2))
                / (2.0 * radius**2)
            )
            for channel in range(3):
                base = background[channel] * (0.8 + 0.4 * field)
                obj = foreground[channel] * (0.92 + 0.12 * rng.random())
                image[:, :, channel] = base * (1 - blob) + obj * blob
            image += rng.normal(scale=0.01, size=image.shape)
            images.append(np.clip(image, 0, 1).ravel())
            labels.append(label)
    return _quantize(np.asarray(images)), np.asarray(labels)


def _check_classes(classes: "list[int]", table: dict) -> None:
    unknown = [c for c in classes if c not in table]
    if unknown:
        raise DataError(f"unknown class labels {unknown}")
