"""Trainable classical embedding: an NQE-style learned map before encoding.

Neural Quantum Embedding (Hur et al., arXiv:2311.11412) shows that a
small *trainable* classical preprocessing network in front of the
quantum embedding can dramatically improve downstream classifier
accuracy: instead of amplitude-encoding raw features, one first learns a
map that pulls same-class samples together and pushes different-class
samples apart *in the embedded geometry*.

:class:`TrainableEmbedding` is the linear instantiation of that idea
matched to amplitude embedding: a learned ``(out, in)`` matrix ``W``
applied before row renormalization,

    ``x  ->  W x / || W x ||``.

Because amplitude embedding is itself linear-then-normalize, the
composite is still an amplitude embedding of a learned feature space —
so everything downstream (clustering, template binding, the service) is
untouched.  The map slots into :class:`repro.core.pipeline.
EncodePipeline` as an optional preprocessing stage ahead of routing, so
``fit``/``encode``/``encode_batch`` and the serving layer all see it
transparently (the encoder's *input* width becomes ``W.shape[1]`` while
its circuits stay ``W.shape[0]``-amplitude wide).

Training maximizes the fidelity contrast between class pairs — the
separation ``mean same-class overlap - mean cross-class overlap`` of the
normalized embedded vectors, a trace-distance surrogate of NQE's
loss — via the same SPSA schedule the VQC head uses.  It can be trained
standalone (frozen thereafter) or jointly refreshed between classifier
epochs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError, SerializationError
from repro.utils.rng import as_rng


class TrainableEmbedding:
    """A learned linear map + renormalization in front of amplitude encoding.

    Parameters
    ----------
    input_size:
        Width of raw feature vectors.
    output_size:
        Width after the map — must equal the encoder's
        ``num_amplitudes`` (``2**num_qubits``) when used as a pipeline
        preprocessor.  Defaults to ``input_size`` (a square map
        initialized to the identity, i.e. a no-op until trained).
    seed:
        RNG for initialization and SPSA perturbations.
    """

    def __init__(
        self,
        input_size: int,
        output_size: "int | None" = None,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        if input_size < 1:
            raise DataError("input_size must be >= 1")
        output_size = input_size if output_size is None else output_size
        if output_size < 1:
            raise DataError("output_size must be >= 1")
        self.input_size = int(input_size)
        self.output_size = int(output_size)
        self._rng = as_rng(seed)
        if output_size == input_size:
            # Identity start: an untrained square embedding is a no-op,
            # so wiring it into a pipeline changes nothing until fit.
            self.weights = np.eye(output_size)
        else:
            # Orthonormal rows/columns: preserves as much input geometry
            # as the rectangular shape allows (norms are renormalized
            # away downstream anyway).
            gaussian = self._rng.normal(
                size=(max(input_size, output_size), min(input_size, output_size))
            )
            q, _ = np.linalg.qr(gaussian)
            self.weights = (
                q[:output_size, :] if output_size <= q.shape[0] else q.T
            )
            if self.weights.shape != (output_size, input_size):
                self.weights = q.T[:output_size, :input_size]

    # -- forward --------------------------------------------------------------------

    def transform(self, samples: np.ndarray) -> np.ndarray:
        """Map raw feature rows to normalized embedded rows.

        Returns a ``(B, output_size)`` matrix of unit rows; rejects
        rows the map annihilates (they have no amplitude embedding).
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        if samples.ndim != 2 or samples.shape[1] != self.input_size:
            raise DataError(
                f"samples must be (B, {self.input_size}), "
                f"got {samples.shape}"
            )
        mapped = samples @ self.weights.T
        norms = np.linalg.norm(mapped, axis=1, keepdims=True)
        if np.any(norms <= 1e-12):
            raise DataError(
                "embedding maps some sample(s) to (near-)zero vectors; "
                "cannot renormalize for amplitude encoding"
            )
        return mapped / norms

    # -- objective ------------------------------------------------------------------

    def separation(self, samples: np.ndarray, labels: np.ndarray) -> float:
        """Mean same-class minus mean cross-class embedded overlap.

        Overlap is the squared inner product of normalized embedded
        rows — exactly the statevector fidelity their amplitude
        embeddings will have.  Larger is better for a downstream
        classifier; ``fit`` maximizes this.
        """
        embedded = self.transform(samples)
        labels = np.asarray(labels)
        overlaps = (embedded @ embedded.T) ** 2
        same = labels[:, None] == labels[None, :]
        off_diag = ~np.eye(labels.size, dtype=bool)
        same_pairs = same & off_diag
        cross_pairs = ~same
        if not same_pairs.any() or not cross_pairs.any():
            raise DataError(
                "separation needs at least two samples in some class and "
                "at least two distinct classes"
            )
        return float(
            overlaps[same_pairs].mean() - overlaps[cross_pairs].mean()
        )

    # -- training -------------------------------------------------------------------

    def fit(
        self,
        samples: np.ndarray,
        labels: np.ndarray,
        num_steps: int = 60,
        a: float = 0.08,
        c: float = 0.06,
    ) -> list[float]:
        """SPSA ascent on :meth:`separation`; returns the trace.

        The same Spall gain schedule as the VQC trainer; two
        ``separation`` evaluations per step regardless of the matrix
        size.  The map is renormalized per-sample downstream, so no
        weight regularization is needed.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        labels = np.asarray(labels)
        if samples.shape[0] != labels.size:
            raise DataError(
                f"samples/labels length mismatch: {samples.shape[0]} vs "
                f"{labels.size}"
            )
        trace = [self.separation(samples, labels)]
        shape = self.weights.shape
        for step in range(1, num_steps + 1):
            a_k = a / step**0.602
            c_k = c / step**0.101
            delta = self._rng.choice([-1.0, 1.0], size=shape)
            saved = self.weights
            self.weights = saved + c_k * delta
            sep_plus = self.separation(samples, labels)
            self.weights = saved - c_k * delta
            sep_minus = self.separation(samples, labels)
            gradient = (sep_plus - sep_minus) / (2.0 * c_k) * delta
            self.weights = saved + a_k * gradient  # ascent
            trace.append(self.separation(samples, labels))
        return trace

    # -- serialization --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "input_size": self.input_size,
            "output_size": self.output_size,
            "weights": self.weights.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainableEmbedding":
        for key in ("input_size", "output_size", "weights"):
            if key not in payload:
                raise SerializationError(
                    f"preprocessor payload missing {key!r}"
                )
        embedding = cls(
            int(payload["input_size"]), int(payload["output_size"])
        )
        weights = np.asarray(payload["weights"], dtype=float)
        if weights.shape != (embedding.output_size, embedding.input_size):
            raise SerializationError(
                f"preprocessor weights shape {weights.shape} does not "
                f"match ({embedding.output_size}, {embedding.input_size})"
            )
        embedding.weights = weights
        return embedding

    def __repr__(self) -> str:
        return (
            f"TrainableEmbedding({self.input_size} -> {self.output_size})"
        )
