"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid gate applications."""


class SimulationError(ReproError):
    """Raised when a simulator receives an input it cannot execute."""


class NoiseModelError(ReproError):
    """Raised for inconsistent noise-model definitions."""


class TranspilerError(ReproError):
    """Raised when a circuit cannot be lowered to the target backend."""


class StatePreparationError(ReproError):
    """Raised for invalid amplitude-embedding targets (e.g. zero vectors)."""


class OptimizationError(ReproError):
    """Raised when symbolic optimization cannot be set up or fails hard."""


class SerializationError(OptimizationError):
    """Raised for unreadable or version-mismatched stored models.

    Subclasses :class:`OptimizationError` so callers written against the
    pre-``schema_version`` serialization module (which raised
    ``OptimizationError`` for every failure) keep catching these.
    """


class ServiceError(ReproError):
    """Raised by the online :mod:`repro.service` serving layer."""


class OverloadError(ServiceError):
    """Raised by admission control when a queue budget is exhausted.

    ``EncodingService.submit`` rejects *before* enqueueing (the request
    never enters the micro-batcher), so shedding is O(1) and a caller
    can distinguish "the service is saturated, back off" from every
    other service failure with one ``except`` clause.
    """


class DeadlineExceededError(ServiceError):
    """Raised when a request's deadline expires before it is served.

    Covers both per-request ``submit(deadline=...)`` expiry (the ticket
    is failed before any pipeline work is spent on it) and whole-flush
    ``ServiceConfig.flush_timeout`` abandonment (a wedged flush is cut
    loose so it cannot head-of-line-block its key).
    """


class RemoteFlushError(ServiceError):
    """A worker process reported a failure while executing a flush.

    The process backend ships worker-side exceptions back to the parent
    as ``(type name, message, transient)`` — the original object cannot
    cross the boundary reliably — and re-raises them as this type.  The
    ``transient`` attribute mirrors the worker-side exception's, so the
    service's default transient classifier (and therefore the retry
    loop and circuit breakers) treats a remote failure exactly like the
    same failure raised in-process.
    """

    def __init__(self, message: str, *, transient: bool = False) -> None:
        super().__init__(message)
        self.transient = transient


class CircuitOpenError(ServiceError):
    """Raised when a key's circuit breaker is open.

    After ``ServiceConfig.breaker_threshold`` consecutive flush
    failures the key's breaker opens and submissions fail fast here —
    microseconds, no queueing, no worker time — until the
    ``breaker_reset_timeout`` elapses and a half-open probe is allowed
    through.
    """


class ClusteringError(ReproError):
    """Raised for invalid clustering configurations."""


class DataError(ReproError):
    """Raised by the dataset/preprocessing pipeline."""


class BackendError(ReproError):
    """Raised for invalid hardware/backend configurations."""
