"""Evaluation harness reproducing the paper's Figs. 6-9."""

from repro.evaluation.experiments import (
    ExperimentConfig,
    ExperimentContext,
    Stats,
    circuit_metrics_sweep,
    run_fig6,
    run_fig7,
    run_fig8a,
    run_fig8b,
    run_fig9a,
    run_fig9b,
)
from repro.evaluation.harness import main, render_all, run_all
from repro.evaluation.noise_sweep import (
    NoisePoint,
    render_noise_sweep,
    run_noise_sweep,
)
from repro.evaluation.scaling import ScalingRow, render_scaling, run_qubit_scaling
from repro.evaluation.reporting import (
    render_fig6,
    render_fig7,
    render_fig8a,
    render_fig8b,
    render_fig9a,
    render_fig9b,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "NoisePoint",
    "ScalingRow",
    "Stats",
    "render_noise_sweep",
    "render_scaling",
    "run_noise_sweep",
    "run_qubit_scaling",
    "circuit_metrics_sweep",
    "main",
    "render_all",
    "render_fig6",
    "render_fig7",
    "render_fig8a",
    "render_fig8b",
    "render_fig9a",
    "render_fig9b",
    "run_all",
    "run_fig6",
    "run_fig7",
    "run_fig8a",
    "run_fig8b",
    "run_fig9a",
    "run_fig9b",
]
