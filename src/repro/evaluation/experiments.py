"""Per-figure experiment runners reproducing the paper's evaluation.

Each ``run_fig*`` function regenerates the data behind one figure of the
paper (Sec. V) on the synthetic dataset stand-ins:

========  ==================================================================
Fig. 6    circuit depth + total physical gates, Baseline vs EnQode
Fig. 7    physical one-qubit + two-qubit gate counts
Fig. 8a   ideal-simulation state fidelity
Fig. 8b   noisy-simulation state fidelity (FakeBrisbane noise model)
Fig. 9a   online compilation time (mean and spread)
Fig. 9b   EnQode offline vs online compilation time
========  ==================================================================

The sweeps share a lazily-built :class:`ExperimentContext` (backend
segment, datasets, one fitted encoder per dataset) so a full run only
pays the offline-training cost once per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baseline.state_preparation import BaselineStatePreparation
from repro.core.config import EnQodeConfig
from repro.core.encoder import EnQodeEncoder
from repro.data.datasets import DATASET_NAMES, load_dataset
from repro.hardware.backend import brisbane_linear_segment
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.simulator import DensityMatrixSimulator
from repro.quantum.statevector import simulate_statevector
from repro.quantum.states import state_fidelity


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for all figure experiments (scaled for laptop runs)."""

    datasets: tuple = DATASET_NAMES
    num_classes: int = 5
    samples_per_class: int = 80
    num_metric_samples: int = 12
    num_fidelity_samples: int = 10
    num_noisy_samples: int = 5
    num_qubits: int = 8
    num_layers: int = 8
    backend_seed: int = 42
    data_seed: int = 0
    enqode_seed: int = 7


@dataclass
class Stats:
    """Mean/std/min/max summary of a per-sample series."""

    values: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    @property
    def std(self) -> float:
        return float(np.std(self.values)) if self.values else float("nan")

    @property
    def min(self) -> float:
        return float(np.min(self.values)) if self.values else float("nan")

    @property
    def max(self) -> float:
        return float(np.max(self.values)) if self.values else float("nan")

    def as_row(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
        }


class ExperimentContext:
    """Backend + datasets + fitted per-dataset encoders, built once."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()
        self.backend = brisbane_linear_segment(
            self.config.num_qubits, seed=self.config.backend_seed
        )
        self.baseline = BaselineStatePreparation(self.backend)
        self.datasets = {}
        self.encoders: dict[str, EnQodeEncoder] = {}
        self.eval_samples: dict[str, np.ndarray] = {}
        for name in self.config.datasets:
            dataset = load_dataset(
                name,
                num_classes=self.config.num_classes,
                samples_per_class=self.config.samples_per_class,
                num_features=2**self.config.num_qubits,
                seed=self.config.data_seed,
            )
            self.datasets[name] = dataset
            # Offline training is per dataset and class (Sec. III-C); the
            # experiments evaluate on the first sampled class.
            label = int(dataset.classes()[0])
            block = dataset.class_slice(label)
            encoder = EnQodeEncoder(
                self.backend,
                EnQodeConfig(
                    num_qubits=self.config.num_qubits,
                    num_layers=self.config.num_layers,
                    seed=self.config.enqode_seed,
                ),
            )
            encoder.fit(block)
            self.encoders[name] = encoder
            self.eval_samples[name] = block

    def samples(self, name: str, count: int) -> np.ndarray:
        block = self.eval_samples[name]
        stride = max(1, block.shape[0] // count)
        return block[::stride][:count]


# -----------------------------------------------------------------------------
# Shared compile sweep (Figs. 6, 7, 9a)
# -----------------------------------------------------------------------------


def circuit_metrics_sweep(context: ExperimentContext) -> dict:
    """Compile ``num_metric_samples`` per dataset with both methods.

    Returns ``{dataset: {method: {metric: Stats}}}`` with metrics
    ``depth``, ``total_gates``, ``one_qubit_gates``, ``two_qubit_gates``,
    and ``compile_time``.
    """
    metric_names = (
        "depth",
        "total_gates",
        "one_qubit_gates",
        "two_qubit_gates",
        "compile_time",
    )
    results: dict = {}
    for name in context.config.datasets:
        per_method = {
            method: {metric: Stats() for metric in metric_names}
            for method in ("baseline", "enqode")
        }
        for sample in context.samples(name, context.config.num_metric_samples):
            prepared = context.baseline.prepare(sample)
            metrics = prepared.metrics()
            rows = metrics.as_row()
            for metric in metric_names[:-1]:
                per_method["baseline"][metric].values.append(rows[metric])
            per_method["baseline"]["compile_time"].values.append(
                prepared.compile_time
            )

            encoded = context.encoders[name].encode(sample)
            rows = encoded.metrics().as_row()
            for metric in metric_names[:-1]:
                per_method["enqode"][metric].values.append(rows[metric])
            per_method["enqode"]["compile_time"].values.append(
                encoded.compile_time
            )
        results[name] = per_method
    return results


def run_fig6(context: ExperimentContext, sweep: dict | None = None) -> dict:
    """Circuit depth and total gate count (paper Fig. 6)."""
    sweep = sweep or circuit_metrics_sweep(context)
    return {
        name: {
            method: {
                "depth": stats["depth"],
                "total_gates": stats["total_gates"],
            }
            for method, stats in methods.items()
        }
        for name, methods in sweep.items()
    }


def run_fig7(context: ExperimentContext, sweep: dict | None = None) -> dict:
    """Physical 1q and 2q gate counts (paper Fig. 7)."""
    sweep = sweep or circuit_metrics_sweep(context)
    return {
        name: {
            method: {
                "one_qubit_gates": stats["one_qubit_gates"],
                "two_qubit_gates": stats["two_qubit_gates"],
            }
            for method, stats in methods.items()
        }
        for name, methods in sweep.items()
    }


def run_fig9a(context: ExperimentContext, sweep: dict | None = None) -> dict:
    """Online compilation times (paper Fig. 9a)."""
    sweep = sweep or circuit_metrics_sweep(context)
    return {
        name: {
            method: {"compile_time": stats["compile_time"]}
            for method, stats in methods.items()
        }
        for name, methods in sweep.items()
    }


# -----------------------------------------------------------------------------
# Fidelity experiments (Fig. 8)
# -----------------------------------------------------------------------------


def run_fig8a(context: ExperimentContext) -> dict:
    """Ideal-simulation state fidelity (paper Fig. 8a)."""
    results: dict = {}
    for name in context.config.datasets:
        baseline_stats, enqode_stats = Stats(), Stats()
        for sample in context.samples(
            name, context.config.num_fidelity_samples
        ):
            prepared = context.baseline.prepare(sample)
            psi = simulate_statevector(prepared.circuit)
            baseline_stats.values.append(
                state_fidelity(psi, prepared.physical_target())
            )
            encoded = context.encoders[name].encode(sample)
            psi = simulate_statevector(encoded.circuit)
            enqode_stats.values.append(
                state_fidelity(psi, encoded.physical_target())
            )
        results[name] = {"baseline": baseline_stats, "enqode": enqode_stats}
    return results


def run_fig8b(context: ExperimentContext) -> dict:
    """Noisy-simulation state fidelity under FakeBrisbane noise (Fig. 8b)."""
    noise_model = context.backend.noise_model()
    simulator = DensityMatrixSimulator(noise_model)
    results: dict = {}
    for name in context.config.datasets:
        baseline_stats, enqode_stats = Stats(), Stats()
        for sample in context.samples(name, context.config.num_noisy_samples):
            prepared = context.baseline.prepare(sample)
            rho = simulator.run(prepared.circuit)
            baseline_stats.values.append(
                state_fidelity(rho, prepared.physical_target())
            )
            encoded = context.encoders[name].encode(sample)
            rho = simulator.run(encoded.circuit)
            enqode_stats.values.append(
                state_fidelity(rho, encoded.physical_target())
            )
        results[name] = {
            "baseline": baseline_stats,
            "enqode": enqode_stats,
            "improvement": (
                enqode_stats.mean / baseline_stats.mean
                if baseline_stats.mean > 0
                else float("inf")
            ),
        }
    return results


def run_fig9b(context: ExperimentContext) -> dict:
    """Offline (per dataset+class) vs online compile time (Fig. 9b)."""
    results: dict = {}
    for name in context.config.datasets:
        encoder = context.encoders[name]
        report = encoder.offline_report
        online = Stats()
        for sample in context.samples(name, context.config.num_metric_samples):
            online.values.append(encoder.encode(sample).compile_time)
        results[name] = {
            "offline_total": report.total_time,
            "offline_clustering": report.clustering_time,
            "offline_training": report.training_time,
            "num_clusters": report.num_clusters,
            "online": online,
        }
    return results


def noisy_state(context, circuit) -> DensityMatrix:
    """Convenience: simulate one circuit under the context's noise model."""
    return DensityMatrixSimulator(context.backend.noise_model()).run(circuit)
