"""One-shot harness: regenerate every figure and the EXPERIMENTS report.

``python -m repro.evaluation.harness`` runs the full evaluation at the
default (laptop-scale) configuration and prints the paper-figure tables;
``run_all`` is the library entry point the benchmarks build on.
"""

from __future__ import annotations

from repro.evaluation.experiments import (
    ExperimentConfig,
    ExperimentContext,
    circuit_metrics_sweep,
    run_fig6,
    run_fig7,
    run_fig8a,
    run_fig8b,
    run_fig9a,
    run_fig9b,
)
from repro.evaluation.reporting import (
    render_fig6,
    render_fig7,
    render_fig8a,
    render_fig8b,
    render_fig9a,
    render_fig9b,
)


def run_all(config: ExperimentConfig | None = None) -> dict:
    """Run every figure experiment once; returns ``{figure_id: results}``."""
    context = ExperimentContext(config)
    sweep = circuit_metrics_sweep(context)
    return {
        "context": context,
        "fig6": run_fig6(context, sweep),
        "fig7": run_fig7(context, sweep),
        "fig8a": run_fig8a(context),
        "fig8b": run_fig8b(context),
        "fig9a": run_fig9a(context, sweep),
        "fig9b": run_fig9b(context),
    }


def render_all(results: dict) -> str:
    """All figure tables as one report string."""
    return "\n\n".join(
        [
            render_fig6(results["fig6"]),
            render_fig7(results["fig7"]),
            render_fig8a(results["fig8a"]),
            render_fig8b(results["fig8b"]),
            render_fig9a(results["fig9a"]),
            render_fig9b(results["fig9b"]),
        ]
    )


def main() -> None:
    results = run_all()
    print(render_all(results))


if __name__ == "__main__":
    main()
