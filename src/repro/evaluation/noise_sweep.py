"""Extension study: the EnQode/Baseline crossover as hardware improves.

EnQode trades ~10% ideal fidelity for a ~60x depth reduction; exact AE is
perfect on a noiseless machine.  Somewhere between today's error rates and
fault tolerance the trade flips.  This sweep scales every gate error and
coherence time of the brisbane calibration by a common factor and finds
where the Baseline's noisy fidelity catches up to EnQode's — answering
"how much better must hardware get before exact embedding wins again?"
(Answer at paper scale: error rates must fall by more than ~100x.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baseline.state_preparation import BaselineStatePreparation
from repro.core.config import EnQodeConfig
from repro.core.encoder import EnQodeEncoder
from repro.data.datasets import load_dataset
from repro.hardware.calibration import BRISBANE_MEDIANS
from repro.quantum.simulator import DensityMatrixSimulator
from repro.quantum.states import state_fidelity


@dataclass
class NoisePoint:
    """Noisy fidelities at one error-rate scale factor."""

    scale: float
    enqode_fidelity: float
    baseline_fidelity: float

    @property
    def enqode_wins(self) -> bool:
        return self.enqode_fidelity > self.baseline_fidelity


def scaled_backend(scale: float, num_qubits: int = 8, seed: int = 42):
    """A brisbane-like segment with all error rates scaled by ``scale``.

    Coherence times scale inversely (better hardware keeps phase longer);
    gate durations stay fixed.
    """
    from repro.hardware.backend import FakeBrisbane

    medians = dict(BRISBANE_MEDIANS)
    for key in ("sx_error", "ecr_error", "readout_error"):
        medians[key] = min(medians[key] * scale, 0.5)
    for key in ("t1", "t2"):
        medians[key] = medians[key] / scale
    device = FakeBrisbane(seed=seed, medians=medians)
    return device.reduced(device.linear_section(num_qubits))


def run_noise_sweep(
    scales: tuple = (1.0, 0.1, 0.01, 0.001),
    samples_per_class: int = 60,
    num_samples: int = 2,
    seed: int = 0,
) -> list[NoisePoint]:
    """Noisy EnQode vs Baseline fidelity at each error-rate scale."""
    dataset = load_dataset("mnist", samples_per_class=samples_per_class, seed=seed)
    block = dataset.class_slice(int(dataset.classes()[0]))
    stride = max(1, block.shape[0] // num_samples)
    samples = block[::stride][:num_samples]

    points = []
    for scale in scales:
        backend = scaled_backend(scale)
        encoder = EnQodeEncoder(backend, EnQodeConfig(seed=7))
        encoder.fit(block)
        baseline = BaselineStatePreparation(backend)
        simulator = DensityMatrixSimulator(backend.noise_model())
        enqode_fids, baseline_fids = [], []
        for sample in samples:
            encoded = encoder.encode(sample)
            enqode_fids.append(
                state_fidelity(
                    simulator.run(encoded.circuit), encoded.physical_target()
                )
            )
            prepared = baseline.prepare(sample)
            baseline_fids.append(
                state_fidelity(
                    simulator.run(prepared.circuit), prepared.physical_target()
                )
            )
        points.append(
            NoisePoint(
                scale=scale,
                enqode_fidelity=float(np.mean(enqode_fids)),
                baseline_fidelity=float(np.mean(baseline_fids)),
            )
        )
    return points


def render_noise_sweep(points: list[NoisePoint]) -> str:
    lines = [
        "Extension — noisy fidelity vs hardware error scale",
        f"{'error scale':>12}{'EnQode':>10}{'Baseline':>10}{'winner':>10}",
    ]
    for point in points:
        winner = "EnQode" if point.enqode_wins else "Baseline"
        lines.append(
            f"{point.scale:>12.3f}{point.enqode_fidelity:>10.3f}"
            f"{point.baseline_fidelity:>10.3f}{winner:>10}"
        )
    return "\n".join(lines)
