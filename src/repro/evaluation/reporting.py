"""ASCII rendering of experiment results in the paper's figure layout."""

from __future__ import annotations

from repro.evaluation.experiments import Stats

_DATASET_TITLES = {"mnist": "MNIST", "fmnist": "F-MNIST", "cifar": "CIFAR"}
_METHOD_TITLES = {"baseline": "Baseline", "enqode": "EnQode"}


def dataset_title(name: str) -> str:
    return _DATASET_TITLES.get(name, name.upper())


def format_stat(stats: Stats, digits: int = 1) -> str:
    return f"{stats.mean:.{digits}f} ± {stats.std:.{digits}f}"


def render_metric_table(
    title: str,
    results: dict,
    metrics: "list[tuple[str, str, int]]",
) -> str:
    """Render ``{dataset: {method: {metric: Stats}}}`` as a fixed table.

    ``metrics`` lists (key, column title, digits).
    """
    lines = [title, "=" * len(title)]
    header = f"{'dataset':<10}{'method':<10}" + "".join(
        f"{column:>24}" for _, column, _ in metrics
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, methods in results.items():
        for method in ("baseline", "enqode"):
            if method not in methods:
                continue
            row = f"{dataset_title(name):<10}{_METHOD_TITLES[method]:<10}"
            for key, _, digits in metrics:
                row += f"{format_stat(methods[method][key], digits):>24}"
            lines.append(row)
    return "\n".join(lines)


def render_fig6(results: dict) -> str:
    return render_metric_table(
        "Fig. 6 — circuit depth and total physical gates",
        results,
        [("depth", "depth", 1), ("total_gates", "total gates", 1)],
    )


def render_fig7(results: dict) -> str:
    return render_metric_table(
        "Fig. 7 — physical one-qubit and two-qubit gates",
        results,
        [
            ("one_qubit_gates", "1q gates", 1),
            ("two_qubit_gates", "2q gates", 1),
        ],
    )


def render_fig8a(results: dict) -> str:
    lines = [
        "Fig. 8(a) — ideal-simulation state fidelity",
        "===========================================",
        f"{'dataset':<10}{'Baseline':>18}{'EnQode':>18}",
    ]
    for name, methods in results.items():
        lines.append(
            f"{dataset_title(name):<10}"
            f"{format_stat(methods['baseline'], 3):>18}"
            f"{format_stat(methods['enqode'], 3):>18}"
        )
    return "\n".join(lines)


def render_fig8b(results: dict) -> str:
    lines = [
        "Fig. 8(b) — noisy-simulation state fidelity (FakeBrisbane)",
        "==========================================================",
        f"{'dataset':<10}{'Baseline':>18}{'EnQode':>18}{'improvement':>14}",
    ]
    for name, methods in results.items():
        lines.append(
            f"{dataset_title(name):<10}"
            f"{format_stat(methods['baseline'], 4):>18}"
            f"{format_stat(methods['enqode'], 4):>18}"
            f"{methods['improvement']:>13.1f}x"
        )
    return "\n".join(lines)


def render_fig9a(results: dict) -> str:
    lines = [
        "Fig. 9(a) — online compilation time (seconds)",
        "==============================================",
        f"{'dataset':<10}{'Baseline':>22}{'EnQode':>22}{'std ratio':>12}",
    ]
    for name, methods in results.items():
        base = methods["baseline"]["compile_time"]
        enq = methods["enqode"]["compile_time"]
        ratio = base.std / enq.std if enq.std > 0 else float("inf")
        lines.append(
            f"{dataset_title(name):<10}"
            f"{format_stat(base, 4):>22}"
            f"{format_stat(enq, 4):>22}"
            f"{ratio:>11.1f}x"
        )
    return "\n".join(lines)


def render_fig9b(results: dict) -> str:
    lines = [
        "Fig. 9(b) — EnQode offline vs online compilation time",
        "======================================================",
        f"{'dataset':<10}{'clusters':>10}{'offline (s)':>14}"
        f"{'online mean (s)':>18}",
    ]
    for name, row in results.items():
        lines.append(
            f"{dataset_title(name):<10}"
            f"{row['num_clusters']:>10d}"
            f"{row['offline_total']:>14.1f}"
            f"{row['online'].mean:>18.4f}"
        )
    return "\n".join(lines)
