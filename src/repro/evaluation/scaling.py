"""Extension study: how EnQode scales with register width.

The paper evaluates at a fixed 8 qubits; its conclusion frames EnQode as
"a scalable solution".  This study quantifies that: for n = 4, 6, 8
qubits (PCA to 2^n features), it measures the ideal embedding fidelity,
the fixed EnQode circuit cost, and the Baseline's cost — showing the
separation *widens* with n (exact AE cost grows ~2^n, EnQode's grows
linearly in n·L).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baseline.state_preparation import BaselineStatePreparation
from repro.core.config import EnQodeConfig
from repro.core.encoder import EnQodeEncoder
from repro.data.datasets import load_dataset
from repro.hardware.backend import brisbane_linear_segment


@dataclass
class ScalingRow:
    """One register width's costs and fidelity."""

    num_qubits: int
    enqode_fidelity_mean: float
    enqode_depth: int
    enqode_two_qubit: int
    baseline_depth_mean: float
    baseline_two_qubit_mean: float
    num_clusters: int
    offline_time: float


def run_qubit_scaling(
    qubit_counts: tuple = (4, 6, 8),
    samples_per_class: int = 60,
    num_eval_samples: int = 6,
    dataset_name: str = "mnist",
    seed: int = 0,
) -> list[ScalingRow]:
    """Sweep register width; one row per ``n``."""
    rows = []
    for n in qubit_counts:
        backend = brisbane_linear_segment(n)
        dataset = load_dataset(
            dataset_name,
            samples_per_class=samples_per_class,
            num_features=2**n,
            seed=seed,
        )
        block = dataset.class_slice(int(dataset.classes()[0]))
        # Layer count ~ register width, rounded up to even: the CY-phase
        # telescoping that keeps the ansatz trainable requires an even
        # number of layers (see repro.core.ansatz docstring).
        num_layers = n + (n % 2)
        encoder = EnQodeEncoder(
            backend, EnQodeConfig(num_qubits=n, num_layers=num_layers, seed=7)
        )
        report = encoder.fit(block)
        baseline = BaselineStatePreparation(backend)

        stride = max(1, block.shape[0] // num_eval_samples)
        samples = block[::stride][:num_eval_samples]
        fidelities, base_depths, base_two_qubit = [], [], []
        enqode_metrics = None
        for sample in samples:
            encoded = encoder.encode(sample)
            fidelities.append(encoded.ideal_fidelity)
            enqode_metrics = encoded.metrics()
            prepared = baseline.prepare(sample)
            metrics = prepared.metrics()
            base_depths.append(metrics.depth)
            base_two_qubit.append(metrics.two_qubit_gates)

        rows.append(
            ScalingRow(
                num_qubits=n,
                enqode_fidelity_mean=float(np.mean(fidelities)),
                enqode_depth=enqode_metrics.depth,
                enqode_two_qubit=enqode_metrics.two_qubit_gates,
                baseline_depth_mean=float(np.mean(base_depths)),
                baseline_two_qubit_mean=float(np.mean(base_two_qubit)),
                num_clusters=report.num_clusters,
                offline_time=report.total_time,
            )
        )
    return rows


def render_scaling(rows: list[ScalingRow]) -> str:
    lines = [
        "Extension — qubit-count scaling (n layers for n qubits)",
        f"{'n':>3}{'EnQ fid':>9}{'EnQ depth':>11}{'EnQ 2q':>8}"
        f"{'Base depth':>12}{'Base 2q':>9}{'k':>4}{'offline(s)':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row.num_qubits:>3}{row.enqode_fidelity_mean:>9.3f}"
            f"{row.enqode_depth:>11}{row.enqode_two_qubit:>8}"
            f"{row.baseline_depth_mean:>12.0f}"
            f"{row.baseline_two_qubit_mean:>9.0f}"
            f"{row.num_clusters:>4}{row.offline_time:>12.2f}"
        )
    return "\n".join(lines)
