"""Hardware models: topology, native gate sets, calibrations, backends."""

from repro.hardware.backend import (
    Backend,
    FakeBrisbane,
    brisbane_linear_segment,
    linear_backend,
)
from repro.hardware.calibration import (
    BRISBANE_MEDIANS,
    GateCalibration,
    QubitCalibration,
    sample_gate_calibrations,
    sample_qubit_calibrations,
)
from repro.hardware.native_gates import IBM_EAGLE, IBM_HERON, NativeGateSet
from repro.hardware.topology import CouplingMap, heavy_hex_127, linear_chain

__all__ = [
    "BRISBANE_MEDIANS",
    "Backend",
    "CouplingMap",
    "FakeBrisbane",
    "GateCalibration",
    "IBM_EAGLE",
    "IBM_HERON",
    "NativeGateSet",
    "QubitCalibration",
    "brisbane_linear_segment",
    "heavy_hex_127",
    "linear_backend",
    "linear_chain",
    "sample_gate_calibrations",
    "sample_qubit_calibrations",
]
