"""Backend model: topology + native gates + calibrations + noise model.

:class:`FakeBrisbane` stands in for the paper's ``ibm_brisbane`` target:
127 qubits on the Eagle heavy-hex lattice, native ``{ECR, Rz, SX, X}``,
with deterministic per-qubit/per-gate calibrations.  The 8-qubit
experiments run on :meth:`Backend.reduced` applied to a
:meth:`~repro.hardware.topology.CouplingMap.linear_section` — exactly the
"linear section of the heavy-hexagonal layout" of Sec. III-A.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BackendError
from repro.hardware.calibration import (
    BRISBANE_MEDIANS,
    GateCalibration,
    QubitCalibration,
    sample_gate_calibrations,
    sample_qubit_calibrations,
)
from repro.hardware.native_gates import IBM_EAGLE, NativeGateSet
from repro.hardware.topology import CouplingMap, heavy_hex_127, linear_chain
from repro.quantum.channels import (
    depolarizing_channel,
    thermal_relaxation_channel,
)
from repro.quantum.noise_model import NoiseModel


class Backend:
    """A quantum device model the transpiler and simulators can target."""

    def __init__(
        self,
        name: str,
        coupling_map: CouplingMap,
        native_gates: NativeGateSet,
        qubit_calibrations: list[QubitCalibration],
        gate_calibrations: dict[tuple[str, tuple[int, ...]], GateCalibration],
    ) -> None:
        if len(qubit_calibrations) != coupling_map.num_qubits:
            raise BackendError(
                "calibration list length does not match qubit count"
            )
        self.name = name
        self.coupling_map = coupling_map
        self.native_gates = native_gates
        self.qubit_calibrations = qubit_calibrations
        self.gate_calibrations = gate_calibrations

    # -- queries --------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return self.coupling_map.num_qubits

    def qubit(self, q: int) -> QubitCalibration:
        return self.qubit_calibrations[q]

    def gate_calibration(
        self, gate_name: str, qubits: tuple[int, ...]
    ) -> GateCalibration:
        try:
            return self.gate_calibrations[(gate_name, tuple(qubits))]
        except KeyError:
            raise BackendError(
                f"no calibration for {gate_name!r} on {qubits}"
            ) from None

    # -- derived models ---------------------------------------------------------

    def noise_model(self) -> NoiseModel:
        """Depolarizing + thermal-relaxation noise from the calibrations.

        Every native physical gate gets (i) a depolarizing channel with the
        calibrated error probability on its qubits and (ii) per-qubit
        thermal relaxation over the gate duration.  Virtual ``rz`` stays
        noiseless — the property the EnQode ansatz exploits.
        """
        model = NoiseModel()
        for (gate_name, qubits), cal in self.gate_calibrations.items():
            if cal.error > 0.0:
                model.add_quantum_error(
                    depolarizing_channel(cal.error, len(qubits)),
                    gate_name,
                    qubits,
                )
            for q in qubits:
                qcal = self.qubit_calibrations[q]
                relax = thermal_relaxation_channel(
                    qcal.t1, qcal.t2, cal.duration
                )
                if not relax.is_identity:
                    model.add_quantum_error(
                        relax, gate_name, qubits, targets=(q,)
                    )
        return model

    def linear_section(self, length: int) -> list[int]:
        return self.coupling_map.linear_section(length)

    def reduced(self, physical_qubits: "list[int]") -> "Backend":
        """Sub-backend on ``physical_qubits``, relabeled ``0..k-1``.

        Calibrations (including both ECR orientations) are carried over for
        every edge that survives in the induced subgraph.
        """
        index = {q: i for i, q in enumerate(physical_qubits)}
        sub_map = self.coupling_map.subgraph(physical_qubits)
        qubit_cals = [self.qubit_calibrations[q] for q in physical_qubits]
        gate_cals: dict[tuple[str, tuple[int, ...]], GateCalibration] = {}
        for (gate_name, qubits), cal in self.gate_calibrations.items():
            if all(q in index for q in qubits):
                gate_cals[(gate_name, tuple(index[q] for q in qubits))] = cal
        return Backend(
            name=f"{self.name}[{','.join(map(str, physical_qubits))}]",
            coupling_map=sub_map,
            native_gates=self.native_gates,
            qubit_calibrations=qubit_cals,
            gate_calibrations=gate_cals,
        )

    def __repr__(self) -> str:
        return (
            f"Backend({self.name!r}, qubits={self.num_qubits}, "
            f"basis={sorted(self.native_gates.all_gates)})"
        )


class FakeBrisbane(Backend):
    """127-qubit Eagle heavy-hex device with brisbane-scale calibrations."""

    def __init__(
        self,
        seed: int = 42,
        medians: dict | None = None,
    ) -> None:
        coupling = heavy_hex_127()
        rng = np.random.default_rng(seed)
        qubit_cals = sample_qubit_calibrations(
            coupling.num_qubits, medians=medians, seed=rng
        )
        gate_cals = sample_gate_calibrations(
            coupling.edges, coupling.num_qubits, medians=medians, seed=rng
        )
        super().__init__(
            name="fake_brisbane",
            coupling_map=coupling,
            native_gates=IBM_EAGLE,
            qubit_calibrations=qubit_cals,
            gate_calibrations=gate_cals,
        )


def linear_backend(
    num_qubits: int,
    seed: int = 42,
    medians: dict | None = None,
    native_gates: NativeGateSet = IBM_EAGLE,
) -> Backend:
    """A standalone nearest-neighbor-chain backend (tests and ablations)."""
    coupling = linear_chain(num_qubits)
    rng = np.random.default_rng(seed)
    return Backend(
        name=f"linear_{num_qubits}_{native_gates.name}",
        coupling_map=coupling,
        native_gates=native_gates,
        qubit_calibrations=sample_qubit_calibrations(
            num_qubits, medians=medians, seed=rng
        ),
        gate_calibrations=sample_gate_calibrations(
            coupling.edges,
            num_qubits,
            medians=medians,
            seed=rng,
            two_qubit_gate=native_gates.two_qubit_gate,
        ),
    )


def brisbane_linear_segment(num_qubits: int = 8, seed: int = 42) -> Backend:
    """The paper's experimental target: an ``num_qubits``-long linear
    section of FakeBrisbane, relabeled ``0..num_qubits-1``."""
    device = FakeBrisbane(seed=seed)
    section = device.linear_section(num_qubits)
    return device.reduced(section)


#: Median calibration constants re-exported for experiment configuration.
MEDIANS = dict(BRISBANE_MEDIANS)
