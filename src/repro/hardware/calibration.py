"""Calibration data: per-qubit coherence times and per-gate error/duration.

Values are generated deterministically around the published medians of
``ibm_brisbane`` so that noisy simulations reproduce the error *scales* the
paper saw, without requiring network access to IBM's calibration service.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BackendError
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class QubitCalibration:
    """Coherence and readout figures for one physical qubit (times in s)."""

    t1: float
    t2: float
    readout_error: float
    frequency: float = 4.9e9

    def __post_init__(self) -> None:
        if self.t1 <= 0 or self.t2 <= 0:
            raise BackendError("coherence times must be positive")
        if self.t2 > 2.0 * self.t1 + 1e-12:
            raise BackendError(f"unphysical T2={self.t2} > 2*T1={2 * self.t1}")


@dataclass(frozen=True)
class GateCalibration:
    """Error probability and duration (s) for one gate on specific qubits."""

    error: float
    duration: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.error <= 1.0:
            raise BackendError(f"gate error {self.error} outside [0, 1]")
        if self.duration < 0.0:
            raise BackendError("gate duration must be nonnegative")


#: Published ibm_brisbane medians (order of magnitude; see backend docstring).
BRISBANE_MEDIANS = {
    "t1": 220e-6,
    "t2": 140e-6,
    "sx_error": 2.3e-4,
    "ecr_error": 7.5e-3,
    "readout_error": 1.3e-2,
    "sx_duration": 60e-9,
    "ecr_duration": 660e-9,
    "readout_duration": 1.2e-6,
}


def sample_qubit_calibrations(
    num_qubits: int,
    medians: dict | None = None,
    seed: "int | np.random.Generator | None" = 42,
) -> list[QubitCalibration]:
    """Draw per-qubit calibrations log-normally spread around the medians."""
    medians = dict(BRISBANE_MEDIANS, **(medians or {}))
    rng = as_rng(seed)
    calibrations = []
    # Clip bounds are *relative* to the medians so that sweeps which scale
    # the medians (e.g. the noise-crossover study) behave as intended.
    for _ in range(num_qubits):
        t1 = float(
            np.clip(
                medians["t1"] * rng.lognormal(0.0, 0.25),
                0.25 * medians["t1"],
                3.0 * medians["t1"],
            )
        )
        t2_raw = float(medians["t2"] * rng.lognormal(0.0, 0.35))
        t2 = float(np.clip(t2_raw, 0.15 * medians["t2"], 1.9 * t1))
        readout = float(
            np.clip(
                medians["readout_error"] * rng.lognormal(0.0, 0.4),
                0.1 * medians["readout_error"],
                min(10.0 * medians["readout_error"], 0.5),
            )
        )
        calibrations.append(
            QubitCalibration(t1=t1, t2=t2, readout_error=readout)
        )
    return calibrations


def sample_gate_calibrations(
    edges: "list[tuple[int, int]]",
    num_qubits: int,
    medians: dict | None = None,
    seed: "int | np.random.Generator | None" = 43,
    two_qubit_gate: str = "ecr",
) -> dict[tuple[str, tuple[int, ...]], GateCalibration]:
    """Draw per-gate calibrations for 1q gates and every coupling edge.

    ``two_qubit_gate`` names the entangler to calibrate ("ecr" for Eagle,
    "cz" for Heron-class backends); error/duration medians come from the
    ``ecr_*`` entries either way, matching the similar published figures
    of the two gate families.
    """
    medians = dict(BRISBANE_MEDIANS, **(medians or {}))
    rng = as_rng(seed)
    table: dict[tuple[str, tuple[int, ...]], GateCalibration] = {}

    def clipped_error(median: float) -> float:
        sampled = median * rng.lognormal(0.0, 0.35)
        return float(np.clip(sampled, 0.1 * median, min(10.0 * median, 0.5)))

    for q in range(num_qubits):
        cal = GateCalibration(
            error=clipped_error(medians["sx_error"]),
            duration=medians["sx_duration"],
        )
        table[("sx", (q,))] = cal
        table[("x", (q,))] = cal
    for a, b in edges:
        cal = GateCalibration(
            error=clipped_error(medians["ecr_error"]),
            duration=medians["ecr_duration"],
        )
        # The entangler is calibrated per (unordered) pair; store both
        # orientations.
        table[(two_qubit_gate, (a, b))] = cal
        table[(two_qubit_gate, (b, a))] = cal
    return table
