"""Native (basis) gate sets of the target hardware.

The paper targets IBM Eagle-class devices whose native set is
``{ECR, Rz, SX, X}`` with ``Rz`` implemented virtually (Sec. III-A).
The set is modeled as data so the transpiler can, in principle, target
other backends (e.g. a CZ-based device) — the ansatz section of the paper
notes the design "can be designed for any other hardware basis".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NativeGateSet:
    """The gate vocabulary a backend executes directly."""

    name: str
    one_qubit_gates: frozenset[str]
    two_qubit_gate: str
    virtual_gates: frozenset[str] = field(default_factory=frozenset)

    def is_native(self, gate_name: str) -> bool:
        return (
            gate_name in self.one_qubit_gates
            or gate_name == self.two_qubit_gate
            or gate_name in self.virtual_gates
        )

    @property
    def all_gates(self) -> frozenset[str]:
        return (
            self.one_qubit_gates
            | {self.two_qubit_gate}
            | self.virtual_gates
        )


#: IBM Eagle (ibm_brisbane and friends): ECR entangler, virtual Rz.
IBM_EAGLE = NativeGateSet(
    name="ibm_eagle",
    one_qubit_gates=frozenset({"sx", "x"}),
    two_qubit_gate="ecr",
    virtual_gates=frozenset({"rz"}),
)

#: A CZ-based set (IBM Heron-like), used by the ablation studies.
IBM_HERON = NativeGateSet(
    name="ibm_heron",
    one_qubit_gates=frozenset({"sx", "x"}),
    two_qubit_gate="cz",
    virtual_gates=frozenset({"rz"}),
)
