"""Device connectivity: coupling maps and the IBM heavy-hexagonal lattice.

The paper transpiles everything onto ``ibm_brisbane`` (127-qubit Eagle,
heavy-hex connectivity) and runs its 8-qubit experiments on a **linear
section** of the lattice (Sec. III-A).  :func:`heavy_hex_127` builds the
Eagle coupling graph; :meth:`CouplingMap.linear_section` extracts a
simple path of the requested length.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import BackendError


class CouplingMap:
    """Undirected qubit-connectivity graph with routing helpers."""

    def __init__(self, edges: "list[tuple[int, int]]", num_qubits: int | None = None):
        graph = nx.Graph()
        if num_qubits is not None:
            graph.add_nodes_from(range(num_qubits))
        graph.add_edges_from((int(a), int(b)) for a, b in edges)
        self.graph = graph

    # -- basic queries ------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def edges(self) -> list[tuple[int, int]]:
        return [tuple(sorted(e)) for e in self.graph.edges]

    def are_connected(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def neighbors(self, qubit: int) -> list[int]:
        return sorted(self.graph.neighbors(qubit))

    def distance(self, a: int, b: int) -> int:
        try:
            return nx.shortest_path_length(self.graph, a, b)
        except nx.NetworkXNoPath:
            raise BackendError(f"qubits {a} and {b} are disconnected") from None

    def shortest_path(self, a: int, b: int) -> list[int]:
        try:
            return nx.shortest_path(self.graph, a, b)
        except nx.NetworkXNoPath:
            raise BackendError(f"qubits {a} and {b} are disconnected") from None

    # -- structure ------------------------------------------------------------

    def linear_section(self, length: int) -> list[int]:
        """Return ``length`` physical qubits forming a simple path.

        Uses a greedy DFS preferring low-degree continuations (the natural
        "edge of the lattice" walk that heavy-hex rows provide); raises if
        the lattice has no such path.
        """
        if length < 1 or length > self.num_qubits:
            raise BackendError(f"no linear section of length {length}")

        def extend(path: list[int], seen: set[int]) -> list[int] | None:
            if len(path) == length:
                return path
            nxt = sorted(
                (n for n in self.graph.neighbors(path[-1]) if n not in seen),
                key=lambda n: self.graph.degree(n),
            )
            for n in nxt:
                seen.add(n)
                path.append(n)
                result = extend(path, seen)
                if result is not None:
                    return result
                path.pop()
                seen.remove(n)
            return None

        for start in sorted(self.graph.nodes, key=lambda n: self.graph.degree(n)):
            result = extend([start], {start})
            if result is not None:
                return result
        raise BackendError(f"no linear section of length {length} exists")

    def subgraph(self, qubits: "list[int]") -> "CouplingMap":
        """Coupling map induced on ``qubits``, relabeled to ``0..k-1``."""
        index = {q: i for i, q in enumerate(qubits)}
        edges = [
            (index[a], index[b])
            for a, b in self.graph.edges
            if a in index and b in index
        ]
        return CouplingMap(edges, num_qubits=len(qubits))

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    def __repr__(self) -> str:
        return (
            f"CouplingMap(qubits={self.num_qubits}, "
            f"edges={self.graph.number_of_edges()})"
        )


def linear_chain(num_qubits: int) -> CouplingMap:
    """A 1-D nearest-neighbor chain ``0-1-...-(n-1)``."""
    return CouplingMap(
        [(i, i + 1) for i in range(num_qubits - 1)], num_qubits=num_qubits
    )


def heavy_hex_127() -> CouplingMap:
    """The 127-qubit IBM Eagle heavy-hex lattice (ibm_brisbane layout).

    Seven horizontal rows of qubits joined by columns of bridge qubits;
    bridge anchor offsets alternate between rows, producing the familiar
    heavy-hexagon cells.
    """
    edges: list[tuple[int, int]] = []
    # Row boundaries: (first qubit, length).
    rows = [(0, 14), (18, 15), (37, 15), (56, 15), (75, 15), (94, 15), (113, 14)]
    for start, length in rows:
        edges.extend((q, q + 1) for q in range(start, start + length - 1))
    # Bridge columns between consecutive rows: (bridge qubits, anchor offsets
    # in the upper row, anchor offsets in the lower row).
    bridges = [
        ((14, 15, 16, 17), (0, 4, 8, 12), (0, 4, 8, 12)),
        ((33, 34, 35, 36), (2, 6, 10, 14), (2, 6, 10, 14)),
        ((52, 53, 54, 55), (0, 4, 8, 12), (0, 4, 8, 12)),
        ((71, 72, 73, 74), (2, 6, 10, 14), (2, 6, 10, 14)),
        ((90, 91, 92, 93), (0, 4, 8, 12), (0, 4, 8, 12)),
        ((109, 110, 111, 112), (2, 6, 10, 14), (1, 5, 9, 13)),
    ]
    for row_idx, (bridge_qubits, upper_offsets, lower_offsets) in enumerate(bridges):
        upper_start = rows[row_idx][0]
        lower_start = rows[row_idx + 1][0]
        for bridge, up_off, low_off in zip(
            bridge_qubits, upper_offsets, lower_offsets
        ):
            edges.append((upper_start + up_off, bridge))
            edges.append((bridge, lower_start + low_off))
    return CouplingMap(edges, num_qubits=127)
