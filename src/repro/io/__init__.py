"""Circuit interchange: OpenQASM 2/3 text and a compact binary wire format.

This subsystem is how encoded circuits leave the process (ROADMAP item
3).  Two formats, one vocabulary (the full
:data:`repro.quantum.gates.STANDARD_GATES` registry):

* :mod:`repro.io.qasm` — OpenQASM 2 and 3 export/import with
  ``repr``-roundtrip float formatting, so ``from_qasm(to_qasm(c))`` is
  instruction-identical to ``c`` down to the last parameter bit.  For
  handing circuits to external runners (qiskit, PennyLane, simulators)
  and reading theirs back.
* :mod:`repro.io.wire` — a versioned binary format whose template-bound
  record is just ``fingerprint + (B, P) thetas`` (a few hundred bytes
  per circuit, ~25x smaller than shipping the gate list), with an
  explicit gate-stream record as the general fallback.  For
  cross-process transport between services holding the same templates.

``python -m repro.io`` converts between the formats on the command
line; :meth:`repro.service.records.EncodeResponse.to_qasm` /
``to_wire`` and :meth:`repro.service.registry.EncoderRegistry.
rehydrate_wire` are the service-layer entry points.

>>> from repro.io import to_qasm, from_qasm
>>> from repro.quantum.circuit import QuantumCircuit
>>> bell = QuantumCircuit(2).h(0).cx(0, 1)
>>> print(to_qasm(bell), end="")
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0], q[1];
>>> len(from_qasm(to_qasm(bell, version=3)))
2
"""

from repro.io.qasm import (
    GATE_SIGNATURES,
    format_float,
    from_qasm,
    load_qasm,
    save_qasm,
    to_qasm,
)
from repro.io.wire import (
    WIRE_GATE_NAMES,
    WIRE_SCHEMA_VERSION,
    describe,
    dump_batch,
    dump_circuit,
    dump_circuits,
    dump_encoded_batch,
    load,
    load_encoded_batch,
)

__all__ = [
    "GATE_SIGNATURES",
    "WIRE_GATE_NAMES",
    "WIRE_SCHEMA_VERSION",
    "describe",
    "dump_batch",
    "dump_circuit",
    "dump_circuits",
    "dump_encoded_batch",
    "format_float",
    "from_qasm",
    "load",
    "load_encoded_batch",
    "load_qasm",
    "save_qasm",
    "to_qasm",
]
