"""``python -m repro.io`` — convert circuits between interchange formats.

Two subcommands::

    python -m repro.io info FILE
        Identify a file (wire records by header, QASM by text) and print
        a one-line summary per circuit.

    python -m repro.io convert IN OUT [--to qasm2|qasm3|wire]
        Read IN (QASM text or a self-contained wire record) and write
        OUT in the requested format (inferred from OUT's extension when
        --to is omitted: .qasm -> qasm2, .wire/.bin -> wire).

Template-bound wire records need the producing template to decode, which
a bare CLI process does not have — ``info`` still summarizes them from
the header, but ``convert`` rejects them with a pointer at
``EncoderRegistry.rehydrate_wire``.  Conversions to wire therefore
always emit self-contained gate-stream records.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.errors import SerializationError
from repro.io import qasm, wire


def _read_circuits(path: pathlib.Path):
    """Parse ``path`` as wire or QASM; returns a list of circuits."""
    data = path.read_bytes()
    if data[:4] == wire.MAGIC:
        decoded = wire.load(data)
        return decoded if isinstance(decoded, list) else [decoded]
    circuit = qasm.from_qasm(data.decode("utf-8"))
    return [circuit]


def _output_format(path: pathlib.Path, explicit: "str | None") -> str:
    if explicit is not None:
        return explicit
    suffix = path.suffix.lower()
    if suffix == ".qasm":
        return "qasm2"
    if suffix in (".wire", ".bin"):
        return "wire"
    raise SerializationError(
        f"cannot infer an output format from {path.name!r}; pass "
        "--to qasm2|qasm3|wire"
    )


def _cmd_info(args) -> int:
    path = pathlib.Path(args.file)
    data = path.read_bytes()
    if data[:4] == wire.MAGIC:
        summary = wire.describe(data)
        fields = ", ".join(f"{k}={v}" for k, v in summary.items())
        print(f"{path.name}: wire ({fields})")
        return 0
    circuit = qasm.from_qasm(data.decode("utf-8"))
    print(
        f"{path.name}: qasm ({circuit.num_qubits} qubits, "
        f"{len(circuit)} gates)"
    )
    return 0


def _cmd_convert(args) -> int:
    source = pathlib.Path(args.input)
    target = pathlib.Path(args.output)
    fmt = _output_format(target, args.to)
    circuits = _read_circuits(source)
    if fmt == "wire":
        if len(circuits) == 1:
            target.write_bytes(
                wire.dump_circuit(circuits[0], gate_stream=True)
            )
        else:
            target.write_bytes(wire.dump_circuits(circuits, gate_stream=True))
    else:
        version = 2 if fmt == "qasm2" else 3
        if len(circuits) != 1:
            raise SerializationError(
                f"a QASM file holds one circuit, input has {len(circuits)}"
            )
        target.write_text(qasm.to_qasm(circuits[0], version=version))
    print(
        f"{source.name} -> {target.name} ({fmt}, {len(circuits)} "
        f"circuit{'s' if len(circuits) != 1 else ''}, "
        f"{target.stat().st_size} bytes)"
    )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.io",
        description="Convert circuits between OpenQASM and wire formats.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    info = commands.add_parser("info", help="identify and summarize a file")
    info.add_argument("file")
    info.set_defaults(handler=_cmd_info)
    convert = commands.add_parser("convert", help="convert between formats")
    convert.add_argument("input")
    convert.add_argument("output")
    convert.add_argument(
        "--to", choices=("qasm2", "qasm3", "wire"), default=None,
        help="output format (default: inferred from the output extension)",
    )
    convert.set_defaults(handler=_cmd_convert)
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except SerializationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
