"""OpenQASM 2/3 text interop for :class:`~repro.quantum.circuit.QuantumCircuit`.

The writer (:func:`to_qasm`) emits standard-conformant OpenQASM — version
2 against the qiskit-extended ``qelib1.inc`` vocabulary, version 3
against ``stdgates.inc`` — and spells every float parameter with
:func:`format_float`, whose ``repr``-roundtrip formatting guarantees the
reader recovers bit-identical values (branch-cut angles like
``pi - 1e-9`` included).  Gates outside the standard vocabulary — the
qiskit sets have no spelling for :func:`~repro.quantum.gates.
unitary_gate` wrappers or generic ``*_dg`` inverses — raise
:class:`~repro.errors.SerializationError` instead of emitting text no
consumer can parse.  The few registry gates beyond the include files
(``iswap``/``ecr`` in QASM 2; ``sxdg``/``iswap``/``ecr``/``rzz`` in
QASM 3) get explicit ``gate`` definitions, each verified numerically
against the registry matrix in ``tests/test_io_qasm.py``.

The reader (:func:`from_qasm`) is a recursive-descent parser over the
interchange subset both versions share: version header (routed through
:func:`repro.core.serialization.check_schema_version` like every other
versioned artifact), ``include`` lines, quantum/classical register
declarations in both syntaxes, user ``gate`` definitions (expanded
inline unless the name is already in the registry — so our own emitted
definitions round-trip to the native gate, not its decomposition),
whole-register broadcast, ``barrier`` (ignored), constant arithmetic
parameter expressions, and the legacy ``u1``/``u2``/``u3``/``cu1``/
``CX``/``U`` aliases.  Classical control (``measure``/``reset``/``if``
and the QASM 3 programming constructs) is out of scope for a pure
state-preparation stack and is rejected loudly.

Round-trip contract: for any exportable circuit ``c``,
``from_qasm(to_qasm(c, version=v))`` is instruction-identical to ``c``
— same gate names, same qubit tuples, and parameter tuples equal to the
last float bit.
"""

from __future__ import annotations

import math
import pathlib
import re

from repro.core.serialization import check_schema_version
from repro.errors import SerializationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import gate as make_gate

#: The exportable gate vocabulary: name -> (arity, num_params), exactly
#: the :data:`repro.quantum.gates.STANDARD_GATES` registry.  Anything
#: else has no OpenQASM-standard spelling and is rejected at export
#: (``tests/test_io_qasm.py`` asserts this table covers the registry).
GATE_SIGNATURES: "dict[str, tuple[int, int]]" = {
    "id": (1, 0),
    "x": (1, 0),
    "y": (1, 0),
    "z": (1, 0),
    "h": (1, 0),
    "s": (1, 0),
    "sdg": (1, 0),
    "t": (1, 0),
    "tdg": (1, 0),
    "sx": (1, 0),
    "sxdg": (1, 0),
    "rx": (1, 1),
    "ry": (1, 1),
    "rz": (1, 1),
    "p": (1, 1),
    "u": (1, 3),
    "cx": (2, 0),
    "cy": (2, 0),
    "cz": (2, 0),
    "ch": (2, 0),
    "cp": (2, 1),
    "crz": (2, 1),
    "cry": (2, 1),
    "swap": (2, 0),
    "iswap": (2, 0),
    "ecr": (2, 0),
    "rzz": (2, 1),
}

#: Legacy / prelude spellings accepted on import (QASM 2 ``qelib1``
#: primitives and QASM 3 ``stdgates`` aliases).  ``u2`` is special-cased
#: in :meth:`_QasmReader._emit` (it *adds* a parameter).
_IMPORT_ALIASES = {
    "CX": "cx",
    "U": "u",
    "u1": "p",
    "u3": "u",
    "phase": "p",
    "cphase": "cp",
    "cu1": "cp",
    "iden": "id",
}

# Registry gates beyond each version's include file, as standard ``gate``
# definitions.  Bodies are numerically verified against the registry
# matrices (ecr and rzz are exact including global phase; the rest agree
# up to a global phase, which QASM gate semantics cannot express anyway).
_QASM2_DEFS = {
    "iswap": "gate iswap a, b { s a; s b; h a; cx a, b; cx b, a; h b; }",
    "ecr": "gate ecr a, b { h a; cx a, b; rz(pi/2) b; cx a, b; h a; x b; }",
}
_QASM3_DEFS = {
    "sxdg": "gate sxdg a { s a; h a; s a; }",
    "iswap": _QASM2_DEFS["iswap"],
    "ecr": _QASM2_DEFS["ecr"],
    "rzz": "gate rzz(theta) a, b { cx a, b; rz(theta) b; cx a, b; }",
}

#: Statement keywords the reader recognises but deliberately rejects: a
#: state-preparation circuit has no classical wires to hold the results.
_UNSUPPORTED = frozenset(
    {
        "measure", "reset", "if", "opaque", "gphase", "delay", "box",
        "for", "while", "def", "defcal", "defcalgrammar", "cal",
        "input", "output", "const", "let", "ctrl", "inv", "pow",
        "extern", "return", "switch",
    }
)

_FUNCTIONS = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "asin": math.asin,
    "acos": math.acos,
    "atan": math.atan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
}


def format_float(value: float) -> str:
    """``repr``-roundtrip-exact QASM real literal (always carries a dot).

    ``repr`` emits the shortest decimal string that parses back to the
    same float, so ``float(format_float(x)) == x`` to the last bit; QASM
    grammars want real literals visually distinct from integers, so a
    ``.0`` is inserted when ``repr`` omits the point (``1e-09`` →
    ``1.0e-09``).
    """
    value = float(value)
    if not math.isfinite(value):
        raise SerializationError(
            f"cannot export non-finite gate parameter {value!r} to OpenQASM"
        )
    text = repr(value)
    if "e" in text:
        mantissa, _, exponent = text.partition("e")
        if "." not in mantissa:
            mantissa += ".0"
        return f"{mantissa}e{exponent}"
    if "." not in text:
        text += ".0"
    return text


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------

def to_qasm(circuit: QuantumCircuit, version: int = 2) -> str:
    """Serialize ``circuit`` as OpenQASM ``version`` (2 or 3) text."""
    if version not in (2, 3):
        raise SerializationError(
            f"OpenQASM version must be 2 or 3, got {version!r}"
        )
    body: list[str] = []
    used: set[str] = set()
    for instr in circuit:
        name = instr.name
        signature = GATE_SIGNATURES.get(name)
        if signature is None:
            raise SerializationError(
                f"gate {name!r} has no OpenQASM-standard spelling and "
                "cannot be exported (matrix-defined unitary_gate wrappers "
                "and generic *_dg inverses are simulation-only); "
                f"exportable gates: {sorted(GATE_SIGNATURES)}"
            )
        params = instr.gate.params
        if len(instr.qubits) != signature[0] or len(params) != signature[1]:
            raise SerializationError(
                f"gate {name!r} applied with {len(instr.qubits)} qubits / "
                f"{len(params)} params; OpenQASM {name} takes "
                f"{signature[0]} qubits / {signature[1]} params"
            )
        used.add(name)
        head = name
        if params:
            head += f"({', '.join(format_float(p) for p in params)})"
        operands = ", ".join(f"q[{q}]" for q in instr.qubits)
        body.append(f"{head} {operands};")
    if version == 2:
        lines = ['OPENQASM 2.0;', 'include "qelib1.inc";']
        defs = _QASM2_DEFS
        register = f"qreg q[{circuit.num_qubits}];"
    else:
        lines = ['OPENQASM 3.0;', 'include "stdgates.inc";']
        defs = _QASM3_DEFS
        register = f"qubit[{circuit.num_qubits}] q;"
    lines.extend(text for name, text in defs.items() if name in used)
    lines.append(register)
    lines.extend(body)
    return "\n".join(lines) + "\n"


def save_qasm(
    circuit: QuantumCircuit, path: "str | pathlib.Path", version: int = 2
) -> None:
    """Write :func:`to_qasm` output to ``path``."""
    pathlib.Path(path).write_text(to_qasm(circuit, version=version))


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
      (?P<skip>\s+|//[^\n]*|/\*.*?\*/)
    | (?P<number>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
    | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<string>"[^"\n]*")
    | (?P<op>\*\*|->|==|[;,(){}\[\]+\-*/^=<>!@])
    """,
    re.VERBOSE | re.DOTALL,
)


def _tokenize(text: str) -> "list[tuple[str, str]]":
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SerializationError(
                f"QASM source has an unexpected character {text[pos]!r} "
                f"at offset {pos}"
            )
        pos = match.end()
        if match.lastgroup != "skip":
            tokens.append((match.lastgroup, match.group()))
    return tokens


class _QasmReader:
    """Recursive-descent parser over a token list (see module docstring).

    One instance parses one source: registers accumulate into a flat
    qubit index space (declaration order), gate applications into an
    ``(gate, qubits)`` op list, and user ``gate`` definitions into a
    name -> (params, qargs, body-tokens) table expanded lazily at each
    application (the token cursor temporarily jumps into the stored
    body, so nested definitions recurse naturally).
    """

    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._pos = 0
        self._registers: "dict[str, tuple[int, int]]" = {}
        self._num_qubits = 0
        self._defs: "dict[str, tuple[list, list, list]]" = {}
        self._ops: list = []

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> "tuple[str | None, str | None]":
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return (None, None)

    def _advance(self) -> "tuple[str, str]":
        if self._pos >= len(self._tokens):
            raise SerializationError("QASM source ended unexpectedly")
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind: str, text: "str | None" = None) -> str:
        got_kind, got_text = self._advance()
        if got_kind != kind or (text is not None and got_text != text):
            wanted = text if text is not None else kind
            raise SerializationError(
                f"QASM parse error: expected {wanted!r}, got {got_text!r}"
            )
        return got_text

    def _accept(self, kind: str, text: str) -> bool:
        got_kind, got_text = self._peek()
        if got_kind == kind and got_text == text:
            self._pos += 1
            return True
        return False

    def _expect_int(self) -> int:
        kind, text = self._advance()
        if kind != "number" or not text.isdigit():
            raise SerializationError(
                f"QASM parse error: expected an integer, got {text!r}"
            )
        return int(text)

    def _skip_statement(self) -> None:
        while self._advance() != ("op", ";"):
            pass

    # -- grammar -------------------------------------------------------------

    def parse(self) -> QuantumCircuit:
        self._header()
        while self._pos < len(self._tokens):
            self._statement()
        if self._num_qubits == 0:
            raise SerializationError("QASM source declares no qubits")
        circuit = QuantumCircuit(self._num_qubits)
        for gate_obj, qubits in self._ops:
            circuit.append(gate_obj, qubits)
        return circuit

    def _header(self) -> None:
        kind, text = self._peek()
        if kind != "name" or text != "OPENQASM":
            check_schema_version(
                None,
                ("2.0", "3.0"),
                "QASM source",
                field="OPENQASM",
                remedy="export it with a standard version header",
            )
        self._advance()
        kind, version = self._advance()
        if kind != "number":
            raise SerializationError(
                f"QASM parse error: expected a version number after "
                f"OPENQASM, got {version!r}"
            )
        check_schema_version(
            version,
            ("2.0", "3", "3.0", "3.1"),
            "QASM source",
            field="OPENQASM",
            remedy="export it as OpenQASM 2.0 or 3.0",
        )
        self._expect("op", ";")

    def _statement(self) -> None:
        kind, text = self._peek()
        if kind != "name":
            raise SerializationError(
                f"QASM parse error: unexpected token {text!r} at "
                "statement start"
            )
        if text == "include":
            self._advance()
            self._expect("string")
            self._expect("op", ";")
        elif text == "qreg":
            self._advance()
            name = self._expect("name")
            self._expect("op", "[")
            size = self._expect_int()
            self._expect("op", "]")
            self._expect("op", ";")
            self._declare(name, size)
        elif text == "qubit":
            self._advance()
            size = 1
            if self._accept("op", "["):
                size = self._expect_int()
                self._expect("op", "]")
            name = self._expect("name")
            self._expect("op", ";")
            self._declare(name, size)
        elif text in ("creg", "bit"):
            # Classical registers parse but carry nothing: there are no
            # measurements to store.
            self._skip_statement()
        elif text == "gate":
            self._gate_definition()
        elif text == "barrier":
            self._skip_statement()
        elif text in _UNSUPPORTED:
            raise SerializationError(
                f"unsupported QASM statement {text!r}: the reader covers "
                "pure unitary circuits (no classical control or "
                "measurement)"
            )
        else:
            self._application()

    def _declare(self, name: str, size: int) -> None:
        if name in self._registers:
            raise SerializationError(
                f"QASM register {name!r} declared twice"
            )
        if size < 1:
            raise SerializationError(
                f"QASM register {name!r} has illegal size {size}"
            )
        self._registers[name] = (self._num_qubits, size)
        self._num_qubits += size

    def _gate_definition(self) -> None:
        self._expect("name", "gate")
        name = self._expect("name")
        params: list = []
        if self._accept("op", "("):
            while not self._accept("op", ")"):
                params.append(self._expect("name"))
                if not self._accept("op", ","):
                    self._expect("op", ")")
                    break
        qargs = [self._expect("name")]
        while self._accept("op", ","):
            qargs.append(self._expect("name"))
        self._expect("op", "{")
        body: list = []
        while True:
            token = self._advance()
            if token == ("op", "}"):
                break
            if token == ("op", "{"):
                raise SerializationError(
                    f"QASM gate {name!r} body contains a nested block"
                )
            body.append(token)
        self._defs[name] = (params, qargs, body)

    # -- applications --------------------------------------------------------

    def _application(
        self,
        env: "dict[str, float] | None" = None,
        qubit_env: "dict[str, int] | None" = None,
    ) -> None:
        name = self._expect("name")
        params: list[float] = []
        if self._accept("op", "("):
            if not self._accept("op", ")"):
                params.append(self._expression(env))
                while self._accept("op", ","):
                    params.append(self._expression(env))
                self._expect("op", ")")
        operands = [self._operand(qubit_env)]
        while self._accept("op", ","):
            operands.append(self._operand(qubit_env))
        self._expect("op", ";")
        for qubits in self._broadcast(name, operands):
            self._emit(name, params, qubits)

    def _operand(self, qubit_env: "dict[str, int] | None"):
        name = self._expect("name")
        if qubit_env is not None:
            # Inside a gate body operands are bare formal qubit names.
            try:
                return ("bit", qubit_env[name])
            except KeyError:
                raise SerializationError(
                    f"QASM gate body references unknown qubit {name!r}"
                ) from None
        index = None
        if self._accept("op", "["):
            index = self._expect_int()
            self._expect("op", "]")
        try:
            offset, size = self._registers[name]
        except KeyError:
            raise SerializationError(
                f"QASM source references undeclared register {name!r}"
            ) from None
        if index is None:
            return ("reg", offset, size)
        if index >= size:
            raise SerializationError(
                f"QASM index {name}[{index}] out of range (size {size})"
            )
        return ("bit", offset + index)

    def _broadcast(self, name, operands) -> "list[list[int]]":
        """Expand whole-register operands to per-qubit applications."""
        lengths = {op[2] for op in operands if op[0] == "reg"}
        if not lengths:
            return [[op[1] for op in operands]]
        if len(lengths) > 1:
            raise SerializationError(
                f"QASM broadcast of {name!r} mixes register lengths "
                f"{sorted(lengths)}"
            )
        length = lengths.pop()
        return [
            [op[1] + i if op[0] == "reg" else op[1] for op in operands]
            for i in range(length)
        ]

    def _emit(self, name: str, params: list, qubits: list) -> None:
        if name == "u2":
            if len(params) != 2:
                raise SerializationError(
                    f"legacy gate u2 takes 2 params, got {len(params)}"
                )
            name, params = "u", [math.pi / 2.0, params[0], params[1]]
        else:
            name = _IMPORT_ALIASES.get(name, name)
        signature = GATE_SIGNATURES.get(name)
        if signature is not None:
            arity, num_params = signature
            if len(qubits) != arity or len(params) != num_params:
                raise SerializationError(
                    f"QASM gate {name!r} takes {arity} qubits / "
                    f"{num_params} params, got {len(qubits)} / {len(params)}"
                )
            if len(set(qubits)) != len(qubits):
                raise SerializationError(
                    f"QASM gate {name!r} applied to duplicate qubits "
                    f"{tuple(qubits)}"
                )
            self._ops.append((make_gate(name, *params), tuple(qubits)))
            return
        definition = self._defs.get(name)
        if definition is None:
            raise SerializationError(
                f"QASM source applies unknown gate {name!r} (neither a "
                "standard gate nor defined in this file)"
            )
        param_names, qarg_names, body = definition
        if len(params) != len(param_names) or len(qubits) != len(qarg_names):
            raise SerializationError(
                f"QASM gate {name!r} takes {len(qarg_names)} qubits / "
                f"{len(param_names)} params, got {len(qubits)} / "
                f"{len(params)}"
            )
        self._expand(body, dict(zip(param_names, params)),
                     dict(zip(qarg_names, qubits)))

    def _expand(self, body, env, qubit_env) -> None:
        """Inline a user gate definition by re-entering the parser on its
        stored body tokens (recursion handles definitions that call
        other definitions)."""
        saved = (self._tokens, self._pos)
        self._tokens, self._pos = body, 0
        try:
            while self._pos < len(self._tokens):
                kind, text = self._peek()
                if kind == "name" and text == "barrier":
                    self._skip_statement()
                else:
                    self._application(env, qubit_env)
        finally:
            self._tokens, self._pos = saved

    # -- constant expressions ------------------------------------------------

    def _expression(self, env) -> float:
        value = self._term(env)
        while True:
            if self._accept("op", "+"):
                value = value + self._term(env)
            elif self._accept("op", "-"):
                value = value - self._term(env)
            else:
                return value

    def _term(self, env) -> float:
        value = self._factor(env)
        while True:
            if self._accept("op", "*"):
                value = value * self._factor(env)
            elif self._accept("op", "/"):
                value = value / self._factor(env)
            else:
                return value

    def _factor(self, env) -> float:
        if self._accept("op", "-"):
            return -self._factor(env)
        if self._accept("op", "+"):
            return self._factor(env)
        return self._power(env)

    def _power(self, env) -> float:
        value = self._atom(env)
        if self._accept("op", "^") or self._accept("op", "**"):
            return value ** self._factor(env)
        return value

    def _atom(self, env) -> float:
        kind, text = self._advance()
        if kind == "number":
            return float(text)
        if kind == "op" and text == "(":
            value = self._expression(env)
            self._expect("op", ")")
            return value
        if kind == "name":
            if text == "pi":
                return math.pi
            if text == "tau":
                return math.tau
            if text == "euler":
                return math.e
            function = _FUNCTIONS.get(text)
            if function is not None:
                self._expect("op", "(")
                value = self._expression(env)
                self._expect("op", ")")
                return function(value)
            if env is not None and text in env:
                return env[text]
        raise SerializationError(
            f"QASM parse error: unexpected token {text!r} in a parameter "
            "expression"
        )


def from_qasm(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2 or 3 text back into a :class:`QuantumCircuit`."""
    return _QasmReader(text).parse()


def load_qasm(path: "str | pathlib.Path") -> QuantumCircuit:
    """Read a circuit from an OpenQASM text file."""
    return from_qasm(pathlib.Path(path).read_text())
