"""Versioned compact binary wire format for (bound) circuits.

ROADMAP item 3's transport layer: a template-bound circuit is fully
determined by *which* template produced it plus its ``(P,)`` angle row,
so the wire record for a whole :class:`~repro.transpile.bound.
BoundCircuitBatch` is a fingerprint plus a ``(B, P)`` float block — a
few hundred bytes per circuit instead of a multi-kilobyte gate list.
Because :meth:`~repro.transpile.template.ParametricTemplate.
bind_batch_ir` is deterministic and float-bit reproducible, the decoder
can rebind from the thetas alone and recover an IR whose simulation is
``np.array_equal`` to the sender's; a flag optionally inlines the packed
ZYZ synthesis section (NaN-marked Rz angle rows, kind bytes, and special
ops straight out of :class:`~repro.transpile.euler.PackedSynthesis`) for
zero-recompute decoding at ~3x the payload.

Layout (all integers little-endian)::

    magic    b"RQWF"
    u8       WIRE_SCHEMA_VERSION
    u8       record kind (1/2/3 below)

    kind 1 — template-bound batch:
      u8     flags (bit 0: synthesis section present)
      16s    template fingerprint (ParametricTemplate.fingerprint)
      u16    num_qubits   u32 batch   u32 num_params
      f64[batch * num_params]          bound thetas, C order
      synthesis section when flagged: u32 num_runs, then per run
        u8[batch] kinds, f64[batch * 3] angles, u32 num_specials,
        per special: u32 row, u16 num_ops,
        per op: u8 gate code + its f64 params

    kind 2 — one explicit circuit;  kind 3 — u32 count, then circuits:
      u16    num_qubits   u16 name length   name bytes (utf-8)
      u32    num_instructions
      per instruction: u8 gate code, u16 per qubit, f64 per param
      (arity/param counts fixed by the gate-code table)

    kind 4 — encoded-batch response (the process backend's flush
    payload: everything ``EncodePipeline.run_reported`` produced for a
    batch, minus the target rows — the receiver recomputes those
    deterministically from the samples it already holds):
      u32    batch (must match the bound-batch body below)
      f64[batch] ideal fidelities     u32[batch] cluster indices
      u32[batch] optimizer iterations u32[batch] optimizer evaluations
      f64[batch] compile times
      f64 x4 route/finetune/bind/lower stage seconds
      u32    template_binds   i8 template_hit (-1 none / 0 miss / 1 hit)
      then a kind-1 template-bound body verbatim (flags, fingerprint,
      dims, thetas, optional synthesis section)

Decoding a kind-1 record needs the matching template on the receiving
side — pass one explicitly or give :func:`load` a ``template_resolver``
(``EncoderRegistry.rehydrate_wire`` resolves against its registered
encoders' template cache).  Version and fingerprint mismatches raise
:class:`~repro.errors.SerializationError` through the same
:func:`repro.core.serialization.check_schema_version` gate as the JSON
model bundles.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.serialization import check_schema_version
from repro.errors import SerializationError
from repro.io.qasm import GATE_SIGNATURES
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import Gate
from repro.quantum.instruction import Instruction
from repro.transpile.bound import BoundCircuit, BoundCircuitBatch
from repro.transpile.euler import PackedSynthesis

MAGIC = b"RQWF"

#: Wire schema.  Version 1: the record kinds documented above.
WIRE_SCHEMA_VERSION = 1

KIND_TEMPLATE_BATCH = 1
KIND_GATE_STREAM = 2
KIND_GATE_STREAM_BATCH = 3
KIND_ENCODED_BATCH = 4

_KIND_NAMES = {
    KIND_TEMPLATE_BATCH: "template-batch",
    KIND_GATE_STREAM: "gate-stream",
    KIND_GATE_STREAM_BATCH: "gate-stream-batch",
    KIND_ENCODED_BATCH: "encoded-batch",
}

_FLAG_SYNTHESIS = 0x01

#: Canonical gate-code table: wire code = index.  Append-only — codes
#: are part of the wire contract, so new gates go at the end.
WIRE_GATE_NAMES = (
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
    "rx", "ry", "rz", "p", "u", "cx", "cy", "cz", "ch", "cp", "crz",
    "cry", "swap", "iswap", "ecr", "rzz",
)
_CODE_OF = {name: code for code, name in enumerate(WIRE_GATE_NAMES)}


class _Cursor:
    """Bounds-checked forward reader over a wire blob."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, size: int) -> bytes:
        end = self.pos + size
        if end > len(self.data):
            raise SerializationError(
                f"truncated wire record: wanted {size} bytes at offset "
                f"{self.pos}, only {len(self.data) - self.pos} left"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def unpack(self, fmt: str) -> tuple:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))

    def done(self) -> None:
        if self.pos != len(self.data):
            raise SerializationError(
                f"wire record has {len(self.data) - self.pos} trailing "
                "bytes after the last field"
            )


def _header(kind: int) -> bytes:
    return MAGIC + struct.pack("<BB", WIRE_SCHEMA_VERSION, kind)


def _gate_code(name: str) -> int:
    code = _CODE_OF.get(name)
    if code is None:
        raise SerializationError(
            f"gate {name!r} has no wire gate code and cannot be exported "
            "(matrix-defined unitary_gate wrappers and generic *_dg "
            f"inverses are simulation-only); exportable gates: "
            f"{sorted(_CODE_OF)}"
        )
    return code


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def dump_batch(
    batch: BoundCircuitBatch, *, include_synthesis: bool = False
) -> bytes:
    """Encode a whole bound batch as one template-bound wire record.

    With ``include_synthesis=False`` (the default, and the compact
    choice) the record carries only the fingerprint and the theta block;
    the decoder rebinds.  ``include_synthesis=True`` inlines the packed
    ZYZ section so decoding never recomputes a synthesis.
    """
    out = bytearray(_header(KIND_TEMPLATE_BATCH))
    _encode_template_body(batch, include_synthesis, out)
    return bytes(out)


def _encode_template_body(
    batch: BoundCircuitBatch, include_synthesis: bool, out: bytearray
) -> None:
    """Append a kind-1 template-bound body (shared with kind 4)."""
    thetas = np.ascontiguousarray(batch.thetas, dtype=np.float64)
    num_rows, num_params = thetas.shape
    out += struct.pack(
        "<B16sHII",
        _FLAG_SYNTHESIS if include_synthesis else 0,
        batch.template.fingerprint,
        batch.num_qubits,
        num_rows,
        num_params,
    )
    out += thetas.tobytes()
    if include_synthesis:
        out += struct.pack("<I", len(batch.packed))
        for packed in batch.packed:
            out += np.ascontiguousarray(packed.kinds, np.uint8).tobytes()
            out += np.ascontiguousarray(packed.angles, np.float64).tobytes()
            out += struct.pack("<I", len(packed.specials))
            for row in sorted(packed.specials):
                ops = packed.specials[row]
                out += struct.pack("<IH", row, len(ops))
                for name, params in ops:
                    out += struct.pack("<B", _gate_code(name))
                    if params:
                        out += struct.pack(f"<{len(params)}d", *params)


def dump_encoded_batch(
    encoded, report, *, include_synthesis: bool = True
) -> bytes:
    """Encode one flush's full ``run_reported`` outcome as a response
    record (kind 4): per-sample metadata + stage report + the bound
    batch.

    Every sample must be a template-path :class:`~repro.core.pipeline.
    EncodedSample` whose circuits are rows of one
    :class:`BoundCircuitBatch` — exactly what a ``use_template=True``
    flush produces.  The default ``include_synthesis=True`` trades ~3x
    payload for a zero-recompute decode: the process backend's parent
    side reconstructs the batch from the packed arrays instead of
    rebinding, keeping response decode off the hot path's flop budget.
    Target rows deliberately do not cross the wire — the decoder's
    caller recomputes them (``EncodePipeline.prepare`` is deterministic)
    from the samples it already has, halving the payload.
    """
    encoded = list(encoded)
    if not encoded:
        raise SerializationError("cannot encode an empty flush response")
    circuits = [sample.transpiled.circuit for sample in encoded]
    if not all(isinstance(c, BoundCircuit) for c in circuits) or len(
        {id(c.bound_batch) for c in circuits}
    ) != 1:
        raise SerializationError(
            "encoded-batch records need template-path samples (rows of "
            "one BoundCircuitBatch); this batch was lowered per-sample "
            "(use_template=False?)"
        )
    batch = circuits[0].bound_batch.take([c.bound_row for c in circuits])
    out = bytearray(_header(KIND_ENCODED_BATCH))
    out += struct.pack("<I", len(encoded))
    out += np.asarray(
        [sample.ideal_fidelity for sample in encoded], dtype="<f8"
    ).tobytes()
    out += np.asarray(
        [sample.cluster_index for sample in encoded], dtype="<u4"
    ).tobytes()
    out += np.asarray(
        [sample.optimizer_iterations for sample in encoded], dtype="<u4"
    ).tobytes()
    out += np.asarray(
        [sample.optimizer_evaluations for sample in encoded], dtype="<u4"
    ).tobytes()
    out += np.asarray(
        [sample.compile_time for sample in encoded], dtype="<f8"
    ).tobytes()
    out += struct.pack(
        "<4dIb",
        report.route_seconds,
        report.finetune_seconds,
        report.bind_seconds,
        report.lower_seconds,
        report.template_binds,
        -1 if report.template_hit is None else int(report.template_hit),
    )
    _encode_template_body(batch, include_synthesis, out)
    return bytes(out)


def _encode_circuit_body(circuit: QuantumCircuit, out: bytearray) -> None:
    name_bytes = circuit.name.encode("utf-8")
    out += struct.pack("<HH", circuit.num_qubits, len(name_bytes))
    out += name_bytes
    instructions = list(circuit)
    out += struct.pack("<I", len(instructions))
    for instr in instructions:
        code = _gate_code(instr.name)
        arity, num_params = GATE_SIGNATURES[instr.name]
        out += struct.pack(f"<B{arity}H", code, *instr.qubits)
        if num_params:
            out += struct.pack(f"<{num_params}d", *instr.gate.params)


def dump_circuit(
    circuit: QuantumCircuit, *, gate_stream: bool = False
) -> bytes:
    """Encode one circuit.

    A :class:`BoundCircuit` becomes a single-row template-bound record
    (compact, needs the template to decode) unless ``gate_stream=True``
    forces the explicit self-contained instruction stream; any other
    circuit always gets the gate stream.
    """
    if isinstance(circuit, BoundCircuit) and not gate_stream:
        return dump_batch(circuit.bound_batch.take([circuit.bound_row]))
    out = bytearray(_header(KIND_GATE_STREAM))
    _encode_circuit_body(circuit, out)
    return bytes(out)


def dump_circuits(
    circuits, *, include_synthesis: bool = False, gate_stream: bool = False
) -> bytes:
    """Encode several circuits as one record.

    When every circuit is a :class:`BoundCircuit` row of the *same*
    batch (the shape a service flush produces), this emits one
    template-bound record over exactly those rows; otherwise each
    circuit is written as an explicit gate stream.
    """
    circuits = list(circuits)
    if (
        circuits
        and not gate_stream
        and all(isinstance(c, BoundCircuit) for c in circuits)
        and len({id(c.bound_batch) for c in circuits}) == 1
    ):
        batch = circuits[0].bound_batch.take(
            [c.bound_row for c in circuits]
        )
        return dump_batch(batch, include_synthesis=include_synthesis)
    out = bytearray(_header(KIND_GATE_STREAM_BATCH))
    out += struct.pack("<I", len(circuits))
    for circuit in circuits:
        _encode_circuit_body(circuit, out)
    return bytes(out)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

def _check_header(cursor: _Cursor) -> int:
    magic = cursor.take(4)
    if magic != MAGIC:
        raise SerializationError(
            f"not an EnQode wire record (magic {bytes(magic)!r}, "
            f"expected {MAGIC!r})"
        )
    version, kind = cursor.unpack("<BB")
    check_schema_version(
        version,
        WIRE_SCHEMA_VERSION,
        "EnQode wire record",
        remedy="re-export it with a matching build",
    )
    return kind


def _decode_ops(cursor: _Cursor, count: int) -> list:
    ops = []
    for _ in range(count):
        (code,) = cursor.unpack("<B")
        name = _decode_gate_name(code)
        num_params = GATE_SIGNATURES[name][1]
        params = cursor.unpack(f"<{num_params}d") if num_params else ()
        ops.append((name, params))
    return ops


def _decode_gate_name(code: int) -> str:
    if code >= len(WIRE_GATE_NAMES):
        raise SerializationError(
            f"wire record uses unknown gate code {code} (this build "
            f"knows codes 0..{len(WIRE_GATE_NAMES) - 1})"
        )
    return WIRE_GATE_NAMES[code]


def _decode_template_batch(
    cursor: _Cursor, template, template_resolver
) -> BoundCircuitBatch:
    flags, fingerprint, num_qubits, num_rows, num_params = cursor.unpack(
        "<B16sHII"
    )
    if template is None:
        if template_resolver is None:
            raise SerializationError(
                "decoding a template-bound wire record needs the "
                "producing template: pass template= or template_resolver= "
                "(EncoderRegistry.rehydrate_wire resolves automatically)"
            )
        template = template_resolver(fingerprint)
        if template is None:
            raise SerializationError(
                "no known template matches wire fingerprint "
                f"{fingerprint.hex()}"
            )
    if template.fingerprint != fingerprint:
        raise SerializationError(
            f"wire record was bound by template {fingerprint.hex()}, "
            f"but the provided template is {template.fingerprint.hex()} "
            "(different ansatz, backend, or optimization level)"
        )
    if num_params != template.ansatz.num_parameters:
        raise SerializationError(
            f"wire record carries {num_params} parameters per row, "
            f"template expects {template.ansatz.num_parameters}"
        )
    if num_qubits != template.num_physical_qubits:
        raise SerializationError(
            f"wire record is {num_qubits} qubits wide, template binds "
            f"{template.num_physical_qubits}"
        )
    thetas = np.frombuffer(
        cursor.take(num_rows * num_params * 8), dtype="<f8"
    ).reshape(num_rows, num_params).copy()
    if not flags & _FLAG_SYNTHESIS:
        cursor.done()
        # Rebinding is deterministic and float-bit reproducible, so this
        # reconstructs the sender's IR exactly (asserted array-equal in
        # tests/test_io_wire.py).
        return template.bind_batch_ir(thetas)
    (num_runs,) = cursor.unpack("<I")
    if num_runs != len(template._parametric_runs):
        raise SerializationError(
            f"wire record has {num_runs} synthesis runs, template has "
            f"{len(template._parametric_runs)}"
        )
    packed = []
    for _ in range(num_runs):
        kinds = np.frombuffer(cursor.take(num_rows), dtype=np.uint8).copy()
        angles = np.frombuffer(
            cursor.take(num_rows * 3 * 8), dtype="<f8"
        ).reshape(num_rows, 3).copy()
        (num_specials,) = cursor.unpack("<I")
        specials = {}
        for _ in range(num_specials):
            row, num_ops = cursor.unpack("<IH")
            specials[row] = _decode_ops(cursor, num_ops)
        packed.append(PackedSynthesis(angles, kinds, specials))
    cursor.done()
    return BoundCircuitBatch(template, thetas, packed)


def _decode_circuit_body(cursor: _Cursor) -> QuantumCircuit:
    num_qubits, name_length = cursor.unpack("<HH")
    name = cursor.take(name_length).decode("utf-8")
    (num_instructions,) = cursor.unpack("<I")
    instructions = []
    for _ in range(num_instructions):
        (code,) = cursor.unpack("<B")
        gate_name = _decode_gate_name(code)
        arity, num_params = GATE_SIGNATURES[gate_name]
        qubits = cursor.unpack(f"<{arity}H")
        if any(q >= num_qubits for q in qubits):
            raise SerializationError(
                f"wire instruction {gate_name} on qubits {qubits} is out "
                f"of range for a {num_qubits}-qubit circuit"
            )
        params = cursor.unpack(f"<{num_params}d") if num_params else ()
        # Lazy matrices, exactly like the template materialization path:
        # params carry the float bits, the matrix builds on demand.
        instructions.append(
            Instruction.trusted(Gate.trusted(gate_name, arity, params), qubits)
        )
    return QuantumCircuit.trusted(num_qubits, name, instructions)


def load_encoded_batch(
    data: bytes, *, template=None, template_resolver=None, targets=None
):
    """Decode a kind-4 encoded-batch record back into
    ``(list[EncodedSample], PipelineRunReport)`` — ``run_reported``'s
    return contract, reconstructed on the receiving side.

    Thetas, fidelities, cluster indices, and the optional synthesis
    section cross as raw little-endian arrays, and each sample's
    ``transpiled`` result is rebuilt through the *same*
    ``template._wrap_result(bound.circuit(row))`` call ``bind_batch``
    makes, so the decoded samples are float-bit identical to the
    sender's.  ``targets`` (the ``(B, 2**n)`` prepared amplitude rows,
    which never cross the wire) fills each sample's ``target``; pass
    the output of ``pipeline.prepare(samples)`` — deterministic, so it
    equals the sender's — or ``None`` to leave targets unset.
    """
    from repro.core.pipeline import EncodedSample, PipelineRunReport

    cursor = _Cursor(bytes(data))
    kind = _check_header(cursor)
    if kind != KIND_ENCODED_BATCH:
        raise SerializationError(
            f"expected an encoded-batch record, got kind "
            f"{_KIND_NAMES.get(kind, kind)!r}"
        )
    (batch_size,) = cursor.unpack("<I")
    fidelities = np.frombuffer(cursor.take(batch_size * 8), dtype="<f8")
    clusters = np.frombuffer(cursor.take(batch_size * 4), dtype="<u4")
    iterations = np.frombuffer(cursor.take(batch_size * 4), dtype="<u4")
    evaluations = np.frombuffer(cursor.take(batch_size * 4), dtype="<u4")
    compile_times = np.frombuffer(cursor.take(batch_size * 8), dtype="<f8")
    route_s, tune_s, bind_s, lower_s, template_binds, hit = cursor.unpack(
        "<4dIb"
    )
    bound = _decode_template_batch(cursor, template, template_resolver)
    if bound.batch_size != batch_size:
        raise SerializationError(
            f"encoded-batch metadata covers {batch_size} samples but the "
            f"bound batch has {bound.batch_size} rows"
        )
    if targets is not None and len(targets) != batch_size:
        raise SerializationError(
            f"targets has {len(targets)} rows for a {batch_size}-sample "
            "record"
        )
    template = bound.template
    encoded = [
        EncodedSample(
            target=None if targets is None else targets[row],
            theta=bound.thetas[row],
            cluster_index=int(clusters[row]),
            ideal_fidelity=float(fidelities[row]),
            transpiled=template._wrap_result(bound.circuit(row)),
            compile_time=float(compile_times[row]),
            optimizer_iterations=int(iterations[row]),
            optimizer_evaluations=int(evaluations[row]),
            ansatz=template.ansatz,
            logical=None,
        )
        for row in range(batch_size)
    ]
    report = PipelineRunReport(
        batch_size=batch_size,
        route_seconds=route_s,
        finetune_seconds=tune_s,
        bind_seconds=bind_s,
        lower_seconds=lower_s,
        template_binds=template_binds,
        template_hit=None if hit < 0 else bool(hit),
    )
    return encoded, report


def load(data: bytes, *, template=None, template_resolver=None):
    """Decode a wire blob produced by any ``dump_*`` function.

    Returns a :class:`BoundCircuitBatch` for template-bound records, a
    :class:`QuantumCircuit` for single gate streams, and a list of
    circuits for gate-stream batches.  Encoded-batch response records
    carry pipeline metadata on top of the circuits and decode through
    :func:`load_encoded_batch` instead.
    """
    cursor = _Cursor(bytes(data))
    kind = _check_header(cursor)
    if kind == KIND_TEMPLATE_BATCH:
        return _decode_template_batch(cursor, template, template_resolver)
    if kind == KIND_GATE_STREAM:
        circuit = _decode_circuit_body(cursor)
        cursor.done()
        return circuit
    if kind == KIND_GATE_STREAM_BATCH:
        (count,) = cursor.unpack("<I")
        circuits = [_decode_circuit_body(cursor) for _ in range(count)]
        cursor.done()
        return circuits
    if kind == KIND_ENCODED_BATCH:
        raise SerializationError(
            "encoded-batch response records decode with "
            "load_encoded_batch() (they return samples + a report, "
            "not bare circuits)"
        )
    raise SerializationError(f"unknown wire record kind {kind}")


def describe(data: bytes) -> dict:
    """Header-level summary of a wire blob (no template required)."""
    cursor = _Cursor(bytes(data))
    kind = _check_header(cursor)
    info = {
        "kind": _KIND_NAMES.get(kind, f"unknown({kind})"),
        "schema_version": WIRE_SCHEMA_VERSION,
        "nbytes": len(cursor.data),
    }
    if kind == KIND_TEMPLATE_BATCH:
        flags, fingerprint, num_qubits, num_rows, num_params = cursor.unpack(
            "<B16sHII"
        )
        info.update(
            fingerprint=fingerprint.hex(),
            num_qubits=num_qubits,
            num_circuits=num_rows,
            num_params=num_params,
            includes_synthesis=bool(flags & _FLAG_SYNTHESIS),
        )
    elif kind == KIND_GATE_STREAM:
        num_qubits, _ = cursor.unpack("<HH")
        info.update(num_qubits=num_qubits, num_circuits=1)
    elif kind == KIND_GATE_STREAM_BATCH:
        (count,) = cursor.unpack("<I")
        info.update(num_circuits=count)
    elif kind == KIND_ENCODED_BATCH:
        (count,) = cursor.unpack("<I")
        # Skip the per-sample metadata block + stage report to reach
        # the embedded template-bound body's own header fields.
        cursor.take(count * (8 + 4 + 4 + 4 + 8))
        cursor.unpack("<4dIb")
        flags, fingerprint, num_qubits, num_rows, num_params = cursor.unpack(
            "<B16sHII"
        )
        info.update(
            fingerprint=fingerprint.hex(),
            num_qubits=num_qubits,
            num_circuits=num_rows,
            num_params=num_params,
            includes_synthesis=bool(flags & _FLAG_SYNTHESIS),
        )
    return info
