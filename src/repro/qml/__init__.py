"""Downstream QML: batch-native variational classification over embeddings.

The layer mirrors the encoder's architecture one level up the Fig. 1
stack:

* :class:`~repro.qml.vqc.VQCAnsatz` / :class:`~repro.qml.vqc.
  VariationalClassifier` — the classifier circuit family in its
  template-compatible (Rz-only-parameters) and eager reference forms;
* :class:`~repro.qml.model.QMLClassifier` — SPSA training with two
  engines sharing one loop: the batched engine (one cached
  :class:`~repro.transpile.template.ParametricTemplate` bind per step,
  all states propagated in one stacked walk via
  :class:`repro.core.batch.VQCObjective`) and the per-state reference
  engine the batched results are tested against (~1e-12);
* :class:`~repro.qml.serving.QMLModel` — a versioned embed+classify
  bundle (encoder + optional trainable preprocessing map + trained
  head) that registers into the service layer for batched prediction.
"""

from repro.data.trainable import TrainableEmbedding
from repro.qml.model import QMLClassifier, TrainingHistory
from repro.qml.serving import QMLModel, load_qml_model, save_qml_model
from repro.qml.vqc import VariationalClassifier, VQCAnsatz

__all__ = [
    "QMLClassifier",
    "QMLModel",
    "TrainableEmbedding",
    "TrainingHistory",
    "VariationalClassifier",
    "VQCAnsatz",
    "load_qml_model",
    "save_qml_model",
]
