"""Downstream QML: variational classification over embedded states."""

from repro.qml.model import QMLClassifier, TrainingHistory
from repro.qml.vqc import VariationalClassifier

__all__ = ["QMLClassifier", "TrainingHistory", "VariationalClassifier"]
