"""QML classification model combining an embedder with a VQC head.

Trains the VQC with SPSA (simultaneous-perturbation stochastic
approximation) on pre-embedded states; SPSA needs only two circuit
evaluations per step regardless of parameter count, which is why it is
the de-facto optimizer for NISQ-era classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import OptimizationError
from repro.qml.vqc import VariationalClassifier
from repro.utils.rng import as_rng


@dataclass
class TrainingHistory:
    """Loss and accuracy trace of one training run."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)


class QMLClassifier:
    """Binary classifier over embedded quantum states.

    The model is agnostic to how states were prepared: pass ideal
    statevectors for clean training or noisy density matrices to study
    noise effects (the Fig. 1 motivation for uniform embedding noise).
    """

    def __init__(
        self,
        num_qubits: int,
        num_layers: int = 2,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        self.vqc = VariationalClassifier(num_qubits, num_layers)
        self._rng = as_rng(seed)
        self.theta = self._rng.uniform(-0.3, 0.3, self.vqc.num_parameters)
        self.history = TrainingHistory()

    # -- loss -----------------------------------------------------------------------

    def _margins(self, states: list, labels: np.ndarray, theta) -> np.ndarray:
        """Signed margins y_i * <Z_0>_i with y in {+1, -1}."""
        signs = 1.0 - 2.0 * np.asarray(labels, dtype=float)  # 0 -> +1, 1 -> -1
        values = np.array(
            [self.vqc.expectation_z0(s, theta) for s in states]
        )
        return signs * values

    def loss(self, states: list, labels: np.ndarray, theta=None) -> float:
        """Hinge-like loss max(0, 0.4 - margin), averaged."""
        theta = self.theta if theta is None else theta
        margins = self._margins(states, labels, theta)
        return float(np.mean(np.maximum(0.0, 0.4 - margins)))

    def accuracy(self, states: list, labels: np.ndarray) -> float:
        margins = self._margins(states, labels, self.theta)
        return float(np.mean(margins > 0.0))

    # -- SPSA training ----------------------------------------------------------------

    def fit(
        self,
        states: list,
        labels: np.ndarray,
        num_steps: int = 120,
        a: float = 0.25,
        c: float = 0.15,
    ) -> TrainingHistory:
        """SPSA minimization of the hinge loss."""
        labels = np.asarray(labels)
        if len(states) != labels.size:
            raise OptimizationError("states/labels length mismatch")
        if set(np.unique(labels)) - {0, 1}:
            raise OptimizationError("labels must be binary 0/1")
        for step in range(1, num_steps + 1):
            a_k = a / step**0.602
            c_k = c / step**0.101
            delta = self._rng.choice([-1.0, 1.0], size=self.theta.size)
            loss_plus = self.loss(states, labels, self.theta + c_k * delta)
            loss_minus = self.loss(states, labels, self.theta - c_k * delta)
            gradient = (loss_plus - loss_minus) / (2.0 * c_k) * delta
            self.theta = self.theta - a_k * gradient
            if step % 10 == 0 or step == num_steps:
                self.history.losses.append(self.loss(states, labels))
                self.history.accuracies.append(self.accuracy(states, labels))
        return self.history

    def predict(self, states: list) -> np.ndarray:
        return np.array([self.vqc.decision(s, self.theta) for s in states])
