"""QML classification model combining an embedder with a VQC head.

Trains the VQC with SPSA (simultaneous-perturbation stochastic
approximation) on pre-embedded states; SPSA needs only two circuit
evaluations per step regardless of parameter count, which is why it is
the de-facto optimizer for NISQ-era classifiers.

Two training engines share one SPSA loop (and one RNG stream, so their
trajectories are comparable step by step):

* ``engine="batched"`` (the default) — the classifier ansatz is
  compiled **once** into a cached
  :class:`~repro.transpile.template.ParametricTemplate`; each SPSA step
  binds the ``theta + c*delta`` / ``theta - c*delta`` pair through one
  :meth:`~repro.transpile.template.ParametricTemplate.bind_batch_ir`
  call and propagates *all* embedded states through the bound IR in one
  stacked statevector walk (:class:`repro.core.batch.VQCObjective`).
  No ``Gate``/``Instruction`` objects exist anywhere on the training
  path.
* ``engine="reference"`` — the sequential per-state
  :class:`~repro.qml.vqc.VariationalClassifier` path (circuit built
  once per theta, states evolved one at a time).  Always available,
  obviously correct; the batched engine must match it to ~1e-12 on
  every margin and loss (``tests/test_qml_batch.py``).

Density-matrix states (the noisy-embedding study) are handled by the
reference engine only; the model falls back to it transparently when
they appear.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import VQCObjective
from repro.core.config import QMLConfig
from repro.errors import DataError
from repro.hardware.backend import brisbane_linear_segment
from repro.qml.vqc import VariationalClassifier
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.statevector import Statevector
from repro.transpile.template import transpile_template
from repro.utils.rng import as_rng


@dataclass
class TrainingHistory:
    """Loss and accuracy trace of one training run."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)


class _ReferenceObjective:
    """Sequential per-state objective with the :class:`repro.core.batch.
    VQCObjective` evaluation API, so one SPSA loop drives either engine."""

    def __init__(self, vqc, states, labels, margin: float) -> None:
        self.vqc = vqc
        self.states = list(states)
        self.labels = np.asarray(labels).astype(int)
        self.margin = float(margin)
        self.signs = 1.0 - 2.0 * self.labels.astype(float)

    def _select(self, indices):
        if indices is None:
            return self.states, self.signs
        indices = np.asarray(indices, dtype=int)
        return [self.states[i] for i in indices], self.signs[indices]

    def expectations(self, thetas, indices=None) -> np.ndarray:
        thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
        states, _ = self._select(indices)
        return np.stack(
            [self.vqc.expectations_z0(states, theta) for theta in thetas]
        )

    def margins(self, theta, indices=None) -> np.ndarray:
        _, signs = self._select(indices)
        return signs * self.expectations(theta, indices)[0]

    def losses(self, thetas, indices=None) -> np.ndarray:
        _, signs = self._select(indices)
        values = self.expectations(thetas, indices)
        hinge = np.maximum(0.0, self.margin - signs[None, :] * values)
        return hinge.mean(axis=1)

    def loss(self, theta, indices=None) -> float:
        return float(self.losses(theta, indices)[0])

    def predictions(self, theta, indices=None) -> np.ndarray:
        return (self.expectations(theta, indices)[0] < 0.0).astype(int)

    def accuracy(self, theta) -> float:
        return float(np.mean(self.margins(theta) > 0.0))


def _state_matrix(states) -> "np.ndarray | None":
    """Stack states into a ``(B, 2^n)`` matrix, or ``None`` if any state
    is a density matrix (which only the reference engine can evolve)."""
    if isinstance(states, np.ndarray):
        return np.atleast_2d(np.asarray(states, dtype=complex))
    rows = []
    for state in states:
        if isinstance(state, Statevector):
            rows.append(state.data)
        elif isinstance(state, DensityMatrix):
            return None
        else:
            rows.append(np.asarray(state, dtype=complex))
    return np.stack(rows) if rows else np.empty((0, 0), dtype=complex)


class QMLClassifier:
    """Binary classifier over embedded quantum states.

    The model is agnostic to how states were prepared: pass ideal
    statevectors for clean training or noisy density matrices to study
    noise effects (the Fig. 1 motivation for uniform embedding noise).

    Parameters
    ----------
    num_qubits, num_layers, seed:
        Shorthand for the common knobs; ignored when ``config`` is
        given.  ``seed`` also accepts a ``numpy`` Generator to share a
        stream with the caller.
    config:
        Full :class:`~repro.core.config.QMLConfig`; controls the
        training engine, SPSA schedule, minibatching, and margin.
    backend:
        Hardware target the batched engine compiles the classifier
        template against (default: a ``num_qubits``-wide linear Brisbane
        segment, matching the embedding circuits).  Must route the VQC's
        nearest-neighbor CX cascade without SWAPs.
    """

    def __init__(
        self,
        num_qubits: "int | None" = None,
        num_layers: int = 2,
        seed: "int | np.random.Generator | None" = 0,
        *,
        config: "QMLConfig | None" = None,
        backend=None,
    ) -> None:
        if config is None:
            config = QMLConfig(
                num_qubits=8 if num_qubits is None else num_qubits,
                num_layers=num_layers,
                seed=seed if isinstance(seed, (int, np.integer)) else 0,
            )
        elif num_qubits is not None and num_qubits != config.num_qubits:
            raise DataError(
                f"num_qubits={num_qubits} conflicts with "
                f"config.num_qubits={config.num_qubits}"
            )
        self.config = config
        self.vqc = VariationalClassifier(config.num_qubits, config.num_layers)
        self.backend = (
            brisbane_linear_segment(config.num_qubits)
            if backend is None
            else backend
        )
        self._rng = as_rng(config.seed if seed is None else seed)
        self.theta = self._rng.uniform(-0.3, 0.3, self.vqc.num_parameters)
        self.history = TrainingHistory()

    @property
    def num_qubits(self) -> int:
        return self.config.num_qubits

    def template(self):
        """The cached parametric template of the classifier ansatz."""
        return transpile_template(
            self.vqc.ansatz(), self.backend, self.config.optimization_level
        )

    # -- validation -----------------------------------------------------------------

    @staticmethod
    def _validate(states, labels: np.ndarray) -> None:
        if len(states) == 0:
            raise DataError("states must be non-empty")
        if labels.ndim != 1 or len(states) != labels.size:
            raise DataError(
                f"states/labels length mismatch: {len(states)} states vs "
                f"labels of shape {labels.shape}"
            )
        if labels.size and set(np.unique(labels)) - {0, 1}:
            raise DataError(
                f"labels must be binary 0/1, got values "
                f"{sorted(set(np.unique(labels)) - {0, 1})}"
            )

    def _objective(self, states, labels: np.ndarray):
        """The configured engine's objective over this dataset.

        The batched engine needs a pure statevector stack; density-
        matrix inputs transparently fall back to the reference engine.
        """
        if self.config.engine == "batched":
            matrix = _state_matrix(states)
            if matrix is not None:
                return VQCObjective(
                    self.template(), matrix, labels, self.config.margin
                )
        return _ReferenceObjective(self.vqc, states, labels, self.config.margin)

    # -- loss -----------------------------------------------------------------------

    def _margins(self, states, labels: np.ndarray, theta) -> np.ndarray:
        """Signed margins y_i * <Z_0>_i with y in {+1, -1}."""
        return self._objective(states, np.asarray(labels)).margins(theta)

    def loss(self, states, labels: np.ndarray, theta=None) -> float:
        """Hinge loss max(0, margin - y_i * <Z_0>_i), averaged."""
        theta = self.theta if theta is None else theta
        self._validate(states, np.asarray(labels))
        return self._objective(states, np.asarray(labels)).loss(theta)

    def accuracy(self, states, labels: np.ndarray) -> float:
        self._validate(states, np.asarray(labels))
        return self._objective(states, np.asarray(labels)).accuracy(self.theta)

    # -- SPSA training ----------------------------------------------------------------

    def fit(
        self,
        states,
        labels: np.ndarray,
        num_steps: "int | None" = None,
        a: "float | None" = None,
        c: "float | None" = None,
    ) -> TrainingHistory:
        """SPSA minimization of the hinge loss.

        Each step evaluates the loss at ``theta + c_k * delta`` and
        ``theta - c_k * delta`` — under the batched engine that is one
        template bind and two stacked propagations, however large the
        dataset.  ``num_steps``/``a``/``c`` default to the config's
        schedule.  Both engines draw perturbations (and minibatch
        indices, when configured) from the same RNG stream in the same
        order, so their trajectories are directly comparable.
        """
        labels = np.asarray(labels)
        self._validate(states, labels)
        cfg = self.config
        num_steps = cfg.num_steps if num_steps is None else num_steps
        a = cfg.spsa_a if a is None else a
        c = cfg.spsa_c if c is None else c
        objective = self._objective(states, labels)
        num_samples = len(states)
        theta = self.theta
        for step in range(1, num_steps + 1):
            a_k = a / step**0.602
            c_k = c / step**0.101
            delta = self._rng.choice([-1.0, 1.0], size=theta.size)
            indices = None
            if (
                cfg.minibatch_size is not None
                and cfg.minibatch_size < num_samples
            ):
                indices = self._rng.choice(
                    num_samples, size=cfg.minibatch_size, replace=False
                )
            pair = np.stack([theta + c_k * delta, theta - c_k * delta])
            loss_plus, loss_minus = objective.losses(pair, indices)
            gradient = (loss_plus - loss_minus) / (2.0 * c_k) * delta
            theta = theta - a_k * gradient
            if step % cfg.eval_every == 0 or step == num_steps:
                self.history.losses.append(objective.loss(theta))
                self.history.accuracies.append(objective.accuracy(theta))
        self.theta = theta
        return self.history

    # -- inference ------------------------------------------------------------------

    def decision_values(self, states) -> np.ndarray:
        """<Z_0> for each state under the trained theta (sign = class)."""
        if self.config.engine == "batched":
            matrix = _state_matrix(states)
            if matrix is not None and matrix.size:
                bound = self.template().bind_batch_ir(
                    np.atleast_2d(self.theta)
                )
                evolved = bound.evolve_states_row(0, matrix)
                probs = np.abs(evolved) ** 2
                half = probs.shape[1] // 2
                return probs[:, :half].sum(axis=1) - probs[:, half:].sum(
                    axis=1
                )
        return self.vqc.expectations_z0(states, self.theta)

    def predict(self, states) -> np.ndarray:
        """Predicted labels in {0, 1}."""
        if len(states) == 0:
            return np.empty(0, dtype=int)
        return (self.decision_values(states) < 0.0).astype(int)
