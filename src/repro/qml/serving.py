"""Versioned embed+classify bundles for the serving layer.

A :class:`QMLModel` pairs a fitted :class:`~repro.core.encoder.
EnQodeEncoder` (optionally carrying a trainable preprocessing map) with
a trained :class:`~repro.qml.model.QMLClassifier`: raw feature rows go
in, predicted labels come out, and every stage in between rides the
batched machinery — preprocessing and routing through the encoder's
:class:`~repro.core.pipeline.EncodePipeline`, embedding circuits lowered
through the cached parametric template as compact IR, embedded states
simulated straight off the packed bind arrays, and the classifier head
evaluated in one stacked propagation.

Bundles serialize with the same ``schema_version`` discipline as encoder
bundles (:mod:`repro.core.serialization`): a ``kind`` tag plus the
encoder's and the classifier's sections, rejected loudly with
:class:`~repro.errors.SerializationError` on any mismatch.  A saved
bundle can be registered into an
:class:`~repro.service.registry.EncoderRegistry`
(:meth:`~repro.service.registry.EncoderRegistry.register_model`) and
served through :meth:`repro.service.service.EncodingService.predict`.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import numpy as np

from repro.core.config import QMLConfig
from repro.core.encoder import EnQodeEncoder
from repro.core.serialization import (
    SCHEMA_VERSION,
    check_schema,
    require_section,
    encoder_from_dict,
    encoder_to_dict,
)
from repro.errors import OptimizationError, SerializationError
from repro.qml.model import QMLClassifier
from repro.quantum.statevector import simulate_statevector

#: ``kind`` tag distinguishing classifier bundles from bare encoder
#: bundles (both carry the same ``schema_version``).
MODEL_KIND = "enqode-qml-classifier"


class QMLModel:
    """A fitted embed + classify model, ready to serve raw samples.

    Parameters
    ----------
    encoder:
        A fitted :class:`~repro.core.encoder.EnQodeEncoder`; its
        (possibly preprocessed) input width defines what :meth:`predict`
        accepts.
    classifier:
        A :class:`~repro.qml.model.QMLClassifier` whose register width
        matches the encoder's.
    """

    def __init__(
        self, encoder: EnQodeEncoder, classifier: QMLClassifier
    ) -> None:
        if not encoder.is_fitted:
            raise OptimizationError(
                "QMLModel needs a fitted encoder (fit or load it first)"
            )
        if classifier.num_qubits != encoder.config.num_qubits:
            raise OptimizationError(
                f"classifier acts on {classifier.num_qubits} qubits but "
                f"the encoder embeds into {encoder.config.num_qubits}"
            )
        self.encoder = encoder
        self.classifier = classifier

    @property
    def input_size(self) -> int:
        """Raw feature width this model accepts (the encoder's)."""
        return self.encoder.input_size

    @property
    def num_qubits(self) -> int:
        return self.encoder.config.num_qubits

    # -- inference ------------------------------------------------------------------

    def embed(self, samples: np.ndarray) -> np.ndarray:
        """Embedded statevectors of ``samples`` as a ``(B, 2^n)`` matrix.

        One ``encode_batch`` run (template-mode compact IR), each
        circuit simulated off its packed bind arrays — these are the
        *prepared* states (fidelity ~``target_fidelity`` to the ideal
        amplitudes), i.e. exactly what hardware would hand the
        classifier.
        """
        encoded = self.encoder.encode_batch(samples)
        return np.stack(
            [simulate_statevector(e.circuit).data for e in encoded]
        )

    def decision_values(self, samples: np.ndarray) -> np.ndarray:
        """<Z_0> per sample under the trained classifier (sign = class)."""
        return self.classifier.decision_values(self.embed(samples))

    def predict(self, samples: np.ndarray) -> np.ndarray:
        """Predicted labels in {0, 1} for raw feature rows."""
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        if samples.shape[0] == 0:
            return np.empty(0, dtype=int)
        return (self.decision_values(samples) < 0.0).astype(int)

    def predict_reference(self, samples: np.ndarray) -> np.ndarray:
        """Labels via the sequential per-state reference head (the
        parity check the batched path is tested against)."""
        states = self.embed(samples)
        values = self.classifier.vqc.expectations_z0(
            states, self.classifier.theta
        )
        return (values < 0.0).astype(int)

    def accuracy(self, samples: np.ndarray, labels: np.ndarray) -> float:
        labels = np.asarray(labels)
        return float(np.mean(self.predict(samples) == labels))

    # -- serialization --------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serializable bundle: encoder section + classifier section."""
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": MODEL_KIND,
            "encoder": encoder_to_dict(self.encoder),
            "classifier": {
                "config": dataclasses.asdict(self.classifier.config),
                "theta": self.classifier.theta.tolist(),
            },
        }

    @classmethod
    def from_dict(cls, payload: dict, backend) -> "QMLModel":
        """Rebuild a ready-to-predict model from :meth:`to_dict`."""
        check_schema(payload)
        kind = payload.get("kind")
        if kind != MODEL_KIND:
            raise SerializationError(
                f"stored bundle has kind={kind!r}, expected "
                f"{MODEL_KIND!r} (is this an encoder-only bundle?)"
            )
        encoder = encoder_from_dict(require_section(payload, "encoder"), backend)
        section = require_section(payload, "classifier")
        config = QMLConfig(**require_section(section, "config"))
        classifier = QMLClassifier(config=config, backend=backend)
        theta = np.asarray(require_section(section, "theta"), dtype=float)
        if theta.size != classifier.vqc.num_parameters:
            raise SerializationError(
                f"stored theta has {theta.size} parameters, classifier "
                f"has {classifier.vqc.num_parameters}"
            )
        classifier.theta = theta
        return cls(encoder, classifier)

    def __repr__(self) -> str:
        return (
            f"QMLModel(input={self.input_size}, qubits={self.num_qubits}, "
            f"layers={self.classifier.config.num_layers})"
        )


def save_qml_model(model: QMLModel, path: "str | pathlib.Path") -> None:
    """Write a trained embed+classify bundle to ``path`` as JSON."""
    pathlib.Path(path).write_text(json.dumps(model.to_dict(), indent=1))


def load_qml_model(path: "str | pathlib.Path", backend) -> QMLModel:
    """Read a bundle back from :func:`save_qml_model` output."""
    payload = json.loads(pathlib.Path(path).read_text())
    if not isinstance(payload, dict):
        raise SerializationError(
            f"{path} does not contain a QML model bundle "
            f"(top-level JSON value is {type(payload).__name__})"
        )
    return QMLModel.from_dict(payload, backend)
