"""A variational quantum circuit (VQC) classifier head.

This is the downstream consumer in the paper's Fig. 1: an amplitude-
embedding circuit followed by a trainable variational ansatz and a Pauli-Z
readout.  The ansatz is the standard hardware-efficient stack of Ry/Rz
rotation columns and a CX ring, which transpiles cleanly to the same
linear section the embeddings target.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OptimizationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.statevector import Statevector


class VariationalClassifier:
    """Binary classifier: sign of <Z_0> after a trainable circuit.

    Parameters
    ----------
    num_qubits:
        Register width (must match the embedding circuits).
    num_layers:
        Ry/Rz + CX-ring layers; 2-3 suffice for the demo workloads.
    """

    def __init__(self, num_qubits: int, num_layers: int = 2) -> None:
        if num_qubits < 2:
            raise OptimizationError("VQC needs at least 2 qubits")
        self.num_qubits = num_qubits
        self.num_layers = num_layers

    @property
    def num_parameters(self) -> int:
        """Two rotations per qubit per layer."""
        return 2 * self.num_qubits * self.num_layers

    def circuit(self, theta: np.ndarray) -> QuantumCircuit:
        theta = np.asarray(theta, dtype=float).ravel()
        if theta.size != self.num_parameters:
            raise OptimizationError(
                f"expected {self.num_parameters} parameters, got {theta.size}"
            )
        qc = QuantumCircuit(self.num_qubits, name="vqc")
        index = 0
        for _ in range(self.num_layers):
            for q in range(self.num_qubits):
                qc.ry(float(theta[index]), q)
                qc.rz(float(theta[index + 1]), q)
                index += 2
            # Entangle upward (control q+1 -> target q), sequentially from
            # the last qubit: one layer cascades information from every
            # qubit into the readout qubit 0.  (A downward chain would
            # leave <Z_0> data-independent: qubit 0 would only ever act as
            # a control.)
            for q in range(self.num_qubits - 2, -1, -1):
                qc.cx(q + 1, q)
        return qc

    # -- readout ------------------------------------------------------------------

    def expectation_z0(
        self, state: "Statevector | DensityMatrix", theta: np.ndarray
    ) -> float:
        """<Z_0> of the classifier circuit applied to an embedded state."""
        circuit = self.circuit(theta)
        if isinstance(state, Statevector):
            evolved = state.copy().evolve(circuit)
            probs = evolved.probabilities()
        elif isinstance(state, DensityMatrix):
            evolved = state.copy().evolve(circuit)
            probs = evolved.probabilities()
        else:
            raise OptimizationError(f"unsupported state type {type(state)!r}")
        # Qubit 0 is the most significant bit: Z_0 = +1 on the first half.
        half = probs.size // 2
        return float(probs[:half].sum() - probs[half:].sum())

    def decision(self, state, theta: np.ndarray) -> int:
        """Predicted label in {0, 1}."""
        return int(self.expectation_z0(state, theta) < 0.0)
