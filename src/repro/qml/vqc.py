"""A variational quantum circuit (VQC) classifier head.

This is the downstream consumer in the paper's Fig. 1: an amplitude-
embedding circuit followed by a trainable variational ansatz and a Pauli-Z
readout.  The ansatz is the standard hardware-efficient stack of Ry/Rz
rotation columns and a CX ring, which transpiles cleanly to the same
linear section the embeddings target.

Two circuit forms of the same unitary family live here:

* :meth:`VariationalClassifier.circuit` — the eager logical Ry/Rz + CX
  form, the always-available **reference path** every batched result is
  tested against;
* :class:`VQCAnsatz` — the template-compatible form, with every Ry
  expressed through the exact SU(2) identity
  ``Ry(theta) = Rx(-pi/2) Rz(theta) Rx(pi/2)`` so that *all* trainable
  parameters are Rz angles.  That is the contract of
  :class:`repro.transpile.template.ParametricTemplate` (structural
  passes never inspect Rz matrices, so marker gates survive routing),
  which lets the classifier compile its ansatz **once** per (geometry,
  backend, level) and re-bind whole ``(B, num_parameters)`` theta
  matrices through :meth:`~repro.transpile.template.ParametricTemplate.
  bind_batch_ir` with zero per-evaluation ``Gate``/``Instruction``
  objects — the QML analogue of the encoder's batched online path.

The two forms agree to machine precision (~1e-15 on <Z_0>); the
equivalence is asserted structurally at template construction and
numerically in ``tests/test_qml_batch.py``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import OptimizationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.gates import gate
from repro.quantum.statevector import Statevector

_HALF_PI = math.pi / 2.0


class VQCAnsatz:
    """The VQC circuit family in template-compatible (Rz-only) form.

    Satisfies the :class:`repro.transpile.template.ParametricTemplate`
    ansatz protocol (``parametric_circuit``/``circuit``/
    ``num_parameters`` plus the :class:`~repro.transpile.template.
    TemplateCache` key attributes), so one structural transpile serves
    every theta the classifier ever evaluates.  Parameter layout is
    identical to :class:`VariationalClassifier`: per layer, per qubit,
    the Ry angle then the Rz angle (flat index ``2 * (layer * n + q)``
    and ``+ 1``).

    The CX cascade entangles strictly nearest-neighbor pairs, so on a
    linear-chain backend routing inserts no SWAPs and both layouts stay
    the identity — which is what lets embedded states propagate through
    the bound IR without re-indexing (checked via
    :attr:`~repro.transpile.template.ParametricTemplate.
    has_trivial_layout` by :class:`repro.core.batch.VQCObjective`).
    """

    #: TemplateCache key attributes (fixed for this family).
    entangler = "cx"
    alternate_orientation = False

    def __init__(self, num_qubits: int, num_layers: int = 2) -> None:
        if num_qubits < 2:
            raise OptimizationError("VQC needs at least 2 qubits")
        if num_layers < 1:
            raise OptimizationError("VQC needs at least 1 layer")
        self.num_qubits = num_qubits
        self.num_layers = num_layers

    @property
    def num_parameters(self) -> int:
        """Two rotations (Ry, Rz) per qubit per layer."""
        return 2 * self.num_qubits * self.num_layers

    def parameter_index(self, layer: int, qubit: int) -> int:
        """Flat index of the Ry parameter on ``qubit`` in ``layer``
        (the paired Rz parameter is the next index)."""
        if not (0 <= layer < self.num_layers and 0 <= qubit < self.num_qubits):
            raise OptimizationError(
                f"no parameter at layer={layer}, qubit={qubit}"
            )
        return 2 * (layer * self.num_qubits + qubit)

    def circuit(self, theta: np.ndarray) -> QuantumCircuit:
        """Instantiate the decomposed (Rz-only-parameters) form."""
        theta = np.asarray(theta, dtype=float).ravel()
        if theta.size != self.num_parameters:
            raise OptimizationError(
                f"expected {self.num_parameters} parameters, got {theta.size}"
            )
        return self._build(lambda j: gate("rz", float(theta[j])))

    def parametric_circuit(self) -> "tuple[QuantumCircuit, dict[int, int]]":
        """The skeleton with marker Rz gates (see
        :meth:`repro.core.ansatz.EnQodeAnsatz.parametric_circuit`)."""
        markers: dict[int, int] = {}

        def marker_rz(j: int):
            rz = gate("rz", 0.0)
            markers[id(rz)] = j
            return rz

        return self._build(marker_rz), markers

    def _build(self, rz_gate) -> QuantumCircuit:
        """Assemble the fixed shape, delegating trainable-Rz creation.

        Each logical ``ry(theta); rz(phi)`` pair becomes the run
        ``rx(pi/2), rz(theta), rx(-pi/2), rz(phi)`` (circuit order) —
        the exact operator identity
        ``Ry(theta) = Rx(-pi/2) @ Rz(theta) @ Rx(pi/2)``, verified to
        ~1e-16 — so every trainable angle rides a native/virtual Rz and
        every qubit's per-layer run has the same fixed/param signature
        (one stacked compose group per bind).
        """
        qc = QuantumCircuit(self.num_qubits, name="vqc")
        for layer in range(self.num_layers):
            for q in range(self.num_qubits):
                index = self.parameter_index(layer, q)
                qc.rx(_HALF_PI, q)
                qc.append(rz_gate(index), (q,))
                qc.rx(-_HALF_PI, q)
                qc.append(rz_gate(index + 1), (q,))
            # Entangle upward (control q+1 -> target q), sequentially
            # from the last qubit — see VariationalClassifier.circuit.
            for q in range(self.num_qubits - 2, -1, -1):
                qc.cx(q + 1, q)
        return qc

    def __repr__(self) -> str:
        return (
            f"VQCAnsatz(qubits={self.num_qubits}, layers={self.num_layers}, "
            f"params={self.num_parameters})"
        )


class VariationalClassifier:
    """Binary classifier: sign of <Z_0> after a trainable circuit.

    This is the sequential **reference head**: it evolves one state at a
    time through the eager logical circuit.  The batched training/
    inference path (:class:`repro.core.batch.VQCObjective` driven by
    :class:`repro.qml.model.QMLClassifier`) must agree with it to
    ~1e-12 on every margin and loss; keep this implementation simple and
    obviously correct.

    Parameters
    ----------
    num_qubits:
        Register width (must match the embedding circuits).
    num_layers:
        Ry/Rz + CX-ring layers; 2-3 suffice for the demo workloads.
    """

    def __init__(self, num_qubits: int, num_layers: int = 2) -> None:
        if num_qubits < 2:
            raise OptimizationError("VQC needs at least 2 qubits")
        self.num_qubits = num_qubits
        self.num_layers = num_layers

    @property
    def num_parameters(self) -> int:
        """Two rotations per qubit per layer."""
        return 2 * self.num_qubits * self.num_layers

    def ansatz(self) -> VQCAnsatz:
        """The template-compatible form of this circuit family."""
        return VQCAnsatz(self.num_qubits, self.num_layers)

    def circuit(self, theta: np.ndarray) -> QuantumCircuit:
        theta = np.asarray(theta, dtype=float).ravel()
        if theta.size != self.num_parameters:
            raise OptimizationError(
                f"expected {self.num_parameters} parameters, got {theta.size}"
            )
        qc = QuantumCircuit(self.num_qubits, name="vqc")
        index = 0
        for _ in range(self.num_layers):
            for q in range(self.num_qubits):
                qc.ry(float(theta[index]), q)
                qc.rz(float(theta[index + 1]), q)
                index += 2
            # Entangle upward (control q+1 -> target q), sequentially from
            # the last qubit: one layer cascades information from every
            # qubit into the readout qubit 0.  (A downward chain would
            # leave <Z_0> data-independent: qubit 0 would only ever act as
            # a control.)
            for q in range(self.num_qubits - 2, -1, -1):
                qc.cx(q + 1, q)
        return qc

    # -- readout ------------------------------------------------------------------

    @staticmethod
    def _z0_from_probs(probs: np.ndarray) -> float:
        # Qubit 0 is the most significant bit: Z_0 = +1 on the first half.
        half = probs.size // 2
        return float(probs[:half].sum() - probs[half:].sum())

    def expectations_z0(self, states, theta: np.ndarray) -> np.ndarray:
        """<Z_0> of the classifier circuit applied to each embedded state.

        Builds the circuit **once** for ``theta`` and reuses it across
        all states (one loss evaluation over B states used to build B
        identical circuits).  Accepts a sequence of
        :class:`~repro.quantum.statevector.Statevector` /
        :class:`~repro.quantum.density_matrix.DensityMatrix` objects or
        a ``(B, 2^n)`` amplitude matrix.
        """
        circuit = self.circuit(theta)
        if isinstance(states, np.ndarray) and states.ndim == 2:
            states = [Statevector(row, validate=False) for row in states]
        values = np.empty(len(states), dtype=float)
        for i, state in enumerate(states):
            if isinstance(state, (Statevector, DensityMatrix)):
                evolved = state.copy().evolve(circuit)
            elif isinstance(state, np.ndarray) and state.ndim == 1:
                evolved = Statevector(state, validate=False).evolve(circuit)
            else:
                raise OptimizationError(
                    f"unsupported state type {type(state)!r}"
                )
            values[i] = self._z0_from_probs(evolved.probabilities())
        return values

    def expectation_z0(
        self, state: "Statevector | DensityMatrix", theta: np.ndarray
    ) -> float:
        """<Z_0> of the classifier circuit applied to one embedded state."""
        return float(self.expectations_z0([state], theta)[0])

    def decision(self, state, theta: np.ndarray) -> int:
        """Predicted label in {0, 1}."""
        return int(self.expectation_z0(state, theta) < 0.0)

    def __repr__(self) -> str:
        return (
            f"VariationalClassifier(qubits={self.num_qubits}, "
            f"layers={self.num_layers})"
        )
