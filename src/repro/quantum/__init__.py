"""Quantum substrate: gates, circuits, simulators, channels, and metrics.

Endianness convention: **qubit 0 is the most significant bit** of a basis
index everywhere in this package.
"""

from repro.quantum.channels import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    identity_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.gates import (
    STANDARD_GATES,
    VIRTUAL_GATE_NAMES,
    Gate,
    gate,
    unitary_gate,
)
from repro.quantum.instruction import Instruction
from repro.quantum.measurement import (
    Counts,
    apply_readout_error,
    backend_readout_errors,
    sample_counts,
)
from repro.quantum.noise_model import NoiseModel
from repro.quantum.random import (
    random_real_amplitudes,
    random_statevector,
    random_unitary,
)
from repro.quantum.simulator import DensityMatrixSimulator, StatevectorSimulator
from repro.quantum.statevector import Statevector, simulate_statevector
from repro.quantum.states import purity, state_fidelity, trace_distance

__all__ = [
    "STANDARD_GATES",
    "VIRTUAL_GATE_NAMES",
    "Counts",
    "DensityMatrix",
    "DensityMatrixSimulator",
    "Gate",
    "Instruction",
    "KrausChannel",
    "NoiseModel",
    "QuantumCircuit",
    "Statevector",
    "StatevectorSimulator",
    "amplitude_damping_channel",
    "apply_readout_error",
    "backend_readout_errors",
    "sample_counts",
    "bit_flip_channel",
    "depolarizing_channel",
    "gate",
    "identity_channel",
    "phase_damping_channel",
    "phase_flip_channel",
    "purity",
    "random_real_amplitudes",
    "random_statevector",
    "random_unitary",
    "simulate_statevector",
    "state_fidelity",
    "thermal_relaxation_channel",
    "trace_distance",
    "unitary_gate",
]
