"""Kraus channels used to model NISQ hardware noise.

These mirror the channel family ``qiskit_aer`` builds from backend
calibrations: depolarizing noise per gate plus thermal relaxation (T1/T2)
over the gate duration.  Channels are represented explicitly as lists of
Kraus operators and validated for trace preservation on construction.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import NoiseModelError

_PAULIS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]]),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class KrausChannel:
    """A CPTP map given by Kraus operators ``{K_i}``, acting on ``k`` qubits."""

    def __init__(
        self, operators: list[np.ndarray], name: str = "kraus", atol: float = 1e-8
    ) -> None:
        if not operators:
            raise NoiseModelError("a channel needs at least one Kraus operator")
        ops = [np.asarray(op, dtype=complex) for op in operators]
        dim = ops[0].shape[0]
        num_qubits = int(round(math.log2(dim)))
        if 2**num_qubits != dim:
            raise NoiseModelError("Kraus operators must have power-of-two dim")
        completeness = sum(op.conj().T @ op for op in ops)
        if not np.allclose(completeness, np.eye(dim), atol=atol):
            raise NoiseModelError(
                f"channel {name!r} is not trace preserving "
                f"(deviation {np.max(np.abs(completeness - np.eye(dim))):.2e})"
            )
        self.operators = ops
        self.num_qubits = num_qubits
        self.name = name
        self._superop: np.ndarray | None = None

    def superoperator_tensor(self) -> np.ndarray:
        """The channel as one dense map on (ket, bra) indices, cached.

        Shape ``(2,)*(4k)``, axis order ``out_ket + out_bra + in_ket +
        in_bra``, so a density-matrix update is a single tensordot instead
        of ``2 * len(operators)`` contractions — the dominant cost in
        noisy simulation of deep Baseline circuits.
        """
        if self._superop is None:
            dim = 2**self.num_qubits
            mat = np.zeros((dim, dim, dim, dim), dtype=complex)
            for op in self.operators:
                # rho'[i, j] = sum K[i, k] rho[k, l] conj(K)[j, l]
                mat += np.einsum("ik,jl->ijkl", op, op.conj())
            self._superop = mat.reshape((2,) * (4 * self.num_qubits))
            self._superop.setflags(write=False)
        return self._superop

    @property
    def is_identity(self) -> bool:
        """True when the channel acts as the identity map."""
        if len(self.operators) == 1:
            op = self.operators[0]
            return np.allclose(op, op[0, 0] * np.eye(op.shape[0]), atol=1e-12)
        return False

    def compose(self, other: "KrausChannel") -> "KrausChannel":
        """Return ``other`` after ``self`` (i.e. other ∘ self)."""
        if self.num_qubits != other.num_qubits:
            raise NoiseModelError("cannot compose channels of different arity")
        ops = [b @ a for a in self.operators for b in other.operators]
        return KrausChannel(ops, name=f"{other.name}∘{self.name}")

    def expand(self, other: "KrausChannel") -> "KrausChannel":
        """Tensor product: ``self`` on the first qubits, ``other`` after."""
        ops = [np.kron(a, b) for a in self.operators for b in other.operators]
        return KrausChannel(ops, name=f"{self.name}⊗{other.name}")

    def __repr__(self) -> str:
        return (
            f"KrausChannel({self.name!r}, qubits={self.num_qubits}, "
            f"n_ops={len(self.operators)})"
        )


def identity_channel(num_qubits: int = 1) -> KrausChannel:
    return KrausChannel([np.eye(2**num_qubits)], name="id")


def depolarizing_channel(p: float, num_qubits: int = 1) -> KrausChannel:
    """rho -> (1-p) rho + p * I / 2^n  (qiskit's ``depolarizing_error``)."""
    if not 0.0 <= p <= 1.0:
        raise NoiseModelError(f"depolarizing probability {p} outside [0, 1]")
    dim = 4**num_qubits
    names = list(_PAULIS)
    labels = [""]
    for _ in range(num_qubits):
        labels = [lab + pauli for lab in labels for pauli in names]
    coeff_id = math.sqrt(1.0 - p + p / dim)
    coeff_pauli = math.sqrt(p / dim)
    ops = []
    for label in labels:
        mat = np.eye(1, dtype=complex)
        for ch in label:
            mat = np.kron(mat, _PAULIS[ch])
        coeff = coeff_id if set(label) == {"I"} else coeff_pauli
        if coeff > 0.0:
            ops.append(coeff * mat)
    return KrausChannel(ops, name=f"depol({p:.2e})")


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """T1 decay: |1> relaxes to |0> with probability ``gamma``."""
    if not 0.0 <= gamma <= 1.0:
        raise NoiseModelError(f"damping probability {gamma} outside [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return KrausChannel([k0, k1], name=f"amp_damp({gamma:.2e})")


def phase_damping_channel(lam: float) -> KrausChannel:
    """Pure dephasing with probability ``lam`` (no energy exchange)."""
    if not 0.0 <= lam <= 1.0:
        raise NoiseModelError(f"dephasing probability {lam} outside [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - lam)]], dtype=complex)
    k1 = np.array([[0.0, 0.0], [0.0, math.sqrt(lam)]], dtype=complex)
    return KrausChannel([k0, k1], name=f"phase_damp({lam:.2e})")


def bit_flip_channel(p: float) -> KrausChannel:
    if not 0.0 <= p <= 1.0:
        raise NoiseModelError(f"flip probability {p} outside [0, 1]")
    ops = [math.sqrt(1 - p) * _PAULIS["I"], math.sqrt(p) * _PAULIS["X"]]
    return KrausChannel(ops, name=f"bit_flip({p:.2e})")


def phase_flip_channel(p: float) -> KrausChannel:
    if not 0.0 <= p <= 1.0:
        raise NoiseModelError(f"flip probability {p} outside [0, 1]")
    ops = [math.sqrt(1 - p) * _PAULIS["I"], math.sqrt(p) * _PAULIS["Z"]]
    return KrausChannel(ops, name=f"phase_flip({p:.2e})")


def thermal_relaxation_channel(
    t1: float, t2: float, duration: float
) -> KrausChannel:
    """Relaxation over ``duration`` for a qubit with times ``t1``/``t2``.

    Modeled as amplitude damping (rate ``1/t1``) composed with pure
    dephasing so that coherences decay as ``exp(-duration/t2)``; requires
    ``t2 <= 2*t1`` (physicality) and assumes a zero-temperature bath, as is
    standard for superconducting-qubit noise models.
    """
    if t1 <= 0 or t2 <= 0:
        raise NoiseModelError("T1 and T2 must be positive")
    if t2 > 2.0 * t1 + 1e-12:
        raise NoiseModelError(f"unphysical relaxation times T2={t2} > 2*T1={2*t1}")
    if duration < 0:
        raise NoiseModelError("duration must be nonnegative")
    if duration == 0.0:
        return identity_channel(1)
    gamma = 1.0 - math.exp(-duration / t1)
    # Coherence decay from amplitude damping alone is sqrt(1-gamma)
    # = exp(-duration/(2*t1)); top up with pure dephasing to reach
    # exp(-duration/t2).
    residual = math.exp(-duration / t2) / math.exp(-duration / (2.0 * t1))
    residual = min(residual, 1.0)
    lam = 1.0 - residual**2
    channel = amplitude_damping_channel(gamma)
    if lam > 1e-15:
        channel = channel.compose(phase_damping_channel(lam))
    channel.name = f"thermal(t1={t1:.2e},t2={t2:.2e},t={duration:.2e})"
    return channel
