"""Instruction-list quantum circuit model.

This is the circuit representation every other subsystem builds on: the
baseline state-preparation synthesizer emits one, the transpiler rewrites
one, and both simulators consume one.  The model is deliberately simple —
an ordered list of :class:`~repro.quantum.instruction.Instruction` — with
convenience appenders for each standard gate and structural queries (depth,
gate counts) used by the paper's metrics.

Depth and gate-count queries accept ``physical_only`` so callers can
reproduce the paper's accounting, which excludes virtual ``Rz`` gates.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import CircuitError
from repro.quantum.gates import Gate, gate, unitary_gate
from repro.quantum.instruction import Instruction


class QuantumCircuit:
    """An ordered sequence of gates over ``num_qubits`` qubits.

    Example
    -------
    >>> qc = QuantumCircuit(2)
    >>> qc.h(0).cx(0, 1)                      # doctest: +ELLIPSIS
    <repro.quantum.circuit.QuantumCircuit object at ...>
    >>> qc.depth()
    2
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._instructions: list[Instruction] = []

    @classmethod
    def trusted(
        cls,
        num_qubits: int,
        name: str,
        instructions: list[Instruction],
    ) -> "QuantumCircuit":
        """Construct around an existing instruction list, no validation.

        The array-backed bind paths (``ParametricTemplate.bind`` and
        ``BoundCircuit.materialize``) already guarantee well-formed
        instructions on in-range qubits; this skips the per-append
        checks and takes ownership of ``instructions`` without copying.
        """
        circuit = object.__new__(cls)
        circuit.num_qubits = num_qubits
        circuit.name = name
        circuit._instructions = instructions
        return circuit

    # -- structural access --------------------------------------------------

    @property
    def instructions(self) -> list[Instruction]:
        """The instruction list (mutable; treat as append-mostly)."""
        return self._instructions

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    # -- building -----------------------------------------------------------

    def append(self, gate_obj: Gate, qubits: Iterable[int]) -> "QuantumCircuit":
        """Append ``gate_obj`` on ``qubits``; returns self for chaining."""
        instr = Instruction(gate_obj, tuple(qubits))
        if any(q >= self.num_qubits for q in instr.qubits):
            raise CircuitError(
                f"qubits {instr.qubits} out of range for "
                f"{self.num_qubits}-qubit circuit"
            )
        self._instructions.append(instr)
        return self

    def _std(self, name: str, qubits: tuple[int, ...], *params: float):
        return self.append(gate(name, *params), qubits)

    def id(self, q: int):
        return self._std("id", (q,))

    def x(self, q: int):
        return self._std("x", (q,))

    def y(self, q: int):
        return self._std("y", (q,))

    def z(self, q: int):
        return self._std("z", (q,))

    def h(self, q: int):
        return self._std("h", (q,))

    def s(self, q: int):
        return self._std("s", (q,))

    def sdg(self, q: int):
        return self._std("sdg", (q,))

    def t(self, q: int):
        return self._std("t", (q,))

    def tdg(self, q: int):
        return self._std("tdg", (q,))

    def sx(self, q: int):
        return self._std("sx", (q,))

    def sxdg(self, q: int):
        return self._std("sxdg", (q,))

    def rx(self, theta: float, q: int):
        return self._std("rx", (q,), theta)

    def ry(self, theta: float, q: int):
        return self._std("ry", (q,), theta)

    def rz(self, theta: float, q: int):
        return self._std("rz", (q,), theta)

    def p(self, theta: float, q: int):
        return self._std("p", (q,), theta)

    def u(self, theta: float, phi: float, lam: float, q: int):
        return self._std("u", (q,), theta, phi, lam)

    def cx(self, control: int, target: int):
        return self._std("cx", (control, target))

    def cy(self, control: int, target: int):
        return self._std("cy", (control, target))

    def cz(self, control: int, target: int):
        return self._std("cz", (control, target))

    def cp(self, theta: float, control: int, target: int):
        return self._std("cp", (control, target), theta)

    def crz(self, theta: float, control: int, target: int):
        return self._std("crz", (control, target), theta)

    def cry(self, theta: float, control: int, target: int):
        return self._std("cry", (control, target), theta)

    def swap(self, a: int, b: int):
        return self._std("swap", (a, b))

    def ecr(self, a: int, b: int):
        return self._std("ecr", (a, b))

    def rzz(self, theta: float, a: int, b: int):
        return self._std("rzz", (a, b), theta)

    def unitary(self, matrix: np.ndarray, qubits: Iterable[int], label="unitary"):
        return self.append(unitary_gate(matrix, label), tuple(qubits))

    # -- composition --------------------------------------------------------

    def compose(
        self, other: "QuantumCircuit", qubits: Iterable[int] | None = None
    ) -> "QuantumCircuit":
        """Append all of ``other``'s instructions onto this circuit.

        ``qubits`` maps ``other``'s qubit ``i`` to ``qubits[i]`` here;
        by default qubits are matched by index.
        """
        if qubits is None:
            mapping = {q: q for q in range(other.num_qubits)}
        else:
            positions = list(qubits)
            if len(positions) != other.num_qubits:
                raise CircuitError(
                    f"compose mapping has {len(positions)} entries for a "
                    f"{other.num_qubits}-qubit circuit"
                )
            mapping = {i: positions[i] for i in range(other.num_qubits)}
        for instr in other:
            self.append(instr.gate, tuple(mapping[q] for q in instr.qubits))
        return self

    def inverse(self) -> "QuantumCircuit":
        """Return a new circuit implementing the adjoint unitary."""
        inv = QuantumCircuit(self.num_qubits, name=self.name + "_dg")
        for instr in reversed(self._instructions):
            inv.append(instr.gate.inverse(), instr.qubits)
        return inv

    def copy(self) -> "QuantumCircuit":
        dup = QuantumCircuit(self.num_qubits, name=self.name)
        dup._instructions = list(self._instructions)
        return dup

    # -- analysis -----------------------------------------------------------

    def depth(self, physical_only: bool = False) -> int:
        """Longest gate-dependency chain.

        With ``physical_only=True``, virtual gates (``Rz`` and friends) do
        not advance the depth counter — the accounting used throughout the
        paper's evaluation.
        """
        frontier = [0] * self.num_qubits
        for instr in self._instructions:
            if physical_only and instr.is_virtual:
                continue
            level = 1 + max(frontier[q] for q in instr.qubits)
            for q in instr.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def count_ops(self, physical_only: bool = False) -> dict[str, int]:
        """Histogram of gate names, optionally skipping virtual gates."""
        counts: dict[str, int] = {}
        for instr in self._instructions:
            if physical_only and instr.is_virtual:
                continue
            counts[instr.name] = counts.get(instr.name, 0) + 1
        return counts

    def num_gates(self, physical_only: bool = False) -> int:
        if not physical_only:
            return len(self._instructions)
        return sum(1 for instr in self._instructions if not instr.is_virtual)

    def num_one_qubit_gates(self, physical_only: bool = False) -> int:
        return sum(
            1
            for instr in self._instructions
            if instr.gate.num_qubits == 1
            and not (physical_only and instr.is_virtual)
        )

    def num_two_qubit_gates(self) -> int:
        return sum(1 for i in self._instructions if i.gate.num_qubits == 2)

    def qubits_used(self) -> set[int]:
        used: set[int] = set()
        for instr in self._instructions:
            used.update(instr.qubits)
        return used

    # -- dense matrix (small circuits only; used in tests) -------------------

    def to_matrix(self) -> np.ndarray:
        """Dense unitary of the whole circuit (exponential; tests only)."""
        dim = 2**self.num_qubits
        if dim > 1024:
            raise CircuitError("to_matrix() limited to <= 10 qubits")
        from repro.quantum.statevector import apply_gate_to_tensor

        mat = np.eye(dim, dtype=complex)
        tensor = mat.reshape((2,) * self.num_qubits + (dim,))
        for instr in self._instructions:
            tensor = apply_gate_to_tensor(
                tensor, instr.gate.matrix, instr.qubits, self.num_qubits
            )
        return tensor.reshape(dim, dim)

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self._instructions)})"
        )
