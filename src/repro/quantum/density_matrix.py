"""Density-matrix simulation with Kraus-channel noise.

The density matrix of an ``n``-qubit register is stored as a
``2^n x 2^n`` array; gate and channel application reshape it into a
``(2,)*2n`` tensor whose first ``n`` axes index rows (kets) and last ``n``
axes index columns (bras).  A unitary ``U`` acts as ``U rho U^dagger`` —
one contraction on the ket axes and one conjugated contraction on the bra
axes — which keeps the cost per gate at ``O(4^n * 4^k)`` instead of
materializing ``4^n x 4^n`` superoperators.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SimulationError
from repro.quantum.channels import KrausChannel
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import Statevector, contract_op


class DensityMatrix:
    """A mixed quantum state rho with evolution and query methods."""

    def __init__(self, data: np.ndarray, validate: bool = True) -> None:
        mat = np.asarray(data, dtype=complex)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise SimulationError("density matrix must be square")
        num_qubits = int(round(math.log2(mat.shape[0])))
        if 2**num_qubits != mat.shape[0]:
            raise SimulationError("density matrix dim is not a power of two")
        if validate:
            if abs(np.trace(mat) - 1.0) > 1e-6:
                raise SimulationError("density matrix trace != 1")
            if not np.allclose(mat, mat.conj().T, atol=1e-8):
                raise SimulationError("density matrix is not Hermitian")
        self.num_qubits = num_qubits
        self.data = mat

    # -- constructors ------------------------------------------------------

    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        mat = np.zeros((2**num_qubits, 2**num_qubits), dtype=complex)
        mat[0, 0] = 1.0
        return cls(mat, validate=False)

    @classmethod
    def from_statevector(cls, state: Statevector | np.ndarray) -> "DensityMatrix":
        vec = state.data if isinstance(state, Statevector) else np.asarray(state)
        return cls(np.outer(vec, vec.conj()), validate=False)

    # -- evolution ----------------------------------------------------------

    def _as_tensor(self) -> np.ndarray:
        return self.data.reshape((2,) * (2 * self.num_qubits))

    def apply_unitary(
        self, matrix: np.ndarray, qubits: tuple[int, ...]
    ) -> "DensityMatrix":
        """rho -> U rho U^dagger on the given qubits (in place)."""
        n = self.num_qubits
        tensor = self._as_tensor()
        tensor = contract_op(tensor, matrix, qubits)
        bra_axes = tuple(q + n for q in qubits)
        tensor = contract_op(tensor, np.conj(matrix), bra_axes)
        self.data = tensor.reshape(2**n, 2**n)
        return self

    def apply_channel(
        self, channel: KrausChannel, qubits: tuple[int, ...]
    ) -> "DensityMatrix":
        """Apply a CPTP map to the given qubits (in place).

        Uses the channel's cached superoperator: one contraction over the
        ket *and* bra axes, independent of the Kraus-operator count.
        """
        if channel.num_qubits != len(qubits):
            raise SimulationError(
                f"channel acts on {channel.num_qubits} qubits, got {qubits}"
            )
        return self.apply_superop(
            channel.superoperator_tensor().reshape(
                4**channel.num_qubits, 4**channel.num_qubits
            ),
            qubits,
        )

    def apply_superop(
        self, matrix: np.ndarray, qubits: tuple[int, ...]
    ) -> "DensityMatrix":
        """Apply a ``4^k x 4^k`` superoperator matrix to ``qubits``.

        Layout convention: row/column indices flatten ``(ket, bra)``
        ket-major, i.e. the matrix equals ``sum_i K_i (x) conj(K_i)`` for a
        Kraus channel and ``U (x) conj(U)`` for a unitary.
        """
        n = self.num_qubits
        axes = tuple(qubits) + tuple(q + n for q in qubits)
        tensor = contract_op(self._as_tensor(), matrix, axes)
        self.data = tensor.reshape(2**n, 2**n)
        return self

    def evolve(self, circuit: QuantumCircuit) -> "DensityMatrix":
        """Apply ``circuit`` unitarily (no noise)."""
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit/state qubit count mismatch")
        for instr in circuit:
            self.apply_unitary(instr.gate.matrix, instr.qubits)
        return self

    # -- queries ------------------------------------------------------------

    def trace(self) -> float:
        return float(np.real(np.trace(self.data)))

    def purity(self) -> float:
        return float(np.real(np.trace(self.data @ self.data)))

    def probabilities(self) -> np.ndarray:
        return np.real(np.diag(self.data)).clip(min=0.0)

    def expectation(self, observable: np.ndarray) -> float:
        return float(np.real(np.trace(observable @ self.data)))

    def partial_trace(self, keep: tuple[int, ...]) -> "DensityMatrix":
        """Trace out all qubits not listed in ``keep``."""
        n = self.num_qubits
        keep = tuple(keep)
        drop = [q for q in range(n) if q not in keep]
        tensor = self._as_tensor()
        for offset, q in enumerate(sorted(drop)):
            axis = q - offset
            n_remaining = tensor.ndim // 2
            tensor = np.trace(tensor, axis1=axis, axis2=axis + n_remaining)
        dim = 2 ** len(keep)
        reduced = tensor.reshape(dim, dim)
        # Axis order after tracing follows the original qubit order; permute
        # to the order requested in ``keep``.
        order = np.argsort(np.argsort(keep))
        if not np.array_equal(order, np.arange(len(keep))):
            k = len(keep)
            t = reduced.reshape((2,) * (2 * k))
            perm = list(order) + [o + k for o in order]
            t = np.transpose(t, perm)
            reduced = t.reshape(dim, dim)
        return DensityMatrix(reduced, validate=False)

    def copy(self) -> "DensityMatrix":
        return DensityMatrix(self.data.copy(), validate=False)

    def __repr__(self) -> str:
        return f"DensityMatrix(num_qubits={self.num_qubits})"
