"""Gate library: matrices and metadata for every gate used in the stack.

Conventions
-----------
* Matrices are written in **big-endian** order over the gate's qubit tuple:
  for a two-qubit gate applied to ``(a, b)``, basis index ``2*bit_a + bit_b``.
* Rotation gates follow the half-angle convention,
  ``Rz(theta) = diag(exp(-i theta/2), exp(+i theta/2))``.
* ``is_virtual`` marks diagonal single-qubit phase gates (``Rz``, ``Z``,
  ``S``, ``T``, ``P`` ...) that IBM hardware implements as software frame
  changes.  They cost zero duration and zero error and are excluded from
  all physical-gate metrics, exactly as in the paper's methodology.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.errors import CircuitError

_SQRT2_INV = 1.0 / math.sqrt(2.0)

# Names of gates that are implemented virtually (software frame change).
VIRTUAL_GATE_NAMES = frozenset({"rz", "z", "s", "sdg", "t", "tdg", "p", "id"})

# Names of two-qubit gates known to the library.
TWO_QUBIT_GATE_NAMES = frozenset(
    {"cx", "cy", "cz", "ch", "cp", "crz", "cry", "ecr", "swap", "iswap", "rzz"}
)


class Gate:
    """An immutable quantum gate: a name, parameters, and a unitary matrix.

    Parameters
    ----------
    name:
        Lowercase gate mnemonic (``"rz"``, ``"cx"``, ...).
    num_qubits:
        Arity of the gate.
    params:
        Tuple of real parameters (rotation angles).
    matrix:
        The ``2^k x 2^k`` unitary, big-endian over the qubit tuple.
    """

    __slots__ = ("name", "num_qubits", "params", "_matrix")

    def __init__(
        self,
        name: str,
        num_qubits: int,
        params: tuple[float, ...],
        matrix: np.ndarray,
    ) -> None:
        self.name = name
        self.num_qubits = num_qubits
        self.params = tuple(float(p) for p in params)
        mat = np.asarray(matrix, dtype=complex)
        expected = 2**num_qubits
        if mat.shape != (expected, expected):
            raise CircuitError(
                f"gate {name!r} matrix shape {mat.shape} does not match "
                f"{num_qubits} qubits"
            )
        mat.setflags(write=False)
        self._matrix = mat

    @classmethod
    def trusted(
        cls,
        name: str,
        num_qubits: int,
        params: tuple[float, ...],
        matrix: "np.ndarray | None" = None,
    ) -> "Gate":
        """Construct a gate skipping validation (hot-loop fast path).

        The caller guarantees ``matrix`` is a fresh complex ndarray of the
        right shape and ``params`` a tuple of floats.  ``matrix=None``
        defers the matrix until first access (``name`` must then be a
        registry gate) — most gates a batch encode emits are never
        simulated, so skipping their matrix construction is free
        throughput.  Used by the parametric transpile template, which
        emits thousands of rz/sx/x gates per batch and owns their
        construction end to end.
        """
        gate_obj = object.__new__(cls)
        gate_obj.name = name
        gate_obj.num_qubits = num_qubits
        gate_obj.params = params
        if matrix is not None:
            matrix.setflags(write=False)
        gate_obj._matrix = matrix
        return gate_obj

    @classmethod
    def trusted_rz(cls, angle: float) -> "Gate":
        """Minimal lazy-matrix ``rz`` gate (the template-bind hot path).

        Equivalent to ``Gate.trusted("rz", 1, (angle,))`` with the
        argument shuffling inlined away — template binds emit thousands
        of Rz gates per batch, and this constructor (together with
        :meth:`repro.quantum.instruction.Instruction.trusted_rz`) is
        their single allocation site for gate objects.  The caller
        guarantees ``angle`` is a Python float.
        """
        gate_obj = object.__new__(cls)
        gate_obj.name = "rz"
        gate_obj.num_qubits = 1
        gate_obj.params = (angle,)
        gate_obj._matrix = None
        return gate_obj

    @property
    def matrix(self) -> np.ndarray:
        """The gate unitary (read-only view; lazily built if deferred)."""
        if self._matrix is None:
            self._matrix = gate(self.name, *self.params)._matrix
        return self._matrix

    @property
    def is_virtual(self) -> bool:
        """True for zero-cost software gates (diagonal phase gates)."""
        return self.name in VIRTUAL_GATE_NAMES

    @property
    def is_two_qubit(self) -> bool:
        return self.num_qubits == 2

    def inverse(self) -> "Gate":
        """Return the inverse gate (dagger), preserving names when known."""
        inverse_names = {
            "s": "sdg",
            "sdg": "s",
            "t": "tdg",
            "tdg": "t",
            "sx": "sxdg",
            "sxdg": "sx",
        }
        if self.name in inverse_names:
            return STANDARD_GATES[inverse_names[self.name]]()
        if self.name in {"rx", "ry", "rz", "p", "cp", "crz", "cry", "rzz"}:
            return STANDARD_GATES[self.name](-self.params[0])
        if self.name == "u":
            theta, phi, lam = self.params
            return STANDARD_GATES["u"](-theta, -lam, -phi)
        # Self-inverse or generic: fall back to the conjugate transpose.
        dagger = self._matrix.conj().T
        if np.allclose(dagger, self._matrix):
            return self
        return Gate(self.name + "_dg", self.num_qubits, self.params, dagger)

    def __repr__(self) -> str:
        if self.params:
            args = ", ".join(f"{p:.6g}" for p in self.params)
            return f"Gate({self.name}({args}), qubits={self.num_qubits})"
        return f"Gate({self.name}, qubits={self.num_qubits})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        return (
            self.name == other.name
            and self.num_qubits == other.num_qubits
            and np.allclose(self.params, other.params)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.num_qubits, self.params))


# ---------------------------------------------------------------------------
# Matrix constructors
# ---------------------------------------------------------------------------

def _rx_matrix(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]])


def _ry_matrix(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz_matrix(theta: float) -> np.ndarray:
    return np.array(
        [[np.exp(-0.5j * theta), 0.0], [0.0, np.exp(0.5j * theta)]]
    )


def _p_matrix(theta: float) -> np.ndarray:
    return np.array([[1.0, 0.0], [0.0, np.exp(1j * theta)]])


def _u_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ]
    )


def _controlled(u: np.ndarray) -> np.ndarray:
    """Two-qubit controlled-U, control = first (most significant) qubit."""
    mat = np.eye(4, dtype=complex)
    mat[2:, 2:] = u
    return mat


_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]])
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_H = _SQRT2_INV * np.array([[1, 1], [1, -1]], dtype=complex)
_S = np.diag([1.0, 1j])
_SDG = np.diag([1.0, -1j])
_T = np.diag([1.0, np.exp(0.25j * math.pi)])
_TDG = np.diag([1.0, np.exp(-0.25j * math.pi)])
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]])
_SXDG = _SX.conj().T
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
_ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]]
)
# Echoed cross-resonance gate: (1/sqrt2) (I (x) X  -  X (x) Y), Hermitian and
# unitary, locally equivalent to CX.  First factor acts on the first qubit.
_ECR = _SQRT2_INV * (np.kron(_I, _X) - np.kron(_X, _Y))


def _rzz_matrix(theta: float) -> np.ndarray:
    phase = np.exp(0.5j * theta)
    return np.diag([1 / phase, phase, phase, 1 / phase])


# Registry: name -> constructor returning a Gate.
STANDARD_GATES: dict[str, Callable[..., Gate]] = {
    "id": lambda: Gate("id", 1, (), _I),
    "x": lambda: Gate("x", 1, (), _X),
    "y": lambda: Gate("y", 1, (), _Y),
    "z": lambda: Gate("z", 1, (), _Z),
    "h": lambda: Gate("h", 1, (), _H),
    "s": lambda: Gate("s", 1, (), _S),
    "sdg": lambda: Gate("sdg", 1, (), _SDG),
    "t": lambda: Gate("t", 1, (), _T),
    "tdg": lambda: Gate("tdg", 1, (), _TDG),
    "sx": lambda: Gate("sx", 1, (), _SX),
    "sxdg": lambda: Gate("sxdg", 1, (), _SXDG),
    "rx": lambda theta: Gate("rx", 1, (theta,), _rx_matrix(theta)),
    "ry": lambda theta: Gate("ry", 1, (theta,), _ry_matrix(theta)),
    "rz": lambda theta: Gate("rz", 1, (theta,), _rz_matrix(theta)),
    "p": lambda theta: Gate("p", 1, (theta,), _p_matrix(theta)),
    "u": lambda theta, phi, lam: Gate(
        "u", 1, (theta, phi, lam), _u_matrix(theta, phi, lam)
    ),
    "cx": lambda: Gate("cx", 2, (), _controlled(_X)),
    "cy": lambda: Gate("cy", 2, (), _controlled(_Y)),
    "cz": lambda: Gate("cz", 2, (), _controlled(_Z)),
    "ch": lambda: Gate("ch", 2, (), _controlled(_H)),
    "cp": lambda theta: Gate("cp", 2, (theta,), _controlled(_p_matrix(theta))),
    "crz": lambda theta: Gate(
        "crz", 2, (theta,), _controlled(_rz_matrix(theta))
    ),
    "cry": lambda theta: Gate(
        "cry", 2, (theta,), _controlled(_ry_matrix(theta))
    ),
    "swap": lambda: Gate("swap", 2, (), _SWAP),
    "iswap": lambda: Gate("iswap", 2, (), _ISWAP),
    "ecr": lambda: Gate("ecr", 2, (), _ECR),
    "rzz": lambda theta: Gate("rzz", 2, (theta,), _rzz_matrix(theta)),
}


def gate(name: str, *params: float) -> Gate:
    """Look up a standard gate by name and construct it.

    >>> gate("rz", 0.5).name
    'rz'
    """
    try:
        ctor = STANDARD_GATES[name]
    except KeyError:
        raise CircuitError(f"unknown gate {name!r}") from None
    return ctor(*params)


def unitary_gate(matrix: np.ndarray, label: str = "unitary") -> Gate:
    """Wrap an arbitrary unitary matrix as a gate.

    The matrix must be square with power-of-two dimension; unitarity is
    validated (this catches accidentally transposed Kraus operators early).
    """
    matrix = np.asarray(matrix, dtype=complex)
    dim = matrix.shape[0]
    num_qubits = int(round(math.log2(dim)))
    if 2**num_qubits != dim or matrix.shape != (dim, dim):
        raise CircuitError(f"matrix of shape {matrix.shape} is not a qubit gate")
    if not np.allclose(matrix.conj().T @ matrix, np.eye(dim), atol=1e-9):
        raise CircuitError(f"matrix for {label!r} is not unitary")
    return Gate(label, num_qubits, (), matrix)
