"""A single circuit instruction: a gate bound to concrete qubit indices."""

from __future__ import annotations

from typing import Iterator

from repro.errors import CircuitError
from repro.quantum.gates import Gate


class Instruction:
    """A :class:`Gate` applied to an ordered tuple of qubit indices."""

    __slots__ = ("gate", "qubits")

    def __init__(self, gate: Gate, qubits: tuple[int, ...]) -> None:
        qubits = tuple(int(q) for q in qubits)
        if len(qubits) != gate.num_qubits:
            raise CircuitError(
                f"gate {gate.name!r} expects {gate.num_qubits} qubits, "
                f"got {len(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubits {qubits} for gate {gate.name!r}")
        if any(q < 0 for q in qubits):
            raise CircuitError(f"negative qubit index in {qubits}")
        self.gate = gate
        self.qubits = qubits

    @classmethod
    def trusted(cls, gate: Gate, qubits: tuple[int, ...]) -> "Instruction":
        """Construct skipping validation (the template bind hot loop).

        The caller guarantees ``qubits`` is a well-formed tuple of ints
        matching the gate's arity.
        """
        instr = object.__new__(cls)
        instr.gate = gate
        instr.qubits = qubits
        return instr

    @classmethod
    def trusted_rz(cls, angle: float, qubits: tuple[int, ...]) -> "Instruction":
        """One-call construction of a lazy-matrix ``rz`` instruction.

        The template bind paths emit thousands of Rz gates per batch;
        building the gate (via :meth:`Gate.trusted_rz`, which owns the
        gate internals) and the instruction in a single call — matrix
        deferred, no validation — nearly halves the per-gate constructor
        overhead of ``trusted(Gate.trusted(...), ...)``.  The caller
        guarantees ``angle`` is a Python float and ``qubits`` a
        well-formed 1-tuple.
        """
        instr = object.__new__(cls)
        instr.gate = Gate.trusted_rz(angle)
        instr.qubits = qubits
        return instr

    @property
    def name(self) -> str:
        return self.gate.name

    @property
    def is_virtual(self) -> bool:
        return self.gate.is_virtual

    def remap(self, mapping: dict[int, int]) -> "Instruction":
        """Return a copy with qubit indices pushed through ``mapping``."""
        return Instruction(self.gate, tuple(mapping[q] for q in self.qubits))

    def inverse(self) -> "Instruction":
        return Instruction(self.gate.inverse(), self.qubits)

    def __iter__(self) -> Iterator:
        yield self.gate
        yield self.qubits

    def __repr__(self) -> str:
        return f"Instruction({self.gate!r}, qubits={self.qubits})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return self.gate == other.gate and self.qubits == other.qubits

    def __hash__(self) -> int:
        return hash((self.gate, self.qubits))
