"""Computational-basis measurement: sampling and readout error.

The paper's metrics are density-matrix fidelities (no sampling), but a
usable QML stack needs shot-based readout too: examples and the VQC can
run with finite shots, and the backend's calibrated readout error can be
applied as a classical confusion process (the standard Aer model).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.statevector import Statevector
from repro.utils.rng import as_rng


class Counts(dict):
    """Measurement outcomes: bitstring -> count (qubit 0 leftmost)."""

    @property
    def shots(self) -> int:
        return sum(self.values())

    def probability(self, bitstring: str) -> float:
        return self.get(bitstring, 0) / self.shots if self.shots else 0.0

    def expectation_z(self, qubit: int) -> float:
        """<Z_qubit> estimated from the counts."""
        total = 0
        for bitstring, count in self.items():
            total += count if bitstring[qubit] == "0" else -count
        return total / self.shots if self.shots else 0.0

    def most_frequent(self) -> str:
        if not self:
            raise SimulationError("no counts recorded")
        return max(self, key=self.get)


def _probabilities(state: "Statevector | DensityMatrix | np.ndarray"):
    if isinstance(state, (Statevector, DensityMatrix)):
        probs = state.probabilities()
        num_qubits = state.num_qubits
    else:
        arr = np.asarray(state)
        if arr.ndim == 1:
            probs = np.abs(arr) ** 2
        else:
            probs = np.real(np.diag(arr)).clip(min=0.0)
        num_qubits = int(round(np.log2(probs.size)))
    total = probs.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise SimulationError(f"state probabilities sum to {total:.6f}")
    return probs / total, num_qubits


def apply_readout_error(
    probs: np.ndarray,
    readout_errors: "list[float]",
) -> np.ndarray:
    """Push basis-state probabilities through per-qubit bit-flip confusion.

    ``readout_errors[q]`` is the symmetric misassignment probability of
    qubit ``q`` (the backend's calibrated ``readout_error``).
    """
    num_qubits = int(round(np.log2(probs.size)))
    if len(readout_errors) != num_qubits:
        raise SimulationError(
            f"{len(readout_errors)} readout errors for {num_qubits} qubits"
        )
    out = np.asarray(probs, dtype=float)
    for q, eps in enumerate(readout_errors):
        if eps == 0.0:
            continue
        confusion = np.array([[1 - eps, eps], [eps, 1 - eps]])
        tensor = out.reshape((2,) * num_qubits)
        tensor = np.moveaxis(
            np.tensordot(confusion, tensor, axes=([1], [q])), 0, q
        )
        out = tensor.reshape(-1)
    return out


def sample_counts(
    state,
    shots: int = 1024,
    seed: "int | np.random.Generator | None" = None,
    readout_errors: "list[float] | None" = None,
) -> Counts:
    """Sample ``shots`` computational-basis outcomes from ``state``.

    Accepts a :class:`Statevector`, :class:`DensityMatrix`, or raw array;
    optionally applies per-qubit readout confusion first.
    """
    if shots < 1:
        raise SimulationError("shots must be positive")
    probs, num_qubits = _probabilities(state)
    if readout_errors is not None:
        probs = apply_readout_error(probs, readout_errors)
    rng = as_rng(seed)
    outcomes = rng.multinomial(shots, probs)
    counts = Counts()
    for index in np.nonzero(outcomes)[0]:
        bitstring = format(index, f"0{num_qubits}b")
        counts[bitstring] = int(outcomes[index])
    return counts


def backend_readout_errors(backend) -> "list[float]":
    """Per-qubit readout-error list from a backend's calibrations."""
    return [backend.qubit(q).readout_error for q in range(backend.num_qubits)]
