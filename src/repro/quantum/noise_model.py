"""Noise-model container mapping circuit instructions to error channels.

A :class:`NoiseModel` attaches :class:`~repro.quantum.channels.KrausChannel`
errors to gates, either for every occurrence of a gate name
(:meth:`add_all_qubit_quantum_error`) or for a gate name on specific qubits
(:meth:`add_quantum_error`), mirroring the qiskit-aer API surface that the
paper's noisy simulations rely on.  Each rule may target a subset of the
instruction's qubits, which is how per-qubit T1/T2 relaxation is attached
to two-qubit gates.  Virtual gates never acquire noise.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import NoiseModelError
from repro.quantum.channels import KrausChannel
from repro.quantum.gates import VIRTUAL_GATE_NAMES
from repro.quantum.instruction import Instruction

# A noise rule: the channel plus the absolute qubits it acts on.
NoiseRule = tuple[KrausChannel, tuple[int, ...]]


class NoiseModel:
    """Per-gate, per-qubit error channels applied after each instruction."""

    def __init__(self) -> None:
        self._local: dict[tuple[str, tuple[int, ...]], list[NoiseRule]] = {}
        self._default: dict[str, list[KrausChannel]] = {}

    # -- construction --------------------------------------------------------

    def add_all_qubit_quantum_error(
        self, channel: KrausChannel, gate_names: "str | Iterable[str]"
    ) -> None:
        """Attach ``channel`` to every occurrence of the named gates.

        One-qubit channels on multi-qubit gates are applied independently to
        each qubit the gate touches.
        """
        if isinstance(gate_names, str):
            gate_names = [gate_names]
        for name in gate_names:
            self._check_not_virtual(name)
            self._default.setdefault(name, []).append(channel)

    def add_quantum_error(
        self,
        channel: KrausChannel,
        gate_name: str,
        qubits: tuple[int, ...],
        targets: tuple[int, ...] | None = None,
    ) -> None:
        """Attach ``channel`` to ``gate_name`` occurring on exactly ``qubits``.

        ``targets`` selects which qubits the channel acts on (defaults to all
        of ``qubits``); it must be a subset of ``qubits`` whose length matches
        the channel arity.
        """
        self._check_not_virtual(gate_name)
        qubits = tuple(qubits)
        targets = qubits if targets is None else tuple(targets)
        if any(t not in qubits for t in targets):
            raise NoiseModelError(
                f"noise targets {targets} not within gate qubits {qubits}"
            )
        if channel.num_qubits != len(targets):
            raise NoiseModelError(
                f"channel arity {channel.num_qubits} does not match "
                f"targets {targets}"
            )
        key = (gate_name, qubits)
        self._local.setdefault(key, []).append((channel, targets))

    @staticmethod
    def _check_not_virtual(name: str) -> None:
        if name in VIRTUAL_GATE_NAMES:
            raise NoiseModelError(
                f"gate {name!r} is virtual and cannot carry noise"
            )

    # -- lookup ---------------------------------------------------------------

    def rules_for(self, instruction: Instruction) -> list[NoiseRule]:
        """All (channel, target qubits) pairs to apply after ``instruction``."""
        if instruction.is_virtual:
            return []
        rules = list(self._local.get((instruction.name, instruction.qubits), ()))
        for channel in self._default.get(instruction.name, ()):
            if channel.num_qubits == len(instruction.qubits):
                rules.append((channel, instruction.qubits))
            elif channel.num_qubits == 1:
                rules.extend((channel, (q,)) for q in instruction.qubits)
            else:
                raise NoiseModelError(
                    f"default channel arity {channel.num_qubits} incompatible "
                    f"with gate {instruction.name!r} on {instruction.qubits}"
                )
        return rules

    @property
    def noisy_gate_names(self) -> set[str]:
        names = set(self._default)
        names.update(name for name, _ in self._local)
        return names

    def is_trivial(self) -> bool:
        return not self._local and not self._default

    def __repr__(self) -> str:
        return (
            f"NoiseModel(gates={sorted(self.noisy_gate_names)!r}, "
            f"local_rules={len(self._local)})"
        )
