"""Random states and unitaries (Haar measure) for tests and fuzzing."""

from __future__ import annotations

import numpy as np

from repro.quantum.statevector import Statevector
from repro.utils.rng import as_rng


def random_statevector(
    num_qubits: int, seed: "int | np.random.Generator | None" = None
) -> Statevector:
    """Haar-random pure state on ``num_qubits`` qubits."""
    rng = as_rng(seed)
    dim = 2**num_qubits
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return Statevector(vec / np.linalg.norm(vec), validate=False)


def random_real_amplitudes(
    dim: int, seed: "int | np.random.Generator | None" = None
) -> np.ndarray:
    """Random real unit vector — the kind of target AE must embed."""
    rng = as_rng(seed)
    vec = rng.normal(size=dim)
    return vec / np.linalg.norm(vec)


def random_unitary(
    num_qubits: int, seed: "int | np.random.Generator | None" = None
) -> np.ndarray:
    """Haar-random unitary via QR decomposition of a Ginibre matrix."""
    rng = as_rng(seed)
    dim = 2**num_qubits
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    phases = np.diag(r).copy()
    phases /= np.abs(phases)
    return q * phases
