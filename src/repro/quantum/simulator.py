"""Simulator front-ends: ideal statevector and noisy density-matrix runs.

``DensityMatrixSimulator`` reproduces the paper's ``qiskit_aer`` noisy
density-matrix backend.  For performance, each noisy instruction's unitary
and all of its attached noise channels are **fused into a single
superoperator**, cached per ``(gate, params, qubits)`` — deep Baseline
circuits reuse a handful of fused operators thousands of times, which is
what makes the Fig. 8(b) sweeps laptop-friendly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.instruction import Instruction
from repro.quantum.noise_model import NoiseModel, NoiseRule
from repro.quantum.statevector import Statevector


class StatevectorSimulator:
    """Ideal (noiseless) pure-state simulator.

    Circuits carrying the compact bound IR (``BoundCircuit`` — anything
    exposing an ``ir_statevector`` hook) are evolved straight off their
    packed angle arrays, bitwise identical to materialized evolution but
    without building any instruction objects.
    """

    def run(self, circuit: QuantumCircuit) -> Statevector:
        ir_statevector = getattr(circuit, "ir_statevector", None)
        if ir_statevector is not None:
            return ir_statevector()
        return Statevector.zero_state(circuit.num_qubits).evolve(circuit)


def _embed_1q_superop(superop_1q: np.ndarray, position: int) -> np.ndarray:
    """Lift a one-qubit superoperator to a two-qubit pair.

    ``position`` is the qubit's index within the pair.  Axis layout is
    ket-major ``(out_ket, out_bra) x (in_ket, in_bra)`` throughout.
    """
    tensor = superop_1q.reshape(2, 2, 2, 2)  # (out_ket, out_bra, in_ket, in_bra)
    eye = np.eye(2)
    if position == 0:
        full = np.einsum("pqrs,ac,bd->paqbrcsd", tensor, eye, eye)
    elif position == 1:
        full = np.einsum("pqrs,ac,bd->apbqcrds", tensor, eye, eye)
    else:
        raise SimulationError(f"invalid embed position {position}")
    return full.reshape(16, 16)


def _fused_superop(
    instruction: Instruction, rules: "list[NoiseRule]"
) -> np.ndarray:
    """Compose gate unitary + noise channels into one superoperator."""
    matrix = instruction.gate.matrix
    fused = np.kron(matrix, matrix.conj())
    k = len(instruction.qubits)
    for channel, targets in rules:
        targets = tuple(targets)
        if channel.num_qubits == k and targets == instruction.qubits:
            step = channel.superoperator_tensor().reshape(4**k, 4**k)
        elif channel.num_qubits == 1 and k == 2:
            step = _embed_1q_superop(
                channel.superoperator_tensor().reshape(4, 4),
                instruction.qubits.index(targets[0]),
            )
        elif channel.num_qubits == 1 and k == 1:
            step = channel.superoperator_tensor().reshape(4, 4)
        else:
            raise SimulationError(
                f"cannot fuse channel on {targets} into gate on "
                f"{instruction.qubits}"
            )
        fused = step @ fused
    return fused


class DensityMatrixSimulator:
    """Density-matrix simulator, optionally with a noise model."""

    def __init__(self, noise_model: NoiseModel | None = None) -> None:
        self.noise_model = noise_model
        self._fused_cache: dict = {}

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: DensityMatrix | None = None,
    ) -> DensityMatrix:
        if initial_state is None:
            state = DensityMatrix.zero_state(circuit.num_qubits)
        else:
            state = initial_state.copy()
            if state.num_qubits != circuit.num_qubits:
                raise SimulationError("initial state qubit count mismatch")
        noise = self.noise_model
        for instr in circuit:
            rules = noise.rules_for(instr) if noise is not None else []
            if not rules:
                state.apply_unitary(instr.gate.matrix, instr.qubits)
                continue
            key = (instr.name, instr.gate.params, instr.qubits)
            fused = self._fused_cache.get(key)
            if fused is None:
                fused = _fused_superop(instr, rules)
                self._fused_cache[key] = fused
            state.apply_superop(fused, instr.qubits)
        return state
