"""State-comparison metrics, chiefly the Jozsa mixed-state fidelity.

The paper's assessment metric (Sec. IV-C) is
``F(rho, sigma) = (tr sqrt(sqrt(rho) sigma sqrt(rho)))^2`` [Jozsa 1994].
Fast paths cover the pure-state cases that dominate the experiments.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.statevector import Statevector

StateLike = "Statevector | DensityMatrix | np.ndarray"


def _coerce(state: "StateLike") -> tuple[np.ndarray, bool]:
    """Return (array, is_pure_vector) for any accepted state object."""
    if isinstance(state, Statevector):
        return state.data, True
    if isinstance(state, DensityMatrix):
        return state.data, False
    arr = np.asarray(state, dtype=complex)
    if arr.ndim == 1:
        return arr, True
    if arr.ndim == 2 and arr.shape[0] == arr.shape[1]:
        return arr, False
    raise ValueError(f"cannot interpret shape {arr.shape} as a quantum state")


def _sqrtm_psd(matrix: np.ndarray) -> np.ndarray:
    """Matrix square root of a positive-semidefinite Hermitian matrix."""
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    return (eigenvectors * np.sqrt(eigenvalues)) @ eigenvectors.conj().T


def state_fidelity(a: "StateLike", b: "StateLike") -> float:
    """Jozsa fidelity between two states (pure or mixed), in [0, 1]."""
    mat_a, pure_a = _coerce(a)
    mat_b, pure_b = _coerce(b)
    if pure_a and pure_b:
        return float(min(1.0, abs(np.vdot(mat_a, mat_b)) ** 2))
    if pure_a:  # F = <psi| rho |psi>
        return float(min(1.0, np.real(np.vdot(mat_a, mat_b @ mat_a))))
    if pure_b:
        return float(min(1.0, np.real(np.vdot(mat_b, mat_a @ mat_b))))
    sqrt_a = _sqrtm_psd(mat_a)
    inner = sqrt_a @ mat_b @ sqrt_a
    eigenvalues = np.clip(np.linalg.eigvalsh(inner), 0.0, None)
    return float(min(1.0, np.sum(np.sqrt(eigenvalues)) ** 2))


def purity(state: "StateLike") -> float:
    """tr(rho^2); equals 1 exactly for pure states."""
    mat, pure = _coerce(state)
    if pure:
        return 1.0
    return float(np.real(np.trace(mat @ mat)))


def trace_distance(a: "StateLike", b: "StateLike") -> float:
    """(1/2) ||rho - sigma||_1."""
    mat_a, pure_a = _coerce(a)
    mat_b, pure_b = _coerce(b)
    if pure_a:
        mat_a = np.outer(mat_a, mat_a.conj())
    if pure_b:
        mat_b = np.outer(mat_b, mat_b.conj())
    eigenvalues = np.linalg.eigvalsh(mat_a - mat_b)
    return float(0.5 * np.sum(np.abs(eigenvalues)))
