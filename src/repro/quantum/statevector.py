"""Pure-state simulation via tensor contraction.

Qubit 0 is the **most significant bit** of the basis index: the state of an
``n``-qubit register is stored as a length ``2^n`` vector whose index is
``sum_b bit(qubit b) * 2^(n-1-b)``, equivalently a ``(2,)*n`` tensor whose
axis ``b`` is qubit ``b``.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.errors import SimulationError
from repro.quantum.circuit import QuantumCircuit


_SEGMENT_LETTERS = "abcdefghi"
_OUT_LETTERS = "ABCDEFGH"
_IN_LETTERS = "stuvwxyz"


def contract_op(tensor: np.ndarray, matrix: np.ndarray, axes) -> np.ndarray:
    """Apply a ``2^k x 2^k`` operator to the given axes of ``tensor``.

    The tensor is reshaped (a view — no copy) so the target axes are
    isolated, and a single einsum performs the contraction.  Avoiding the
    transpose copies of the tensordot/moveaxis idiom makes deep noisy
    density-matrix simulations several times faster.

    ``axes`` order matters and must match the operator's qubit order; the
    operator is internally permuted so the contraction runs on sorted axes.
    """
    return _contract_sorted(tensor, np.asarray(matrix, dtype=complex), list(axes))


def _contract_sorted(tensor: np.ndarray, matrix: np.ndarray, axes) -> np.ndarray:
    k = len(axes)
    op = matrix.reshape((2,) * (2 * k))
    order = sorted(range(k), key=lambda i: axes[i])
    if order != list(range(k)):
        perm = list(order) + [k + i for i in order]
        op = np.transpose(op, perm)
    sorted_axes = sorted(axes)

    shape = tensor.shape
    segments: list[int] = []
    previous = 0
    for axis in sorted_axes:
        segments.append(int(np.prod(shape[previous:axis], dtype=np.int64)))
        previous = axis + 1
    segments.append(int(np.prod(shape[previous:], dtype=np.int64)))

    view_shape: list[int] = []
    for i in range(k):
        view_shape.extend((segments[i], 2))
    view_shape.append(segments[k])
    view = tensor.reshape(view_shape)

    # Diagonal fast path (Rz and friends): the operator only multiplies
    # amplitudes by phases, so a broadcast elementwise product replaces
    # the contraction.
    flat_op = op.reshape(2**k, 2**k)
    if np.count_nonzero(flat_op - np.diag(np.diagonal(flat_op))) == 0:
        broadcast_shape = [1, 2] * k + [1]
        diag = np.diagonal(flat_op).reshape(broadcast_shape)
        return (view * diag).reshape(shape)

    if k >= 3:
        # Large operators (fused 2q superops): a single gemm after one
        # explicit transpose beats einsum's contraction planning.
        moved = np.moveaxis(tensor, sorted_axes, range(k))
        moved = np.ascontiguousarray(moved).reshape(2**k, -1)
        result = op.reshape(2**k, 2**k) @ moved
        result = result.reshape((2,) * k + tuple(
            s for i, s in enumerate(shape) if i not in set(sorted_axes)
        ))
        return np.moveaxis(result, range(k), sorted_axes).reshape(shape)

    rho_sub = ""
    out_sub = ""
    for i in range(k):
        rho_sub += _SEGMENT_LETTERS[i] + _IN_LETTERS[i]
        out_sub += _SEGMENT_LETTERS[i] + _OUT_LETTERS[i]
    rho_sub += _SEGMENT_LETTERS[k]
    out_sub += _SEGMENT_LETTERS[k]
    op_sub = _OUT_LETTERS[:k] + _IN_LETTERS[:k]

    result = np.einsum(
        f"{op_sub},{rho_sub}->{out_sub}", op, view, optimize=(k > 1)
    )
    return result.reshape(shape)


def apply_gate_to_tensor(
    tensor: np.ndarray,
    matrix: np.ndarray,
    qubits: tuple[int, ...],
    num_qubits: int,
) -> np.ndarray:
    """Contract ``matrix`` into ``tensor`` on the axes listed in ``qubits``.

    ``tensor`` must have its first ``num_qubits`` axes of dimension 2 (any
    trailing axes are carried along untouched), which lets the same kernel
    drive statevectors, unitaries, and density matrices.
    """
    return _contract_sorted(tensor, np.asarray(matrix, dtype=complex), qubits)


class Statevector:
    """A normalized pure state with gate-application and query methods."""

    def __init__(self, data: np.ndarray | list, validate: bool = True) -> None:
        vec = np.asarray(data, dtype=complex).ravel()
        num_qubits = int(round(math.log2(vec.size)))
        if 2**num_qubits != vec.size:
            raise SimulationError(
                f"statevector length {vec.size} is not a power of two"
            )
        if validate and abs(np.linalg.norm(vec) - 1.0) > 1e-8:
            raise SimulationError("statevector is not normalized")
        self.num_qubits = num_qubits
        self.data = vec

    # -- constructors ---------------------------------------------------

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        """|0...0> on ``num_qubits`` qubits."""
        vec = np.zeros(2**num_qubits, dtype=complex)
        vec[0] = 1.0
        return cls(vec, validate=False)

    @classmethod
    def from_amplitudes(cls, amplitudes: Iterable[float]) -> "Statevector":
        """Build a state from (possibly unnormalized) real amplitudes."""
        vec = np.asarray(list(amplitudes), dtype=complex)
        norm = np.linalg.norm(vec)
        if norm < 1e-300:
            raise SimulationError("cannot build a state from a zero vector")
        return cls(vec / norm, validate=False)

    # -- evolution --------------------------------------------------------

    def apply_gate(
        self, matrix: np.ndarray, qubits: tuple[int, ...]
    ) -> "Statevector":
        tensor = self.data.reshape((2,) * self.num_qubits)
        tensor = apply_gate_to_tensor(tensor, matrix, qubits, self.num_qubits)
        self.data = tensor.reshape(-1)
        return self

    def evolve(self, circuit: QuantumCircuit) -> "Statevector":
        """Apply every instruction of ``circuit`` in order (in place)."""
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError(
                f"circuit acts on {circuit.num_qubits} qubits, state has "
                f"{self.num_qubits}"
            )
        tensor = self.data.reshape((2,) * self.num_qubits)
        for instr in circuit:
            tensor = apply_gate_to_tensor(
                tensor, instr.gate.matrix, instr.qubits, self.num_qubits
            )
        self.data = tensor.reshape(-1)
        return self

    # -- queries ----------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        return np.abs(self.data) ** 2

    def fidelity(self, other: "Statevector | np.ndarray") -> float:
        """|<self|other>|^2 — squared overlap with another pure state."""
        other_vec = other.data if isinstance(other, Statevector) else other
        return float(abs(np.vdot(self.data, np.asarray(other_vec))) ** 2)

    def expectation(self, observable: np.ndarray) -> float:
        return float(np.real(np.vdot(self.data, observable @ self.data)))

    def density_matrix(self) -> np.ndarray:
        return np.outer(self.data, self.data.conj())

    def copy(self) -> "Statevector":
        return Statevector(self.data.copy(), validate=False)

    def __repr__(self) -> str:
        return f"Statevector(num_qubits={self.num_qubits})"


def simulate_statevector(circuit: QuantumCircuit) -> Statevector:
    """Run ``circuit`` from |0...0> and return the final state.

    Compact-IR circuits (``BoundCircuit`` — anything exposing an
    ``ir_statevector`` hook) evolve straight off their packed arrays,
    bitwise identical to materialized evolution and without triggering
    lazy instruction materialization.
    """
    ir_statevector = getattr(circuit, "ir_statevector", None)
    if ir_statevector is not None:
        return ir_statevector()
    return Statevector.zero_state(circuit.num_qubits).evolve(circuit)
