"""ASCII circuit rendering for debugging and examples.

``draw(circuit)`` lays instructions out in ASAP columns and prints one
row per qubit — compact enough for the 8-qubit circuits this repo works
with, and dependency-free.

Example
-------
>>> from repro.quantum import QuantumCircuit
>>> from repro.quantum.visualization import draw
>>> print(draw(QuantumCircuit(2).h(0).cx(0, 1)))
q0: ─[h]──────●──
              │
q1: ────────[cx]─
"""

from __future__ import annotations

from repro.quantum.circuit import QuantumCircuit


def _label(instruction) -> str:
    name = instruction.name
    if instruction.gate.params:
        args = ",".join(f"{p:.2f}" for p in instruction.gate.params)
        return f"[{name}({args})]"
    return f"[{name}]"


def draw(circuit: QuantumCircuit, max_width: int = 120) -> str:
    """Render ``circuit`` as fixed-width ASCII art.

    Long circuits wrap into multiple banks of at most ``max_width``
    characters.
    """
    num_qubits = circuit.num_qubits
    # Assign each instruction to the earliest free column on its qubits.
    columns: list[list] = []
    frontier = [0] * num_qubits
    for instr in circuit:
        col = max(frontier[q] for q in instr.qubits)
        while len(columns) <= col:
            columns.append([])
        columns[col].append(instr)
        for q in instr.qubits:
            frontier[q] = col + 1

    # Render column by column.
    cell_rows = [[] for _ in range(num_qubits)]
    link_rows = [[] for _ in range(num_qubits - 1)]  # between q and q+1
    for column in columns:
        width = 3
        cells = {q: None for q in range(num_qubits)}
        links: set[int] = set()
        for instr in column:
            label = _label(instr)
            if instr.gate.num_qubits == 1:
                cells[instr.qubits[0]] = label
            else:
                control, target = instr.qubits
                cells[control] = "●" if instr.name.startswith("c") else label
                cells[target] = label
                low, high = sorted((control, target))
                links.update(range(low, high))
            width = max(width, *(len(c) for c in cells.values() if c))
        for q in range(num_qubits):
            text = cells[q] or ""
            pad = width - len(text)
            left = pad // 2
            filler = "─"
            cell_rows[q].append(
                filler * (left + 1) + (text or filler) + filler * (pad - left + 1)
            )
        for gap in range(num_qubits - 1):
            mark = "│" if gap in links else " "
            total = width + 2
            left = (total - 1) // 2
            link_rows[gap].append(" " * left + mark + " " * (total - 1 - left))

    # Stitch columns into banks that respect max_width.
    banks = []
    start = 0
    while start < len(columns):
        used = 0
        end = start
        while end < len(columns) and used + len(cell_rows[0][end]) <= max_width:
            used += len(cell_rows[0][end])
            end += 1
        end = max(end, start + 1)
        lines = []
        for q in range(num_qubits):
            prefix = f"q{q}: "
            lines.append(prefix + "".join(cell_rows[q][start:end]))
            if q < num_qubits - 1:
                gap_line = " " * len(prefix) + "".join(link_rows[q][start:end])
                if gap_line.strip():
                    lines.append(gap_line)
        banks.append("\n".join(lines))
        start = end
    return "\n…\n".join(banks)


def summary(circuit: QuantumCircuit) -> str:
    """One-line structural summary (used by example scripts)."""
    counts = circuit.count_ops()
    ops = ", ".join(f"{name} x{count}" for name, count in sorted(counts.items()))
    return (
        f"{circuit.name}: {circuit.num_qubits} qubits, depth "
        f"{circuit.depth()} ({circuit.depth(physical_only=True)} physical), "
        f"{ops}"
    )
