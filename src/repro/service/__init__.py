"""repro.service — the online serving layer (train once, serve many).

The paper frames EnQode as an offline/online *system*: cluster models
are trained once (Sec. III-C), stored, and then serve a live stream of
samples at millisecond compile latency (Sec. III-D, Fig. 9a).  This
package is that serving surface:

* :class:`EncoderRegistry` — fitted encoders keyed by class/model id,
  loading versioned bundles via :mod:`repro.core.serialization`;
* :class:`MicroBatcher` — accumulates submitted samples and flushes on
  ``max_batch`` or a latency deadline, so streaming traffic executes
  the batched stage pipeline;
* :class:`EncodingService` — the front end: typed
  :class:`EncodeRequest`/:class:`EncodeResponse` records, automatic
  nearest-model routing, and :class:`ServiceStats` accounting
  (p50/p95 latency, evals/sample, template-cache hits);
* :class:`ThreadBackend` — the ``backend="thread"`` execution engine
  (selected via :class:`repro.core.config.ServiceConfig`): a daemon
  flusher thread that honors the ``max_delay`` deadline with zero
  follow-up traffic plus a worker pool flushing different keys
  concurrently, with one flush in flight per key so responses stay
  instruction-identical to the synchronous path;
* :class:`ProcessBackend` — the ``backend="process"`` engine: the same
  control plane over a fleet of worker *processes* holding
  float-exact encoder replicas, keys sharded by stable hash, flush
  batches and kind-4 wire responses crossing a pipe per worker, and
  SIGKILL-level death survived by requeue + respawn;
* :mod:`repro.service.resilience` — the hardening layer: a seeded
  :class:`FaultInjector` chaos harness, per-key
  :class:`CircuitBreaker`, and :class:`RetryPolicy` backoff, composed
  by the service into admission control (queue budgets with reject or
  degrade-shed policies), per-request deadlines, flush retries, and
  flush-timeout abandonment.

Every flush executes the same :class:`repro.core.pipeline.
EncodePipeline` stage objects as ``EnQodeEncoder.encode_batch``, so
service results are numerically identical to the big-batch path.
"""

from repro.core.config import ServiceConfig
from repro.service.async_service import ThreadBackend
from repro.service.batcher import MicroBatcher
from repro.service.process_backend import ProcessBackend
from repro.service.records import EncodeRequest, EncodeResponse, ServiceStats
from repro.service.registry import EncoderRegistry
from repro.service.resilience import (
    FAULT_SITES,
    CircuitBreaker,
    FaultInjector,
    FaultRule,
    InjectedFault,
    RetryPolicy,
    WorkerDeath,
    default_transient_classifier,
)
from repro.service.service import EncodeTicket, EncodingService

__all__ = [
    "FAULT_SITES",
    "CircuitBreaker",
    "EncodeRequest",
    "EncodeResponse",
    "EncodeTicket",
    "EncoderRegistry",
    "EncodingService",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "MicroBatcher",
    "ProcessBackend",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceStats",
    "ThreadBackend",
    "WorkerDeath",
    "default_transient_classifier",
]
