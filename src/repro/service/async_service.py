"""Threaded execution backend: background flusher + worker pool.

The default service backend is synchronous — flush triggers only fire
inside ``submit``/``poll`` calls, so with idle traffic the ``max_delay``
deadline is a promise nobody keeps.  :class:`ThreadBackend` makes the
service honor it unconditionally:

* a daemon **flusher** thread sleeps until the earliest pending
  deadline (``MicroBatcher.next_deadline``) or until woken by a
  full-queue / forced-flush / shutdown event — it never polls on a
  fixed interval, so an idle service costs zero CPU;
* a small **worker pool** executes the dispatched flushes, so slow
  fine-tunes for one registry key don't head-of-line-block another
  key's traffic.

Correctness invariants
----------------------
*One flush in flight per key.*  The flusher never dispatches a key that
already has a flush executing, so a key's requests complete strictly in
submission order and every micro-batch is a contiguous FIFO slice of
that key's traffic — which is what makes threaded serving
instruction-identical to a synchronous ``encode_batch`` replay of the
same per-key stream.

*One flush in flight per pipeline.*  Two keys may share one encoder
(aliases of the same model).  Key-level exclusion alone would then run
one :class:`~repro.core.pipeline.EncodePipeline` concurrently with
itself; the stages are re-entrant, but serializing per pipeline keeps
the batch partition — and therefore the per-sample numerics — a pure
function of each key's arrival order, independent of scheduling.

*Errors stay per-flush.*  A failing flush fails exactly its own
tickets (``EncodeTicket.result`` re-raises); the flusher, the pool, and
every other key's traffic keep running.

*No flush wedges its key forever.*  With ``flush_timeout`` configured,
the flusher abandons any flush still executing past the budget: its
tickets fail with :class:`~repro.errors.DeadlineExceededError`, its key
and pipeline marks are released so follow-up traffic dispatches, and
the zombie worker — which cannot be killed mid-pipeline — discards its
late result through a task-id handshake
(:meth:`ThreadBackend.consume_abandoned`) instead of double-counting.

*Worker death is survivable.*  A
:class:`~repro.service.resilience.WorkerDeath` — injected before the
flush body runs, or raised by the process backend when a worker
*process* dies mid-flush — requeues the batch at the head of the task
queue with its in-flight marks kept — ordering holds — and spawns a
replacement before the dying worker exits.

All mutable state (queues, tickets, in-flight marks, stats) is guarded
by the owning service's single lock; both condition variables share it,
so every predicate check is atomic with the sleep that follows it.
Flush execution itself happens outside the lock — only dispatch and
completion bookkeeping serialize.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque

from repro.errors import DeadlineExceededError, ServiceError
from repro.service.resilience import WorkerDeath

#: Lifecycle states.  NEW -> (start) -> RUNNING -> (stop) -> STOPPING
#: -> STOPPED -> (start) -> RUNNING ...  STOPPING only exists inside
#: ``stop``/``drain``-style waits; submissions are rejected outside
#: RUNNING.
_NEW = "new"
_RUNNING = "running"
_STOPPING = "stopping"
_STOPPED = "stopped"

#: How long ``stop`` waits for each thread to exit before declaring the
#: backend wedged.  A healthy flush finishes in milliseconds; a join
#: timing out means a flush deadlocked, and raising beats hanging CI.
_JOIN_TIMEOUT = 30.0


class ThreadBackend:
    """Background flusher + worker pool for one :class:`EncodingService`.

    Created by ``EncodingService(backend="thread", workers=N)``; not
    constructed directly.  Shares the service's lock: the two condition
    variables below are views onto it, so batcher/ticket/stats access
    and backend scheduling state always change under one mutex.
    """

    #: Does this backend execute flush pipelines itself (worker
    #: processes) instead of running them in-process?  When True,
    #: ``EncodingService._run_pipeline`` routes to ``run_pipeline``.
    owns_execution = False

    def __init__(self, service, workers: int) -> None:
        self.service = service
        self.num_workers = workers
        #: Wakes the flusher (new request, forced flush, task done,
        #: lifecycle change) and the workers (task queued, shutdown).
        self._work = threading.Condition(service._lock)
        #: Wakes quiescence waiters: ``drain``/``stop``/``flush``.
        self._idle = threading.Condition(service._lock)
        self._state = _NEW
        #: Dispatched-but-unstarted flushes: (task_id, key, requests,
        #: pipeline_id).  Task ids make every dispatch distinguishable,
        #: which abandonment and death-requeue bookkeeping both need.
        self._tasks: "deque[tuple[int, object, list, int | None]]" = deque()
        self._task_ids = itertools.count()
        #: In-flight marks map key/pipeline -> owning task_id, so a
        #: release after abandonment only clears a mark the *same* task
        #: set (the key may have re-dispatched under a new task id).
        self._inflight_keys: "dict[object, int]" = {}
        self._inflight_pipelines: "dict[int, int]" = {}
        #: Flushes a worker is executing right now:
        #: task_id -> (key, pipeline_id, requests, started_at).
        self._running: "dict[int, tuple]" = {}
        #: Task ids the flusher abandoned (flush_timeout overdue); the
        #: executing worker consumes its id on completion and discards
        #: the result.
        self._abandoned: "set[int]" = set()
        #: Replacement worker threads spawned after injected deaths.
        self._respawns = 0
        self._forced: set = set()
        #: While > 0 a drain() is waiting for quiescence, and the
        #: flusher dispatches every pending key unconditionally — also
        #: traffic that arrives *during* the drain, which a one-shot
        #: forced-key snapshot would strand (and deadlock the drain).
        self._drain_waiters = 0
        self._threads: list[threading.Thread] = []
        #: Times the flusher returned from its wait (for the no-busy-wait
        #: tests and ``ServiceStats.flusher_wakeups``): an idle or
        #: deadline-sleeping flusher wakes O(events) times, a spinning
        #: one diverges.
        self.flusher_wakeups = 0

    # -- lifecycle -----------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._state == _RUNNING

    @property
    def will_serve(self) -> bool:
        """True while pending tickets can still resolve.

        RUNNING obviously serves; STOPPING does too — a draining stop
        dispatches everything before the state advances, and a
        non-draining stop fails every pending ticket while still in
        STOPPING.  Only NEW/STOPPED backends leave a wait hopeless.
        """
        return self._state in (_RUNNING, _STOPPING)

    def start(self) -> None:
        """Spawn the flusher and worker threads; idempotent-hostile.

        Starting a running backend raises (a double ``start`` is a
        lifecycle bug, not a no-op); restarting after ``stop`` is fine.
        """
        with self._work:
            if self._state in (_RUNNING, _STOPPING):
                raise ServiceError(
                    "thread backend is already running; stop() it before "
                    "starting again"
                )
            self._state = _RUNNING
            self._tasks.clear()
            self._inflight_keys.clear()
            self._inflight_pipelines.clear()
            self._running.clear()
            self._abandoned.clear()
            self._respawns = 0
            self._forced.clear()
            self.flusher_wakeups = 0
            self._threads = [
                threading.Thread(
                    target=self._flusher_loop,
                    name="enqode-flusher",
                    daemon=True,
                )
            ]
            self._threads += [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"enqode-worker-{i}",
                    daemon=True,
                )
                for i in range(self.num_workers)
            ]
            for thread in self._threads:
                thread.start()

    def stop(self, drain: bool = True, timeout: "float | None" = None) -> None:
        """Shut the backend down; no-op if never started / already stopped.

        With ``drain`` (default) every queued request is flushed first —
        partial batches included — so no ticket is left pending.  With
        ``drain=False`` queued-but-undispatched requests are *rejected*
        (their tickets fail with :class:`ServiceError`); flushes already
        executing still run to completion — a half-done pipeline run
        cannot be safely abandoned — and their tickets resolve normally.
        """
        with self._work:
            if self._state in (_NEW, _STOPPED):
                return
            if drain:
                self._state = _STOPPING  # flusher now force-flushes all
                self._work.notify_all()
                self._await_quiescent(timeout, "stop(drain=True)")
            else:
                self._state = _STOPPING  # flusher stops dispatching new work
                self._reject_pending()
                self._work.notify_all()
                self._await_quiescent(timeout, "stop(drain=False)")
            self._state = _STOPPED
            self._work.notify_all()
            self._idle.notify_all()
            threads, self._threads = self._threads, []
        for thread in threads:
            thread.join(timeout=_JOIN_TIMEOUT)
            if thread.is_alive():
                raise ServiceError(
                    f"backend thread {thread.name!r} did not exit within "
                    f"{_JOIN_TIMEOUT}s of stop(); a flush is likely wedged"
                )

    def drain(self, timeout: "float | None" = None) -> None:
        """Flush everything pending (partials included) and block until
        the service is quiescent: no queued requests, no dispatched
        tasks, no in-flight flushes.  Traffic submitted *while* draining
        is drained too — quiescence is a property of the service, not a
        snapshot.  The backend keeps running afterwards.
        """
        with self._work:
            if self._state != _RUNNING:
                raise ServiceError(
                    "cannot drain a thread backend that is not running"
                )
            self._drain_waiters += 1
            try:
                self._work.notify_all()
                self._await_quiescent(timeout, "drain()")
            finally:
                self._drain_waiters -= 1

    def flush_key(self, key, timeout: "float | None" = None) -> None:
        """Force-flush one key's queue and wait until it is served."""
        with self._work:
            if self._state != _RUNNING:
                raise ServiceError(
                    "cannot flush a thread backend that is not running"
                )
            self._forced.add(key)
            self._work.notify_all()
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            while (
                self.service.batcher.pending(key)
                or key in self._inflight_keys
            ):
                if not self._wait_idle(deadline):
                    raise ServiceError(
                        f"flush of key {key!r} did not complete within "
                        f"{timeout}s"
                    )

    def kick(self) -> None:
        """Wake the flusher so it re-reads the clock and the queues.

        This is how an injected fake clock advances the deadline logic
        deterministically (``service.poll()`` kicks), and how ``submit``
        announces new work.
        """
        with self._work:
            self._work.notify_all()

    # -- quiescence waits ----------------------------------------------------------

    def _pending_work(self) -> bool:
        return bool(
            self.service.batcher.pending()
            or self._tasks
            or self._inflight_keys
        )

    def _wait_idle(self, deadline: "float | None") -> bool:
        if deadline is None:
            self._idle.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0.0:
            return False
        return self._idle.wait(timeout=remaining)

    def _await_quiescent(self, timeout: "float | None", what: str) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._pending_work():
            if not self._wait_idle(deadline):
                raise ServiceError(
                    f"{what} did not reach quiescence within {timeout}s "
                    f"({self.service.batcher.pending()} queued, "
                    f"{len(self._inflight_keys)} in flight)"
                )
            # New arrivals during the wait flush too: STOPPING and an
            # active drain waiter both make _dispatch unconditional, so
            # this loop only re-checks the predicate.

    def _reject_pending(self) -> None:
        """Fail every queued-but-undispatched ticket (stop without drain).

        Already-dispatched tasks still execute (``_pending_work`` waits
        on them); only queue residents are rejected, through the same
        service helper the sync backend's non-draining stop uses.
        """
        self.service._reject_all_pending()

    def on_register(self, key, encoder) -> None:
        """Hook: an encoder was (re)registered on the owning service.

        The thread backend shares the service's registry in-process, so
        there is nothing to do; the process backend overrides this to
        ship the bundle to every live worker.
        """

    def _on_worker_death(self, key) -> None:
        """Hook: an *injected* ``kind="death"`` fault fired for ``key``.

        For threads the death is purely simulated (the thread exits and
        a replacement spawns — the generic requeue path below).  The
        process backend overrides this to make the simulation real:
        SIGKILL the worker process currently routed for ``key`` and
        respawn it, so chaos tests exercise genuine process death.
        """

    def consume_abandoned(self, task_id: int) -> bool:
        """Atomically check-and-clear a task's abandoned mark.

        Called by :meth:`EncodingService._execute_flush` (under the
        service lock) right before it would apply a result or fail
        tickets: ``True`` means the flusher already failed this flush's
        tickets and freed its key while the flush was executing, so the
        caller must discard its outcome entirely.
        """
        if task_id in self._abandoned:
            self._abandoned.discard(task_id)
            return True
        return False

    # -- the flusher ---------------------------------------------------------------

    def _flusher_loop(self) -> None:
        with self._work:
            while self._state != _STOPPED:
                now = self.service.clock()
                self._abandon_overdue(now)
                self._dispatch(now)
                if not self._pending_work():
                    self._idle.notify_all()
                # Sleep until the earliest deadline a *dispatchable* key
                # could hit — or the earliest executing flush would
                # become abandonable; blocked keys wake us via the
                # worker's completion notify, new work and lifecycle
                # changes via notify_all.  With no armed deadline this
                # blocks indefinitely — the no-busy-wait guarantee.
                deadline = self.service.batcher.next_deadline(
                    exclude=self._undispatchable_keys()
                )
                candidates = [] if deadline is None else [deadline]
                flush_timeout = self.service.config.flush_timeout
                if flush_timeout is not None and self._running:
                    candidates.append(
                        min(t[3] for t in self._running.values())
                        + flush_timeout
                    )
                timeout = (
                    None
                    if not candidates
                    else max(min(candidates) - now, 0.0)
                )
                self._work.wait(timeout)
                self.flusher_wakeups += 1

    def _abandon_overdue(self, now: float) -> None:
        """Cut loose every flush executing past ``flush_timeout``.

        The worker thread itself cannot be interrupted mid-pipeline, so
        abandonment is bookkeeping-only: fail the flush's still-pending
        tickets with :class:`~repro.errors.DeadlineExceededError`,
        release the key/pipeline marks (task-id-guarded) so follow-up
        traffic stops head-of-line-blocking, and mark the task id so the
        zombie worker discards its eventual result.  Caller holds the
        lock (flusher loop).
        """
        flush_timeout = self.service.config.flush_timeout
        if flush_timeout is None or not self._running:
            return
        service = self.service
        abandoned_any = False
        for task_id in list(self._running):
            key, pipeline_id, requests, started_at = self._running[task_id]
            if now - started_at < flush_timeout:
                continue
            del self._running[task_id]
            self._abandoned.add(task_id)
            if self._inflight_keys.get(key) == task_id:
                del self._inflight_keys[key]
            if self._inflight_pipelines.get(pipeline_id) == task_id:
                del self._inflight_pipelines[pipeline_id]
            for request in requests:
                ticket = service._tickets.pop(request.request_id, None)
                if ticket is None or ticket._event.is_set():
                    continue
                ticket._fail(
                    DeadlineExceededError(
                        f"request {request.request_id} abandoned: its "
                        f"flush exceeded the {flush_timeout}s "
                        "flush_timeout budget"
                    )
                )
                service._failed += 1
                service._deadline_expired += 1
            abandoned_any = True
        if abandoned_any:
            # Freed keys may dispatch immediately; flush_key/drain
            # waiters blocked on the wedged key must re-check too.
            self._idle.notify_all()

    def _dispatch(self, now: float) -> None:
        """Hand every triggered, non-busy key's batch to the worker pool."""
        service = self.service
        batcher = service.batcher
        # Busy keys are excluded at the source (same contract as the
        # next_deadline sleep below) instead of collected-then-skipped:
        # an overdue-but-busy key is not "due", it is waiting for its
        # in-flight flush, whose completion re-runs this dispatch.
        undispatchable = self._undispatchable_keys()
        due = set(batcher.due_keys(now, exclude=undispatchable))
        dispatched = False
        for key in list(batcher.pending_keys()):
            if key in self._inflight_keys:
                continue
            triggered = (
                batcher.pending(key) >= batcher.max_batch
                or key in due
                or key in self._forced
                or self._drain_waiters > 0
                or self._state == _STOPPING
            )
            if not triggered:
                continue
            pipeline_id = self._pipeline_id(key)
            if pipeline_id in self._inflight_pipelines:
                continue  # shares an encoder with a busy key: next round
            # Caps at max_batch live requests; deadline-expired
            # stragglers anywhere in the queue ride along and are
            # failed by the flush's expiry sweep.
            requests = batcher.drain(key, now=now)
            if not requests:
                continue
            task_id = next(self._task_ids)
            self._inflight_keys[key] = task_id
            if pipeline_id is not None:
                self._inflight_pipelines[pipeline_id] = task_id
            if not batcher.pending(key):
                self._forced.discard(key)  # fully served; else next round
            self._tasks.append((task_id, key, requests, pipeline_id))
            dispatched = True
        if dispatched:
            self._work.notify_all()

    def _undispatchable_keys(self) -> set:
        """Keys that cannot dispatch right now: busy, or pipeline-blocked.

        Used as the ``next_deadline`` exclusion.  A key whose *alias*
        (same encoder, different key) has a flush in flight is just as
        undispatchable as an in-flight key — leaving it in would clamp
        the flusher's sleep to an already-elapsed deadline and spin the
        loop at zero timeout until the alias completes; the completion
        notification is what should (and does) wake us instead.
        """
        blocked = set(self._inflight_keys)
        if self._inflight_pipelines:
            for key in self.service.batcher.pending_keys():
                if key in blocked:
                    continue
                if self._pipeline_id(key) in self._inflight_pipelines:
                    blocked.add(key)
        return blocked

    def _pipeline_id(self, key) -> "int | None":
        """Identity of the key's pipeline, or None if unresolvable.

        An unknown key or an unfit encoder still dispatches — the worker
        fails those tickets with the real error instead of the flusher
        silently wedging the queue.
        """
        try:
            return id(self.service.registry.get(key).pipeline)
        except Exception:
            return None

    # -- the workers ---------------------------------------------------------------

    def _worker_loop(self) -> None:
        service = self.service
        while True:
            with self._work:
                while not self._tasks and self._state != _STOPPED:
                    self._work.wait()
                if not self._tasks:
                    return  # stopped and drained
                task_id, key, requests, pipeline_id = self._tasks.popleft()
                # Stamp the start time before releasing the lock so the
                # flusher's flush_timeout sweep sees every executing
                # flush from its first instant — and wake the flusher,
                # whose current sleep was computed before this flush
                # existed and so carries no abandonment deadline for it.
                self._running[task_id] = (
                    key,
                    pipeline_id,
                    requests,
                    service.clock(),
                )
                if service.config.flush_timeout is not None:
                    self._work.notify_all()
            died = False
            try:
                try:
                    # The "worker" fault site models the thread itself
                    # dying *before* the flush body touches the batch.
                    if service.fault_injector is not None:
                        service.fault_injector.fire("worker")
                except WorkerDeath:
                    died = True
                    # Make injected death real under a process fleet:
                    # SIGKILL + respawn of the worker serving this key
                    # (no-op for threads).
                    self._on_worker_death(key)
                except Exception:
                    # Non-death worker-site faults (latency already
                    # slept inside fire) have nothing to poison here;
                    # the flush body has its own sites.  Run normally.
                    pass
                if not died:
                    try:
                        # reraise=False: the flush routes its exception
                        # into the affected tickets; nothing may escape
                        # and kill the pool.
                        service._execute_flush(
                            key, requests, reraise=False, task_id=task_id
                        )
                    except WorkerDeath:
                        # A worker *process* died under this batch
                        # (already marked dead + respawning by
                        # run_pipeline); requeue exactly like a local
                        # death.
                        died = True
            finally:
                with self._work:
                    self._running.pop(task_id, None)
                    if task_id in self._abandoned:
                        # The flusher already failed the tickets and
                        # freed the marks (if _execute_flush didn't
                        # consume the id itself); nothing left to do.
                        self._abandoned.discard(task_id)
                        if died:
                            self._spawn_replacement()
                    elif died:
                        # The batch is untouched: requeue it at the head
                        # with its marks kept, so the key's FIFO order —
                        # and hence its numerics — are unchanged, and
                        # spawn a replacement before this thread exits.
                        self._tasks.appendleft(
                            (task_id, key, requests, pipeline_id)
                        )
                        self._spawn_replacement()
                    else:
                        # Task-id-guarded release: after an abandonment
                        # the key may already be in flight under a new
                        # id, which this late release must not clear.
                        if self._inflight_keys.get(key) == task_id:
                            del self._inflight_keys[key]
                        if self._inflight_pipelines.get(pipeline_id) == task_id:
                            del self._inflight_pipelines[pipeline_id]
                    # The freed key may have queued a follow-up batch,
                    # and quiescence waiters need a look either way.
                    self._work.notify_all()
                    self._idle.notify_all()
            if died:
                return  # the replacement carries on; this thread is dead

    def _spawn_replacement(self) -> None:
        """Start a replacement worker after an injected death.

        Caller holds the lock.  Skipped once fully STOPPED (the pool is
        being torn down; no work remains that the drain/join path does
        not already cover).
        """
        if self._state == _STOPPED:
            return
        self._respawns += 1
        thread = threading.Thread(
            target=self._worker_loop,
            name=f"enqode-worker-r{self._respawns}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def __repr__(self) -> str:
        return (
            f"ThreadBackend(state={self._state!r}, "
            f"workers={self.num_workers}, "
            f"inflight={len(self._inflight_keys)})"
        )


__all__ = ["ThreadBackend"]
