"""Threaded execution backend: background flusher + worker pool.

The default service backend is synchronous — flush triggers only fire
inside ``submit``/``poll`` calls, so with idle traffic the ``max_delay``
deadline is a promise nobody keeps.  :class:`ThreadBackend` makes the
service honor it unconditionally:

* a daemon **flusher** thread sleeps until the earliest pending
  deadline (``MicroBatcher.next_deadline``) or until woken by a
  full-queue / forced-flush / shutdown event — it never polls on a
  fixed interval, so an idle service costs zero CPU;
* a small **worker pool** executes the dispatched flushes, so slow
  fine-tunes for one registry key don't head-of-line-block another
  key's traffic.

Correctness invariants
----------------------
*One flush in flight per key.*  The flusher never dispatches a key that
already has a flush executing, so a key's requests complete strictly in
submission order and every micro-batch is a contiguous FIFO slice of
that key's traffic — which is what makes threaded serving
instruction-identical to a synchronous ``encode_batch`` replay of the
same per-key stream.

*One flush in flight per pipeline.*  Two keys may share one encoder
(aliases of the same model).  Key-level exclusion alone would then run
one :class:`~repro.core.pipeline.EncodePipeline` concurrently with
itself; the stages are re-entrant, but serializing per pipeline keeps
the batch partition — and therefore the per-sample numerics — a pure
function of each key's arrival order, independent of scheduling.

*Errors stay per-flush.*  A failing flush fails exactly its own
tickets (``EncodeTicket.result`` re-raises); the flusher, the pool, and
every other key's traffic keep running.

All mutable state (queues, tickets, in-flight sets, stats) is guarded
by the owning service's single lock; both condition variables share it,
so every predicate check is atomic with the sleep that follows it.
Flush execution itself happens outside the lock — only dispatch and
completion bookkeeping serialize.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.errors import ServiceError

#: Lifecycle states.  NEW -> (start) -> RUNNING -> (stop) -> STOPPING
#: -> STOPPED -> (start) -> RUNNING ...  STOPPING only exists inside
#: ``stop``/``drain``-style waits; submissions are rejected outside
#: RUNNING.
_NEW = "new"
_RUNNING = "running"
_STOPPING = "stopping"
_STOPPED = "stopped"

#: How long ``stop`` waits for each thread to exit before declaring the
#: backend wedged.  A healthy flush finishes in milliseconds; a join
#: timing out means a flush deadlocked, and raising beats hanging CI.
_JOIN_TIMEOUT = 30.0


class ThreadBackend:
    """Background flusher + worker pool for one :class:`EncodingService`.

    Created by ``EncodingService(backend="thread", workers=N)``; not
    constructed directly.  Shares the service's lock: the two condition
    variables below are views onto it, so batcher/ticket/stats access
    and backend scheduling state always change under one mutex.
    """

    def __init__(self, service, workers: int) -> None:
        self.service = service
        self.num_workers = workers
        #: Wakes the flusher (new request, forced flush, task done,
        #: lifecycle change) and the workers (task queued, shutdown).
        self._work = threading.Condition(service._lock)
        #: Wakes quiescence waiters: ``drain``/``stop``/``flush``.
        self._idle = threading.Condition(service._lock)
        self._state = _NEW
        self._tasks: "deque[tuple[object, list, int | None]]" = deque()
        self._inflight_keys: set = set()
        self._inflight_pipelines: set = set()
        self._forced: set = set()
        #: While > 0 a drain() is waiting for quiescence, and the
        #: flusher dispatches every pending key unconditionally — also
        #: traffic that arrives *during* the drain, which a one-shot
        #: forced-key snapshot would strand (and deadlock the drain).
        self._drain_waiters = 0
        self._threads: list[threading.Thread] = []
        #: Times the flusher returned from its wait (for the no-busy-wait
        #: tests and ``ServiceStats.flusher_wakeups``): an idle or
        #: deadline-sleeping flusher wakes O(events) times, a spinning
        #: one diverges.
        self.flusher_wakeups = 0

    # -- lifecycle -----------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._state == _RUNNING

    def start(self) -> None:
        """Spawn the flusher and worker threads; idempotent-hostile.

        Starting a running backend raises (a double ``start`` is a
        lifecycle bug, not a no-op); restarting after ``stop`` is fine.
        """
        with self._work:
            if self._state in (_RUNNING, _STOPPING):
                raise ServiceError(
                    "thread backend is already running; stop() it before "
                    "starting again"
                )
            self._state = _RUNNING
            self._tasks.clear()
            self._inflight_keys.clear()
            self._inflight_pipelines.clear()
            self._forced.clear()
            self.flusher_wakeups = 0
            self._threads = [
                threading.Thread(
                    target=self._flusher_loop,
                    name="enqode-flusher",
                    daemon=True,
                )
            ]
            self._threads += [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"enqode-worker-{i}",
                    daemon=True,
                )
                for i in range(self.num_workers)
            ]
            for thread in self._threads:
                thread.start()

    def stop(self, drain: bool = True, timeout: "float | None" = None) -> None:
        """Shut the backend down; no-op if never started / already stopped.

        With ``drain`` (default) every queued request is flushed first —
        partial batches included — so no ticket is left pending.  With
        ``drain=False`` queued-but-undispatched requests are *rejected*
        (their tickets fail with :class:`ServiceError`); flushes already
        executing still run to completion — a half-done pipeline run
        cannot be safely abandoned — and their tickets resolve normally.
        """
        with self._work:
            if self._state in (_NEW, _STOPPED):
                return
            if drain:
                self._state = _STOPPING  # flusher now force-flushes all
                self._work.notify_all()
                self._await_quiescent(timeout, "stop(drain=True)")
            else:
                self._state = _STOPPING  # flusher stops dispatching new work
                self._reject_pending()
                self._work.notify_all()
                self._await_quiescent(timeout, "stop(drain=False)")
            self._state = _STOPPED
            self._work.notify_all()
            self._idle.notify_all()
            threads, self._threads = self._threads, []
        for thread in threads:
            thread.join(timeout=_JOIN_TIMEOUT)
            if thread.is_alive():
                raise ServiceError(
                    f"backend thread {thread.name!r} did not exit within "
                    f"{_JOIN_TIMEOUT}s of stop(); a flush is likely wedged"
                )

    def drain(self, timeout: "float | None" = None) -> None:
        """Flush everything pending (partials included) and block until
        the service is quiescent: no queued requests, no dispatched
        tasks, no in-flight flushes.  Traffic submitted *while* draining
        is drained too — quiescence is a property of the service, not a
        snapshot.  The backend keeps running afterwards.
        """
        with self._work:
            if self._state != _RUNNING:
                raise ServiceError(
                    "cannot drain a thread backend that is not running"
                )
            self._drain_waiters += 1
            try:
                self._work.notify_all()
                self._await_quiescent(timeout, "drain()")
            finally:
                self._drain_waiters -= 1

    def flush_key(self, key, timeout: "float | None" = None) -> None:
        """Force-flush one key's queue and wait until it is served."""
        with self._work:
            if self._state != _RUNNING:
                raise ServiceError(
                    "cannot flush a thread backend that is not running"
                )
            self._forced.add(key)
            self._work.notify_all()
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            while (
                self.service.batcher.pending(key)
                or key in self._inflight_keys
            ):
                if not self._wait_idle(deadline):
                    raise ServiceError(
                        f"flush of key {key!r} did not complete within "
                        f"{timeout}s"
                    )

    def kick(self) -> None:
        """Wake the flusher so it re-reads the clock and the queues.

        This is how an injected fake clock advances the deadline logic
        deterministically (``service.poll()`` kicks), and how ``submit``
        announces new work.
        """
        with self._work:
            self._work.notify_all()

    # -- quiescence waits ----------------------------------------------------------

    def _pending_work(self) -> bool:
        return bool(
            self.service.batcher.pending()
            or self._tasks
            or self._inflight_keys
        )

    def _wait_idle(self, deadline: "float | None") -> bool:
        if deadline is None:
            self._idle.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0.0:
            return False
        return self._idle.wait(timeout=remaining)

    def _await_quiescent(self, timeout: "float | None", what: str) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._pending_work():
            if not self._wait_idle(deadline):
                raise ServiceError(
                    f"{what} did not reach quiescence within {timeout}s "
                    f"({self.service.batcher.pending()} queued, "
                    f"{len(self._inflight_keys)} in flight)"
                )
            # New arrivals during the wait flush too: STOPPING and an
            # active drain waiter both make _dispatch unconditional, so
            # this loop only re-checks the predicate.

    def _reject_pending(self) -> None:
        """Fail every queued-but-undispatched ticket (stop without drain)."""
        service = self.service
        for key in list(service.batcher.pending_keys()):
            while service.batcher.pending(key):
                for request in service.batcher.drain(key):
                    ticket = service._tickets.pop(request.request_id, None)
                    error = ServiceError(
                        f"request {request.request_id} rejected: service "
                        "stopped without draining"
                    )
                    if ticket is not None:
                        ticket._fail(error)
                    service._failed += 1

    # -- the flusher ---------------------------------------------------------------

    def _flusher_loop(self) -> None:
        with self._work:
            while self._state != _STOPPED:
                now = self.service.clock()
                self._dispatch(now)
                if not self._pending_work():
                    self._idle.notify_all()
                # Sleep until the earliest deadline a *dispatchable* key
                # could hit; blocked keys wake us via _task_done, new
                # work and lifecycle changes via notify_all.  With no
                # armed deadline this blocks indefinitely — the no-
                # busy-wait guarantee.
                deadline = self.service.batcher.next_deadline(
                    exclude=self._undispatchable_keys()
                )
                timeout = (
                    None if deadline is None else max(deadline - now, 0.0)
                )
                self._work.wait(timeout)
                self.flusher_wakeups += 1

    def _dispatch(self, now: float) -> None:
        """Hand every triggered, non-busy key's batch to the worker pool."""
        service = self.service
        batcher = service.batcher
        due = set(batcher.due_keys(now))
        dispatched = False
        for key in list(batcher.pending_keys()):
            if key in self._inflight_keys:
                continue
            triggered = (
                batcher.pending(key) >= batcher.max_batch
                or key in due
                or key in self._forced
                or self._drain_waiters > 0
                or self._state == _STOPPING
            )
            if not triggered:
                continue
            pipeline_id = self._pipeline_id(key)
            if pipeline_id in self._inflight_pipelines:
                continue  # shares an encoder with a busy key: next round
            requests = batcher.drain(key)  # caps at max_batch
            if not requests:
                continue
            self._inflight_keys.add(key)
            if pipeline_id is not None:
                self._inflight_pipelines.add(pipeline_id)
            if not batcher.pending(key):
                self._forced.discard(key)  # fully served; else next round
            self._tasks.append((key, requests, pipeline_id))
            dispatched = True
        if dispatched:
            self._work.notify_all()

    def _undispatchable_keys(self) -> set:
        """Keys that cannot dispatch right now: busy, or pipeline-blocked.

        Used as the ``next_deadline`` exclusion.  A key whose *alias*
        (same encoder, different key) has a flush in flight is just as
        undispatchable as an in-flight key — leaving it in would clamp
        the flusher's sleep to an already-elapsed deadline and spin the
        loop at zero timeout until the alias completes; the completion
        notification is what should (and does) wake us instead.
        """
        blocked = set(self._inflight_keys)
        if self._inflight_pipelines:
            for key in self.service.batcher.pending_keys():
                if key in blocked:
                    continue
                if self._pipeline_id(key) in self._inflight_pipelines:
                    blocked.add(key)
        return blocked

    def _pipeline_id(self, key) -> "int | None":
        """Identity of the key's pipeline, or None if unresolvable.

        An unknown key or an unfit encoder still dispatches — the worker
        fails those tickets with the real error instead of the flusher
        silently wedging the queue.
        """
        try:
            return id(self.service.registry.get(key).pipeline)
        except Exception:
            return None

    # -- the workers ---------------------------------------------------------------

    def _worker_loop(self) -> None:
        service = self.service
        while True:
            with self._work:
                while not self._tasks and self._state != _STOPPED:
                    self._work.wait()
                if not self._tasks:
                    return  # stopped and drained
                key, requests, pipeline_id = self._tasks.popleft()
            try:
                # reraise=False: the flush routes its exception into the
                # affected tickets; nothing may escape and kill the pool.
                service._execute_flush(key, requests, reraise=False)
            finally:
                with self._work:
                    self._inflight_keys.discard(key)
                    self._inflight_pipelines.discard(pipeline_id)
                    # The freed key may have queued a follow-up batch,
                    # and quiescence waiters need a look either way.
                    self._work.notify_all()
                    self._idle.notify_all()

    def __repr__(self) -> str:
        return (
            f"ThreadBackend(state={self._state!r}, "
            f"workers={self.num_workers}, "
            f"inflight={len(self._inflight_keys)})"
        )


__all__ = ["ThreadBackend"]
