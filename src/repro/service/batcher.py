"""Micro-batching queue: turn a request stream into pipeline batches.

The pipeline's batched fast path (stacked fine-tune + template re-bind)
needs batches; live traffic arrives one sample at a time.  The
micro-batcher bridges the two with the classic serving trade-off:

* a **size trigger** — a key's queue reaching ``max_batch`` flushes it
  immediately (streaming traffic gets big-batch throughput);
* a **latency deadline** — with ``max_delay`` set, a queue whose oldest
  request has waited at least that long is flushed at the next
  opportunity (a trickle of traffic is never stranded waiting for a
  full batch).

The batcher itself is passive and clock-injected: it never sleeps or
spawns threads, it just answers "what is due *now*".  Under the default
``"sync"`` service backend triggers fire inside
:meth:`repro.service.EncodingService.submit` /
:meth:`~repro.service.EncodingService.poll` calls (single-threaded,
deterministic, trivially testable with a fake clock); under the
``"thread"`` backend a background flusher consults :meth:`due_keys` /
:meth:`next_deadline` to sleep exactly until the earliest pending
deadline.  The batcher does no locking of its own — the owning service
serializes access under its lock.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ServiceError
from repro.service.records import EncodeRequest


class MicroBatcher:
    """Per-key FIFO queues with size and deadline flush triggers."""

    def __init__(
        self, max_batch: int = 32, max_delay: "float | None" = None
    ) -> None:
        if max_batch < 1:
            raise ServiceError("max_batch must be >= 1")
        if max_delay is not None and max_delay < 0.0:
            raise ServiceError("max_delay must be non-negative (or None)")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._queues: "dict[object, deque[EncodeRequest]]" = {}

    # -- enqueue -------------------------------------------------------------------

    def add(self, request: EncodeRequest) -> bool:
        """Queue ``request`` under its key; True if the size trigger fired."""
        queue = self._queues.setdefault(request.key, deque())
        queue.append(request)
        return len(queue) >= self.max_batch

    # -- flush triggers ------------------------------------------------------------

    def due_keys(self, now: float, exclude=()) -> list:
        """Keys with an expired trigger: queue deadline or request deadline.

        A key is due when its oldest request has waited ``max_delay``,
        *or* when any of its queued requests carries a per-request
        ``deadline`` that has passed — an expired request must be
        drained promptly so its ticket fails with
        :class:`~repro.errors.DeadlineExceededError` instead of rotting
        in the queue.  A deadline landing *exactly* at ``now`` is due
        (``>=``), so a flusher that slept precisely until
        :meth:`next_deadline` always finds the key it woke for — never
        a zero-second re-sleep loop.  ``max_delay == 0.0`` means "due
        at the first opportunity".  Keys in ``exclude`` (same contract
        as :meth:`next_deadline`: a flush already in flight, whose
        completion re-triggers dispatch anyway) are never reported due,
        so a busy key is filtered once here rather than re-collected
        and re-skipped by every flusher wakeup.
        """
        due = []
        for key, queue in self._queues.items():
            if not queue or key in exclude:
                continue
            if (
                self.max_delay is not None
                and now - queue[0].submitted_at >= self.max_delay
            ):
                due.append(key)
            elif any(request.expired(now) for request in queue):
                due.append(key)
        return due

    def next_deadline(self, exclude=()) -> "float | None":
        """Absolute time the earliest pending deadline expires.

        Considers both the ``max_delay`` queue deadline and every
        queued request's own ``deadline``.  ``None`` when no deadline
        is armed — which tells a background flusher to block
        indefinitely until new work arrives instead of busy-polling.
        Keys in ``exclude`` (e.g. those with a flush already in flight,
        whose completion wakes the flusher anyway) don't arm a wakeup;
        without this an overdue-but-busy key would clamp the timeout to
        zero and spin the flusher.
        """
        candidates = []
        for key, queue in self._queues.items():
            if not queue or key in exclude:
                continue
            if self.max_delay is not None:
                candidates.append(queue[0].submitted_at + self.max_delay)
            candidates.extend(
                request.deadline
                for request in queue
                if request.deadline is not None
            )
        return min(candidates) if candidates else None

    def full_keys(self) -> list:
        """Keys whose queue has reached ``max_batch``."""
        return [
            key
            for key, queue in self._queues.items()
            if len(queue) >= self.max_batch
        ]

    # -- drain ---------------------------------------------------------------------

    def drain(self, key, now: "float | None" = None) -> list[EncodeRequest]:
        """Remove and return up to ``max_batch`` oldest requests for ``key``.

        With ``now`` given, deadline-expired requests are also culled
        from *any* queue position and returned alongside the batch:
        an expired request queued behind a full batch must not survive
        the flush and wait a whole extra flush cycle — the flush's
        expiry sweep (:meth:`EncodingService._expire_requests`) fails
        its ticket immediately instead.  The flushed batch itself
        therefore stays <= ``max_batch`` *live* requests: culled
        stragglers never reach the pipeline.  ``now=None`` (e.g. a
        shutdown drain that rejects everything) keeps the classic
        oldest-``max_batch`` slice.
        """
        queue = self._queues.get(key)
        if not queue:
            return []
        batch = [queue.popleft() for _ in range(min(len(queue), self.max_batch))]
        if now is not None and queue and any(r.expired(now) for r in queue):
            batch.extend(r for r in queue if r.expired(now))
            survivors = [r for r in queue if not r.expired(now)]
            queue.clear()
            queue.extend(survivors)
        if not queue:
            del self._queues[key]
        return batch

    # -- introspection -------------------------------------------------------------

    def pending(self, key=None) -> int:
        if key is not None:
            return len(self._queues.get(key, ()))
        return sum(len(queue) for queue in self._queues.values())

    def pending_keys(self) -> list:
        return [key for key, queue in self._queues.items() if queue]

    def oldest_age(self, now: float) -> float:
        """Age of the oldest queued request, clamped to ``>= 0.0``.

        Empty queues age 0.0 (nothing is waiting, so nothing is old),
        and a request stamped *after* ``now`` — a stale ``now`` read
        racing a concurrent submit, or a rewound fake clock — also
        reports 0.0 instead of a negative age that would confuse
        deadline arithmetic.
        """
        oldest = [
            queue[0].submitted_at
            for queue in self._queues.values()
            if queue
        ]
        return max(0.0, now - min(oldest)) if oldest else 0.0

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(max_batch={self.max_batch}, "
            f"max_delay={self.max_delay}, pending={self.pending()})"
        )
