"""Process-pool execution backend: a fleet of encoder-replica workers.

ROADMAP item 2's next step past the single-GIL
:class:`~repro.service.async_service.ThreadBackend`: fine-tuning is
CPU-bound numpy/scipy that holds the GIL, so threaded workers serialize
on compute even when they interleave on I/O.  :class:`ProcessBackend`
keeps the *entire* thread-backend control plane — flusher, worker
threads, micro-batcher, tickets, admission, deadlines, retries,
breakers, flush-timeout abandonment — and moves only the data plane:
the pipeline run inside :meth:`EncodingService._execute_flush` crosses
to a worker process.

Architecture
------------
* **Replicas, sharded routing.**  Every worker process receives *all*
  registered encoder bundles at spawn (the JSON serialization is
  float-exact, so replica numerics are bit-identical to the parent's)
  and rebuilds them once; ``register()``/``load()`` after start ship
  the new bundle to the live fleet.  Each key is *routed* to one worker
  by a stable content hash (``ServiceConfig.shard_strategy``), so a
  key's flushes always execute on the same replica — and because every
  worker holds every bundle, a death just reroutes the key to a
  survivor instantly while the replacement spawns.
* **Wire-format data plane.**  A flush crosses as
  ``("flush", key, request_ids, (B, D) samples)`` and returns as one
  kind-4 :func:`repro.io.wire.dump_encoded_batch` record (thetas +
  packed synthesis + per-sample metadata).  The parent decodes by
  wrapping rows of the reconstructed
  :class:`~repro.transpile.bound.BoundCircuitBatch` through the same
  ``template._wrap_result`` call ``bind_batch`` makes and recomputes
  the (deterministic) target rows locally — responses are float-bit
  identical to ``encode_batch`` on the same samples.
* **Death is real here.**  A worker process dying mid-flush (SIGKILL'd
  by an injected ``kind="death"`` fault, OOM-killed, crashed) surfaces
  as a broken pipe; :meth:`run_pipeline` marks the slot dead, starts a
  respawner, and raises
  :class:`~repro.service.resilience.WorkerDeath` — the shared worker
  loop requeues the batch at the head of the queue (FIFO order, and
  hence numerics, preserved) and the retry re-executes on a live
  replica.  Zero tickets are lost.

One pipe per worker, one lock per pipe: a slot serves one exchange at a
time, so request/response pairs never interleave.  The per-key /
per-pipeline single-flight invariants are enforced upstream by the
flusher exactly as for threads.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading
import time

import numpy as np

from repro.core.serialization import encoder_from_dict, encoder_to_dict
from repro.errors import RemoteFlushError, ServiceError
from repro.io.wire import dump_encoded_batch, load_encoded_batch
from repro.service.async_service import (
    _RUNNING,
    _STOPPED,
    _STOPPING,
    ThreadBackend,
)
from repro.service.resilience import WorkerDeath

#: The fleet always uses the ``spawn`` start method: ``fork`` would
#: duplicate the parent's threads' locks (the service lock could be
#: held mid-fork -> child deadlock) and its numpy/BLAS state; spawn
#: gives every worker a clean interpreter whose only coupling to the
#: parent is the pipe and the shipped bundles.
_START_METHOD = "spawn"

#: How long run_pipeline waits for *some* worker to be alive before
#: declaring the fleet lost (all workers dead and respawns not landing).
_REROUTE_POLL = 0.05


def _stable_hash(text: str) -> int:
    """64-bit content hash that is stable across processes and runs.

    Python's ``hash()`` is salted per process (PYTHONHASHSEED), which
    would shard keys differently in every parent — useless for
    reasoning about placement and for tests.  md5 is overkill-stable
    and everywhere.
    """
    return int.from_bytes(
        hashlib.md5(text.encode("utf-8")).digest()[:8], "little"
    )


def _describe_error(exc: Exception) -> tuple:
    """Picklable summary of a worker-side failure."""
    return (
        type(exc).__name__,
        str(exc),
        bool(getattr(exc, "transient", False)),
    )


def _worker_main(conn, index: int, use_template: bool, bundles) -> None:
    """Entry point of one worker process.

    Rebuilds every shipped bundle into a fitted-encoder replica, then
    serves ``register``/``flush``/``stop`` messages until the pipe
    closes.  All resilience logic (retries, deadlines, breakers, fault
    injection) lives in the parent: the worker is a pure compute
    server, and any exception it hits is reported, never raised.
    """
    registry = {}
    try:
        for key, payload, backend in bundles:
            registry[key] = encoder_from_dict(payload, backend)
    except Exception as exc:  # unreadable bundle: report, don't die
        conn.send(("spawn-error", index, _describe_error(exc)))
        return
    conn.send(("ready", index, None))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away; nothing to clean up
        kind = message[0]
        if kind == "stop":
            conn.send(("stopped", index, None))
            return
        if kind == "register":
            _, key, payload, backend = message
            try:
                registry[key] = encoder_from_dict(payload, backend)
                conn.send(("registered", key, None))
            except Exception as exc:
                conn.send(("error", key, _describe_error(exc)))
            continue
        if kind == "flush":
            _, key, request_ids, samples = message
            try:
                encoder = registry.get(key)
                if encoder is None:
                    raise ServiceError(
                        f"worker {index} holds no replica for key {key!r} "
                        f"(replicas: {sorted(map(repr, registry))})"
                    )
                # The replica's stages are rebuilt from a float-exact
                # snapshot of the parent's, so this run is bit-identical
                # to the parent running encode_batch on these samples.
                encoded, report = encoder.pipeline.run_reported(
                    np.asarray(samples, dtype=float),
                    use_template=use_template,
                )
                blob = dump_encoded_batch(
                    encoded, report, include_synthesis=True
                )
                conn.send(("encoded", key, blob))
            except Exception as exc:
                conn.send(("error", key, _describe_error(exc)))
            continue
        conn.send(("error", None, ("ServiceError", f"unknown message kind {kind!r}", False)))


class _WorkerSlot:
    """One worker process + its pipe, guarded by a per-slot lock."""

    __slots__ = ("index", "proc", "conn", "lock", "alive", "generation")

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc = None
        self.conn = None
        #: Serializes send/recv exchanges on the pipe (one exchange at
        #: a time; the pipe is not multiplexed).
        self.lock = threading.Lock()
        self.alive = False
        #: Bumped on every successful (re)spawn; lets a late death
        #: report for generation N ignore a slot already respawned as
        #: N+1 instead of killing the healthy replacement.
        self.generation = 0


class ProcessBackend(ThreadBackend):
    """Worker-process fleet behind the shared flusher/worker plumbing.

    Created by ``EncodingService(backend="process", workers=N)``; not
    constructed directly.  Subclasses :class:`ThreadBackend` for the
    whole control plane and overrides only the execution seam
    (:meth:`run_pipeline`), registration shipping, injected-death
    realization, and fleet lifecycle.
    """

    owns_execution = True

    def __init__(self, service, workers: int) -> None:
        super().__init__(service, workers)
        self._ctx = multiprocessing.get_context(_START_METHOD)
        self._slots = [_WorkerSlot(i) for i in range(workers)]
        #: Guards slot alive/proc/conn/generation flips and _bundles.
        #: Strictly leaf: never acquired while holding the service lock
        #: order is always fleet-lock -> nothing.
        self._fleet_lock = threading.Lock()
        #: key -> (payload, hardware backend): the current bundle set,
        #: shipped whole to every spawn/respawn.
        self._bundles: dict = {}
        #: Worker *processes* respawned after deaths (the inherited
        #: _respawns counts replacement threads).
        self.process_respawns = 0
        self._respawn_failures = 0
        #: Set by _shutdown_fleet before it starts reaping, cleared by
        #: _spawn_fleet: an in-flight respawner that commits after the
        #: teardown swept its slot would otherwise leak a live process.
        self._fleet_closed = True

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Spawn the process fleet, then the flusher/worker threads.

        The fleet comes up first (slow: each worker is a fresh
        interpreter importing numpy/scipy and rebuilding every bundle)
        so that by the time submissions are accepted every key routes
        to a live replica.  A worker failing its ready handshake within
        ``spawn_timeout`` aborts the start and tears the fleet down.
        """
        if self._state in (_RUNNING, _STOPPING):
            # Mirrors ThreadBackend.start's double-start rejection
            # before paying the fleet spawn.
            raise ServiceError(
                "process backend is already running; stop() it before "
                "starting again"
            )
        with self._fleet_lock:
            for key, encoder in self.service.registry.items():
                self._bundles[key] = (
                    encoder_to_dict(encoder),
                    encoder.backend,
                )
        try:
            self._spawn_fleet()
            super().start()
        except BaseException:
            self._shutdown_fleet()
            raise

    def stop(self, drain: bool = True, timeout: "float | None" = None) -> None:
        """Drain/reject via the shared control plane, then stop the fleet."""
        try:
            super().stop(drain=drain, timeout=timeout)
        finally:
            self._shutdown_fleet()

    def on_register(self, key, encoder) -> None:
        """Record the bundle and ship it to every live worker.

        Called under no lock by the service's ``register``/``load``.
        Serialization happens once here; respawns reuse the recorded
        payload.  Shipping waits ``handshake_timeout`` per worker for
        the acknowledgement (a worker mid-flush acks after it).
        """
        payload = encoder_to_dict(encoder)
        hw_backend = encoder.backend
        with self._fleet_lock:
            self._bundles[key] = (payload, hw_backend)
            slots = [slot for slot in self._slots if slot.alive]
        timeout = self.service.config.handshake_timeout
        for slot in slots:
            with slot.lock:
                if not slot.alive:
                    continue  # died while we waited for the pipe
                try:
                    slot.conn.send(("register", key, payload, hw_backend))
                    if not slot.conn.poll(timeout):
                        raise ServiceError(
                            f"worker {slot.index} did not acknowledge "
                            f"bundle {key!r} within {timeout}s"
                        )
                    kind, _, info = slot.conn.recv()
                except (EOFError, OSError, BrokenPipeError):
                    self._mark_dead_and_respawn(slot, slot.generation)
                    continue
            if kind == "error":
                etype, msg, _ = info
                raise ServiceError(
                    f"worker {slot.index} rejected bundle {key!r}: "
                    f"{etype}: {msg}"
                )

    # -- sharding ------------------------------------------------------------------

    def shard_of(self, key) -> "_WorkerSlot | None":
        """The alive slot that serves ``key`` right now, or None.

        Rendezvous (default): highest stable hash of ``(key, worker)``
        over the alive fleet — a death moves only the dead worker's
        keys, and a respawn moves them back.  Modulo: hash the key over
        the *full* fleet width and probe forward past dead slots.
        """
        with self._fleet_lock:
            return self._shard_of_locked(key)

    def _shard_of_locked(self, key):
        alive = [slot for slot in self._slots if slot.alive]
        if not alive:
            return None
        if self.service.config.shard_strategy == "modulo":
            start = _stable_hash(repr(key)) % len(self._slots)
            for offset in range(len(self._slots)):
                slot = self._slots[(start + offset) % len(self._slots)]
                if slot.alive:
                    return slot
        return max(
            alive,
            key=lambda slot: _stable_hash(f"{key!r}#{slot.index}"),
        )

    def shard_map(self) -> dict:
        """``key -> worker index`` for every registered key."""
        keys = self.service.registry.keys()
        with self._fleet_lock:
            return {
                key: slot.index
                for key in keys
                for slot in [self._shard_of_locked(key)]
                if slot is not None
            }

    # -- the execution seam --------------------------------------------------------

    def run_pipeline(self, key, request_ids: list, samples: np.ndarray):
        """Execute one flush on the fleet; the process data plane.

        Ships ``(key, request_ids, samples)`` to the routed worker and
        decodes its kind-4 wire response against the parent's template
        — the return value is ``run_reported``'s, float-bit identical
        to running the pipeline here.  A broken pipe (the worker died
        under us) marks the slot dead, kicks off the respawn, and
        raises :class:`WorkerDeath` so the shared worker loop requeues
        the batch in order.
        """
        slot = self._await_routable(key)
        with slot.lock:
            if not slot.alive:
                # Killed between routing and lock acquisition; the
                # requeue path re-routes to a survivor.
                raise WorkerDeath(
                    f"worker process {slot.index} died before flush of "
                    f"key {key!r} was sent"
                )
            try:
                slot.conn.send(("flush", key, list(request_ids), samples))
                kind, _, payload = slot.conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                self._mark_dead_and_respawn(slot, slot.generation)
                raise WorkerDeath(
                    f"worker process {slot.index} died mid-flush of "
                    f"{len(request_ids)} request(s) for key {key!r}"
                ) from None
        if kind == "error":
            etype, msg, transient = payload
            raise RemoteFlushError(
                f"worker {slot.index} flush of {len(request_ids)} "
                f"request(s) for key {key!r} failed: {etype}: {msg}",
                transient=transient,
            )
        if kind != "encoded":
            raise ServiceError(
                f"worker {slot.index} sent unexpected reply {kind!r} "
                f"to a flush"
            )
        encoder = self.service.registry.get(key)
        template = encoder.pipeline.lower.template()
        # Targets never cross the wire; prepare() is deterministic, so
        # recomputing them here reproduces the worker's bit for bit.
        targets = encoder.pipeline.prepare(np.asarray(samples, dtype=float))
        return load_encoded_batch(payload, template=template, targets=targets)

    def _await_routable(self, key) -> _WorkerSlot:
        """Route ``key``, waiting out a window where the whole fleet is
        dead (every worker killed at once, respawns still importing
        numpy).  Gives up after ``spawn_timeout`` — at that point the
        fleet is genuinely lost and the flush fails terminally.
        """
        deadline = time.monotonic() + self.service.config.spawn_timeout
        while True:
            slot = self.shard_of(key)
            if slot is not None:
                return slot
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"no alive worker process to serve key {key!r}: the "
                    f"whole fleet is down and respawns did not land "
                    f"within spawn_timeout="
                    f"{self.service.config.spawn_timeout}s"
                )
            time.sleep(_REROUTE_POLL)

    # -- death & respawn -----------------------------------------------------------

    def _on_worker_death(self, key) -> None:
        """Make an injected ``kind="death"`` real: SIGKILL ``key``'s worker.

        Fired by the shared worker loop when the ``"worker"`` fault
        site raises :class:`WorkerDeath` — under this backend the
        simulation escalates to an actual ``SIGKILL`` of the routed
        process (no cleanup, no goodbye: the hard-failure mode), whose
        respawn + rerouting then runs the same machinery a genuine
        crash would.
        """
        with self._fleet_lock:
            slot = self._shard_of_locked(key)
            if slot is None:
                return
            generation = slot.generation
            proc = slot.proc
        if proc is not None:
            proc.kill()
        self._mark_dead_and_respawn(slot, generation)

    def _mark_dead_and_respawn(self, slot: _WorkerSlot, generation: int) -> None:
        """Flip a slot dead (idempotent per generation) and respawn it.

        The generation guard makes late death reports harmless: if the
        slot already respawned (generation advanced), the report is
        about the *previous* process and must not touch the healthy
        replacement.  The respawner runs on its own daemon thread —
        spawning imports numpy in the child, seconds of work that must
        not block the flusher or a worker thread.
        """
        with self._fleet_lock:
            if slot.generation != generation or not slot.alive:
                return
            slot.alive = False
        threading.Thread(
            target=self._respawn,
            args=(slot, generation),
            name=f"enqode-procspawn-{slot.index}",
            daemon=True,
        ).start()

    def _respawn(self, slot: _WorkerSlot, generation: int) -> None:
        if self._state == _STOPPED:
            return  # torn down while the death was in flight
        try:
            proc, conn = self._spawn_worker(slot.index)
        except Exception:
            with self._fleet_lock:
                self._respawn_failures += 1
            return
        with self._fleet_lock:
            if (
                self._fleet_closed
                or slot.alive
                or slot.generation != generation
            ):
                # Lost a respawn race (only one replacement may win) or
                # the fleet was torn down while we were spawning.
                proc.kill()
                return
            old_conn = slot.conn
            slot.proc = proc
            slot.conn = conn
            slot.generation = generation + 1
            slot.alive = True
            self.process_respawns += 1
        if old_conn is not None:
            try:
                old_conn.close()
            except OSError:
                pass
        # Keys rerouted away during the dead window route back here on
        # their next flush; wake the flusher in case work queued up.
        with self._work:
            self._work.notify_all()

    # -- fleet spawn/teardown ------------------------------------------------------

    def _spawn_worker(self, index: int):
        """Start one worker process and complete its ready handshake."""
        with self._fleet_lock:
            bundles = [
                (key, payload, hw_backend)
                for key, (payload, hw_backend) in self._bundles.items()
            ]
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, index, self.service.use_template, bundles),
            name=f"enqode-procworker-{index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        timeout = self.service.config.spawn_timeout
        try:
            if not parent_conn.poll(timeout):
                raise ServiceError(
                    f"worker process {index} did not complete its ready "
                    f"handshake within spawn_timeout={timeout}s"
                )
            kind, _, info = parent_conn.recv()
        except (EOFError, OSError) as exc:
            proc.kill()
            raise ServiceError(
                f"worker process {index} died during spawn: {exc}"
            ) from exc
        except BaseException:
            proc.kill()
            raise
        if kind != "ready":
            proc.kill()
            detail = "" if info is None else f": {info[0]}: {info[1]}"
            raise ServiceError(
                f"worker process {index} failed to come up "
                f"({kind}{detail})"
            )
        return proc, parent_conn

    def _spawn_fleet(self) -> None:
        """Bring every slot up; all-or-nothing.

        Processes are started together (their interpreter+import
        startup overlaps) and then each handshake is awaited, so a
        fleet of N costs roughly one worker's startup, not N.
        """
        started = []
        try:
            with self._fleet_lock:
                self._fleet_closed = False
            for slot in self._slots:
                with self._fleet_lock:
                    bundles = [
                        (key, payload, hw_backend)
                        for key, (payload, hw_backend) in self._bundles.items()
                    ]
                parent_conn, child_conn = self._ctx.Pipe()
                proc = self._ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        slot.index,
                        self.service.use_template,
                        bundles,
                    ),
                    name=f"enqode-procworker-{slot.index}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                started.append((slot, proc, parent_conn))
            deadline = time.monotonic() + self.service.config.spawn_timeout
            for slot, proc, conn in started:
                remaining = max(deadline - time.monotonic(), 0.0)
                if not conn.poll(remaining):
                    raise ServiceError(
                        f"worker process {slot.index} did not complete "
                        f"its ready handshake within spawn_timeout="
                        f"{self.service.config.spawn_timeout}s"
                    )
                try:
                    kind, _, info = conn.recv()
                except (EOFError, OSError) as exc:
                    raise ServiceError(
                        f"worker process {slot.index} died during spawn "
                        f"(a '__main__' script spawning workers at import "
                        f"time must guard service start with "
                        f"`if __name__ == '__main__':`)"
                    ) from exc
                if kind != "ready":
                    detail = (
                        "" if info is None else f": {info[0]}: {info[1]}"
                    )
                    raise ServiceError(
                        f"worker process {slot.index} failed to come up "
                        f"({kind}{detail})"
                    )
                with self._fleet_lock:
                    slot.proc = proc
                    slot.conn = conn
                    slot.generation += 1
                    slot.alive = True
        except BaseException:
            for _, proc, conn in started:
                proc.kill()
                try:
                    conn.close()
                except OSError:
                    pass
            with self._fleet_lock:
                self._fleet_closed = True
                for slot in self._slots:
                    slot.alive = False
                    slot.proc = None
                    slot.conn = None
            raise

    def _shutdown_fleet(self) -> None:
        """Stop every worker: polite ``stop`` message, then SIGKILL."""
        with self._fleet_lock:
            self._fleet_closed = True
        for slot in self._slots:
            with self._fleet_lock:
                proc, conn = slot.proc, slot.conn
                alive = slot.alive
                slot.alive = False
                slot.proc = None
                slot.conn = None
            if proc is None:
                continue
            if alive and conn is not None:
                with slot.lock:
                    try:
                        conn.send(("stop",))
                        conn.poll(1.0)  # best-effort "stopped" ack
                    except (EOFError, OSError, BrokenPipeError):
                        pass
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass

    def __repr__(self) -> str:
        with self._fleet_lock:
            alive = sum(slot.alive for slot in self._slots)
        return (
            f"ProcessBackend(state={self._state!r}, "
            f"workers={self.num_workers}, alive={alive}, "
            f"respawns={self.process_respawns})"
        )


__all__ = ["ProcessBackend"]
