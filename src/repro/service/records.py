"""Typed request/response records for the online encoding service.

The serving layer talks in these records rather than bare numpy arrays:
every submitted sample becomes an :class:`EncodeRequest` stamped with a
monotonic submission time, every flushed request becomes an
:class:`EncodeResponse` carrying the :class:`~repro.core.pipeline.
EncodedSample` plus per-request accounting (end-to-end latency, the
micro-batch it rode in, optimizer work), and :class:`ServiceStats` is
the aggregate snapshot (:meth:`repro.service.EncodingService.stats`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import EncodedSample


@dataclass
class EncodeRequest:
    """One sample submitted to the service, awaiting a micro-batch flush.

    ``deadline`` is the *absolute* (service-clock) time after which the
    request must not be served — expired requests are failed with
    :class:`~repro.errors.DeadlineExceededError` before any pipeline
    work is spent on them (``None`` = no deadline).  ``attempts``
    counts flush retries this request has ridden through; it lives on
    the request (not the flush) so the retry budget stays per-ticket
    even when a worker death requeues the batch.
    """

    request_id: int
    key: int | str
    sample: np.ndarray
    submitted_at: float
    deadline: "float | None" = None
    attempts: int = 0

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def __repr__(self) -> str:
        return (
            f"EncodeRequest(id={self.request_id}, key={self.key!r}, "
            f"dim={self.sample.size})"
        )


@dataclass
class EncodeResponse:
    """One served embedding with its per-request accounting.

    ``latency`` is end-to-end (submit to flush completion, including
    queueing time in the micro-batcher); ``encoded.compile_time`` is the
    sample's even share of the batch's pipeline work.  ``batch_size``
    records how many requests rode in the same flush, and ``flush_id``
    which flush it was — a service-wide counter, so the concurrency
    tests can reconstruct the exact micro-batch partition the worker
    pool executed (responses sharing a ``flush_id`` were encoded
    together, and per key the ids are strictly increasing: one flush in
    flight per key, completed in submission order).

    ``degraded`` marks a load-shed response: admission control (see
    ``ServiceConfig.overload_policy``) served it by binding the routed
    cluster-centroid parameters *without* the finetune stage —
    microseconds of work, the centroid's lower fidelity, and
    ``flush_id == -1`` (it rode no micro-batch).
    """

    request_id: int
    key: int | str
    encoded: EncodedSample
    submitted_at: float
    completed_at: float
    batch_size: int
    flush_id: int = -1
    degraded: bool = False

    @property
    def latency(self) -> float:
        """Seconds from submission to flush completion."""
        return self.completed_at - self.submitted_at

    @property
    def fidelity(self) -> float:
        return self.encoded.ideal_fidelity

    @property
    def cluster_index(self) -> int:
        return self.encoded.cluster_index

    @property
    def circuit(self):
        """The hardware-native embedding circuit.

        On the template fast path this is a lazy compact-IR view
        (:class:`repro.transpile.bound.BoundCircuit`): the response
        holds packed bind arrays — a few hundred bytes per sample —
        and only builds instruction objects if the caller iterates the
        circuit; simulation answers straight off the arrays.
        """
        return self.encoded.circuit

    def to_qasm(self, version: int = 2) -> str:
        """This response's circuit as OpenQASM 2 or 3 text.

        For handing the embedding to an external runner; the text
        round-trips through :func:`repro.io.qasm.from_qasm` with
        float-bit identical parameters.
        """
        # Imported lazily: repro.io sits beside the service layer and is
        # only needed when a caller actually exports.
        from repro.io.qasm import to_qasm

        return to_qasm(self.circuit, version=version)

    def to_wire(self) -> bytes:
        """This response's circuit as one compact binary wire record.

        On the template fast path this is a single-row template-bound
        record (fingerprint + one theta row — a few hundred bytes);
        decode it with :meth:`repro.service.registry.EncoderRegistry.
        rehydrate_wire` on any process holding the same models.
        """
        from repro.io.wire import dump_circuit

        return dump_circuit(self.circuit)

    def __repr__(self) -> str:
        return (
            f"EncodeResponse(id={self.request_id}, key={self.key!r}, "
            f"fidelity={self.fidelity:.4f}, "
            f"latency={self.latency * 1e3:.2f}ms, batch={self.batch_size})"
        )


@dataclass
class ServiceStats:
    """Aggregate service-level accounting snapshot.

    Latency percentiles are end-to-end request latencies (queueing +
    encoding) over the service's most recent window (see
    :data:`repro.service.service.STATS_WINDOW`); counts and means are
    exact over all served traffic.  ``evals_per_sample`` averages the
    optimizer's objective evaluations attributed to each sample — its
    unit depends on ``EnQodeConfig.online_batch_engine`` (the per-row
    drive counts each row's own evaluations, the stacked drive splits
    whole-batch scipy passes evenly), so compare it only within one
    engine setting; the
    template counters are the transpile-cache hits/misses incurred by
    this service's flushes only, and ``template_binds`` counts the
    *rows* this service lowered through a cached template — one per
    sample of every template-mode flush, whether the flush bound them
    one at a time or through a single vectorized ``bind_batch`` sweep.

    Under the ``"thread"`` backend several flushes race: each flush
    applies its whole contribution (counts, sums, and the latency-window
    appends feeding p50/p95) in one locked step, so a snapshot never
    observes a half-applied flush — percentiles are always computed
    over complete flushes.  ``backend`` names the execution backend the
    snapshot came from and ``flusher_wakeups`` counts background-flusher
    wakeups (0 under ``"sync"``) — a flusher honoring a deadline by
    sleeping wakes O(flushes) times, a busy-waiting one diverges.

    The resilience counters follow the admission/flush paths:
    ``rejected`` counts submissions refused at the front door (queue
    budget with the ``"reject"`` policy, or an open circuit breaker),
    ``shed_degraded`` counts over-budget submissions served by the
    finetune-skipped degraded path (these also count in
    ``requests_completed``), ``retries`` counts flush retry attempts,
    ``breaker_opens`` counts closed/half-open → open transitions across
    all keys, and ``deadline_expired`` counts requests failed because
    their deadline passed (also counted in ``requests_failed``).
    Conservation: every accepted-or-refused submission resolves —
    ``requests_submitted == requests_completed + requests_failed +
    rejected + requests_pending`` at any quiescent point.
    """

    requests_submitted: int = 0
    requests_completed: int = 0
    requests_failed: int = 0
    requests_pending: int = 0
    rejected: int = 0
    shed_degraded: int = 0
    retries: int = 0
    breaker_opens: int = 0
    deadline_expired: int = 0
    num_flushes: int = 0
    mean_batch_size: float = float("nan")
    p50_latency: float = float("nan")
    p95_latency: float = float("nan")
    mean_latency: float = float("nan")
    evals_per_sample: float = float("nan")
    mean_fidelity: float = float("nan")
    template_cache_hits: int = 0
    template_cache_misses: int = 0
    template_binds: int = 0
    per_key_completed: dict = field(default_factory=dict)
    #: Samples classified through :meth:`repro.service.service.
    #: EncodingService.predict` (inline batched inference; separate from
    #: the encode request counters above).
    predictions_completed: int = 0
    backend: str = "sync"
    flusher_wakeups: int = 0

    def summary(self) -> str:
        """One human-readable line (what the examples print)."""
        line = (
            f"{self.requests_completed}/{self.requests_submitted} served "
            f"in {self.num_flushes} flushes "
            f"(mean batch {self.mean_batch_size:.1f}), "
            f"latency p50 {self.p50_latency * 1e3:.2f}ms "
            f"p95 {self.p95_latency * 1e3:.2f}ms, "
            f"{self.evals_per_sample:.1f} evals/sample, "
            f"mean fidelity {self.mean_fidelity:.4f}, "
            f"template cache {self.template_cache_hits} hits / "
            f"{self.template_cache_misses} misses, "
            f"{self.template_binds} template binds"
        )
        resilience = []
        if self.rejected:
            resilience.append(f"{self.rejected} rejected")
        if self.shed_degraded:
            resilience.append(f"{self.shed_degraded} shed degraded")
        if self.retries:
            resilience.append(f"{self.retries} retries")
        if self.breaker_opens:
            resilience.append(f"{self.breaker_opens} breaker opens")
        if self.deadline_expired:
            resilience.append(f"{self.deadline_expired} deadline expired")
        if resilience:
            line += ", " + ", ".join(resilience)
        return line

    def to_metrics(self, prefix: str = "enqode") -> str:
        """This snapshot in Prometheus text exposition format.

        Scrape-ready: counters get a ``_total`` suffix, latency
        percentiles export as summary quantiles, per-key completions as
        a labelled counter family.  No dependencies — the exposition
        format is plain text — and NaN-valued gauges (an idle service)
        are simply omitted.  Serve the returned string with content
        type ``text/plain; version=0.0.4``.
        """

        def esc(value) -> str:
            return (
                str(value)
                .replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
            )

        lines: list[str] = []

        def emit(name, kind, help_text, value, labels="") -> None:
            if isinstance(value, float) and not np.isfinite(value):
                return
            lines.append(f"# HELP {prefix}_{name} {help_text}")
            lines.append(f"# TYPE {prefix}_{name} {kind}")
            lines.append(f"{prefix}_{name}{labels} {value}")

        emit(
            "requests_submitted_total", "counter",
            "Submissions accepted or refused by submit().",
            self.requests_submitted,
        )
        emit(
            "requests_completed_total", "counter",
            "Requests served (degraded responses included).",
            self.requests_completed,
        )
        emit(
            "requests_failed_total", "counter",
            "Requests whose ticket resolved with an error.",
            self.requests_failed,
        )
        emit(
            "requests_rejected_total", "counter",
            "Submissions refused fast: queue budget or open breaker.",
            self.rejected,
        )
        emit(
            "requests_shed_degraded_total", "counter",
            "Over-budget submissions served by the finetune-skipped path.",
            self.shed_degraded,
        )
        emit(
            "requests_deadline_expired_total", "counter",
            "Requests failed because their deadline passed.",
            self.deadline_expired,
        )
        emit(
            "flush_retries_total", "counter",
            "Flush retry attempts after transient failures.",
            self.retries,
        )
        emit(
            "breaker_opens_total", "counter",
            "Circuit-breaker open transitions across all keys.",
            self.breaker_opens,
        )
        emit(
            "flushes_total", "counter",
            "Micro-batch flushes executed.",
            self.num_flushes,
        )
        emit(
            "template_binds_total", "counter",
            "Rows lowered through a cached transpile template.",
            self.template_binds,
        )
        emit(
            "template_cache_hits_total", "counter",
            "Template-cache hits incurred by this service's flushes.",
            self.template_cache_hits,
        )
        emit(
            "template_cache_misses_total", "counter",
            "Template-cache misses incurred by this service's flushes.",
            self.template_cache_misses,
        )
        emit(
            "predictions_total", "counter",
            "Samples classified through predict().",
            self.predictions_completed,
        )
        emit(
            "flusher_wakeups_total", "counter",
            "Background-flusher wakeups (0 under the sync backend).",
            self.flusher_wakeups,
        )
        emit(
            "requests_pending", "gauge",
            "Requests queued in the micro-batcher right now.",
            self.requests_pending,
        )
        emit(
            "mean_batch_size", "gauge",
            "Mean requests per flush.",
            self.mean_batch_size,
        )
        emit(
            "mean_fidelity", "gauge",
            "Mean ideal fidelity of served embeddings.",
            self.mean_fidelity,
        )
        emit(
            "evals_per_sample", "gauge",
            "Mean optimizer objective evaluations per served sample.",
            self.evals_per_sample,
        )
        quantiles = [
            ("0.5", self.p50_latency),
            ("0.95", self.p95_latency),
        ]
        finite = [(q, v) for q, v in quantiles if np.isfinite(v)]
        if finite:
            lines.append(
                f"# HELP {prefix}_request_latency_seconds "
                "End-to-end request latency over the recent window."
            )
            lines.append(f"# TYPE {prefix}_request_latency_seconds summary")
            for quantile, value in finite:
                lines.append(
                    f"{prefix}_request_latency_seconds"
                    f'{{quantile="{quantile}"}} {value}'
                )
        if self.per_key_completed:
            lines.append(
                f"# HELP {prefix}_requests_completed_by_key "
                "Requests served, by registry key."
            )
            lines.append(f"# TYPE {prefix}_requests_completed_by_key counter")
            for key, count in sorted(
                self.per_key_completed.items(), key=lambda kv: str(kv[0])
            ):
                lines.append(
                    f"{prefix}_requests_completed_by_key"
                    f'{{key="{esc(key)}"}} {count}'
                )
        emit(
            "backend_info", "gauge",
            "Execution backend of this snapshot (label carries the name).",
            1,
            labels=f'{{backend="{esc(self.backend)}"}}',
        )
        return "\n".join(lines) + "\n"
