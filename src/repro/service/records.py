"""Typed request/response records for the online encoding service.

The serving layer talks in these records rather than bare numpy arrays:
every submitted sample becomes an :class:`EncodeRequest` stamped with a
monotonic submission time, every flushed request becomes an
:class:`EncodeResponse` carrying the :class:`~repro.core.pipeline.
EncodedSample` plus per-request accounting (end-to-end latency, the
micro-batch it rode in, optimizer work), and :class:`ServiceStats` is
the aggregate snapshot (:meth:`repro.service.EncodingService.stats`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import EncodedSample


@dataclass
class EncodeRequest:
    """One sample submitted to the service, awaiting a micro-batch flush."""

    request_id: int
    key: int | str
    sample: np.ndarray
    submitted_at: float

    def __repr__(self) -> str:
        return (
            f"EncodeRequest(id={self.request_id}, key={self.key!r}, "
            f"dim={self.sample.size})"
        )


@dataclass
class EncodeResponse:
    """One served embedding with its per-request accounting.

    ``latency`` is end-to-end (submit to flush completion, including
    queueing time in the micro-batcher); ``encoded.compile_time`` is the
    sample's even share of the batch's pipeline work.  ``batch_size``
    records how many requests rode in the same flush, and ``flush_id``
    which flush it was — a service-wide counter, so the concurrency
    tests can reconstruct the exact micro-batch partition the worker
    pool executed (responses sharing a ``flush_id`` were encoded
    together, and per key the ids are strictly increasing: one flush in
    flight per key, completed in submission order).
    """

    request_id: int
    key: int | str
    encoded: EncodedSample
    submitted_at: float
    completed_at: float
    batch_size: int
    flush_id: int = -1

    @property
    def latency(self) -> float:
        """Seconds from submission to flush completion."""
        return self.completed_at - self.submitted_at

    @property
    def fidelity(self) -> float:
        return self.encoded.ideal_fidelity

    @property
    def cluster_index(self) -> int:
        return self.encoded.cluster_index

    @property
    def circuit(self):
        """The hardware-native embedding circuit.

        On the template fast path this is a lazy compact-IR view
        (:class:`repro.transpile.bound.BoundCircuit`): the response
        holds packed bind arrays — a few hundred bytes per sample —
        and only builds instruction objects if the caller iterates the
        circuit; simulation answers straight off the arrays.
        """
        return self.encoded.circuit

    def to_qasm(self, version: int = 2) -> str:
        """This response's circuit as OpenQASM 2 or 3 text.

        For handing the embedding to an external runner; the text
        round-trips through :func:`repro.io.qasm.from_qasm` with
        float-bit identical parameters.
        """
        # Imported lazily: repro.io sits beside the service layer and is
        # only needed when a caller actually exports.
        from repro.io.qasm import to_qasm

        return to_qasm(self.circuit, version=version)

    def to_wire(self) -> bytes:
        """This response's circuit as one compact binary wire record.

        On the template fast path this is a single-row template-bound
        record (fingerprint + one theta row — a few hundred bytes);
        decode it with :meth:`repro.service.registry.EncoderRegistry.
        rehydrate_wire` on any process holding the same models.
        """
        from repro.io.wire import dump_circuit

        return dump_circuit(self.circuit)

    def __repr__(self) -> str:
        return (
            f"EncodeResponse(id={self.request_id}, key={self.key!r}, "
            f"fidelity={self.fidelity:.4f}, "
            f"latency={self.latency * 1e3:.2f}ms, batch={self.batch_size})"
        )


@dataclass
class ServiceStats:
    """Aggregate service-level accounting snapshot.

    Latency percentiles are end-to-end request latencies (queueing +
    encoding) over the service's most recent window (see
    :data:`repro.service.service.STATS_WINDOW`); counts and means are
    exact over all served traffic.  ``evals_per_sample`` averages the
    optimizer's objective evaluations attributed to each sample — its
    unit depends on ``EnQodeConfig.online_batch_engine`` (the per-row
    drive counts each row's own evaluations, the stacked drive splits
    whole-batch scipy passes evenly), so compare it only within one
    engine setting; the
    template counters are the transpile-cache hits/misses incurred by
    this service's flushes only, and ``template_binds`` counts the
    *rows* this service lowered through a cached template — one per
    sample of every template-mode flush, whether the flush bound them
    one at a time or through a single vectorized ``bind_batch`` sweep.

    Under the ``"thread"`` backend several flushes race: each flush
    applies its whole contribution (counts, sums, and the latency-window
    appends feeding p50/p95) in one locked step, so a snapshot never
    observes a half-applied flush — percentiles are always computed
    over complete flushes.  ``backend`` names the execution backend the
    snapshot came from and ``flusher_wakeups`` counts background-flusher
    wakeups (0 under ``"sync"``) — a flusher honoring a deadline by
    sleeping wakes O(flushes) times, a busy-waiting one diverges.
    """

    requests_submitted: int = 0
    requests_completed: int = 0
    requests_failed: int = 0
    requests_pending: int = 0
    num_flushes: int = 0
    mean_batch_size: float = float("nan")
    p50_latency: float = float("nan")
    p95_latency: float = float("nan")
    mean_latency: float = float("nan")
    evals_per_sample: float = float("nan")
    mean_fidelity: float = float("nan")
    template_cache_hits: int = 0
    template_cache_misses: int = 0
    template_binds: int = 0
    per_key_completed: dict = field(default_factory=dict)
    #: Samples classified through :meth:`repro.service.service.
    #: EncodingService.predict` (inline batched inference; separate from
    #: the encode request counters above).
    predictions_completed: int = 0
    backend: str = "sync"
    flusher_wakeups: int = 0

    def summary(self) -> str:
        """One human-readable line (what the examples print)."""
        return (
            f"{self.requests_completed}/{self.requests_submitted} served "
            f"in {self.num_flushes} flushes "
            f"(mean batch {self.mean_batch_size:.1f}), "
            f"latency p50 {self.p50_latency * 1e3:.2f}ms "
            f"p95 {self.p95_latency * 1e3:.2f}ms, "
            f"{self.evals_per_sample:.1f} evals/sample, "
            f"mean fidelity {self.mean_fidelity:.4f}, "
            f"template cache {self.template_cache_hits} hits / "
            f"{self.template_cache_misses} misses, "
            f"{self.template_binds} template binds"
        )
