"""Encoder registry: named, versioned model bundles for the service.

The registry is the serving-side counterpart of the paper's "trained
cluster models are then stored" (Sec. III-C): each fitted
:class:`~repro.core.encoder.EnQodeEncoder` is registered under a key —
a dataset class label, a model id, anything hashable — and the service
routes every request to one of them.  Bundles persisted by
:mod:`repro.core.serialization` load directly into a registry slot, and
a version-mismatched bundle is rejected at load time with a
:class:`~repro.errors.SerializationError` (never mid-request).

This absorbs the serving half of
:class:`repro.core.multiclass.PerClassEnQode`: automatic routing uses
the same :func:`repro.core.multiclass.nearest_class` rule, and
:meth:`EncoderRegistry.from_per_class` adopts an already-trained
per-class collection wholesale.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core.encoder import EnQodeEncoder
from repro.core.multiclass import PerClassEnQode, nearest_class
from repro.core.serialization import load_encoder, save_encoder
from repro.errors import ServiceError
from repro.hardware.backend import Backend


class EncoderRegistry:
    """Fitted encoders keyed by class label / model id.

    Keys keep registration order, which makes automatic routing
    deterministic (ties go to the earliest-registered encoder, exactly
    like ``PerClassEnQode.encode_auto`` always has).
    """

    def __init__(self) -> None:
        self._encoders: dict = {}
        self._models: dict = {}

    # -- population ----------------------------------------------------------------

    def register(self, key, encoder: EnQodeEncoder) -> EnQodeEncoder:
        """Register a fitted encoder under ``key`` (replacing any holder)."""
        if not isinstance(encoder, EnQodeEncoder):
            raise ServiceError(
                f"registry holds EnQodeEncoder instances, got "
                f"{type(encoder).__name__}"
            )
        if not encoder.is_fitted:
            raise ServiceError(
                f"cannot register unfitted encoder under key {key!r}; "
                "fit it or load a stored bundle first"
            )
        self._encoders[key] = encoder
        return encoder

    def load(
        self, key, path: "str | pathlib.Path", backend: Backend
    ) -> EnQodeEncoder:
        """Load a stored model bundle into the ``key`` slot.

        Schema validation happens here, at load time: a bundle written
        by an incompatible build raises
        :class:`~repro.errors.SerializationError` naming the found and
        expected ``schema_version`` instead of failing on live traffic.
        """
        return self.register(key, load_encoder(path, backend))

    def save(self, key, path: "str | pathlib.Path") -> None:
        """Persist the ``key`` encoder as a versioned bundle."""
        save_encoder(self.get(key), path)

    # -- classifier bundles ----------------------------------------------------------

    def register_model(self, key, model) -> "object":
        """Register a trained embed+classify bundle under ``key``.

        The model's encoder simultaneously occupies the same ``key`` in
        the encoder table, so embedding traffic (``submit``) and
        prediction traffic (:meth:`repro.service.service.EncodingService.
        predict`) agree on what ``key`` means.
        """
        # Imported lazily: repro.qml sits above the service layer in the
        # package hierarchy, so a module-level import would be a cycle.
        from repro.qml.serving import QMLModel

        if not isinstance(model, QMLModel):
            raise ServiceError(
                f"registry model slots hold QMLModel instances, got "
                f"{type(model).__name__}"
            )
        self.register(key, model.encoder)
        self._models[key] = model
        return model

    def model(self, key):
        """The classifier bundle registered under ``key``."""
        try:
            return self._models[key]
        except KeyError:
            raise ServiceError(
                f"no model registered under key {key!r}; "
                f"available: {self.model_keys()}"
            ) from None

    def model_keys(self) -> list:
        return list(self._models)

    def load_model(self, key, path: "str | pathlib.Path", backend: Backend):
        """Load a stored classifier bundle into the ``key`` model slot
        (schema-checked at load time, like :meth:`load`)."""
        from repro.qml.serving import load_qml_model

        return self.register_model(key, load_qml_model(path, backend))

    def save_model(self, key, path: "str | pathlib.Path") -> None:
        """Persist the ``key`` classifier bundle as versioned JSON."""
        from repro.qml.serving import save_qml_model

        save_qml_model(self.model(key), path)

    def unregister(self, key) -> None:
        """Remove the ``key`` encoder (and any classifier bundle).

        The operational escape hatch for a poisoned bundle: a key whose
        circuit breaker keeps opening can be pulled out of routing
        without restarting the service.  Unknown keys raise
        :class:`~repro.errors.ServiceError` — silently "removing"
        nothing would mask an ops typo.
        """
        if key not in self._encoders:
            raise ServiceError(
                f"no encoder registered under key {key!r}; "
                f"available: {self.keys()}"
            )
        del self._encoders[key]
        self._models.pop(key, None)

    @classmethod
    def from_per_class(cls, per_class: PerClassEnQode) -> "EncoderRegistry":
        """Adopt a trained :class:`PerClassEnQode`'s encoders wholesale."""
        registry = cls()
        for label, encoder in per_class.encoders.items():
            registry.register(label, encoder)
        return registry

    # -- lookup --------------------------------------------------------------------

    def get(self, key) -> EnQodeEncoder:
        try:
            return self._encoders[key]
        except KeyError:
            raise ServiceError(
                f"no encoder registered under key {key!r}; "
                f"available: {self.keys()}"
            ) from None

    def keys(self) -> list:
        return list(self._encoders)

    def items(self):
        return self._encoders.items()

    def __len__(self) -> int:
        return len(self._encoders)

    def __contains__(self, key) -> bool:
        return key in self._encoders

    # -- wire-format rehydration -----------------------------------------------------

    def rehydrate_wire(self, data: bytes):
        """Decode a wire blob against the registered encoders' templates.

        Template-bound records (the compact kind
        :meth:`~repro.service.records.EncodeResponse.to_wire` and
        :meth:`~repro.service.service.EncodingService.export_wire`
        emit) carry only a template fingerprint plus bound angles; this
        resolves the fingerprint against every registered encoder's
        cached :class:`~repro.transpile.template.ParametricTemplate`
        and rebinds, returning a :class:`~repro.transpile.bound.
        BoundCircuitBatch` that simulates ``np.array_equal`` to the
        sender's.  Self-contained gate-stream records decode without any
        template and come back as circuits.  A fingerprint no registered
        encoder produces raises :class:`~repro.errors.
        SerializationError` naming the known fingerprints.
        """
        from repro.io.wire import load

        return load(data, template_resolver=self._template_for_fingerprint)

    def _template_for_fingerprint(self, fingerprint: bytes):
        from repro.errors import SerializationError

        known = {}
        for key, encoder in self._encoders.items():
            template = encoder.pipeline.lower.template()
            if template.fingerprint == fingerprint:
                return template
            known[key] = template.fingerprint.hex()
        raise SerializationError(
            f"wire fingerprint {fingerprint.hex()} matches no registered "
            f"encoder's template (known: {known or 'none — registry is empty'})"
        )

    # -- routing -------------------------------------------------------------------

    def route(self, sample: np.ndarray):
        """Key of the encoder whose nearest cluster center is closest.

        The multi-model extension of Sec. III-D's nearest-cluster rule
        (see :func:`repro.core.multiclass.nearest_class`); used by the
        service for submissions that do not name an encoder.  Only
        encoders whose amplitude width matches the sample participate —
        a sample no registered encoder can embed is a
        :class:`~repro.errors.ServiceError`, not a numpy broadcast
        failure.
        """
        if not self._encoders:
            raise ServiceError("cannot route: registry is empty")
        sample = np.asarray(sample, dtype=float).ravel()
        candidates = {
            key: encoder
            for key, encoder in self._encoders.items()
            if encoder.input_size == sample.size
        }
        if not candidates:
            widths = sorted(
                {e.input_size for e in self._encoders.values()}
            )
            raise ServiceError(
                f"no registered encoder accepts {sample.size}-feature "
                f"samples (registered input widths: {widths})"
            )
        return nearest_class(sample, candidates)

    def __repr__(self) -> str:
        return f"EncoderRegistry(keys={self.keys()})"
