"""Resilience primitives: fault injection, circuit breaking, retries.

Production serving has to survive the failure modes the happy path
never exercises — a stage raising mid-flush, a fine-tune taking 100x
its budget, a worker thread dying.  This module provides the three
small machines the service composes for that, plus the deterministic
chaos harness the tests drive them with:

* :class:`FaultInjector` — a seeded, rule-driven fault source threaded
  through :class:`repro.core.pipeline.EncodePipeline` (stage sites) and
  the service's flush/worker paths.  Rules fire exceptions, added
  latency, or worker death deterministically (``times``/``after``
  schedules) or probabilistically (one shared seeded RNG), so a chaos
  run is replayable: same rules + same seed + same arrival order =
  same faults.
* :class:`CircuitBreaker` — the classic closed → open → half-open
  state machine, one per registry key, driven by the service clock
  (injectable, so breaker timing is testable without sleeping).
* :class:`RetryPolicy` — exponential backoff with seeded full jitter
  and an injectable sleeper.

None of these spawn threads or keep global state; the owning service
serializes access under its own lock where needed (the injector and
policy carry small internal locks only for their RNG streams, which
worker threads share).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError, ServiceError

#: Sites the pipeline and service fire, in data-path order.  ``fire``
#: accepts any string (custom sites cost nothing), these are the ones
#: built-in code reaches.
FAULT_SITES = ("route", "finetune", "bind", "lower", "flush", "worker")


class InjectedFault(ReproError):
    """An error deliberately raised by a :class:`FaultInjector` rule.

    ``transient`` feeds the service's default retry classifier: a
    transient injected fault is retried (up to the budget), a permanent
    one fails its flush immediately — letting chaos tests exercise both
    paths with one exception type.
    """

    def __init__(self, site: str, transient: bool = True) -> None:
        kind = "transient" if transient else "permanent"
        super().__init__(f"injected {kind} fault at site {site!r}")
        self.site = site
        self.transient = transient


class WorkerDeath(Exception):
    """A flush's executing worker died (injected, or a real process).

    Deliberately *not* a :class:`~repro.errors.ReproError`: it models
    the worker itself dying, not the flush failing.  Two sources raise
    it: the ``"worker"`` fault site before the flush body runs (thread
    backend: the simulated classic), and the process backend's
    ``run_pipeline`` on a real worker-process death (SIGKILL'd by an
    injected ``kind="death"``, or genuinely crashed) detected as a
    broken pipe mid-flush.  Either way the backend's worker loop
    requeues the batch at the head of the queue — FIFO order, and
    hence numerics, preserved — and a replacement spawns.
    """


@dataclass
class FaultRule:
    """One deterministic-or-probabilistic fault schedule for a site.

    ``kind`` is ``"error"`` (raise :class:`InjectedFault`),
    ``"latency"`` (sleep ``latency`` seconds through the injector's
    sleeper), or ``"death"`` (raise :class:`WorkerDeath`; only valid at
    the ``"worker"`` site).  The rule skips its first ``after`` eligible
    calls, then fires at most ``times`` times (``None`` = forever), each
    time with ``probability`` (1.0 = always).  ``calls``/``fired`` are
    runtime counters chaos assertions can read.
    """

    site: str
    kind: str = "error"
    probability: float = 1.0
    times: "int | None" = None
    after: int = 0
    latency: float = 0.0
    transient: bool = True
    calls: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("error", "latency", "death"):
            raise ServiceError(
                f"fault kind must be 'error', 'latency', or 'death', "
                f"got {self.kind!r}"
            )
        if self.kind == "death" and self.site != "worker":
            raise ServiceError(
                "kind='death' only makes sense at site 'worker' (it "
                "models the worker dying, not a stage failing; under "
                "the process backend it SIGKILLs the routed worker "
                "process)"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ServiceError("probability must be in [0, 1]")
        if self.times is not None and self.times < 0:
            raise ServiceError("times must be >= 0 (or None for forever)")
        if self.after < 0:
            raise ServiceError("after must be >= 0")
        if self.latency < 0.0:
            raise ServiceError("latency must be non-negative")


class FaultInjector:
    """Seeded, rule-driven fault source for chaos testing.

    Thread through a service
    (``EncodingService(fault_injector=...)``) and it reaches every
    pipeline stage plus the flush and worker sites; ``fire(site)`` is a
    no-op unless a rule matches, so production code pays one attribute
    check when no injector is attached.

    Determinism: probabilistic rules draw from one seeded RNG under a
    lock, so a single-threaded (sync-backend) chaos run is exactly
    replayable.  Under the thread backend the *set* of faults drawn is
    reproducible but their assignment to flushes depends on scheduling;
    strict-replay tests use ``times``/``after`` schedules (no RNG) or
    the sync backend.
    """

    def __init__(
        self,
        rules: "list[FaultRule] | tuple[FaultRule, ...]" = (),
        seed: int = 0,
        sleeper=time.sleep,
    ) -> None:
        self.rules = list(rules)
        self.sleeper = sleeper
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        #: Chronological ``(site, kind)`` pairs of every fault fired.
        self.log: "list[tuple[str, str]]" = []

    def fire(self, site: str) -> None:
        """Apply every matching rule: sleep latencies, then raise.

        Latency rules all apply (sleeps accumulate); the first matching
        error/death rule raises after the sleeps, so a latency rule and
        an error rule on one site model a slow *and* failing stage.
        """
        matched: list[FaultRule] = []
        with self._lock:
            for rule in self.rules:
                if rule.site != site:
                    continue
                rule.calls += 1
                if rule.calls <= rule.after:
                    continue
                if rule.times is not None and rule.fired >= rule.times:
                    continue
                if (
                    rule.probability < 1.0
                    and float(self._rng.random()) >= rule.probability
                ):
                    continue
                rule.fired += 1
                self.log.append((site, rule.kind))
                matched.append(rule)
        for rule in matched:
            if rule.kind == "latency":
                self.sleeper(rule.latency)
        for rule in matched:
            if rule.kind == "death":
                raise WorkerDeath(f"injected worker death at site {site!r}")
            if rule.kind == "error":
                raise InjectedFault(site, transient=rule.transient)

    def fired_count(self, site: "str | None" = None) -> int:
        """Total faults fired, optionally for one site only."""
        with self._lock:
            return sum(
                rule.fired
                for rule in self.rules
                if site is None or rule.site == site
            )

    def __repr__(self) -> str:
        return (
            f"FaultInjector(rules={len(self.rules)}, "
            f"fired={self.fired_count()})"
        )


def default_transient_classifier(exc: Exception) -> bool:
    """A failure is retryable iff it carries a truthy ``transient``.

    The service's default: library errors don't set the attribute (a
    width mismatch will never heal by retrying), so only failures that
    explicitly opt in — like :class:`InjectedFault` — are retried.
    Inject a custom classifier for real deployments (e.g. treating
    resource-exhaustion errors from a remote backend as transient).
    """
    return bool(getattr(exc, "transient", False))


class CircuitBreaker:
    """Per-key closed → open → half-open failure gate.

    Closed: everything admitted, ``failures`` counts consecutive
    failures.  At ``threshold`` the breaker opens: :meth:`allow`
    refuses until ``reset_timeout`` seconds pass (per the caller's
    clock), then goes half-open and admits probes.  A success in any
    state closes the breaker and zeroes the count; a failure while
    half-open re-opens immediately.  All methods expect the caller to
    hold the owning service's lock and to pass its clock reading — the
    breaker itself keeps no clock and no lock, which is what makes its
    timing deterministically testable.
    """

    def __init__(self, threshold: int, reset_timeout: float) -> None:
        self.threshold = threshold
        self.reset_timeout = reset_timeout
        self.state = "closed"
        self.failures = 0
        self.opened_at: "float | None" = None
        self.opens = 0

    def allow(self, now: float) -> bool:
        """May a submission for this key be admitted at time ``now``?"""
        if self.state == "open":
            if now - self.opened_at >= self.reset_timeout:
                self.state = "half-open"
                return True
            return False
        return True

    def record_failure(self, now: float) -> bool:
        """Count one flush failure; True if the breaker just opened."""
        if self.state == "half-open":
            # The probe failed: straight back to open, fresh timeout.
            self.failures = 0
            self.state = "open"
            self.opened_at = now
            self.opens += 1
            return True
        self.failures += 1
        if self.failures >= self.threshold and self.state != "open":
            self.failures = 0
            self.state = "open"
            self.opened_at = now
            self.opens += 1
            return True
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.state = "closed"
        self.opened_at = None

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self.failures}/{self.threshold}, "
            f"opens={self.opens})"
        )


class RetryPolicy:
    """Exponential backoff with seeded full jitter.

    Attempt ``k`` (0-based) sleeps ``backoff * 2**k`` scaled by a
    uniform draw in ``[1 - jitter, 1]`` — the AWS "full jitter" shape,
    which decorrelates retry storms without ever sleeping longer than
    the deterministic schedule.  The RNG is seeded and the sleeper
    injectable, so retry timing is reproducible and tests run at zero
    wall cost with ``backoff=0``.
    """

    def __init__(
        self,
        backoff: float = 0.05,
        jitter: float = 0.5,
        seed: int = 0,
        sleeper=time.sleep,
    ) -> None:
        if backoff < 0.0:
            raise ServiceError("backoff must be non-negative")
        if not 0.0 <= jitter <= 1.0:
            raise ServiceError("jitter must be in [0, 1]")
        self.backoff = backoff
        self.jitter = jitter
        self.sleeper = sleeper
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()

    def delay(self, attempt: int) -> float:
        """The sleep before retry ``attempt`` (0-based), jitter applied."""
        base = self.backoff * (2.0**attempt)
        if base <= 0.0:
            return 0.0
        with self._lock:
            u = float(self._rng.random())
        return base * (1.0 - self.jitter + self.jitter * u)

    def sleep(self, attempt: int) -> float:
        """Sleep the attempt's delay through the sleeper; returns it."""
        delay = self.delay(attempt)
        if delay > 0.0:
            self.sleeper(delay)
        return delay


__all__ = [
    "FAULT_SITES",
    "CircuitBreaker",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "RetryPolicy",
    "WorkerDeath",
    "default_transient_classifier",
]
