"""The online encoding service: registry + micro-batcher + accounting.

:class:`EncodingService` is the deployment surface Sec. III-C/III-D
describe — train once, store, then serve a live stream of samples at
millisecond compile latency (Fig. 9a).  It composes the pieces this
package provides:

* an :class:`~repro.service.registry.EncoderRegistry` of fitted
  encoders keyed by class/model id (loaded from versioned bundles or
  registered in-process);
* a :class:`~repro.service.batcher.MicroBatcher` that accumulates
  ``submit()``-ed samples per key and flushes on ``max_batch`` or a
  latency deadline, so streaming traffic executes the *batched* stage
  pipeline (stacked fine-tune + cached-template re-bind) instead of the
  one-off path;
* typed :class:`~repro.service.records.EncodeRequest` /
  :class:`~repro.service.records.EncodeResponse` records with
  per-request timing and fidelity, aggregated into
  :class:`~repro.service.records.ServiceStats` (p50/p95 latency,
  evals/sample, template-cache hits);
* a pluggable execution backend
  (:class:`~repro.core.config.ServiceConfig`): ``"sync"`` flushes
  inline from ``submit``/``poll`` calls, ``"thread"`` runs the
  :class:`~repro.service.async_service.ThreadBackend` — a background
  flusher that honors ``max_delay`` without requiring traffic plus a
  worker pool flushing different keys concurrently.

Every flush runs :meth:`repro.core.encoder.EnQodeEncoder.pipeline`'s
``run`` on the accumulated batch — the *same* stage objects
``encode_batch`` executes — so a submit-then-flush of B samples is
numerically identical to one ``encode_batch`` call on those B samples.
The thread backend preserves this: at most one flush per key (and per
underlying pipeline) is in flight, so each key's micro-batches are
contiguous FIFO slices of its traffic, completed in submission order.

Example
-------
>>> service = EncodingService(max_batch=32)
>>> service.register("digits-0", fitted_encoder)
>>> tickets = [service.submit(x) for x in stream]   # auto-flushes per 32
>>> service.flush()                                  # drain the remainder
>>> fidelities = [t.result().fidelity for t in tickets]
>>> print(service.stats().summary())

Threaded (deadlines fire on idle queues; submit from any thread):

>>> with EncodingService(max_batch=32, max_delay=0.05,
...                      backend="thread", workers=4) as service:
...     service.register("digits-0", fitted_encoder)
...     tickets = [service.submit(x) for x in stream]
...     results = [t.result(timeout=5.0) for t in tickets]
"""

from __future__ import annotations

import itertools
import pathlib
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ServiceConfig
from repro.core.encoder import EnQodeEncoder
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadError,
    ServiceError,
)
from repro.hardware.backend import Backend
from repro.service.async_service import ThreadBackend
from repro.service.batcher import MicroBatcher
from repro.service.records import EncodeRequest, EncodeResponse, ServiceStats
from repro.service.registry import EncoderRegistry
from repro.service.resilience import (
    CircuitBreaker,
    RetryPolicy,
    WorkerDeath,
    default_transient_classifier,
)

#: Latency percentiles are computed over this many most-recent requests,
#: so a long-lived service keeps O(1) memory per request stream (means
#: and counts are exact running aggregates over *all* traffic).
STATS_WINDOW = 4096


@dataclass
class EncodeTicket:
    """Handle returned by :meth:`EncodingService.submit`.

    The response appears when the request's micro-batch flushes;
    :meth:`result` forces a flush of the owning queue if the caller
    cannot wait for a trigger, and under the thread backend blocks
    (optionally with ``timeout``) until a worker serves it.  A request
    whose flush errored carries the failure in ``error`` and re-raises
    it from :meth:`result`.  Completion is signalled through an event,
    so any number of threads may wait on one ticket.
    """

    request: EncodeRequest
    response: "EncodeResponse | None" = None
    error: "Exception | None" = None
    _service: "EncodingService | None" = field(
        default=None, repr=False, compare=False
    )
    _event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    @property
    def done(self) -> bool:
        return self.response is not None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def wait(self, timeout: "float | None" = None) -> bool:
        """Block until the ticket resolves (served or failed)."""
        return self._event.wait(timeout)

    def _complete(self, response: EncodeResponse) -> None:
        self.response = response
        self._event.set()

    def _fail(self, error: Exception) -> None:
        self.error = error
        self._event.set()

    def result(
        self, flush: bool = True, timeout: "float | None" = None
    ) -> EncodeResponse:
        """The response, flushing this request's queue first if needed.

        Sync backend: ``flush`` triggers an inline flush of the owning
        queue (the historical behaviour); ``timeout`` is ignored — the
        flush happens on this thread.  Thread backend: ``flush`` asks
        the background flusher to serve the queue eagerly, then blocks
        up to ``timeout`` seconds (forever if ``None``) for a worker to
        resolve the ticket; a timeout raises :class:`ServiceError`
        without consuming the ticket — the request stays in flight and a
        later ``result`` call can still collect it.
        """
        if self.response is None and self.error is None:
            if self._service is not None:
                self._service._serve_ticket(self, flush=flush, timeout=timeout)
        if self.error is not None:
            # Typed serving errors (deadline expiry, overload, stop
            # rejection) re-raise as themselves so callers can catch
            # them specifically; everything else wraps.
            if isinstance(self.error, ServiceError):
                raise self.error
            raise ServiceError(
                f"request {self.request.request_id} failed during its "
                f"micro-batch flush: {self.error}"
            ) from self.error
        if self.response is None:
            raise ServiceError(
                f"request {self.request.request_id} is still queued "
                "(called with flush=False, or the ticket is detached "
                "from its service); flush the service to serve it"
            )
        return self.response


class EncodingService:
    """Micro-batched, multi-encoder online serving front end.

    Parameters
    ----------
    registry:
        Encoder collection to serve from (a fresh empty registry by
        default; populate via :meth:`register` / :meth:`load`).
    config:
        A :class:`~repro.core.config.ServiceConfig` bundling every knob
        below; passing it overrides the individual keyword arguments.
    max_batch:
        Size trigger: a key's queue reaching this many pending requests
        flushes immediately.
    max_delay:
        Optional latency deadline in seconds.  Sync backend: any queue
        whose oldest request has waited this long is flushed at the next
        ``submit`` or ``poll`` call.  Thread backend: the background
        flusher wakes and flushes it with no traffic required.  ``None``
        (default) disables the deadline — callers flush explicitly.
    use_template:
        Lower via the cached parametric transpile template (the fast
        path, default) or full per-sample transpiles (escape hatch).
    backend:
        ``"sync"`` (default) or ``"thread"`` — see
        :class:`~repro.core.config.ServiceConfig`.  The thread backend
        needs :meth:`start` before submissions (or use the service as a
        context manager) and :meth:`stop` when done.
    workers:
        Thread-backend worker-pool size (concurrent flushes of
        *different* keys; per-key flushes never overlap).
    clock:
        Monotonic time source; injectable for deterministic tests.
        Condition-variable waits always use real time — with a fake
        clock, advance it and call :meth:`poll` to wake the flusher.
    """

    def __init__(
        self,
        registry: "EncoderRegistry | None" = None,
        *,
        config: "ServiceConfig | None" = None,
        max_batch: int = 32,
        max_delay: "float | None" = None,
        use_template: bool = True,
        backend: str = "sync",
        workers: int = 4,
        max_pending_per_key: "int | None" = None,
        max_pending_total: "int | None" = None,
        overload_policy: str = "reject",
        flush_timeout: "float | None" = None,
        retry_attempts: int = 0,
        retry_backoff: float = 0.05,
        retry_jitter: float = 0.5,
        retry_seed: int = 0,
        breaker_threshold: "int | None" = None,
        breaker_reset_timeout: float = 30.0,
        shard_strategy: str = "rendezvous",
        spawn_timeout: float = 60.0,
        handshake_timeout: float = 30.0,
        clock=time.monotonic,
        fault_injector=None,
        transient_classifier=None,
        retry_sleeper=time.sleep,
    ) -> None:
        if config is None:
            config = ServiceConfig(
                backend=backend,
                workers=workers,
                max_batch=max_batch,
                max_delay=max_delay,
                use_template=use_template,
                max_pending_per_key=max_pending_per_key,
                max_pending_total=max_pending_total,
                overload_policy=overload_policy,
                flush_timeout=flush_timeout,
                retry_attempts=retry_attempts,
                retry_backoff=retry_backoff,
                retry_jitter=retry_jitter,
                retry_seed=retry_seed,
                breaker_threshold=breaker_threshold,
                breaker_reset_timeout=breaker_reset_timeout,
                shard_strategy=shard_strategy,
                spawn_timeout=spawn_timeout,
                handshake_timeout=handshake_timeout,
            )
        self.config = config
        self.registry = registry if registry is not None else EncoderRegistry()
        self.batcher = MicroBatcher(
            max_batch=config.max_batch, max_delay=config.max_delay
        )
        self.use_template = config.use_template
        self.clock = clock
        #: One lock guards the batcher, the ticket table, and the stats
        #: counters; the thread backend's condition variables share it.
        #: Reentrant so sync-backend flush paths may nest safely.
        self._lock = threading.RLock()
        self._ids = itertools.count()
        self._flush_ids = itertools.count()
        self._tickets: "dict[int, EncodeTicket]" = {}
        # Aggregate accounting (ServiceStats is a computed snapshot).
        # Means/counts are exact running aggregates; only the latency
        # percentile window holds per-request history, and it is bounded
        # so unbounded traffic cannot grow service memory.  Every flush
        # applies its whole contribution under the lock in one step.
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._flushes = 0
        self._latency_window: "deque[float]" = deque(maxlen=STATS_WINDOW)
        self._latency_sum = 0.0
        self._batch_size_sum = 0
        self._evaluation_sum = 0
        self._fidelity_sum = 0.0
        self._per_key_completed: dict = {}
        self._predictions = 0
        self._template_hits = 0
        self._template_misses = 0
        self._template_binds = 0
        # Resilience machinery (see repro.service.resilience).  The
        # injector fires the "flush" site inside _execute_flush and is
        # attached to every pipeline registered *through this service*
        # (register/load) so stage sites fire too; the retry policy and
        # transient classifier drive the flush retry loop; breakers are
        # lazily created per key under the service lock.
        self.fault_injector = fault_injector
        self.transient_classifier = (
            transient_classifier
            if transient_classifier is not None
            else default_transient_classifier
        )
        self._retry_policy = RetryPolicy(
            backoff=config.retry_backoff,
            jitter=config.retry_jitter,
            seed=config.retry_seed,
            sleeper=retry_sleeper,
        )
        self._breakers: "dict[object, CircuitBreaker]" = {}
        self._rejected = 0
        self._shed_degraded = 0
        self._retries = 0
        self._breaker_opens = 0
        self._deadline_expired = 0
        if config.backend == "thread":
            self._backend_impl = ThreadBackend(self, config.workers)
        elif config.backend == "process":
            # Imported lazily: the process backend pulls in the wire
            # codec and multiprocessing, which sync/thread services
            # never need.
            from repro.service.process_backend import ProcessBackend

            self._backend_impl = ProcessBackend(self, config.workers)
        else:
            self._backend_impl = None

    # -- registry passthroughs -----------------------------------------------------

    def register(self, key, encoder: EnQodeEncoder) -> EnQodeEncoder:
        """Register a fitted encoder under ``key``."""
        encoder = self.registry.register(key, encoder)
        self._attach_injector(encoder)
        if self._backend_impl is not None:
            self._backend_impl.on_register(key, encoder)
        return encoder

    def load(
        self, key, path: "str | pathlib.Path", backend: Backend
    ) -> EnQodeEncoder:
        """Load a versioned model bundle into the ``key`` slot."""
        encoder = self.registry.load(key, path, backend)
        self._attach_injector(encoder)
        if self._backend_impl is not None:
            self._backend_impl.on_register(key, encoder)
        return encoder

    def _attach_injector(self, encoder: EnQodeEncoder) -> None:
        """Thread the service's fault injector into a pipeline's stages."""
        if self.fault_injector is not None:
            encoder.pipeline.fault_injector = self.fault_injector

    def keys(self) -> list:
        return self.registry.keys()

    def register_model(self, key, model):
        """Register a trained embed+classify bundle under ``key`` (its
        encoder also takes the ``key`` encoder slot — see
        :meth:`repro.service.registry.EncoderRegistry.register_model`)."""
        return self.registry.register_model(key, model)

    def load_model(self, key, path: "str | pathlib.Path", backend: Backend):
        """Load a stored classifier bundle into the ``key`` model slot."""
        return self.registry.load_model(key, path, backend)

    # -- lifecycle -----------------------------------------------------------------

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def running(self) -> bool:
        """True when submissions are accepted (sync is always ready)."""
        if self._backend_impl is None:
            return True
        return self._backend_impl.running

    def shard_map(self) -> dict:
        """``key -> worker index`` routing of the process fleet.

        Process backend only: answers which worker process currently
        serves each registered key under the configured
        ``shard_strategy`` (over the *alive* fleet, so it reflects any
        in-progress death/respawn).  Other backends have no shards and
        raise :class:`ServiceError`.
        """
        backend_impl = self._backend_impl
        if backend_impl is None or not hasattr(backend_impl, "shard_map"):
            raise ServiceError(
                f"shard_map() requires backend='process', "
                f"this service runs backend={self.config.backend!r}"
            )
        return backend_impl.shard_map()

    def start(self) -> "EncodingService":
        """Start the thread backend's flusher + workers (sync: no-op)."""
        if self._backend_impl is not None:
            self._backend_impl.start()
        return self

    def stop(self, drain: bool = True, timeout: "float | None" = None) -> None:
        """Shut down.  Thread backend: drain (or reject) pending work and
        join the flusher + workers — see
        :meth:`~repro.service.async_service.ThreadBackend.stop`.  Sync
        backend: a draining stop flushes every queue inline; with
        ``drain=False`` every queued ticket is *rejected* (fails with
        :class:`ServiceError`) so no caller is ever left blocking on a
        ticket nobody will serve.
        """
        if self._backend_impl is not None:
            self._backend_impl.stop(drain=drain, timeout=timeout)
        elif drain:
            self.flush()
        else:
            with self._lock:
                self._reject_all_pending()

    def _reject_all_pending(self) -> None:
        """Fail every queued-but-unserved ticket (caller holds the lock).

        Both backends' non-draining stop paths funnel here: leaving a
        queued ticket unresolved would hang its ``result()`` forever
        (the event would never be set).
        """
        for key in list(self.batcher.pending_keys()):
            while self.batcher.pending(key):
                for request in self.batcher.drain(key):
                    ticket = self._tickets.pop(request.request_id, None)
                    error = ServiceError(
                        f"request {request.request_id} rejected: service "
                        "stopped without draining"
                    )
                    if ticket is not None:
                        ticket._fail(error)
                    self._failed += 1

    def drain(self, timeout: "float | None" = None) -> None:
        """Serve everything pending and block until quiescent."""
        if self._backend_impl is not None:
            self._backend_impl.drain(timeout=timeout)
        else:
            self.flush()

    def __enter__(self) -> "EncodingService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # -- submission ----------------------------------------------------------------

    def submit(
        self, sample: np.ndarray, key=None, deadline: "float | None" = None
    ) -> EncodeTicket:
        """Queue one sample; returns a ticket that fills on flush.

        Without ``key`` the sample is routed to the registry's nearest
        encoder (the ``PerClassEnQode.encode_auto`` rule).  Validation
        happens here — a malformed sample fails its own ``submit`` call
        instead of poisoning a whole micro-batch later.

        ``deadline`` is a per-request latency budget in seconds
        (relative to now): a request still unserved when it expires is
        failed with :class:`~repro.errors.DeadlineExceededError` before
        any pipeline work is spent on it — the batcher treats the
        expiry like a flush trigger, and the flush path drops expired
        requests from the batch (including between retry attempts).

        Admission control runs before enqueueing: an open circuit
        breaker for ``key`` raises
        :class:`~repro.errors.CircuitOpenError`; a queue-budget
        violation (``max_pending_per_key`` / ``max_pending_total``)
        either raises :class:`~repro.errors.OverloadError`
        (``overload_policy="reject"``) or serves the sample inline
        through the finetune-skipped degraded path
        (``overload_policy="degrade"`` — the returned ticket is
        already ``done`` with ``response.degraded`` set).  Both
        refusal counters land in :meth:`stats`.

        Sync backend: if this submission fills the key's queue to
        ``max_batch`` the queue is flushed before returning (the
        returned ticket is then already ``done``), and a configured
        ``max_delay`` is enforced across all queues on every submit.
        Thread backend: the call only enqueues and wakes the background
        flusher — it returns immediately and is safe from any thread;
        wait on the ticket (``result(timeout=...)``) for the response.
        """
        sample = self._validate(np.asarray(sample, dtype=float).ravel())
        if deadline is not None and deadline <= 0.0:
            raise ServiceError(
                "deadline must be > 0 seconds (relative to submission)"
            )
        if key is None:
            key = self.registry.route(sample)
        encoder = self.registry.get(key)
        if sample.size != encoder.input_size:
            raise ServiceError(
                f"sample has {sample.size} features, encoder {key!r} "
                f"expects {encoder.input_size}"
            )
        config = self.config
        shed = False
        with self._lock:
            # Checked under the lock: stop() holds it for its whole
            # state transition, so a submission can never slip into the
            # queue after a drain decided the service was quiescent.
            if (
                self._backend_impl is not None
                and not self._backend_impl.running
            ):
                raise ServiceError(
                    "thread backend is not running; start() the service "
                    "(or use it as a context manager) before submitting"
                )
            now = self.clock()
            breaker = self._breakers.get(key)
            if breaker is not None and not breaker.allow(now):
                self._submitted += 1
                self._rejected += 1
                raise CircuitOpenError(
                    f"circuit breaker for key {key!r} is open "
                    f"({breaker.threshold} consecutive flush failures); "
                    f"probes resume {config.breaker_reset_timeout}s "
                    "after it opened"
                )
            over = (
                config.max_pending_per_key is not None
                and self.batcher.pending(key) >= config.max_pending_per_key
            ) or (
                config.max_pending_total is not None
                and self.batcher.pending() >= config.max_pending_total
            )
            if over and config.overload_policy == "reject":
                self._submitted += 1
                self._rejected += 1
                raise OverloadError(
                    f"queue budget exceeded for key {key!r} "
                    f"({self.batcher.pending(key)} pending on the key, "
                    f"{self.batcher.pending()} total); retry later or "
                    "switch overload_policy='degrade'"
                )
            if over:
                self._submitted += 1
                shed = True
            else:
                request = EncodeRequest(
                    request_id=next(self._ids),
                    key=key,
                    sample=sample,
                    submitted_at=now,
                    deadline=None if deadline is None else now + deadline,
                )
                ticket = EncodeTicket(request=request, _service=self)
                self._tickets[request.request_id] = ticket
                self._submitted += 1
                full = self.batcher.add(request)
        if shed:
            # Outside the lock: the degraded bind is microseconds, but
            # there is no reason to serialize it against the batcher.
            return self._serve_degraded(sample, key)
        if self._backend_impl is not None:
            # Wake the flusher: a fresh queue head may arm an earlier
            # deadline, and a full queue must dispatch now.
            self._backend_impl.kick()
            return ticket
        if full:
            self._flush_key(key)
        self.poll()
        return ticket

    def _serve_degraded(self, sample: np.ndarray, key) -> EncodeTicket:
        """Serve one over-budget sample via the finetune-skipped path.

        Runs inline on the submitting thread (route + centroid template
        bind — microseconds), so shed traffic never touches the queues
        or the worker pool.  The returned ticket is already resolved:
        ``done`` with ``degraded=True``, or failed if even the degraded
        bind errored.
        """
        request = EncodeRequest(
            request_id=next(self._ids),
            key=key,
            sample=sample,
            submitted_at=self.clock(),
        )
        ticket = EncodeTicket(request=request, _service=self)
        try:
            pipeline = self.registry.get(key).pipeline
            encoded = pipeline.run_degraded(
                sample[np.newaxis, :], use_template=self.use_template
            )[0]
        except Exception as exc:
            with self._lock:
                self._failed += 1
            ticket._fail(exc)
            return ticket
        response = EncodeResponse(
            request_id=request.request_id,
            key=key,
            encoded=encoded,
            submitted_at=request.submitted_at,
            completed_at=self.clock(),
            batch_size=1,
            flush_id=-1,
            degraded=True,
        )
        with self._lock:
            self._completed += 1
            self._shed_degraded += 1
            self._latency_window.append(response.latency)
            self._latency_sum += response.latency
            self._evaluation_sum += encoded.optimizer_evaluations
            self._fidelity_sum += encoded.ideal_fidelity
            self._per_key_completed[key] = (
                self._per_key_completed.get(key, 0) + 1
            )
        ticket._complete(response)
        return ticket

    def _validate(self, sample: np.ndarray) -> np.ndarray:
        if sample.size == 0:
            raise ServiceError("cannot submit an empty sample")
        if not np.all(np.isfinite(sample)):
            raise ServiceError("sample contains non-finite entries")
        if np.linalg.norm(sample) < 1e-12:
            raise ServiceError(
                "cannot submit the zero vector (amplitude embedding is "
                "undefined for it)"
            )
        return sample

    def _serve_ticket(
        self, ticket: EncodeTicket, flush: bool, timeout: "float | None"
    ) -> None:
        """Backend-appropriate wait used by :meth:`EncodeTicket.result`."""
        if self._backend_impl is None:
            if flush:
                self.flush(ticket.request.key)
            return
        # A ticket still unresolved on a backend that will never serve
        # again (stopped, or never started) cannot resolve — no flusher,
        # no workers — so waiting (with or without flush, with or
        # without timeout) would hang forever.  Raise instead.  stop()
        # fails every pending ticket before this can normally trigger;
        # it is the belt to that suspender.  A STOPPING backend (a
        # draining stop in progress on another thread) *will* serve the
        # ticket, so that state falls through to the wait.
        if not self._backend_impl.will_serve and not ticket._event.is_set():
            raise ServiceError(
                f"request {ticket.request.request_id} cannot be served: "
                "the thread backend is not running"
            )
        # One absolute deadline spans the forced flush *and* the event
        # wait, so the documented bound holds end to end (not 2x).  The
        # arithmetic runs on the injectable service clock, not a
        # hard-coded time.monotonic(), so fake-clock tests can advance
        # time past the deadline and observe expiry deterministically.
        deadline = None if timeout is None else self.clock() + timeout
        if (
            flush
            and not ticket._event.is_set()
            and self._backend_impl.running
        ):
            self._backend_impl.flush_key(ticket.request.key, timeout=timeout)
        if deadline is None:
            served = ticket._event.wait()
        elif self.clock is time.monotonic:
            # Real clock: one event wait covers the remaining budget.
            served = ticket._event.wait(max(deadline - self.clock(), 0.0))
        else:
            # Injected clock: the event wait can only block in real
            # time, so poll it in short real slices while re-reading
            # the fake clock — a test advancing the clock (before the
            # call or concurrently) sees expiry without real sleeping
            # through the nominal timeout.
            served = ticket._event.is_set()
            while not served and self.clock() < deadline:
                served = ticket._event.wait(0.005)
            served = served or ticket._event.is_set()
        if not served:
            raise ServiceError(
                f"request {ticket.request.request_id} was not served "
                f"within {timeout}s"
            )

    # -- prediction ----------------------------------------------------------------

    def predict(self, samples: np.ndarray, key=None) -> np.ndarray:
        """Classify raw samples through a registered :class:`~repro.qml.
        serving.QMLModel` bundle; returns labels in {0, 1}.

        The whole matrix runs as **one** batch — one pipeline run embeds
        every row (preprocessing included), one template bind evaluates
        the classifier head over the stacked states — so prediction
        throughput scales like ``encode_batch``, not like a per-sample
        loop.  Runs inline on the calling thread under either backend
        (it is already batched; there is no queue to amortize).  With
        one registered model ``key`` may be omitted.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        if key is None:
            model_keys = self.registry.model_keys()
            if len(model_keys) != 1:
                raise ServiceError(
                    f"predict needs an explicit key when "
                    f"{len(model_keys)} models are registered "
                    f"(available: {model_keys})"
                )
            key = model_keys[0]
        model = self.registry.model(key)
        if samples.ndim != 2 or samples.shape[1] != model.input_size:
            raise ServiceError(
                f"samples must be (B, {model.input_size}), "
                f"got {samples.shape}"
            )
        for row in samples:
            self._validate(row)
        labels = model.predict(samples)
        with self._lock:
            self._predictions += samples.shape[0]
        return labels

    # -- export --------------------------------------------------------------------

    def export_wire(self, responses) -> bytes:
        """One compact wire blob for a list of served responses.

        Responses encoded by the same flush share one
        :class:`~repro.transpile.bound.BoundCircuitBatch`, so the blob
        is a single template-bound record over exactly those rows — a
        few hundred bytes per circuit.  Mixed or non-template responses
        fall back to self-contained gate streams.  Decode on any process
        holding the same models with
        :meth:`~repro.service.registry.EncoderRegistry.rehydrate_wire`.
        """
        from repro.io.wire import dump_circuits

        return dump_circuits([response.circuit for response in responses])

    def export_qasm(self, responses, version: int = 2) -> list[str]:
        """OpenQASM text (one document per response) for external runners."""
        from repro.io.qasm import to_qasm

        return [
            to_qasm(response.circuit, version=version)
            for response in responses
        ]

    # -- flushing ------------------------------------------------------------------

    def poll(self) -> list[EncodeResponse]:
        """Sync backend: flush every queue whose deadline has passed and
        return the responses.  Thread backend: wake the background
        flusher (it re-reads the injected clock) and return ``[]`` —
        responses surface through tickets.
        """
        if self._backend_impl is not None:
            self._backend_impl.kick()
            return []
        with self._lock:
            due = self.batcher.due_keys(self.clock())
        responses: list[EncodeResponse] = []
        for key in due:
            responses.extend(self._flush_key(key))
        return responses

    def flush(self, key=None) -> list[EncodeResponse]:
        """Serve one key's queue (or, with no key, every pending queue).

        Sync backend: flushes inline and returns the responses.  Thread
        backend: forces the background flusher to serve the queue(s) and
        blocks until done, returning ``[]`` (collect responses from
        tickets) — flushes always execute on the worker pool so the
        one-in-flight-per-key ordering guarantee holds.
        """
        if self._backend_impl is not None:
            if key is not None:
                self._backend_impl.flush_key(key)
            else:
                self._backend_impl.drain()
            return []
        with self._lock:
            keys = [key] if key is not None else self.batcher.pending_keys()
        responses: list[EncodeResponse] = []
        for one in keys:
            while self.batcher.pending(one):
                responses.extend(self._flush_key(one))
        return responses

    def _flush_key(self, key) -> list[EncodeResponse]:
        """Sync-backend flush: drain and execute on the calling thread."""
        with self._lock:
            requests = self.batcher.drain(key, now=self.clock())
        return self._execute_flush(key, requests, reraise=True)

    def _expire_requests(self, requests: list) -> list:
        """Fail every deadline-expired request; return the survivors.

        Called before the pipeline runs and again between retry
        attempts, so a request never consumes fine-tune work after its
        deadline passed — the paper's bounded-latency story enforced at
        the flush boundary.
        """
        now = self.clock()
        live = [r for r in requests if not r.expired(now)]
        if len(live) == len(requests):
            return requests
        with self._lock:
            for request in requests:
                if not request.expired(now):
                    continue
                ticket = self._tickets.pop(request.request_id, None)
                error = DeadlineExceededError(
                    f"request {request.request_id} expired: its "
                    f"{request.deadline - request.submitted_at:.3f}s "
                    "deadline passed before its micro-batch flushed"
                )
                if ticket is not None:
                    ticket._fail(error)
                self._failed += 1
                self._deadline_expired += 1
        return live

    def _flush_abandoned(self, task_id) -> bool:
        """Did the flusher abandon this flush while it executed?

        Caller holds the lock.  Consuming the mark transfers the
        bookkeeping duty: an abandoned flush's tickets were already
        failed (and its key freed) by the flusher, so the executing
        worker must discard its result without touching any counter.
        """
        if task_id is None or self._backend_impl is None:
            return False
        return self._backend_impl.consume_abandoned(task_id)

    def _execute_flush(
        self, key, requests: list, reraise: bool, task_id=None
    ) -> list[EncodeResponse]:
        """Encode one drained micro-batch and resolve its tickets.

        Runs outside the service lock (the pipeline stages are
        re-entrant); only the final accounting step locks, applying the
        flush's entire stats contribution atomically so concurrent
        ``stats()`` snapshots never see a half-applied flush.  With
        ``reraise=False`` (worker pool) an encoding failure resolves
        into the affected tickets instead of propagating.

        Resilience behaviour: deadline-expired requests are failed
        before (and between) pipeline runs; a failure the transient
        classifier accepts is retried up to ``retry_attempts`` times
        with backoff+jitter (the attempt count rides on the requests,
        so the budget survives worker-death requeues); terminal
        failures and successes feed the key's circuit breaker.  Under
        the thread backend, ``task_id`` lets a flush that outlived
        ``flush_timeout`` detect its own abandonment and discard its
        result — the flusher already failed the tickets and freed the
        key, so applying anything here would double-count.
        """
        requests = self._expire_requests(requests)
        if not requests:
            return []
        config = self.config
        while True:
            try:
                if self.fault_injector is not None:
                    self.fault_injector.fire("flush")
                encoder = self.registry.get(key)
                pipeline = encoder.pipeline
                samples = np.stack(
                    [request.sample for request in requests]
                )
                # The same stage objects encode/encode_batch execute — a
                # flush of B requests is numerically identical to
                # encode_batch on them (one vectorized template
                # bind_batch sweep per flush).  A backend that owns
                # execution (process fleet) routes the run to a worker
                # replica of those same stages instead.
                encoded, report = self._run_pipeline(
                    key, pipeline, requests, samples
                )
                break
            except WorkerDeath:
                # Not a flush failure: the executing worker process died
                # under this batch.  Propagate to the worker loop, which
                # requeues the batch at the head (order preserved,
                # retry/breaker budgets untouched) and respawns.
                raise
            except Exception as exc:
                attempt = max(request.attempts for request in requests)
                if attempt < config.retry_attempts and self.transient_classifier(
                    exc
                ):
                    with self._lock:
                        self._retries += 1
                        for request in requests:
                            request.attempts = attempt + 1
                    self._retry_policy.sleep(attempt)
                    requests = self._expire_requests(requests)
                    if not requests:
                        return []
                    continue
                # Terminal failure: the requests are already drained, so
                # fail their tickets loudly (result() re-raises) rather
                # than stranding them forever — e.g. a hot-reloaded
                # bundle with a different amplitude width invalidates
                # whatever was queued under the old model.
                with self._lock:
                    if self._record_breaker_failure(key):
                        self._breaker_opens += 1
                    if self._flush_abandoned(task_id):
                        return []
                    for request in requests:
                        ticket = self._tickets.pop(request.request_id, None)
                        if ticket is not None:
                            ticket._fail(exc)
                        self._failed += 1
                if reraise:
                    raise ServiceError(
                        f"flush of {len(requests)} request(s) for encoder "
                        f"{key!r} failed: {exc}"
                    ) from exc
                return []
        completed_at = self.clock()
        responses = []
        with self._lock:
            self._record_breaker_success(key)
            if self._flush_abandoned(task_id):
                # The flusher cut this flush loose mid-run: its tickets
                # already failed with DeadlineExceededError and its key
                # already re-dispatched.  Discard the late result whole.
                return []
            flush_id = next(self._flush_ids)
            responses = [
                EncodeResponse(
                    request_id=request.request_id,
                    key=key,
                    encoded=sample,
                    submitted_at=request.submitted_at,
                    completed_at=completed_at,
                    batch_size=len(requests),
                    flush_id=flush_id,
                )
                for request, sample in zip(requests, encoded)
            ]
            # One atomic stats application per flush: counts, sums, and
            # the percentile window advance together or not at all.
            if report.template_hit is not None:
                if report.template_hit:
                    self._template_hits += 1
                else:
                    self._template_misses += 1
            self._template_binds += report.template_binds
            self._flushes += 1
            self._batch_size_sum += len(requests)
            for response, sample in zip(responses, encoded):
                self._completed += 1
                self._latency_window.append(response.latency)
                self._latency_sum += response.latency
                self._evaluation_sum += sample.optimizer_evaluations
                self._fidelity_sum += sample.ideal_fidelity
                self._per_key_completed[key] = (
                    self._per_key_completed.get(key, 0) + 1
                )
                ticket = self._tickets.pop(response.request_id, None)
                if ticket is not None:
                    ticket._complete(response)
        return responses

    def _run_pipeline(self, key, pipeline, requests: list, samples):
        """Execute one flush's pipeline run — locally or on the fleet.

        The seam between the (backend-agnostic) resilience loop above
        and the execution substrate: sync and thread backends run the
        registered pipeline in-process; a backend that *owns execution*
        (``ProcessBackend``) ships ``(key, request_ids, samples)`` to a
        worker process and decodes the wire-record response.  Either
        way the return contract is ``encode_batch``'s:
        ``(list[EncodedSample], PipelineRunReport)``, float-bit
        identical for identical samples.
        """
        backend_impl = self._backend_impl
        if backend_impl is not None and backend_impl.owns_execution:
            request_ids = [request.request_id for request in requests]
            return backend_impl.run_pipeline(key, request_ids, samples)
        return pipeline.run_reported(samples, use_template=self.use_template)

    # -- circuit breakers ----------------------------------------------------------

    def _breaker_for(self, key) -> "CircuitBreaker | None":
        """The key's breaker, lazily created (caller holds the lock)."""
        if self.config.breaker_threshold is None:
            return None
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                self.config.breaker_threshold,
                self.config.breaker_reset_timeout,
            )
            self._breakers[key] = breaker
        return breaker

    def _record_breaker_failure(self, key) -> bool:
        """Count a flush failure; True if the breaker just opened."""
        breaker = self._breaker_for(key)
        if breaker is None:
            return False
        return breaker.record_failure(self.clock())

    def _record_breaker_success(self, key) -> None:
        breaker = self._breakers.get(key)
        if breaker is not None:
            breaker.record_success()

    # -- introspection -------------------------------------------------------------

    @property
    def pending(self) -> int:
        with self._lock:
            return self.batcher.pending()

    def stats(self) -> ServiceStats:
        """Aggregate accounting snapshot since construction.

        Counts and means are exact over all served traffic; latency
        percentiles cover the most recent :data:`STATS_WINDOW` requests.
        Taken under the service lock, so a snapshot observes whole
        flushes only, even while the worker pool is racing.
        """
        with self._lock:
            window = np.asarray(self._latency_window, dtype=float)
            have = window.size > 0
            done = self._completed
            return ServiceStats(
                requests_submitted=self._submitted,
                requests_completed=done,
                requests_failed=self._failed,
                requests_pending=self.batcher.pending(),
                num_flushes=self._flushes,
                mean_batch_size=(
                    self._batch_size_sum / self._flushes
                    if self._flushes
                    else float("nan")
                ),
                p50_latency=(
                    float(np.percentile(window, 50)) if have else float("nan")
                ),
                p95_latency=(
                    float(np.percentile(window, 95)) if have else float("nan")
                ),
                mean_latency=(
                    self._latency_sum / done if done else float("nan")
                ),
                evals_per_sample=(
                    self._evaluation_sum / done if done else float("nan")
                ),
                mean_fidelity=(
                    self._fidelity_sum / done if done else float("nan")
                ),
                template_cache_hits=self._template_hits,
                template_cache_misses=self._template_misses,
                template_binds=self._template_binds,
                per_key_completed=dict(self._per_key_completed),
                predictions_completed=self._predictions,
                rejected=self._rejected,
                shed_degraded=self._shed_degraded,
                retries=self._retries,
                breaker_opens=self._breaker_opens,
                deadline_expired=self._deadline_expired,
                backend=self.config.backend,
                flusher_wakeups=(
                    self._backend_impl.flusher_wakeups
                    if self._backend_impl is not None
                    else 0
                ),
            )

    def __repr__(self) -> str:
        return (
            f"EncodingService(keys={self.keys()}, "
            f"backend={self.config.backend!r}, "
            f"max_batch={self.batcher.max_batch}, "
            f"max_delay={self.batcher.max_delay}, pending={self.pending})"
        )
