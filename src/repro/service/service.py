"""The online encoding service: registry + micro-batcher + accounting.

:class:`EncodingService` is the deployment surface Sec. III-C/III-D
describe — train once, store, then serve a live stream of samples at
millisecond compile latency (Fig. 9a).  It composes the pieces this
package provides:

* an :class:`~repro.service.registry.EncoderRegistry` of fitted
  encoders keyed by class/model id (loaded from versioned bundles or
  registered in-process);
* a :class:`~repro.service.batcher.MicroBatcher` that accumulates
  ``submit()``-ed samples per key and flushes on ``max_batch`` or a
  latency deadline, so streaming traffic executes the *batched* stage
  pipeline (stacked fine-tune + cached-template re-bind) instead of the
  one-off path;
* typed :class:`~repro.service.records.EncodeRequest` /
  :class:`~repro.service.records.EncodeResponse` records with
  per-request timing and fidelity, aggregated into
  :class:`~repro.service.records.ServiceStats` (p50/p95 latency,
  evals/sample, template-cache hits).

Every flush runs :meth:`repro.core.encoder.EnQodeEncoder.pipeline`'s
``run`` on the accumulated batch — the *same* stage objects
``encode_batch`` executes — so a submit-then-flush of B samples is
numerically identical to one ``encode_batch`` call on those B samples.

Example
-------
>>> service = EncodingService(max_batch=32)
>>> service.register("digits-0", fitted_encoder)
>>> tickets = [service.submit(x) for x in stream]   # auto-flushes per 32
>>> service.flush()                                  # drain the remainder
>>> fidelities = [t.result().fidelity for t in tickets]
>>> print(service.stats().summary())
"""

from __future__ import annotations

import itertools
import pathlib
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.encoder import EnQodeEncoder
from repro.errors import ServiceError
from repro.hardware.backend import Backend
from repro.service.batcher import MicroBatcher
from repro.service.records import EncodeRequest, EncodeResponse, ServiceStats
from repro.service.registry import EncoderRegistry
from repro.transpile.template import GLOBAL_TEMPLATE_CACHE

#: Latency percentiles are computed over this many most-recent requests,
#: so a long-lived service keeps O(1) memory per request stream (means
#: and counts are exact running aggregates over *all* traffic).
STATS_WINDOW = 4096


@dataclass
class EncodeTicket:
    """Handle returned by :meth:`EncodingService.submit`.

    The response appears when the request's micro-batch flushes;
    :meth:`result` forces a flush of the owning queue if the caller
    cannot wait for a trigger.  A request whose flush errored carries
    the failure in ``error`` and re-raises it from :meth:`result`.
    """

    request: EncodeRequest
    response: "EncodeResponse | None" = None
    error: "Exception | None" = None
    _service: "EncodingService | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def done(self) -> bool:
        return self.response is not None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def result(self, flush: bool = True) -> EncodeResponse:
        """The response, flushing this request's queue first if needed."""
        if self.response is None and self.error is None:
            if flush and self._service is not None:
                self._service.flush(self.request.key)
        if self.error is not None:
            raise ServiceError(
                f"request {self.request.request_id} failed during its "
                f"micro-batch flush: {self.error}"
            ) from self.error
        if self.response is None:
            raise ServiceError(
                f"request {self.request.request_id} is still queued "
                "(called with flush=False, or the ticket is detached "
                "from its service); flush the service to serve it"
            )
        return self.response


class EncodingService:
    """Micro-batched, multi-encoder online serving front end.

    Parameters
    ----------
    registry:
        Encoder collection to serve from (a fresh empty registry by
        default; populate via :meth:`register` / :meth:`load`).
    max_batch:
        Size trigger: a key's queue reaching this many pending requests
        flushes immediately inside ``submit``.
    max_delay:
        Optional latency deadline in seconds: any queue whose oldest
        request has waited this long is flushed at the next ``submit``
        or ``poll`` call.  ``None`` (default) disables the deadline —
        callers flush explicitly.
    use_template:
        Lower via the cached parametric transpile template (the fast
        path, default) or full per-sample transpiles (escape hatch).
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        registry: "EncoderRegistry | None" = None,
        *,
        max_batch: int = 32,
        max_delay: "float | None" = None,
        use_template: bool = True,
        clock=time.monotonic,
    ) -> None:
        self.registry = registry if registry is not None else EncoderRegistry()
        self.batcher = MicroBatcher(max_batch=max_batch, max_delay=max_delay)
        self.use_template = use_template
        self.clock = clock
        self._ids = itertools.count()
        self._tickets: "dict[int, EncodeTicket]" = {}
        # Aggregate accounting (ServiceStats is a computed snapshot).
        # Means/counts are exact running aggregates; only the latency
        # percentile window holds per-request history, and it is bounded
        # so unbounded traffic cannot grow service memory.
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._flushes = 0
        self._latency_window: "deque[float]" = deque(maxlen=STATS_WINDOW)
        self._latency_sum = 0.0
        self._batch_size_sum = 0
        self._evaluation_sum = 0
        self._fidelity_sum = 0.0
        self._per_key_completed: dict = {}
        self._template_hits = 0
        self._template_misses = 0
        self._template_binds = 0

    # -- registry passthroughs -----------------------------------------------------

    def register(self, key, encoder: EnQodeEncoder) -> EnQodeEncoder:
        """Register a fitted encoder under ``key``."""
        return self.registry.register(key, encoder)

    def load(
        self, key, path: "str | pathlib.Path", backend: Backend
    ) -> EnQodeEncoder:
        """Load a versioned model bundle into the ``key`` slot."""
        return self.registry.load(key, path, backend)

    def keys(self) -> list:
        return self.registry.keys()

    # -- submission ----------------------------------------------------------------

    def submit(self, sample: np.ndarray, key=None) -> EncodeTicket:
        """Queue one sample; returns a ticket that fills on flush.

        Without ``key`` the sample is routed to the registry's nearest
        encoder (the ``PerClassEnQode.encode_auto`` rule).  Validation
        happens here — a malformed sample fails its own ``submit`` call
        instead of poisoning a whole micro-batch later.  If this
        submission fills the key's queue to ``max_batch`` the queue is
        flushed before returning (the returned ticket is then already
        ``done``); a configured ``max_delay`` is also enforced across
        all queues on every submit.
        """
        sample = self._validate(np.asarray(sample, dtype=float).ravel())
        if key is None:
            key = self.registry.route(sample)
        encoder = self.registry.get(key)
        if sample.size != encoder.config.num_amplitudes:
            raise ServiceError(
                f"sample has {sample.size} amplitudes, encoder {key!r} "
                f"expects {encoder.config.num_amplitudes}"
            )
        request = EncodeRequest(
            request_id=next(self._ids),
            key=key,
            sample=sample,
            submitted_at=self.clock(),
        )
        ticket = EncodeTicket(request=request, _service=self)
        self._tickets[request.request_id] = ticket
        self._submitted += 1
        if self.batcher.add(request):
            self._flush_key(key)
        self.poll()
        return ticket

    def _validate(self, sample: np.ndarray) -> np.ndarray:
        if sample.size == 0:
            raise ServiceError("cannot submit an empty sample")
        if not np.all(np.isfinite(sample)):
            raise ServiceError("sample contains non-finite entries")
        if np.linalg.norm(sample) < 1e-12:
            raise ServiceError(
                "cannot submit the zero vector (amplitude embedding is "
                "undefined for it)"
            )
        return sample

    # -- flushing ------------------------------------------------------------------

    def poll(self) -> list[EncodeResponse]:
        """Flush every queue whose latency deadline has passed."""
        responses: list[EncodeResponse] = []
        for key in self.batcher.due_keys(self.clock()):
            responses.extend(self._flush_key(key))
        return responses

    def flush(self, key=None) -> list[EncodeResponse]:
        """Flush one key's queue (or, with no key, every pending queue)."""
        keys = [key] if key is not None else self.batcher.pending_keys()
        responses: list[EncodeResponse] = []
        for one in keys:
            while self.batcher.pending(one):
                responses.extend(self._flush_key(one))
        return responses

    def _flush_key(self, key) -> list[EncodeResponse]:
        requests = self.batcher.drain(key)
        if not requests:
            return []
        hits0, misses0 = (
            GLOBAL_TEMPLATE_CACHE.hits,
            GLOBAL_TEMPLATE_CACHE.misses,
        )
        try:
            encoder = self.registry.get(key)
            pipeline = encoder.pipeline
            binds_before = pipeline.stats.template_binds
            samples = np.stack([request.sample for request in requests])
            # The same stage objects encode/encode_batch execute — a flush
            # of B requests is numerically identical to encode_batch on
            # them (one vectorized template bind_batch sweep per flush).
            encoded = pipeline.run(samples, use_template=self.use_template)
        except Exception as exc:
            # The requests are already drained: fail their tickets loudly
            # (result() re-raises) rather than stranding them forever —
            # e.g. a hot-reloaded bundle with a different amplitude width
            # invalidates whatever was queued under the old model.
            for request in requests:
                ticket = self._tickets.pop(request.request_id, None)
                if ticket is not None:
                    ticket.error = exc
                self._failed += 1
            raise ServiceError(
                f"flush of {len(requests)} request(s) for encoder "
                f"{key!r} failed: {exc}"
            ) from exc
        completed_at = self.clock()
        self._template_hits += GLOBAL_TEMPLATE_CACHE.hits - hits0
        self._template_misses += GLOBAL_TEMPLATE_CACHE.misses - misses0
        # Row-level bind accounting: a batched flush counts one bind per
        # request, exactly as the per-sample loop would.
        self._template_binds += pipeline.stats.template_binds - binds_before
        self._flushes += 1
        self._batch_size_sum += len(requests)
        responses = []
        for request, sample in zip(requests, encoded):
            response = EncodeResponse(
                request_id=request.request_id,
                key=key,
                encoded=sample,
                submitted_at=request.submitted_at,
                completed_at=completed_at,
                batch_size=len(requests),
            )
            ticket = self._tickets.pop(request.request_id, None)
            if ticket is not None:
                ticket.response = response
            self._completed += 1
            self._latency_window.append(response.latency)
            self._latency_sum += response.latency
            self._evaluation_sum += sample.optimizer_evaluations
            self._fidelity_sum += sample.ideal_fidelity
            self._per_key_completed[key] = (
                self._per_key_completed.get(key, 0) + 1
            )
            responses.append(response)
        return responses

    # -- introspection -------------------------------------------------------------

    @property
    def pending(self) -> int:
        return self.batcher.pending()

    def stats(self) -> ServiceStats:
        """Aggregate accounting snapshot since construction.

        Counts and means are exact over all served traffic; latency
        percentiles cover the most recent :data:`STATS_WINDOW` requests.
        """
        window = np.asarray(self._latency_window, dtype=float)
        have = window.size > 0
        done = self._completed
        return ServiceStats(
            requests_submitted=self._submitted,
            requests_completed=done,
            requests_failed=self._failed,
            requests_pending=self.pending,
            num_flushes=self._flushes,
            mean_batch_size=(
                self._batch_size_sum / self._flushes
                if self._flushes
                else float("nan")
            ),
            p50_latency=(
                float(np.percentile(window, 50)) if have else float("nan")
            ),
            p95_latency=(
                float(np.percentile(window, 95)) if have else float("nan")
            ),
            mean_latency=self._latency_sum / done if done else float("nan"),
            evals_per_sample=(
                self._evaluation_sum / done if done else float("nan")
            ),
            mean_fidelity=(
                self._fidelity_sum / done if done else float("nan")
            ),
            template_cache_hits=self._template_hits,
            template_cache_misses=self._template_misses,
            template_binds=self._template_binds,
            per_key_completed=dict(self._per_key_completed),
        )

    def __repr__(self) -> str:
        return (
            f"EncodingService(keys={self.keys()}, "
            f"max_batch={self.batcher.max_batch}, "
            f"max_delay={self.batcher.max_delay}, pending={self.pending})"
        )
