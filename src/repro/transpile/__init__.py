"""Transpilation: lowering circuits onto hardware backends."""

from repro.transpile.bound import BoundCircuit, BoundCircuitBatch
from repro.transpile.decompositions import decompose_to_cx, expand_cx
from repro.transpile.euler import (
    PackedSynthesis,
    physical_1q_cost,
    synthesize_1q,
    synthesize_1q_batch,
    synthesize_1q_packed_batch,
    zyz_decompose,
)
from repro.transpile.layout import Layout
from repro.transpile.metrics import (
    CircuitMetrics,
    circuit_metrics,
    schedule_duration,
)
from repro.transpile.passes import (
    cancel_adjacent_cx,
    merge_1q_runs,
    resynthesize_1q,
    translate_1q,
)
from repro.transpile.routing import RoutingResult, route
from repro.transpile.template import (
    GLOBAL_TEMPLATE_CACHE,
    ParametricTemplate,
    TemplateCache,
    transpile_template,
)
from repro.transpile.transpiler import TranspileResult, transpile

__all__ = [
    "BoundCircuit",
    "BoundCircuitBatch",
    "CircuitMetrics",
    "GLOBAL_TEMPLATE_CACHE",
    "Layout",
    "PackedSynthesis",
    "ParametricTemplate",
    "RoutingResult",
    "TemplateCache",
    "TranspileResult",
    "cancel_adjacent_cx",
    "circuit_metrics",
    "decompose_to_cx",
    "expand_cx",
    "merge_1q_runs",
    "physical_1q_cost",
    "resynthesize_1q",
    "route",
    "schedule_duration",
    "synthesize_1q",
    "synthesize_1q_batch",
    "synthesize_1q_packed_batch",
    "translate_1q",
    "transpile",
    "transpile_template",
    "zyz_decompose",
]
