"""The bound-circuit compact IR: array-backed circuits, lazy materialization.

A :class:`repro.transpile.template.ParametricTemplate` already owns every
structural fact about its circuits — the fixed instruction blocks, the
gate skeleton, the layouts.  The only thing that varies per bound sample
is numbers: the ``(P,)`` angle row and, per merged 1q run, the packed
ZYZ synthesis result (three wrapped Rz angles with NaN-marked skips plus
a kind byte — :class:`repro.transpile.euler.PackedSynthesis`).

:class:`BoundCircuitBatch` is exactly that split: one reference to the
shared template plus the packed arrays for a whole ``(B, P)`` bind.  No
``Gate``/``Instruction`` objects are created at bind time.  Consumers
choose their own level of materialization:

* the statevector simulator walks the arrays directly
  (:meth:`BoundCircuitBatch.statevector_row`, surfaced to
  :class:`repro.quantum.simulator.StatevectorSimulator` through the
  ``ir_statevector`` hook on :class:`BoundCircuit`) — bit-identical to
  simulating the materialized circuit, because it applies the same
  matrices (shared fixed-gate matrices, ``_rz_matrix`` for angles) in
  the same order through the same contraction kernel;
* gate counts and histograms come from the template's precomputed
  skeleton plus a per-run array scan — no instruction list needed;
* :meth:`BoundCircuit.materialize` (or any instruction access — the
  instruction list is a lazily-built cached property) expands today's
  eager ``Instruction`` stream on demand, **float-bit identical** to
  what the eager per-sample ``bind`` emits.

:class:`BoundCircuit` subclasses :class:`~repro.quantum.circuit.
QuantumCircuit`, so every existing consumer (drawing, metrics, the
density-matrix simulator, ``embed_target`` comparisons) keeps working —
they just pay the materialization cost on first instruction access
instead of at bind time.  A serving flush can therefore return circuits
whose per-sample payload is a few hundred bytes of arrays
(:meth:`BoundCircuit.payload_nbytes`) rather than an object graph of
thousands of instructions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TranspilerError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import VIRTUAL_GATE_NAMES
from repro.quantum.instruction import Instruction
from repro.quantum.statevector import Statevector


class BoundCircuitBatch:
    """Shared compact IR for one ``bind_batch`` call.

    Holds the template reference, the bound ``(B, P)`` angle matrix, and
    one :class:`~repro.transpile.euler.PackedSynthesis` per parametric
    run (row-sliced views of the bind's single batched ZYZ sweep).  All
    per-row views (:meth:`circuit`) share these arrays — nothing is
    copied per sample.
    """

    __slots__ = ("template", "thetas", "packed")

    def __init__(self, template, thetas: np.ndarray, packed: list) -> None:
        self.template = template
        self.thetas = thetas
        self.packed = packed

    @property
    def batch_size(self) -> int:
        return self.thetas.shape[0]

    @property
    def num_qubits(self) -> int:
        return self.template._num_qubits

    @property
    def name(self) -> str:
        return self.template._name

    def circuit(self, row: int) -> "BoundCircuit":
        """A lazy circuit view of one bound sample."""
        return BoundCircuit(self, row)

    def take(self, rows: "list[int]") -> "BoundCircuitBatch":
        """A new batch holding an arbitrary subset/reordering of rows.

        Copies only the per-row numeric payload (fancy indexing); the
        template reference is shared.  This is how the wire format
        (:mod:`repro.io.wire`) exports a scattered selection of bound
        circuits as one compact record.
        """
        rows = [int(row) for row in rows]
        batch = self.thetas.shape[0]
        for row in rows:
            if not 0 <= row < batch:
                raise TranspilerError(
                    f"row {row} out of range for batch of {batch}"
                )
        return BoundCircuitBatch(
            self.template,
            self.thetas[rows],
            [p.take(rows) for p in self.packed],
        )

    # -- materialization ------------------------------------------------------

    def materialize_row(self, row: int) -> list[Instruction]:
        """Expand one row to the eager instruction stream.

        Walks the template's bind program exactly as the eager per-sample
        ``bind`` does, reading angles out of the packed arrays — the
        emitted instructions are float-bit identical to the eager path
        (fixed blocks share the very same ``Instruction`` objects).
        """
        out: list[Instruction] = []
        for step in self.template._program:
            step.emit_ir(self, row, out)
        return out

    # -- direct consumption (no instruction objects) --------------------------

    def statevector_row(self, row: int) -> Statevector:
        """Simulate one row straight off the arrays.

        Applies the same gate matrices in the same order through the
        same tensor-contraction kernel as ``Statevector.evolve`` on the
        materialized circuit, so the result is bitwise identical — with
        zero instruction objects built.
        """
        num_qubits = self.num_qubits
        vec = np.zeros(2**num_qubits, dtype=complex)
        vec[0] = 1.0
        tensor = vec.reshape((2,) * num_qubits)
        for step in self.template._program:
            tensor = step.apply_ir(self, row, tensor, num_qubits)
        return Statevector(tensor.reshape(-1), validate=False)

    def evolve_states_row(
        self, row: int, states: np.ndarray
    ) -> np.ndarray:
        """Evolve a ``(B, 2^n)`` stack of states through one bound row.

        The QML fast path: the contraction kernel
        (:func:`repro.quantum.statevector.apply_gate_to_tensor`) treats
        the first ``num_qubits`` tensor axes as qubit axes and carries
        any trailing axes along untouched, so stacking the batch as one
        trailing axis evolves **all** states through the row's gates in
        one array walk — same matrices, same order, same kernel as
        :meth:`statevector_row` applied to each state individually (the
        per-state results agree to the last bit of each contraction).
        Only meaningful when the template's layout is trivial
        (:attr:`repro.transpile.template.ParametricTemplate.
        has_trivial_layout`) — with SWAPs or a permuted layout the input
        states would need re-indexing, which callers must handle.
        """
        states = np.atleast_2d(np.asarray(states, dtype=complex))
        num_qubits = self.num_qubits
        if states.ndim != 2 or states.shape[1] != 2**num_qubits:
            raise TranspilerError(
                f"states must be (B, {2 ** num_qubits}), got {states.shape}"
            )
        batch = states.shape[0]
        if batch == 0:
            return states.copy()
        # Qubit axes leading, batch trailing: column b of states.T is
        # state b, so tensor[..., b] is exactly state b's qubit tensor.
        tensor = np.ascontiguousarray(states.T).reshape(
            (2,) * num_qubits + (batch,)
        )
        for step in self.template._program:
            tensor = step.apply_ir(self, row, tensor, num_qubits)
        return np.ascontiguousarray(tensor.reshape(2**num_qubits, batch).T)

    def num_gates_row(self, row: int) -> int:
        skeleton = self.template._skeleton_length
        return skeleton + sum(p.ops_in_row(row) for p in self.packed)

    def count_ops_row(self, row: int) -> dict[str, int]:
        counts = dict(self.template._skeleton_counts)
        for p in self.packed:
            p.count_row_into(row, counts)
        return counts

    def num_two_qubit_row(self, row: int) -> int:
        # Parametric runs only ever emit 1q gates; every 2q gate lives
        # in the fixed skeleton.
        return self.template._skeleton_two_qubit

    def payload_nbytes(self) -> int:
        """Bytes of per-sample numeric payload held for the whole batch
        (angles + kinds + bound thetas; excludes the shared template)."""
        return self.thetas.nbytes + sum(
            p.angles.nbytes + p.kinds.nbytes for p in self.packed
        )

    def payload_nbytes_row(self, row: int) -> int:
        per_run = sum(
            3 * p.angles.itemsize + p.kinds.itemsize for p in self.packed
        )
        return self.thetas[row].nbytes + per_run

    def __repr__(self) -> str:
        return (
            f"BoundCircuitBatch(batch={self.batch_size}, "
            f"qubits={self.num_qubits}, runs={len(self.packed)}, "
            f"payload={self.payload_nbytes()}B)"
        )


class BoundCircuit(QuantumCircuit):
    """One bound sample as a lazily-materialized circuit.

    Until something touches the instruction list, the object holds two
    references (the shared batch IR and a row index) and nothing else.
    Structural queries (``len``, ``count_ops``, ``num_gates``,
    ``num_two_qubit_gates``) answer from the template skeleton and the
    packed arrays; simulation goes through :meth:`ir_statevector`.  Any
    other instruction access — iteration, ``depth``, drawing —
    materializes once and caches, after which the object behaves exactly
    like the eager circuit it is float-bit identical to.
    """

    def __init__(self, batch: BoundCircuitBatch, row: int) -> None:
        # Deliberately skips QuantumCircuit.__init__: there is no
        # instruction list to validate or allocate yet.
        self.num_qubits = batch.num_qubits
        self.name = batch.name
        self._batch = batch
        self._row = row
        self._materialized: "list[Instruction] | None" = None

    @property
    def _instructions(self) -> list[Instruction]:
        materialized = self._materialized
        if materialized is None:
            materialized = self._batch.materialize_row(self._row)
            self._materialized = materialized
        return materialized

    @_instructions.setter
    def _instructions(self, value: list[Instruction]) -> None:
        self._materialized = value

    @property
    def is_materialized(self) -> bool:
        """Whether the instruction list has been built yet."""
        return self._materialized is not None

    @property
    def bound_batch(self) -> BoundCircuitBatch:
        """The shared batch IR this circuit is a row view of."""
        return self._batch

    @property
    def bound_row(self) -> int:
        """This circuit's row index inside :attr:`bound_batch`."""
        return self._row

    def materialize(self) -> QuantumCircuit:
        """Expand to a plain eager :class:`QuantumCircuit`.

        Always performs a fresh program walk (cost: one list build plus
        one lazy Rz instruction per parametric angle — microseconds per
        circuit); the result is float-bit instruction-identical to the
        eager ``bind`` output for the same angles.
        """
        return QuantumCircuit.trusted(
            self.num_qubits, self.name, self._batch.materialize_row(self._row)
        )

    def ir_statevector(self) -> Statevector:
        """Simulator fast path: evolve |0...0> off the packed arrays."""
        return self._batch.statevector_row(self._row)

    def evolve_states(self, states: np.ndarray) -> np.ndarray:
        """Evolve a ``(B, 2^n)`` state stack through this circuit's gates
        in one array walk (see :meth:`BoundCircuitBatch.evolve_states_row`)."""
        return self._batch.evolve_states_row(self._row, states)

    def payload_nbytes(self) -> int:
        """Bytes of per-sample numeric payload (excludes the template)."""
        return self._batch.payload_nbytes_row(self._row)

    # -- skeleton-backed structural queries -----------------------------------

    def __len__(self) -> int:
        if self._materialized is not None:
            return len(self._materialized)
        return self._batch.num_gates_row(self._row)

    def count_ops(self, physical_only: bool = False) -> dict[str, int]:
        if self._materialized is not None:
            return super().count_ops(physical_only)
        counts = self._batch.count_ops_row(self._row)
        if physical_only:
            return {
                name: count
                for name, count in counts.items()
                if name not in VIRTUAL_GATE_NAMES
            }
        return counts

    def num_gates(self, physical_only: bool = False) -> int:
        if self._materialized is not None:
            return super().num_gates(physical_only)
        if not physical_only:
            return self._batch.num_gates_row(self._row)
        return sum(self.count_ops(physical_only=True).values())

    def num_one_qubit_gates(self, physical_only: bool = False) -> int:
        if self._materialized is not None:
            return super().num_one_qubit_gates(physical_only)
        # Every 2q gate is physical, so subtracting them from the
        # (optionally physical-only) total leaves exactly the 1q gates.
        return self.num_gates(physical_only) - self._batch.num_two_qubit_row(
            self._row
        )

    def num_two_qubit_gates(self) -> int:
        if self._materialized is not None:
            return super().num_two_qubit_gates()
        return self._batch.num_two_qubit_row(self._row)

    def __repr__(self) -> str:
        state = "materialized" if self.is_materialized else "compact"
        return (
            f"BoundCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self)}, {state})"
        )
