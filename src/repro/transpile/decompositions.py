"""Gate-level rewrite rules used by the transpiler.

Two layers of rules:

* :func:`decompose_to_cx` lowers every two-qubit gate to ``{cx}`` plus
  one-qubit gates (routing operates at this level);
* :func:`expand_cx` lowers ``cx`` to the hardware entangler (``ecr`` for
  IBM Eagle, ``cz`` for Heron-class sets) plus one-qubit gates.

All identities are verified against dense matrices (up to global phase) in
the test suite.
"""

from __future__ import annotations

from repro.errors import TranspilerError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.instruction import Instruction

#: Rewrite step: (gate_name, params, qubit_positions-within-instruction).
Rule = list[tuple[str, tuple[float, ...], tuple[int, ...]]]


def _cy_rule() -> Rule:
    return [
        ("sdg", (), (1,)),
        ("cx", (), (0, 1)),
        ("s", (), (1,)),
    ]


def _cz_rule() -> Rule:
    return [
        ("h", (), (1,)),
        ("cx", (), (0, 1)),
        ("h", (), (1,)),
    ]


def _ch_rule() -> Rule:
    # CH = (I (x) Ry(pi/4)) CX (I (x) Ry(-pi/4)) up to phases on the target.
    return [
        ("s", (), (1,)),
        ("h", (), (1,)),
        ("t", (), (1,)),
        ("cx", (), (0, 1)),
        ("tdg", (), (1,)),
        ("h", (), (1,)),
        ("sdg", (), (1,)),
    ]


def _swap_rule() -> Rule:
    return [
        ("cx", (), (0, 1)),
        ("cx", (), (1, 0)),
        ("cx", (), (0, 1)),
    ]


def _iswap_rule() -> Rule:
    return [
        ("s", (), (0,)),
        ("s", (), (1,)),
        ("h", (), (0,)),
        ("cx", (), (0, 1)),
        ("cx", (), (1, 0)),
        ("h", (), (1,)),
    ]


def _cp_rule(theta: float) -> Rule:
    half = theta / 2.0
    return [
        ("rz", (half,), (0,)),
        ("cx", (), (0, 1)),
        ("rz", (-half,), (1,)),
        ("cx", (), (0, 1)),
        ("rz", (half,), (1,)),
    ]


def _crz_rule(theta: float) -> Rule:
    half = theta / 2.0
    return [
        ("rz", (half,), (1,)),
        ("cx", (), (0, 1)),
        ("rz", (-half,), (1,)),
        ("cx", (), (0, 1)),
    ]


def _cry_rule(theta: float) -> Rule:
    half = theta / 2.0
    return [
        ("ry", (half,), (1,)),
        ("cx", (), (0, 1)),
        ("ry", (-half,), (1,)),
        ("cx", (), (0, 1)),
    ]


def _rzz_rule(theta: float) -> Rule:
    return [
        ("cx", (), (0, 1)),
        ("rz", (theta,), (1,)),
        ("cx", (), (0, 1)),
    ]


def two_qubit_rule(name: str, params: tuple[float, ...]) -> Rule | None:
    """Rewrite rule lowering gate ``name`` to cx + 1q gates, or None if the
    gate is already ``cx`` / one-qubit."""
    if name == "cy":
        return _cy_rule()
    if name == "cz":
        return _cz_rule()
    if name == "ch":
        return _ch_rule()
    if name == "swap":
        return _swap_rule()
    if name == "iswap":
        return _iswap_rule()
    if name == "cp":
        return _cp_rule(params[0])
    if name == "crz":
        return _crz_rule(params[0])
    if name == "cry":
        return _cry_rule(params[0])
    if name == "rzz":
        return _rzz_rule(params[0])
    return None


def decompose_to_cx(circuit: QuantumCircuit) -> QuantumCircuit:
    """Lower every two-qubit gate to ``cx`` + one-qubit gates."""
    from repro.quantum.gates import gate

    lowered = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for instr in circuit:
        if instr.gate.num_qubits == 1 or instr.name == "cx":
            lowered.append(instr.gate, instr.qubits)
            continue
        if instr.gate.num_qubits != 2:
            raise TranspilerError(
                f"cannot lower {instr.gate.num_qubits}-qubit gate "
                f"{instr.name!r}; decompose it before transpiling"
            )
        rule = two_qubit_rule(instr.name, instr.gate.params)
        if rule is None:
            # Unknown named 2q unitary: no generic KAK here by design —
            # the stack only emits gates covered by the rules above.
            raise TranspilerError(f"no decomposition rule for {instr.name!r}")
        for gate_name, params, positions in rule:
            lowered.append(
                gate(gate_name, *params),
                tuple(instr.qubits[p] for p in positions),
            )
    return lowered


# CX = (H (x) H) . ECR . ((SX.H) (x) (SX.Sdg)), derived by exhaustive search
# over one-qubit Cliffords and verified up to global phase in the tests.
_CX_VIA_ECR: Rule = [
    ("h", (), (0,)),
    ("sx", (), (0,)),
    ("sdg", (), (1,)),
    ("sx", (), (1,)),
    ("ecr", (), (0, 1)),
    ("h", (), (0,)),
    ("h", (), (1,)),
]

# CX = (I (x) H) . CZ . (I (x) H).
_CX_VIA_CZ: Rule = [
    ("h", (), (1,)),
    ("cz", (), (0, 1)),
    ("h", (), (1,)),
]


def expand_cx(circuit: QuantumCircuit, entangler: str) -> QuantumCircuit:
    """Lower every ``cx`` to the native ``entangler`` plus 1q gates."""
    from repro.quantum.gates import gate

    if entangler == "cx":
        return circuit.copy()
    if entangler == "ecr":
        rule = _CX_VIA_ECR
    elif entangler == "cz":
        rule = _CX_VIA_CZ
    else:
        raise TranspilerError(f"unsupported native entangler {entangler!r}")
    lowered = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for instr in circuit:
        if instr.name != "cx":
            lowered.append(instr.gate, instr.qubits)
            continue
        for gate_name, params, positions in rule:
            lowered.append(
                gate(gate_name, *params),
                tuple(instr.qubits[p] for p in positions),
            )
    return lowered


def instruction_as_rule(instr: Instruction) -> Rule:
    """Represent an instruction as a single-step rule (helper for tests)."""
    return [(instr.name, instr.gate.params, tuple(range(len(instr.qubits))))]
