"""Optimal single-qubit synthesis into the IBM native basis {Rz, SX, X}.

Any 2x2 unitary factors as ``U = exp(i*phase) Rz(phi) Ry(theta) Rz(lam)``
with ``theta in [0, pi]``.  Because ``Rz`` is virtual (free), the physical
cost is set by ``theta`` alone:

* ``theta ~ 0``      -> pure ``Rz``      (0 physical gates)
* ``theta ~ pi``     -> ``Rz-X-Rz``      (1 physical gate)
* ``theta ~ pi/2``   -> ``Rz-SX-Rz``     (1 physical gate)
* otherwise          -> ``Rz-SX-Rz-SX-Rz`` (2 physical gates, ZXZXZ)

This is the same 0/1/2-SX strategy qiskit's
``Optimize1qGatesDecomposition`` applies, verified here against dense
matrices in the test suite.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.errors import TranspilerError

TWO_PI = 2.0 * math.pi

#: A synthesized native op: (gate name, params tuple) in circuit order.
NativeOp = tuple[str, tuple[float, ...]]


def _zyz_angles(matrix: np.ndarray) -> tuple[float, float, float]:
    """The ``(theta, phi, lam)`` ZYZ Euler angles of a 2x2 unitary.

    Shared by :func:`zyz_decompose` (which additionally recovers the
    global phase) and :func:`synthesize_1q` (which does not need it —
    skipping the reconstruction roughly halves the cost of the template
    bind hot loop).  Works on plain Python complex scalars.
    """
    u = np.asarray(matrix, dtype=complex)
    if u.shape != (2, 2):
        raise TranspilerError(f"expected a 2x2 matrix, got shape {u.shape}")
    u00, u01 = complex(u[0, 0]), complex(u[0, 1])
    u10, u11 = complex(u[1, 0]), complex(u[1, 1])
    det = u00 * u11 - u01 * u10
    if abs(abs(det) - 1.0) > 1e-6:
        raise TranspilerError("matrix is not unitary (|det| != 1)")
    # Project into SU(2).
    root = cmath.sqrt(det)
    su00, su10, su11 = u00 / root, u10 / root, u11 / root
    theta = 2.0 * math.atan2(abs(su10), abs(su00))
    if abs(su00) > 1e-9 and abs(su10) > 1e-9:
        phi_plus_lam = 2.0 * cmath.phase(su11)
        phi_minus_lam = 2.0 * cmath.phase(su10)
        phi = 0.5 * (phi_plus_lam + phi_minus_lam)
        lam = 0.5 * (phi_plus_lam - phi_minus_lam)
    elif abs(su10) <= 1e-9:  # theta ~ 0: only phi+lam is defined
        phi = 2.0 * cmath.phase(su11)
        lam = 0.0
    else:  # theta ~ pi: only phi-lam is defined
        phi = 2.0 * cmath.phase(su10)
        lam = 0.0
    return theta, phi, lam


def zyz_decompose(matrix: np.ndarray) -> tuple[float, float, float, float]:
    """Return ``(theta, phi, lam, phase)`` with
    ``U = exp(i*phase) * Rz(phi) @ Ry(theta) @ Rz(lam)`` and theta in [0, pi].
    """
    u = np.asarray(matrix, dtype=complex)
    theta, phi, lam = _zyz_angles(u)
    # Recover the global phase by comparing one reliable entry.
    rec = _zyz_matrix(theta, phi, lam)
    idx = np.unravel_index(int(np.argmax(np.abs(rec))), rec.shape)
    phase = cmath.phase(u[idx] / rec[idx])
    return theta, phi, lam, phase


def _zyz_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    cos, sin = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [
            [
                cmath.exp(-0.5j * (phi + lam)) * cos,
                -cmath.exp(-0.5j * (phi - lam)) * sin,
            ],
            [
                cmath.exp(0.5j * (phi - lam)) * sin,
                cmath.exp(0.5j * (phi + lam)) * cos,
            ],
        ]
    )


def _wrap_angle(angle: float) -> float:
    """Map ``angle`` into (-pi, pi]."""
    wrapped = math.fmod(angle + math.pi, TWO_PI)
    if wrapped <= 0.0:
        wrapped += TWO_PI
    return wrapped - math.pi


def _is_zero_angle(angle: float, atol: float) -> bool:
    return abs(_wrap_angle(angle)) <= atol


def synthesize_1q(matrix: np.ndarray, atol: float = 1e-9) -> list[NativeOp]:
    """Minimal {rz, sx, x} sequence (circuit order) implementing ``matrix``
    up to global phase."""
    theta, phi, lam = _zyz_angles(matrix)
    ops: list[NativeOp] = []

    def rz(angle: float) -> None:
        wrapped = _wrap_angle(angle)
        if abs(wrapped) > atol:
            ops.append(("rz", (wrapped,)))

    if _is_zero_angle(theta, atol):
        rz(phi + lam)
    elif _is_zero_angle(theta - math.pi, atol):
        # Ry(pi) == X @ Z exactly, so U = Rz(phi) X Z Rz(lam).
        rz(lam + math.pi)
        ops.append(("x", ()))
        rz(phi)
    elif _is_zero_angle(theta - math.pi / 2.0, atol):
        # Ry(pi/2) == phase * Rz(pi/2) SX Rz(-pi/2).
        rz(lam - math.pi / 2.0)
        ops.append(("sx", ()))
        rz(phi + math.pi / 2.0)
    else:
        # ZXZXZ: U = phase * Rz(phi+pi) SX Rz(theta+pi) SX Rz(lam).
        rz(lam)
        ops.append(("sx", ()))
        rz(theta + math.pi)
        ops.append(("sx", ()))
        rz(phi + math.pi)
    return ops


def physical_1q_cost(matrix: np.ndarray, atol: float = 1e-9) -> int:
    """Number of physical (non-Rz) gates :func:`synthesize_1q` would emit."""
    return sum(1 for name, _ in synthesize_1q(matrix, atol) if name != "rz")
