"""Optimal single-qubit synthesis into the IBM native basis {Rz, SX, X}.

Any 2x2 unitary factors as ``U = exp(i*phase) Rz(phi) Ry(theta) Rz(lam)``
with ``theta in [0, pi]``.  Because ``Rz`` is virtual (free), the physical
cost is set by ``theta`` alone:

* ``theta ~ 0``      -> pure ``Rz``      (0 physical gates)
* ``theta ~ pi``     -> ``Rz-X-Rz``      (1 physical gate)
* ``theta ~ pi/2``   -> ``Rz-SX-Rz``     (1 physical gate)
* otherwise          -> ``Rz-SX-Rz-SX-Rz`` (2 physical gates, ZXZXZ)

This is the same 0/1/2-SX strategy qiskit's
``Optimize1qGatesDecomposition`` applies, verified here against dense
matrices in the test suite.

:func:`synthesize_1q` handles one matrix; :func:`synthesize_1q_batch`
synthesizes a whole ``(B, 2, 2)`` stack in one sweep with bit-identical
output per row (the parametric template's batched bind hot path).
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.errors import TranspilerError

TWO_PI = 2.0 * math.pi

#: A synthesized native op: (gate name, params tuple) in circuit order.
NativeOp = tuple[str, tuple[float, ...]]


def _zyz_angles(matrix: np.ndarray) -> tuple[float, float, float]:
    """The ``(theta, phi, lam)`` ZYZ Euler angles of a 2x2 unitary.

    Shared by :func:`zyz_decompose` (which additionally recovers the
    global phase) and :func:`synthesize_1q` (which does not need it —
    skipping the reconstruction roughly halves the cost of the template
    bind hot loop).  Works on plain Python complex scalars.
    """
    u = np.asarray(matrix, dtype=complex)
    if u.shape != (2, 2):
        raise TranspilerError(f"expected a 2x2 matrix, got shape {u.shape}")
    u00, u01 = complex(u[0, 0]), complex(u[0, 1])
    u10, u11 = complex(u[1, 0]), complex(u[1, 1])
    det = u00 * u11 - u01 * u10
    if abs(abs(det) - 1.0) > 1e-6:
        raise TranspilerError("matrix is not unitary (|det| != 1)")
    # Project into SU(2).
    root = cmath.sqrt(det)
    su00, su10, su11 = u00 / root, u10 / root, u11 / root
    theta = 2.0 * math.atan2(abs(su10), abs(su00))
    if abs(su00) > 1e-9 and abs(su10) > 1e-9:
        phi_plus_lam = 2.0 * cmath.phase(su11)
        phi_minus_lam = 2.0 * cmath.phase(su10)
        phi = 0.5 * (phi_plus_lam + phi_minus_lam)
        lam = 0.5 * (phi_plus_lam - phi_minus_lam)
    elif abs(su10) <= 1e-9:  # theta ~ 0: only phi+lam is defined
        phi = 2.0 * cmath.phase(su11)
        lam = 0.0
    else:  # theta ~ pi: only phi-lam is defined
        phi = 2.0 * cmath.phase(su10)
        lam = 0.0
    return theta, phi, lam


def zyz_decompose(matrix: np.ndarray) -> tuple[float, float, float, float]:
    """Return ``(theta, phi, lam, phase)`` with
    ``U = exp(i*phase) * Rz(phi) @ Ry(theta) @ Rz(lam)`` and theta in [0, pi].
    """
    u = np.asarray(matrix, dtype=complex)
    theta, phi, lam = _zyz_angles(u)
    # Recover the global phase by comparing one reliable entry.
    rec = _zyz_matrix(theta, phi, lam)
    idx = np.unravel_index(int(np.argmax(np.abs(rec))), rec.shape)
    phase = cmath.phase(u[idx] / rec[idx])
    return theta, phi, lam, phase


def _zyz_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    cos, sin = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [
            [
                cmath.exp(-0.5j * (phi + lam)) * cos,
                -cmath.exp(-0.5j * (phi - lam)) * sin,
            ],
            [
                cmath.exp(0.5j * (phi - lam)) * sin,
                cmath.exp(0.5j * (phi + lam)) * cos,
            ],
        ]
    )


def _wrap_angle(angle: float) -> float:
    """Map ``angle`` into (-pi, pi]."""
    wrapped = math.fmod(angle + math.pi, TWO_PI)
    if wrapped <= 0.0:
        wrapped += TWO_PI
    return wrapped - math.pi


def _is_zero_angle(angle: float, atol: float) -> bool:
    return abs(_wrap_angle(angle)) <= atol


def _wrap_angles(angles: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_wrap_angle`: map each entry into (-pi, pi].

    Same operation sequence (``fmod``, non-positive shift, subtraction)
    as the scalar helper, so each entry is bit-identical to
    ``_wrap_angle`` of the same float — the batched synthesis below
    relies on that to reproduce the scalar branch-cut behaviour exactly.
    """
    wrapped = np.fmod(angles + math.pi, TWO_PI)
    return np.where(wrapped <= 0.0, wrapped + TWO_PI, wrapped) - math.pi


def synthesize_1q(matrix: np.ndarray, atol: float = 1e-9) -> list[NativeOp]:
    """Minimal {rz, sx, x} sequence (circuit order) implementing ``matrix``
    up to global phase."""
    theta, phi, lam = _zyz_angles(matrix)
    ops: list[NativeOp] = []

    def rz(angle: float) -> None:
        wrapped = _wrap_angle(angle)
        if abs(wrapped) > atol:
            ops.append(("rz", (wrapped,)))

    if _is_zero_angle(theta, atol):
        rz(phi + lam)
    elif _is_zero_angle(theta - math.pi, atol):
        # Ry(pi) == X @ Z exactly, so U = Rz(phi) X Z Rz(lam).
        rz(lam + math.pi)
        ops.append(("x", ()))
        rz(phi)
    elif _is_zero_angle(theta - math.pi / 2.0, atol):
        # Ry(pi/2) == phase * Rz(pi/2) SX Rz(-pi/2).
        rz(lam - math.pi / 2.0)
        ops.append(("sx", ()))
        rz(phi + math.pi / 2.0)
    else:
        # ZXZXZ: U = phase * Rz(phi+pi) SX Rz(theta+pi) SX Rz(lam).
        rz(lam)
        ops.append(("sx", ()))
        rz(theta + math.pi)
        ops.append(("sx", ()))
        rz(phi + math.pi)
    return ops


#: Parameterless native ops are immutable — emit one shared tuple.
_SX_OP: NativeOp = ("sx", ())

#: Row kinds in a :class:`PackedSynthesis`.
PACKED_GENERIC = 0  # generic ZXZXZ row: angles carry (w_lam, w_mid, w_phi)
PACKED_DROPPED = 1  # identity up to phase: the row emits nothing
PACKED_SPECIAL = 2  # 0/1-SX special case: ops live in ``specials``


class PackedSynthesis:
    """Array-backed result of a batched ZYZ synthesis — the compact IR.

    For ``B`` synthesized unitaries this stores

    * ``angles`` — ``(B, 3)`` float64, the generic ZXZXZ pattern per row
      read as ``rz(angles[0]) sx rz(angles[1]) sx rz(angles[2])``, with
      ``NaN`` marking an Rz whose wrapped angle fell below ``atol``
      (``NaN`` cannot be a legitimate wrapped angle);
    * ``kinds`` — ``(B,)`` uint8 of ``PACKED_GENERIC`` /
      ``PACKED_DROPPED`` / ``PACKED_SPECIAL`` row discriminators;
    * ``specials`` — ``{row: list[NativeOp]}`` for the (masked minority
      of) rows synthesized by the scalar 0/1-SX fallback.

    This is the per-sample payload of the bound-circuit IR: three
    doubles and one byte per merged run instead of an instruction-object
    graph.  :meth:`to_program_rows` expands to the legacy per-row
    program encoding (``None`` / 3-tuple / op list) with identical float
    bits.
    """

    __slots__ = ("angles", "kinds", "specials")

    def __init__(
        self,
        angles: np.ndarray,
        kinds: np.ndarray,
        specials: "dict[int, list[NativeOp]]",
    ) -> None:
        self.angles = angles
        self.kinds = kinds
        self.specials = specials

    def __len__(self) -> int:
        return self.kinds.shape[0]

    def sliced(self, start: int, stop: int) -> "PackedSynthesis":
        """Row-range view (array slices share memory with the parent)."""
        specials = {
            row - start: ops
            for row, ops in self.specials.items()
            if start <= row < stop
        }
        return PackedSynthesis(
            self.angles[start:stop], self.kinds[start:stop], specials
        )

    def take(self, rows: "list[int]") -> "PackedSynthesis":
        """Arbitrary-row-subset copy (fancy indexing, so arrays are new).

        The wire-format export path (:mod:`repro.io.wire`) uses this to
        ship a scattered subset of a batch — e.g. the rows of the
        responses a service caller actually wants to export.
        """
        index_of = {row: i for i, row in enumerate(rows)}
        specials = {
            index_of[row]: ops
            for row, ops in self.specials.items()
            if row in index_of
        }
        return PackedSynthesis(self.angles[rows], self.kinds[rows], specials)

    def ops_in_row(self, row: int) -> int:
        """Number of native ops the row expands to."""
        kind = self.kinds[row]
        if kind == PACKED_DROPPED:
            return 0
        if kind == PACKED_SPECIAL:
            return len(self.specials[row])
        angles = self.angles[row]
        # NaN != NaN marks the skipped Rz slots; the two SX are fixed.
        return 2 + int(np.count_nonzero(angles == angles))

    def count_row_into(self, row: int, counts: "dict[str, int]") -> None:
        """Accumulate the row's gate-name histogram into ``counts``."""
        kind = self.kinds[row]
        if kind == PACKED_DROPPED:
            return
        if kind == PACKED_SPECIAL:
            for name, _ in self.specials[row]:
                counts[name] = counts.get(name, 0) + 1
            return
        counts["sx"] = counts.get("sx", 0) + 2
        angles = self.angles[row]
        num_rz = int(np.count_nonzero(angles == angles))
        if num_rz:
            counts["rz"] = counts.get("rz", 0) + num_rz

    def to_program_rows(self) -> list:
        """Expand to the per-row program encoding (see
        :func:`synthesize_1q_program_batch`), float bits preserved."""
        program: list = [None] * len(self)
        generic = np.flatnonzero(self.kinds == PACKED_GENERIC)
        if generic.size:
            triples = self.angles[generic].tolist()
            for row, triple in zip(generic.tolist(), triples):
                program[row] = tuple(triple)
        for row, ops in self.specials.items():
            program[row] = ops
        return program


def synthesize_1q_packed_batch(
    matrices: np.ndarray,
    atol: float = 1e-9,
    *,
    drop_identity: bool = False,
    identity_atol: float = 1e-12,
    identity_rtol: float = 1e-5,
) -> PackedSynthesis:
    """Batched ZYZ synthesis into the packed array encoding.

    The workhorse behind :func:`synthesize_1q_program_batch` and
    :func:`synthesize_1q_batch` (same numerics, same per-row bit-exactness
    guarantees — see the latter's docstring for the full argument).  The
    result stays in array form — per-row wrapped angles with NaN-marked
    skipped Rz slots plus a ``kinds`` discriminator — which is exactly
    the payload the bound-circuit IR
    (:class:`repro.transpile.bound.BoundCircuitBatch`) keeps per sample:
    no per-gate Python objects are built here at all.
    """
    u = np.asarray(matrices, dtype=complex)
    if u.ndim != 3 or u.shape[1:] != (2, 2):
        raise TranspilerError(
            f"expected a (B, 2, 2) matrix stack, got shape {u.shape}"
        )
    num_rows = u.shape[0]
    all_kinds = np.zeros(num_rows, dtype=np.uint8)
    all_angles = np.full((num_rows, 3), np.nan)
    if num_rows == 0:
        return PackedSynthesis(all_angles, all_kinds, {})
    u00, u01 = u[:, 0, 0], u[:, 0, 1]
    u10, u11 = u[:, 1, 0], u[:, 1, 1]
    if drop_identity:
        # merge_1q_runs' identity-up-to-phase replica; |z| is hypot in
        # both CPython's abs() and np.hypot, so the thresholds agree.
        diff = u11 - u00
        dropped = (
            (np.hypot(u01.real, u01.imag) <= identity_atol)
            & (np.hypot(u10.real, u10.imag) <= identity_atol)
            & (
                np.hypot(diff.real, diff.imag)
                <= identity_atol
                + identity_rtol * np.hypot(u00.real, u00.imag)
            )
        )
        if dropped.any():
            all_kinds[dropped] = PACKED_DROPPED
            kept = np.flatnonzero(~dropped)
            if kept.size == 0:
                return PackedSynthesis(all_angles, all_kinds, {})
            u00, u01 = u00[kept], u01[kept]
            u10, u11 = u10[kept], u11[kept]
        else:
            kept = None
    else:
        kept = None
    rows = np.arange(num_rows) if kept is None else kept
    u00r, u00i = np.ascontiguousarray(u00.real), np.ascontiguousarray(u00.imag)
    u01r, u01i = np.ascontiguousarray(u01.real), np.ascontiguousarray(u01.imag)
    u10r, u10i = np.ascontiguousarray(u10.real), np.ascontiguousarray(u10.imag)
    u11r, u11i = np.ascontiguousarray(u11.real), np.ascontiguousarray(u11.imag)
    # det = u00*u11 - u01*u10 with CPython's complex-product expansion
    # (two products then a componentwise subtraction, no fusing).
    det_r = (u00r * u11r - u00i * u11i) - (u01r * u10r - u01i * u10i)
    det_i = (u00r * u11i + u00i * u11r) - (u01r * u10i + u01i * u10r)
    if np.any(np.abs(np.hypot(det_r, det_i) - 1.0) > 1e-6):
        raise TranspilerError("matrix is not unitary (|det| != 1)")
    # root = cmath.sqrt(det): CPython's c_sqrt algorithm vectorized
    # (the subnormal/zero branches are unreachable for |det| ~ 1).
    ax = np.abs(det_r) / 8.0
    ay = np.abs(det_i)
    s = 2.0 * np.sqrt(ax + np.hypot(ax, ay / 8.0))
    d = ay / (2.0 * s)
    nonneg = det_r >= 0.0
    root_r = np.where(nonneg, s, d)
    root_i = np.copysign(np.where(nonneg, d, s), det_i)
    # su = u / root: CPython's _Py_c_quot (Smith's algorithm), the
    # shared-denominator work hoisted across the three quotients.
    cond = np.abs(root_r) >= np.abs(root_i)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(cond, root_i / root_r, root_r / root_i)
        denom = np.where(cond, root_r + root_i * ratio, root_r * ratio + root_i)

        def quotient(numer_r: np.ndarray, numer_i: np.ndarray):
            real = np.where(
                cond, numer_r + numer_i * ratio, numer_r * ratio + numer_i
            )
            imag = np.where(
                cond, numer_i - numer_r * ratio, numer_i * ratio - numer_r
            )
            return real / denom, imag / denom

        su00_r, su00_i = quotient(u00r, u00i)
        su10_r, su10_i = quotient(u10r, u10i)
        su11_r, su11_i = quotient(u11r, u11i)
    a00 = np.hypot(su00_r, su00_i)
    a10 = np.hypot(su10_r, su10_i)
    # The only remaining scalar work: numpy's arctan2 kernel rounds
    # differently from libm's atan2 in the last ulp, so the three
    # atan2-class calls per row (theta and the two cmath.phase values,
    # which are atan2(imag, real) for finite entries) run through
    # math.atan2 via map + np.fromiter, the cheapest scalar loop that
    # keeps libm rounding.
    atan2 = math.atan2
    count = a00.shape[0]
    theta = 2.0 * np.fromiter(
        map(atan2, a10.tolist(), a00.tolist()), np.float64, count=count
    )
    phase10 = np.fromiter(
        map(atan2, su10_i.tolist(), su10_r.tolist()), np.float64, count=count
    )
    phase11 = np.fromiter(
        map(atan2, su11_i.tolist(), su11_r.tolist()), np.float64, count=count
    )
    phi_plus_lam = 2.0 * phase11
    phi_minus_lam = 2.0 * phase10
    generic = (a00 > 1e-9) & (a10 > 1e-9)
    phi = np.where(
        generic,
        0.5 * (phi_plus_lam + phi_minus_lam),
        np.where(a10 <= 1e-9, phi_plus_lam, phi_minus_lam),
    )
    lam = np.where(generic, 0.5 * (phi_plus_lam - phi_minus_lam), 0.0)
    # Case masks, replicating the scalar _is_zero_angle cascade.
    special = (
        (np.abs(_wrap_angles(theta)) <= atol)
        | (np.abs(_wrap_angles(theta - math.pi)) <= atol)
        | (np.abs(_wrap_angles(theta - math.pi / 2.0)) <= atol)
    )
    # Vectorized ZXZXZ assembly for the general rows: below-atol Rz
    # slots become NaN markers, scattered into the packed angle array in
    # three C-speed passes instead of per-row Python branches.
    wrapped_lam = _wrap_angles(lam)
    wrapped_mid = _wrap_angles(theta + math.pi)
    wrapped_phi = _wrap_angles(phi + math.pi)
    marked = np.stack(
        (
            np.where(np.abs(wrapped_lam) > atol, wrapped_lam, np.nan),
            np.where(np.abs(wrapped_mid) > atol, wrapped_mid, np.nan),
            np.where(np.abs(wrapped_phi) > atol, wrapped_phi, np.nan),
        ),
        axis=1,
    )
    if kept is None:
        all_angles = marked
    else:
        all_angles[kept] = marked
    specials: "dict[int, list[NativeOp]]" = {}
    if special.any():
        rows_list = rows.tolist()
        for j in np.flatnonzero(special).tolist():
            row = rows_list[j]
            all_kinds[row] = PACKED_SPECIAL
            specials[row] = synthesize_1q(u[row], atol)
    return PackedSynthesis(all_angles, all_kinds, specials)


def synthesize_1q_program_batch(
    matrices: np.ndarray,
    atol: float = 1e-9,
    *,
    drop_identity: bool = False,
    identity_atol: float = 1e-12,
    identity_rtol: float = 1e-5,
) -> list:
    """Batched ZYZ synthesis in the compact "bind program" encoding.

    Thin expansion of :func:`synthesize_1q_packed_batch` (same numerics,
    same per-row guarantees).  Each returned row is one of

    * ``None`` — the row was identity up to phase (only with
      ``drop_identity``) and emits nothing;
    * a 3-tuple ``(w_lam, w_mid, w_phi)`` — the generic ZXZXZ case,
      read as ``rz(w_lam) sx rz(w_mid) sx rz(w_phi)`` where a ``NaN``
      component marks an Rz whose wrapped angle fell below ``atol``
      and is skipped;
    * a ``list[NativeOp]`` — a 0/1-SX special case synthesized by the
      scalar fallback.

    Hot-loop consumers (the parametric transpile template's bound IR)
    consume the packed form directly; this per-row encoding serves
    :func:`synthesize_1q_batch` and any caller that wants Python rows.
    """
    return synthesize_1q_packed_batch(
        matrices,
        atol,
        drop_identity=drop_identity,
        identity_atol=identity_atol,
        identity_rtol=identity_rtol,
    ).to_program_rows()


def synthesize_1q_batch(
    matrices: np.ndarray,
    atol: float = 1e-9,
    *,
    drop_identity: bool = False,
    identity_atol: float = 1e-12,
    identity_rtol: float = 1e-5,
) -> "list[list[NativeOp] | None]":
    """Batched :func:`synthesize_1q` over a ``(B, 2, 2)`` unitary stack.

    Returns one op list per row, **bit-identical** to calling
    :func:`synthesize_1q` on each slice.  Bit-identity would not
    survive naive vectorization — numpy's complex multiply/divide and
    ``arctan2`` kernels round differently from CPython's in the last
    ulp, and near the ±pi Euler branch cut one ulp flips an emitted Rz
    sign — so the angle extraction *replicates the scalar operation
    sequence* with exact real-arithmetic kernels instead: the
    determinant uses CPython's complex-product expansion componentwise,
    its square root is CPython's ``cmath.sqrt`` algorithm rebuilt from
    real ``sqrt``/``hypot``/``copysign``, the SU(2) projection is
    CPython's Smith-algorithm complex division with the branch select
    vectorized, and ``|z|`` is ``hypot`` in both worlds.  Only the
    ``atan2``-class calls (theta and the two ``cmath.phase`` values)
    stay scalar, in tight ``math.atan2`` list comprehensions.
    Downstream of the angles, the (-pi, pi] wraps, the 0/1/2-SX case
    masks and the dominant ZXZXZ emission are vectorized with kernels
    that are bitwise-identical to the scalar ones (``fmod``,
    elementwise add/abs, comparisons).  Rows that hit a 0- or 1-SX
    special case (a masked minority) fall back to the scalar
    :func:`synthesize_1q` wholesale.

    With ``drop_identity``, rows that are the identity up to global
    phase — the same entrywise ``allclose`` replica the template's
    merged-run binding applies (``identity_atol``/``identity_rtol``) —
    return ``None`` instead of an op list, mirroring how
    ``merge_1q_runs`` drops such runs entirely; the thresholds agree
    bit for bit because ``|z|`` is ``hypot`` in both worlds.
    """
    program = synthesize_1q_program_batch(
        matrices,
        atol,
        drop_identity=drop_identity,
        identity_atol=identity_atol,
        identity_rtol=identity_rtol,
    )
    expanded: "list[list[NativeOp] | None]" = []
    for entry in program:
        if entry is None or type(entry) is list:
            expanded.append(entry)
            continue
        ops: list[NativeOp] = []
        w_lam, w_mid, w_phi = entry
        if w_lam == w_lam:  # NaN marks a skipped Rz slot
            ops.append(("rz", (w_lam,)))
        ops.append(_SX_OP)
        if w_mid == w_mid:
            ops.append(("rz", (w_mid,)))
        ops.append(_SX_OP)
        if w_phi == w_phi:
            ops.append(("rz", (w_phi,)))
        expanded.append(ops)
    return expanded


def physical_1q_cost(matrix: np.ndarray, atol: float = 1e-9) -> int:
    """Number of physical (non-Rz) gates :func:`synthesize_1q` would emit."""
    return sum(1 for name, _ in synthesize_1q(matrix, atol) if name != "rz")
