"""Logical-to-physical qubit layouts."""

from __future__ import annotations

from repro.errors import TranspilerError


class Layout:
    """A bijection between logical circuit qubits and physical qubits."""

    def __init__(self, logical_to_physical: dict[int, int]) -> None:
        l2p = {int(l): int(p) for l, p in logical_to_physical.items()}
        if len(set(l2p.values())) != len(l2p):
            raise TranspilerError(f"layout is not injective: {l2p}")
        self._l2p = l2p
        self._p2l = {p: l for l, p in l2p.items()}

    @classmethod
    def trivial(cls, num_qubits: int) -> "Layout":
        return cls({q: q for q in range(num_qubits)})

    def physical(self, logical: int) -> int:
        try:
            return self._l2p[logical]
        except KeyError:
            raise TranspilerError(f"logical qubit {logical} not in layout") from None

    def logical(self, physical: int) -> int | None:
        """Logical qubit at ``physical``, or None for an ancilla position."""
        return self._p2l.get(physical)

    def swap_physical(self, a: int, b: int) -> None:
        """Record a SWAP between physical positions ``a`` and ``b``."""
        la, lb = self._p2l.get(a), self._p2l.get(b)
        if la is not None:
            self._l2p[la] = b
        if lb is not None:
            self._l2p[lb] = a
        self._p2l[a], self._p2l[b] = lb, la
        if self._p2l[a] is None:
            del self._p2l[a]
        if self._p2l[b] is None:
            del self._p2l[b]

    def copy(self) -> "Layout":
        return Layout(dict(self._l2p))

    def as_dict(self) -> dict[int, int]:
        return dict(self._l2p)

    @property
    def num_logical(self) -> int:
        return len(self._l2p)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._l2p == other._l2p

    def __repr__(self) -> str:
        pairs = ", ".join(f"{l}->{p}" for l, p in sorted(self._l2p.items()))
        return f"Layout({pairs})"
