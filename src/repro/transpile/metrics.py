"""Circuit metrics with the paper's accounting (virtual Rz excluded).

Sec. IV-C: "For all circuit-based metrics, we exclude Rz gate counts, as
these can be implemented virtually."  :func:`circuit_metrics` therefore
reports depth and gate counts over **physical** gates only;
:func:`schedule_duration` estimates the wall-clock duration of a circuit
via ASAP scheduling with the backend's calibrated gate durations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.backend import Backend
from repro.quantum.circuit import QuantumCircuit


@dataclass(frozen=True)
class CircuitMetrics:
    """Physical-gate statistics of a transpiled circuit."""

    depth: int
    total_gates: int
    one_qubit_gates: int
    two_qubit_gates: int
    virtual_gates: int
    counts: dict[str, int] = field(default_factory=dict)

    def as_row(self) -> dict[str, float]:
        """Flat dict of the paper's metrics (virtual gates excluded: a
        zero-angle Rz may be elided without changing the physical circuit,
        so the virtual count is not part of the circuit's 'shape')."""
        return {
            "depth": self.depth,
            "total_gates": self.total_gates,
            "one_qubit_gates": self.one_qubit_gates,
            "two_qubit_gates": self.two_qubit_gates,
        }


def circuit_metrics(circuit: QuantumCircuit) -> CircuitMetrics:
    """Compute the Fig. 6/7 metrics for ``circuit``."""
    one_qubit = 0
    two_qubit = 0
    virtual = 0
    counts: dict[str, int] = {}
    for instr in circuit:
        if instr.is_virtual:
            virtual += 1
            continue
        counts[instr.name] = counts.get(instr.name, 0) + 1
        if instr.gate.num_qubits == 1:
            one_qubit += 1
        else:
            two_qubit += 1
    return CircuitMetrics(
        depth=circuit.depth(physical_only=True),
        total_gates=one_qubit + two_qubit,
        one_qubit_gates=one_qubit,
        two_qubit_gates=two_qubit,
        virtual_gates=virtual,
        counts=counts,
    )


def schedule_duration(circuit: QuantumCircuit, backend: Backend) -> float:
    """ASAP-scheduled circuit duration in seconds.

    Virtual gates take zero time; physical gates take their calibrated
    duration; a gate starts when all its qubits are free.
    """
    free_at = [0.0] * circuit.num_qubits
    for instr in circuit:
        if instr.is_virtual:
            continue
        duration = backend.gate_calibration(instr.name, instr.qubits).duration
        start = max(free_at[q] for q in instr.qubits)
        for q in instr.qubits:
            free_at[q] = start + duration
    return max(free_at, default=0.0)
