"""Circuit-rewrite passes: 1q-run merging, native synthesis, CX cancellation.

``merge_1q_runs`` + ``resynthesize_1q`` implement the standard
"collapse adjacent one-qubit gates, then re-emit the minimal
Rz/SX/X realization" optimization (qiskit's ``Optimize1qGates*`` passes).
``translate_1q`` is the non-optimizing variant used at optimization level
0, which lowers each one-qubit gate in isolation.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import gate, unitary_gate
from repro.transpile.euler import synthesize_1q


def merge_1q_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Collapse maximal runs of one-qubit gates into single ``unitary`` ops.

    Runs are flushed lazily just before a two-qubit gate touches the qubit
    (or at the end of the circuit), preserving the gate ordering semantics.
    """
    merged = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    pending: dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        if np.allclose(matrix, matrix[0, 0] * np.eye(2), atol=1e-12):
            return  # identity up to global phase
        merged.append(unitary_gate(matrix, label="u1q"), (qubit,))

    for instr in circuit:
        if instr.gate.num_qubits == 1:
            qubit = instr.qubits[0]
            acc = pending.get(qubit)
            pending[qubit] = (
                instr.gate.matrix if acc is None else instr.gate.matrix @ acc
            )
        else:
            for qubit in instr.qubits:
                flush(qubit)
            merged.append(instr.gate, instr.qubits)
    for qubit in sorted(pending):
        flush(qubit)
    return merged


def resynthesize_1q(circuit: QuantumCircuit, atol: float = 1e-9) -> QuantumCircuit:
    """Re-emit every one-qubit gate as its minimal {rz, sx, x} sequence."""
    native = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for instr in circuit:
        if instr.gate.num_qubits != 1:
            native.append(instr.gate, instr.qubits)
            continue
        for name, params in synthesize_1q(instr.gate.matrix, atol=atol):
            native.append(gate(name, *params), instr.qubits)
    return native


def translate_1q(circuit: QuantumCircuit, native_names: frozenset[str]) -> QuantumCircuit:
    """Lower each non-native one-qubit gate individually (no merging).

    This reproduces transpiler optimization level 0: already-native gates
    pass through untouched, everything else is synthesized gate-by-gate.
    """
    lowered = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for instr in circuit:
        if instr.gate.num_qubits != 1 or instr.name in native_names:
            lowered.append(instr.gate, instr.qubits)
            continue
        for name, params in synthesize_1q(instr.gate.matrix):
            lowered.append(gate(name, *params), instr.qubits)
    return lowered


def cancel_adjacent_cx(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove pairs of identical self-inverse 2q gates with nothing between.

    Only gates whose two occurrences are consecutive *on both qubits* are
    cancelled; this is the peephole cleanup that makes the zero-angle
    pruning of multiplexed rotations actually pay off in gate counts.
    """
    self_inverse = {"cx", "cy", "cz", "swap", "ecr"}
    instructions = list(circuit)
    keep = [True] * len(instructions)
    # last_touch[q] = index of the most recent surviving instruction on q
    last_touch: dict[int, int] = {}
    for idx, instr in enumerate(instructions):
        cancelled = False
        if instr.name in self_inverse and instr.gate.num_qubits == 2:
            prev_indices = {last_touch.get(q) for q in instr.qubits}
            if len(prev_indices) == 1:
                prev = prev_indices.pop()
                if prev is not None and keep[prev]:
                    prev_instr = instructions[prev]
                    if (
                        prev_instr.name == instr.name
                        and prev_instr.qubits == instr.qubits
                    ):
                        keep[prev] = False
                        keep[idx] = False
                        cancelled = True
                        # Roll back last_touch to before the cancelled pair.
                        for q in instr.qubits:
                            last_touch[q] = _previous_touch(
                                instructions, keep, q, prev
                            )
        if not cancelled:
            for q in instr.qubits:
                last_touch[q] = idx
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for instr, flag in zip(instructions, keep):
        if flag:
            result.append(instr.gate, instr.qubits)
    return result


def _previous_touch(
    instructions: list, keep: list[bool], qubit: int, before: int
) -> int | None:
    for idx in range(before - 1, -1, -1):
        if keep[idx] and qubit in instructions[idx].qubits:
            return idx
    return None
