"""SWAP-insertion routing onto a restricted coupling map.

The router walks the circuit in order; whenever a two-qubit gate acts on
physical positions that are not adjacent on the device, SWAPs are inserted
along a shortest path to bring the pair together (qiskit's ``BasicSwap``
strategy).  This is deliberately simple and deterministic: the paper
disables higher transpiler optimization precisely to avoid synthesis
confounds, and the depth/SWAP inflation of exact amplitude embedding under
*any* reasonable router is what Figs. 6-7 measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TranspilerError
from repro.hardware.topology import CouplingMap
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import gate
from repro.transpile.layout import Layout
from repro.utils.rng import as_rng


@dataclass
class RoutingResult:
    """Routed circuit plus the layouts before and after routing."""

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps_inserted: int


def route(
    circuit: QuantumCircuit,
    coupling_map: CouplingMap,
    initial_layout: Layout | None = None,
    seed: "int | None" = None,
) -> RoutingResult:
    """Insert SWAPs so every 2q gate acts on coupled physical qubits.

    The returned circuit is expressed over **physical** qubits
    (``coupling_map.num_qubits`` wide).  Gates of arity > 2 are rejected:
    lower them first with
    :func:`repro.transpile.decompositions.decompose_to_cx`.

    With ``seed=None`` routing is deterministic (the gate's first qubit is
    swapped along a shortest path toward the second).  With a seed, each
    hop randomly picks which endpoint moves — the seeded stochastic
    tie-breaking of production transpilers (qiskit's Sabre/StochasticSwap),
    and the reason identical-shape circuits compile to different depths.
    """
    if circuit.num_qubits > coupling_map.num_qubits:
        raise TranspilerError(
            f"circuit needs {circuit.num_qubits} qubits, device has "
            f"{coupling_map.num_qubits}"
        )
    layout = (
        Layout.trivial(circuit.num_qubits)
        if initial_layout is None
        else initial_layout.copy()
    )
    initial = layout.copy()
    routed = QuantumCircuit(coupling_map.num_qubits, name=circuit.name)
    swap_gate = gate("swap")
    num_swaps = 0
    rng = None if seed is None else as_rng(seed)

    for instr in circuit:
        if instr.gate.num_qubits == 1:
            routed.append(instr.gate, (layout.physical(instr.qubits[0]),))
            continue
        if instr.gate.num_qubits != 2:
            raise TranspilerError(
                f"route() requires <=2-qubit gates, got {instr.name!r}"
            )
        control, target = instr.qubits
        phys_c = layout.physical(control)
        phys_t = layout.physical(target)
        if not coupling_map.are_connected(phys_c, phys_t):
            path = coupling_map.shortest_path(phys_c, phys_t)
            left, right = 0, len(path) - 1
            while right - left > 1:
                move_left = rng is None or rng.random() < 0.5
                if move_left:  # advance the first endpoint one hop
                    routed.append(swap_gate, (path[left], path[left + 1]))
                    layout.swap_physical(path[left], path[left + 1])
                    left += 1
                else:  # pull the second endpoint one hop closer
                    routed.append(swap_gate, (path[right], path[right - 1]))
                    layout.swap_physical(path[right], path[right - 1])
                    right -= 1
                num_swaps += 1
            phys_c = layout.physical(control)
            phys_t = layout.physical(target)
        routed.append(instr.gate, (phys_c, phys_t))

    return RoutingResult(
        circuit=routed,
        initial_layout=initial,
        final_layout=layout,
        num_swaps_inserted=num_swaps,
    )
