"""Parametric transpile templates: compile the ansatz once, bind per sample.

EnQode's online path produces one circuit per sample, but every circuit in
a run shares a single **fixed shape** (identical gate structure — the
paper's Sec. III-A invariant behind the Fig. 9(a) millisecond-latency
claim).  Re-running the full transpile pipeline per sample therefore
re-derives the same decompositions, CX cancellations, routing, and SWAP
expansions over and over; only the ``Rz`` angles change.

:class:`ParametricTemplate` runs the *structural* pipeline stages exactly
once per ``(ansatz, backend, optimization_level)`` and compiles the final
one-qubit lowering stage into a small "bind program".  Per-sample
transpilation then reduces to :meth:`ParametricTemplate.bind`: substitute
the sample's angles into the program and re-synthesize only the one-qubit
runs that contain a parameter (a handful of 2x2 products and ZYZ
decompositions).  :meth:`ParametricTemplate.bind_batch_ir` lowers a whole
``(B, P)`` angle matrix in one vectorized sweep — stacked ``(B, 2, 2)``
run compositions and a batched packed ZYZ resynthesis
(:func:`repro.transpile.euler.synthesize_1q_packed_batch`) — into the
**compact array IR** (:class:`repro.transpile.bound.BoundCircuitBatch`):
per sample, only packed angle rows and kind bytes, no ``Gate``/
``Instruction`` objects at all.  :meth:`ParametricTemplate.bind_batch`
wraps each IR row as a lazy :class:`repro.transpile.bound.BoundCircuit`
(the batch-encode and serving fast path); simulation and gate counts
answer straight off the arrays, and materializing on first instruction
access yields the same instruction streams as ``B`` sequential binds.
The bound circuit is **instruction-for-instruction identical** to what
:func:`repro.transpile.transpiler.transpile` would produce for the same
angles — both bind modes are asserted against a reference transpile
when the template is built.

Why this is exact: the structural passes (:func:`decompose_to_cx`,
:func:`cancel_adjacent_cx`, :func:`route`, :func:`expand_cx`) never
inspect one-qubit gate *matrices* — they match on names and arities and
append gate objects unchanged — so their output is the same for every
angle assignment.  Only ``merge_1q_runs``/``resynthesize_1q`` (and
``translate_1q`` at level 0) look at the numbers, and those are precisely
the steps the bind program replays.

:class:`TemplateCache` memoizes templates; :func:`transpile_template` is
the module-level entry point used by the batch encoder.
"""

from __future__ import annotations

import hashlib
import threading
import weakref

import numpy as np

from repro.errors import TranspilerError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import Gate, _rz_matrix, gate
from repro.quantum.instruction import Instruction
from repro.quantum.statevector import apply_gate_to_tensor
from repro.transpile.bound import BoundCircuitBatch
from repro.transpile.decompositions import decompose_to_cx, expand_cx
from repro.transpile.euler import (
    PACKED_DROPPED,
    PACKED_SPECIAL,
    synthesize_1q,
    synthesize_1q_packed_batch,
)
from repro.transpile.passes import cancel_adjacent_cx
from repro.transpile.routing import route
from repro.transpile.transpiler import TranspileResult, transpile

#: merge_1q_runs drops a merged run that is the identity up to global
#: phase; the bind program replicates the check with the same tolerances
#: (``np.allclose`` defaults: rtol=1e-5, atol=1e-12 as passed there).
_IDENTITY_ATOL = 1e-12
_ALLCLOSE_RTOL = 1e-5


def _is_identity_up_to_phase(matrix: np.ndarray) -> bool:
    """Scalar replica of ``np.allclose(m, m[0,0]*I, atol=1e-12)``.

    Same comparison formula (``|a-b| <= atol + rtol*|b|`` entrywise), two
    orders of magnitude cheaper than the array version — this check runs
    once per merged run per bind.
    """
    pivot = complex(matrix[0, 0])
    return (
        abs(complex(matrix[0, 1])) <= _IDENTITY_ATOL
        and abs(complex(matrix[1, 0])) <= _IDENTITY_ATOL
        and abs(complex(matrix[1, 1]) - pivot)
        <= _IDENTITY_ATOL + _ALLCLOSE_RTOL * abs(pivot)
    )


def _rz_matrix_stack(theta: np.ndarray) -> np.ndarray:
    """All ``Rz(theta_j)`` matrices as one ``(l, 2, 2)`` array.

    One vectorized ``exp`` replaces ``2l`` scalar exponentials per bind;
    the entries are bit-identical to the gate library's Rz constructor
    (same expression, same ufunc kernel — see ``_rz_matrix`` in
    :mod:`repro.quantum.gates`), so compositions using these views match
    ``merge_1q_runs`` exactly.
    """
    half = 0.5j * theta
    stack = np.zeros((theta.size, 2, 2), dtype=complex)
    stack[:, 0, 0] = np.exp(-half)
    stack[:, 1, 1] = np.exp(half)
    return stack


def _rz_matrix_stack_batch(thetas: np.ndarray) -> np.ndarray:
    """Rz matrices for a whole ``(B, P)`` angle matrix as ``(P, B, 2, 2)``.

    Parameter-major layout so a run group can gather all its rows for
    one parameter as a single leading-axis index.  Entry ``[p, b]`` is
    bit-identical to ``_rz_matrix_stack(thetas[b])[p]`` — the same
    ``0.5j *`` / negate / ``exp`` ufunc sequence runs elementwise over
    the (transposed view of the) larger array — so a batched bind
    composes exactly the matrices the per-sample binds would.
    """
    half = 0.5j * thetas.T
    stack = np.zeros(half.shape + (2, 2), dtype=complex)
    stack[..., 0, 0] = np.exp(-half)
    stack[..., 1, 1] = np.exp(half)
    return stack


#: Parameterless native gates are immutable — share one instance each.
_SX_GATE = gate("sx")
_X_GATE = gate("x")


class _FixedBlock:
    """A maximal stretch of instructions that no parameter can change."""

    __slots__ = ("instructions",)

    def __init__(self) -> None:
        self.instructions: list[Instruction] = []

    def emit(
        self, theta: np.ndarray, rz_stack: np.ndarray, out: list[Instruction]
    ) -> None:
        out.extend(self.instructions)

    def emit_ir(self, bound, row: int, out: list[Instruction]) -> None:
        # Every materialized row extends with the *same* instruction
        # objects: fixed blocks are immutable, so all binds share them.
        out.extend(self.instructions)

    def apply_ir(
        self, bound, row: int, tensor: np.ndarray, num_qubits: int
    ) -> np.ndarray:
        for instr in self.instructions:
            tensor = apply_gate_to_tensor(
                tensor, instr.gate.matrix, instr.qubits, num_qubits
            )
        return tensor


class _ParametricRun:
    """One merged 1q run containing at least one trainable Rz.

    ``elements`` lists the run in circuit order; each element is either a
    fixed 2x2 matrix or an ``int`` parameter index.  Binding multiplies
    the elements together one by one (later gates on the left) — the
    *same sequence of 2x2 products* ``merge_1q_runs`` performs, so the
    accumulated floating-point state is bit-identical and the ZYZ
    resynthesis makes exactly the same 0/1/2-SX and angle-wrap decisions
    as the full pipeline.  (Pre-folding adjacent fixed matrices would
    change the association order; near the +-pi branch cut of the Euler
    angles that 1-ulp difference flips an Rz sign.)

    Batched binds do not compose runs one by one: every run belongs to
    a :class:`_RunGroup` of runs sharing the same fixed/param chain
    signature, and the group composes all its runs for all ``B`` rows
    at once as stacked ``(G, B, 2, 2)`` matmuls.  numpy's matmul runs
    one inner 2x2 kernel per stack slice — the identical kernel the 2D
    products above use — so every row's accumulated matrix is
    bit-identical to its sequential bind, and the batched ZYZ
    (:func:`repro.transpile.euler.synthesize_1q_packed_batch`, one
    sweep over all runs of the bind) stays packed inside the bound IR —
    :meth:`emit_ir` expands a row to exactly the sequential instruction
    stream on demand, and :meth:`apply_ir` simulates it without any
    instruction objects.

    ``index`` is the run's position in the template's
    ``_parametric_runs`` list — the key into the bound IR's per-run
    packed-synthesis slices.
    """

    __slots__ = ("qubit", "qubit_tuple", "elements", "index", "_sx", "_x")

    def __init__(self, qubit: int, elements: list) -> None:
        self.qubit = qubit
        self.qubit_tuple = (qubit,)
        self.elements = elements
        self.index = -1  # assigned by ParametricTemplate
        # Parameterless instructions are immutable: all binds (and all
        # rows of a batched bind) share these two objects.
        self._sx = Instruction.trusted(_SX_GATE, self.qubit_tuple)
        self._x = Instruction.trusted(_X_GATE, self.qubit_tuple)

    def emit(
        self, theta: np.ndarray, rz_stack: np.ndarray, out: list[Instruction]
    ) -> None:
        matrix = None
        for element in self.elements:
            # A parameter index picks its Rz from the precomputed stack.
            # Every step stays a full 2x2 matmul: shortcutting the
            # diagonal Rz as a row scaling rounds differently from the
            # BLAS product merge_1q_runs computes, and near the +-pi
            # Euler branch cut a 1-ulp difference flips an Rz sign.
            step = element if isinstance(element, np.ndarray) else rz_stack[element]
            matrix = step if matrix is None else step @ matrix
        if _is_identity_up_to_phase(matrix):
            return
        self._append_ops(synthesize_1q(matrix), out)

    def emit_ir(self, bound, row: int, out: list[Instruction]) -> None:
        """Materialize one bound row from its packed synthesis.

        Reads the :class:`repro.transpile.euler.PackedSynthesis` slice
        the bind stored for this run: a dropped row emits nothing, a
        special row replays the scalar-synthesized op list, and the
        generic ZXZXZ row expands its NaN-marked angle triple — the
        identical floats (``.tolist()`` of the same array entries) the
        eager bind emits.
        """
        packed = bound.packed[self.index]
        kind = packed.kinds[row]
        if kind == PACKED_DROPPED:
            return
        if kind == PACKED_SPECIAL:
            self._append_ops(packed.specials[row], out)
            return
        w_lam, w_mid, w_phi = packed.angles[row].tolist()
        qubit_tuple = self.qubit_tuple
        trusted_rz = Instruction.trusted_rz
        if w_lam == w_lam:  # NaN marks a skipped Rz slot
            out.append(trusted_rz(w_lam, qubit_tuple))
        out.append(self._sx)
        if w_mid == w_mid:
            out.append(trusted_rz(w_mid, qubit_tuple))
        out.append(self._sx)
        if w_phi == w_phi:
            out.append(trusted_rz(w_phi, qubit_tuple))

    def apply_ir(
        self, bound, row: int, tensor: np.ndarray, num_qubits: int
    ) -> np.ndarray:
        """Apply one bound row's gates straight off the packed arrays.

        Builds each Rz matrix with the gate library's ``_rz_matrix`` —
        the same constructor a materialized lazy Rz gate uses — and the
        shared SX/X matrices, so the contraction sequence is bitwise the
        one ``Statevector.evolve`` performs on the materialized row.
        """
        packed = bound.packed[self.index]
        kind = packed.kinds[row]
        if kind == PACKED_DROPPED:
            return tensor
        qubits = self.qubit_tuple
        if kind == PACKED_SPECIAL:
            for name, params in packed.specials[row]:
                if name == "rz":
                    matrix = _rz_matrix(params[0])
                elif name == "sx":
                    matrix = _SX_GATE.matrix
                else:
                    matrix = _X_GATE.matrix
                tensor = apply_gate_to_tensor(tensor, matrix, qubits, num_qubits)
            return tensor
        w_lam, w_mid, w_phi = packed.angles[row].tolist()
        sx_matrix = _SX_GATE.matrix
        if w_lam == w_lam:
            tensor = apply_gate_to_tensor(
                tensor, _rz_matrix(w_lam), qubits, num_qubits
            )
        tensor = apply_gate_to_tensor(tensor, sx_matrix, qubits, num_qubits)
        if w_mid == w_mid:
            tensor = apply_gate_to_tensor(
                tensor, _rz_matrix(w_mid), qubits, num_qubits
            )
        tensor = apply_gate_to_tensor(tensor, sx_matrix, qubits, num_qubits)
        if w_phi == w_phi:
            tensor = apply_gate_to_tensor(
                tensor, _rz_matrix(w_phi), qubits, num_qubits
            )
        return tensor

    def _append_ops(self, ops, out: list[Instruction]) -> None:
        qubit_tuple = self.qubit_tuple
        for name, params in ops:
            if name == "rz":
                # Lazy matrix: most bound gates are never simulated.
                out.append(Instruction.trusted_rz(params[0], qubit_tuple))
            elif name == "sx":
                out.append(self._sx)
            else:
                out.append(self._x)


class _RunGroup:
    """Parametric runs sharing one fixed/param chain signature.

    Runs with the same element pattern (e.g. ``fixed, param, fixed,
    fixed``) perform the same *sequence* of 2x2 products, just with
    different operands — so the whole group composes as one stacked
    ``(G, B, 2, 2)`` matmul chain instead of ``G`` separate ``(B, 2,
    2)`` chains.  Each step is prebuilt at template construction: fixed
    positions stack their ``G`` matrices into a broadcastable ``(G, 1,
    2, 2)`` array once, parameter positions keep a ``(G,)`` index into
    the parameter-major Rz stack.  Per row and run the product sequence
    (operands, association order, matmul kernel) is exactly the one the
    eager ``emit`` computes, so the composed matrices — and everything
    the ZYZ synthesis derives from them — stay bit-identical.
    """

    __slots__ = ("runs", "steps")

    def __init__(self, runs: "list[_ParametricRun]") -> None:
        self.runs = runs
        self.steps: list = []
        for position, element in enumerate(runs[0].elements):
            if isinstance(element, np.ndarray):
                stacked = np.stack(
                    [run.elements[position] for run in runs]
                )[:, None]
                self.steps.append((True, stacked))
            else:
                params = np.asarray(
                    [run.elements[position] for run in runs], dtype=np.intp
                )
                self.steps.append((False, params))

    def compose_batch(self, rz_stack: np.ndarray) -> np.ndarray:
        """All runs' merged matrices for all rows, as ``(G, B, 2, 2)``.

        ``rz_stack`` is the bind's parameter-major ``(P, B, 2, 2)``
        Rz-matrix stack.
        """
        matrix = None
        for is_fixed, data in self.steps:
            step = data if is_fixed else rz_stack[data]
            matrix = step if matrix is None else step @ matrix
        return matrix


def _group_parametric_runs(
    runs: "list[_ParametricRun]",
) -> "list[_RunGroup]":
    groups: dict[tuple, list] = {}
    for run in runs:
        signature = tuple(
            isinstance(element, np.ndarray) for element in run.elements
        )
        groups.setdefault(signature, []).append(run)
    return [_RunGroup(members) for members in groups.values()]


class _ParametricRz:
    """A native (virtual) Rz passed through untouched at level 0."""

    __slots__ = ("qubit_tuple", "param")

    def __init__(self, qubit: int, param: int) -> None:
        self.qubit_tuple = (qubit,)
        self.param = param

    def emit(
        self, theta: np.ndarray, rz_stack: np.ndarray, out: list[Instruction]
    ) -> None:
        out.append(
            Instruction.trusted_rz(float(theta[self.param]), self.qubit_tuple)
        )

    def emit_ir(self, bound, row: int, out: list[Instruction]) -> None:
        out.append(
            Instruction.trusted_rz(
                float(bound.thetas[row, self.param]), self.qubit_tuple
            )
        )

    def apply_ir(
        self, bound, row: int, tensor: np.ndarray, num_qubits: int
    ) -> np.ndarray:
        return apply_gate_to_tensor(
            tensor,
            _rz_matrix(float(bound.thetas[row, self.param])),
            self.qubit_tuple,
            num_qubits,
        )


class ParametricTemplate:
    """A fully routed, angle-free compilation of one ansatz on one backend.

    Parameters
    ----------
    ansatz:
        The fixed-shape circuit family (must provide ``parametric_circuit``
        and ``num_parameters`` — see :class:`repro.core.ansatz.EnQodeAnsatz`).
    backend:
        Transpile target.
    optimization_level:
        Same meaning as in :func:`repro.transpile.transpiler.transpile`.

    Building the template costs one structural pipeline run plus one full
    reference transpile (used to verify bind-equality); every subsequent
    :meth:`bind` costs only the parametric 1q resynthesis.
    """

    def __init__(self, ansatz, backend, optimization_level: int = 1) -> None:
        if optimization_level not in (0, 1):
            raise TranspilerError(
                f"optimization_level must be 0 or 1, got {optimization_level}"
            )
        self.ansatz = ansatz
        self.backend = backend
        self.optimization_level = optimization_level
        self.num_binds = 0
        self._fingerprint: "bytes | None" = None

        circuit, markers = ansatz.parametric_circuit()
        if circuit.num_qubits > backend.num_qubits:
            raise TranspilerError(
                f"{circuit.num_qubits}-qubit circuit cannot target "
                f"{backend.num_qubits}-qubit backend {backend.name!r}"
            )
        cx_level = decompose_to_cx(circuit)
        if optimization_level >= 1:
            cx_level = cancel_adjacent_cx(cx_level)
        routing = route(cx_level, backend.coupling_map, None, seed=None)
        entangled = expand_cx(
            decompose_to_cx(routing.circuit),
            backend.native_gates.two_qubit_gate,
        )
        self._initial_layout = routing.initial_layout
        self._final_layout = routing.final_layout
        self._num_swaps = routing.num_swaps_inserted
        self._num_qubits = entangled.num_qubits
        self._name = entangled.name

        if optimization_level >= 1:
            self._program = _compile_merged_program(entangled, markers)
        else:
            self._program = _compile_translate_program(
                entangled,
                markers,
                backend.native_gates.one_qubit_gates
                | backend.native_gates.virtual_gates,
            )
        self._parametric_runs = [
            step for step in self._program if isinstance(step, _ParametricRun)
        ]
        for index, run in enumerate(self._parametric_runs):
            run.index = index
        self._run_groups = _group_parametric_runs(self._parametric_runs)
        self._needs_rz_stack = bool(self._parametric_runs)
        self._compute_skeleton_stats()
        self._verify_against_reference()

    def _compute_skeleton_stats(self) -> None:
        """Precompute the angle-independent gate accounting.

        Every bound sample shares the same fixed blocks and emits exactly
        one Rz per native-Rz step, so the skeleton histogram, length, and
        2q count are template facts — the bound IR answers structural
        queries (``count_ops``, ``num_gates``) from these plus a per-run
        array scan, no instruction list required.
        """
        counts: dict[str, int] = {}
        length = 0
        two_qubit = 0
        for step in self._program:
            if isinstance(step, _FixedBlock):
                for instr in step.instructions:
                    counts[instr.name] = counts.get(instr.name, 0) + 1
                    if instr.gate.num_qubits == 2:
                        two_qubit += 1
                length += len(step.instructions)
            elif isinstance(step, _ParametricRz):
                counts["rz"] = counts.get("rz", 0) + 1
                length += 1
        self._skeleton_counts = counts
        self._skeleton_length = length
        self._skeleton_two_qubit = two_qubit

    @property
    def num_physical_qubits(self) -> int:
        """Width of the routed circuits this template binds."""
        return self._num_qubits

    @property
    def fingerprint(self) -> bytes:
        """16-byte structural identity digest of this template.

        Hashes everything that determines the compiled bind program —
        the ansatz's structural signature (the same key
        :class:`TemplateCache` memoizes on), the backend's structure
        (name, width, coupling edges, native gate vocabulary), the
        optimization level, and the parameter count.  Two templates with
        equal fingerprints bind any theta row to float-bit identical
        circuits, which is what lets the wire format
        (:mod:`repro.io.wire`) ship only ``fingerprint + thetas`` and
        rebind on the receiving side.
        """
        cached = self._fingerprint
        if cached is None:
            backend = self.backend
            native = backend.native_gates
            parts = (
                TemplateCache._ansatz_key(self.ansatz),
                backend.name,
                backend.num_qubits,
                tuple(sorted(backend.coupling_map.edges)),
                tuple(sorted(native.one_qubit_gates)),
                native.two_qubit_gate,
                tuple(sorted(native.virtual_gates)),
                self.optimization_level,
                self.ansatz.num_parameters,
            )
            digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
            cached = self._fingerprint = digest[:16]
        return cached

    @property
    def has_trivial_layout(self) -> bool:
        """Whether bound circuits act on logical qubits in place.

        True iff routing inserted no SWAPs and both layouts are the
        identity on every logical qubit — then a bound circuit's qubit
        ``q`` *is* the ansatz's logical qubit ``q``, so state-vector
        inputs prepared in the logical order (e.g. embedded states fed
        to :meth:`repro.transpile.bound.BoundCircuitBatch.
        evolve_states_row`) need no re-indexing.  Nearest-neighbor
        ansaetze on linear-chain backends (the EnQode and VQC families)
        always satisfy this; consumers that rely on it should check
        rather than assume.
        """
        if self._num_swaps:
            return False
        num_logical = self.ansatz.num_qubits
        return all(
            self._initial_layout.physical(q) == q
            and self._final_layout.physical(q) == q
            for q in range(num_logical)
        )

    # -- binding -------------------------------------------------------------

    def bind(self, theta: np.ndarray) -> TranspileResult:
        """Instantiate the template for one angle assignment.

        Equivalent to ``transpile(ansatz.circuit(theta), backend,
        optimization_level)`` but ~2 orders of magnitude cheaper: only the
        parameter-carrying 1q runs are re-synthesized.
        """
        theta = np.asarray(theta, dtype=float).ravel()
        if theta.size != self.ansatz.num_parameters:
            raise TranspilerError(
                f"expected {self.ansatz.num_parameters} parameters, "
                f"got {theta.size}"
            )
        rz_stack = _rz_matrix_stack(theta) if self._needs_rz_stack else None
        instructions: list[Instruction] = []
        for step in self._program:
            step.emit(theta, rz_stack, instructions)
        self.num_binds += 1
        return self._wrap_result(
            QuantumCircuit.trusted(self._num_qubits, self._name, instructions)
        )

    def bind_batch_ir(self, thetas: np.ndarray) -> BoundCircuitBatch:
        """Lower a whole ``(B, P)`` angle matrix into the compact IR.

        One vectorized sweep — a stacked ``(B, P, 2, 2)`` Rz-matrix
        construction, stacked ``(B, 2, 2)`` run compositions, and a
        single batched ZYZ resynthesis across all runs — whose result
        **stays in array form**: per run, a row-sliced
        :class:`repro.transpile.euler.PackedSynthesis` (three wrapped
        angles + a kind byte per row).  No ``Gate``/``Instruction``
        objects are constructed.  Materializing any row of the returned
        :class:`repro.transpile.bound.BoundCircuitBatch` yields an
        instruction stream float-bit identical to :meth:`bind` of that
        row (every floating-point kernel in the sweep reproduces the
        per-sample path exactly — see
        :func:`repro.transpile.euler.synthesize_1q_batch`).
        :attr:`num_binds` advances by ``B``, as a bind loop would.
        """
        thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
        if thetas.ndim != 2 or thetas.shape[1] != self.ansatz.num_parameters:
            raise TranspilerError(
                f"thetas must be (B, {self.ansatz.num_parameters}), "
                f"got {thetas.shape}"
            )
        batch = thetas.shape[0]
        packed: list = []
        if batch and self._parametric_runs:
            rz_stack = _rz_matrix_stack_batch(thetas)
            # One ZYZ sweep over every (run, row) pair: each signature
            # group composes all its runs as one stacked (G, B, 2, 2)
            # matmul chain, and a single batched synthesis call
            # amortizes the vectorization overhead across all runs
            # instead of paying it once per run.  The concatenated
            # sweep is group-major, so per-run slices are recovered by
            # walking the groups in the same order.
            sweep = synthesize_1q_packed_batch(
                np.concatenate(
                    [
                        group.compose_batch(rz_stack).reshape(-1, 2, 2)
                        for group in self._run_groups
                    ]
                ),
                drop_identity=True,
                identity_atol=_IDENTITY_ATOL,
                identity_rtol=_ALLCLOSE_RTOL,
            )
            packed = [None] * len(self._parametric_runs)
            offset = 0
            for group in self._run_groups:
                for run in group.runs:
                    packed[run.index] = sweep.sliced(offset, offset + batch)
                    offset += batch
        self.num_binds += batch
        return BoundCircuitBatch(self, thetas, packed)

    def bind_batch(self, thetas: np.ndarray) -> list[TranspileResult]:
        """Instantiate the template for a whole ``(B, P)`` angle matrix.

        Delegates the numeric lowering to :meth:`bind_batch_ir` and
        wraps each row as a :class:`TranspileResult` whose ``circuit``
        is a **lazy** :class:`repro.transpile.bound.BoundCircuit` view:
        structural queries and statevector simulation answer straight
        from the packed arrays, and the instruction list materializes on
        first access — at which point it is
        **instruction-for-instruction identical** to
        ``[self.bind(t) for t in thetas]`` (bit-identical angles
        included).  This is the bind engine behind ``encode_batch`` and
        the serving layer's micro-batch flushes.
        """
        bound = self.bind_batch_ir(thetas)
        return [
            self._wrap_result(bound.circuit(row))
            for row in range(bound.batch_size)
        ]

    # -- internals -----------------------------------------------------------

    def _wrap_result(self, circuit: QuantumCircuit) -> TranspileResult:
        return TranspileResult(
            circuit=circuit,
            initial_layout=self._initial_layout.copy(),
            final_layout=self._final_layout.copy(),
            backend=self.backend,
            num_swaps_inserted=self._num_swaps,
        )

    def _verify_against_reference(self) -> None:
        """Assert bind == full transpile on a reference angle assignment.

        Any drift between the bind program and the real pipeline (e.g. a
        future pass reordering) is caught here, at template construction,
        rather than silently corrupting every bound circuit.
        """
        num_params = self.ansatz.num_parameters
        theta_ref = np.linspace(0.3, 2.45, num_params)
        reference = transpile(
            self.ansatz.circuit(theta_ref),
            self.backend,
            optimization_level=self.optimization_level,
        )
        bound = self.bind(theta_ref)
        batched = self.bind_batch(theta_ref[None, :])[0]
        self.num_binds = 0
        if list(bound.circuit) != list(reference.circuit):
            raise TranspilerError(
                "parametric template deviates from the transpile pipeline "
                f"for {self.ansatz!r} on {self.backend.name!r}"
            )
        if list(batched.circuit) != list(bound.circuit):
            raise TranspilerError(
                "batched template bind deviates from the per-sample bind "
                f"for {self.ansatz!r} on {self.backend.name!r}"
            )
        if bound.num_swaps_inserted != reference.num_swaps_inserted:
            raise TranspilerError("template SWAP accounting deviates")

    def __repr__(self) -> str:
        runs = sum(1 for s in self._program if not isinstance(s, _FixedBlock))
        return (
            f"ParametricTemplate({self.ansatz!r}, {self.backend.name!r}, "
            f"level={self.optimization_level}, parametric_steps={runs})"
        )


def _compile_merged_program(circuit: QuantumCircuit, markers: dict[int, int]):
    """Bind program replaying ``merge_1q_runs`` + ``resynthesize_1q``.

    Walks the routed native-entangler circuit exactly as the merge pass
    does, but keeps parameter slots symbolic.  Fixed gates inside a
    parametric run stay as *individual* matrices (see
    :class:`_ParametricRun` for why folding them would break
    bit-exactness); fully fixed runs are folded and synthesized once,
    here, into the shared :class:`_FixedBlock` stream.
    """
    program: list = []
    pending: dict[int, list] = {}

    def fixed_block() -> _FixedBlock:
        if not (program and isinstance(program[-1], _FixedBlock)):
            program.append(_FixedBlock())
        return program[-1]

    def flush(qubit: int) -> None:
        elements = pending.pop(qubit, None)
        if elements is None:
            return
        if any(not isinstance(e, np.ndarray) for e in elements):
            program.append(_ParametricRun(qubit, elements))
            return
        matrix = elements[0]
        for extra in elements[1:]:
            matrix = extra @ matrix
        if _is_identity_up_to_phase(matrix):
            return
        block = fixed_block()
        for name, params in synthesize_1q(matrix):
            block.instructions.append(Instruction(gate(name, *params), (qubit,)))

    for instr in circuit:
        if instr.gate.num_qubits == 1:
            qubit = instr.qubits[0]
            param = markers.get(id(instr.gate))
            run = pending.setdefault(qubit, [])
            run.append(instr.gate.matrix if param is None else param)
        else:
            for qubit in instr.qubits:
                flush(qubit)
            fixed_block().instructions.append(instr)
    for qubit in sorted(pending):
        flush(qubit)
    return program


def _compile_translate_program(
    circuit: QuantumCircuit,
    markers: dict[int, int],
    native_names: frozenset[str],
):
    """Bind program replaying ``translate_1q`` (optimization level 0)."""
    program: list = []

    def fixed_block() -> _FixedBlock:
        if not (program and isinstance(program[-1], _FixedBlock)):
            program.append(_FixedBlock())
        return program[-1]

    for instr in circuit:
        param = (
            markers.get(id(instr.gate)) if instr.gate.num_qubits == 1 else None
        )
        if param is not None:
            if "rz" in native_names:
                program.append(_ParametricRz(instr.qubits[0], param))
            else:
                program.append(_ParametricRun(instr.qubits[0], [param]))
            continue
        if instr.gate.num_qubits != 1 or instr.name in native_names:
            fixed_block().instructions.append(instr)
            continue
        block = fixed_block()
        for name, params in synthesize_1q(instr.gate.matrix):
            block.instructions.append(Instruction(gate(name, *params), instr.qubits))
    return program


class TemplateCache:
    """Process-wide memo of :class:`ParametricTemplate` instances.

    Keyed by backend **identity** (weakly, so dropping a backend frees its
    templates) and the ansatz's structural signature — two ansatz objects
    with the same geometry share one template.  ``hits``/``misses``
    counters make cache behaviour testable: a batch encode must build its
    template at most once.

    The cache is thread-safe: concurrent :class:`repro.service`
    worker-pool flushes race to the same key, and the lock guarantees
    exactly one structural transpile per key (the losers of the race
    block on the build and then share it) with exact hit/miss counters.
    """

    def __init__(self) -> None:
        self._per_backend: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _ansatz_key(ansatz) -> tuple:
        return (
            type(ansatz).__name__,
            ansatz.num_qubits,
            ansatz.num_layers,
            ansatz.entangler,
            ansatz.alternate_orientation,
        )

    def get(self, ansatz, backend, optimization_level: int = 1) -> ParametricTemplate:
        return self.get_reported(ansatz, backend, optimization_level)[0]

    def get_reported(
        self, ansatz, backend, optimization_level: int = 1
    ) -> "tuple[ParametricTemplate, bool]":
        """The cached template plus whether this call was a cache hit.

        The flag lets concurrent callers attribute the hit/miss to their
        own flush without diffing the shared counters (which races when
        several flushes are in flight).
        """
        with self._lock:
            templates = self._per_backend.setdefault(backend, {})
            key = (self._ansatz_key(ansatz), optimization_level)
            template = templates.get(key)
            if template is None:
                self.misses += 1
                template = ParametricTemplate(
                    ansatz, backend, optimization_level
                )
                templates[key] = template
                return template, False
            self.hits += 1
            return template, True

    def clear(self) -> None:
        with self._lock:
            self._per_backend = weakref.WeakKeyDictionary()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return sum(len(v) for v in self._per_backend.values())


#: The cache :func:`transpile_template` serves from.
GLOBAL_TEMPLATE_CACHE = TemplateCache()


def transpile_template(
    ansatz, backend, optimization_level: int = 1
) -> ParametricTemplate:
    """Cached parametric template for ``(ansatz, backend, optimization_level)``.

    The first call per key runs the structural transpile stages once;
    later calls are dictionary lookups.  This is the entry point
    :meth:`repro.core.encoder.EnQodeEncoder.encode_batch` uses to amortize
    transpilation across a batch.
    """
    return GLOBAL_TEMPLATE_CACHE.get(ansatz, backend, optimization_level)
