"""The transpile pipeline: lower any circuit onto a hardware backend.

Pipeline stages (mirroring qiskit's preset pass managers):

1. lower all two-qubit gates to CX (+1q gates);
2. (level >= 1) cancel trivially adjacent CX pairs;
3. route with SWAP insertion onto the coupling map;
4. expand SWAPs, lower CX to the native entangler (ECR / CZ);
5. one-qubit lowering — level 0 translates gate-by-gate, level >= 1
   merges runs and re-emits the minimal Rz/SX/X realization.

The result records the final layout so callers can compare simulated
physical states against logical targets (:meth:`TranspileResult.
embed_target`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TranspilerError
from repro.hardware.backend import Backend
from repro.quantum.circuit import QuantumCircuit
from repro.transpile.decompositions import decompose_to_cx, expand_cx
from repro.transpile.layout import Layout
from repro.transpile.metrics import CircuitMetrics, circuit_metrics
from repro.transpile.passes import (
    cancel_adjacent_cx,
    merge_1q_runs,
    resynthesize_1q,
    translate_1q,
)
from repro.transpile.routing import route


@dataclass
class TranspileResult:
    """A lowered circuit plus the layout bookkeeping needed to use it."""

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    backend: Backend
    num_swaps_inserted: int

    def metrics(self) -> CircuitMetrics:
        return circuit_metrics(self.circuit)

    def embed_target(self, logical_state: np.ndarray) -> np.ndarray:
        """Express a logical target state on the physical register.

        Logical qubit ``l`` ends at physical position ``final_layout[l]``;
        unused physical qubits stay |0>.  The returned vector can be
        compared directly against a simulation of :attr:`circuit`.
        """
        logical_state = np.asarray(logical_state, dtype=complex).ravel()
        num_logical = self.final_layout.num_logical
        if logical_state.size != 2**num_logical:
            raise TranspilerError(
                f"target has dim {logical_state.size}, expected "
                f"{2 ** num_logical}"
            )
        num_physical = self.circuit.num_qubits
        indices = np.arange(2**num_logical)
        physical_indices = np.zeros_like(indices)
        for logical in range(num_logical):
            physical = self.final_layout.physical(logical)
            bit = (indices >> (num_logical - 1 - logical)) & 1
            physical_indices |= bit << (num_physical - 1 - physical)
        embedded = np.zeros(2**num_physical, dtype=complex)
        embedded[physical_indices] = logical_state
        return embedded


def transpile(
    circuit: QuantumCircuit,
    backend: Backend,
    optimization_level: int = 1,
    initial_layout: Layout | None = None,
    seed: "int | None" = None,
) -> TranspileResult:
    """Lower ``circuit`` to ``backend``'s native gates and connectivity.

    ``seed`` controls the router's stochastic tie-breaking; ``None`` routes
    deterministically.
    """
    if optimization_level not in (0, 1):
        raise TranspilerError(
            f"optimization_level must be 0 or 1, got {optimization_level}"
        )
    if circuit.num_qubits > backend.num_qubits:
        raise TranspilerError(
            f"{circuit.num_qubits}-qubit circuit cannot target "
            f"{backend.num_qubits}-qubit backend {backend.name!r}"
        )

    cx_level = decompose_to_cx(circuit)
    if optimization_level >= 1:
        cx_level = cancel_adjacent_cx(cx_level)

    routing_result = route(cx_level, backend.coupling_map, initial_layout, seed=seed)
    # Expand the inserted SWAPs and lower CX to the hardware entangler.
    expanded = decompose_to_cx(routing_result.circuit)
    entangled = expand_cx(expanded, backend.native_gates.two_qubit_gate)

    if optimization_level >= 1:
        native = resynthesize_1q(merge_1q_runs(entangled))
    else:
        native = translate_1q(
            entangled,
            backend.native_gates.one_qubit_gates
            | backend.native_gates.virtual_gates,
        )

    _check_native(native, backend)
    return TranspileResult(
        circuit=native,
        initial_layout=routing_result.initial_layout,
        final_layout=routing_result.final_layout,
        backend=backend,
        num_swaps_inserted=routing_result.num_swaps_inserted,
    )


def transpile_template(ansatz, backend: Backend, optimization_level: int = 1):
    """Cached parametric template for a fixed-shape ansatz (fast path).

    Companion entry point to :func:`transpile`; the mechanism, cache
    contract, and exactness argument live in
    :mod:`repro.transpile.template`.  (Local import: that module imports
    this one.)
    """
    from repro.transpile.template import transpile_template as _cached

    return _cached(ansatz, backend, optimization_level)


def _check_native(circuit: QuantumCircuit, backend: Backend) -> None:
    native = backend.native_gates
    for instr in circuit:
        if not native.is_native(instr.name):
            raise TranspilerError(
                f"gate {instr.name!r} survived lowering to {native.name}"
            )
        if instr.gate.num_qubits == 2 and not backend.coupling_map.are_connected(
            *instr.qubits
        ):
            raise TranspilerError(
                f"2q gate on uncoupled qubits {instr.qubits} after routing"
            )
