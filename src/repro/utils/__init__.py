"""Shared utilities: RNG handling, timing, and linear-algebra helpers."""

from repro.utils.linalg import (
    allclose_up_to_global_phase,
    global_phase_between,
    is_unitary,
    popcount,
)
from repro.utils.rng import as_rng
from repro.utils.timing import Timer

__all__ = [
    "Timer",
    "allclose_up_to_global_phase",
    "as_rng",
    "global_phase_between",
    "is_unitary",
    "popcount",
]
