"""Small linear-algebra helpers shared across the library."""

from __future__ import annotations

import numpy as np


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Return True if ``matrix`` is unitary within tolerance ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))


def global_phase_between(a: np.ndarray, b: np.ndarray) -> complex | None:
    """Return the scalar ``z`` (|z|=1) with ``a == z * b``, or None.

    Used to compare unitaries/states that are physically identical but
    differ by an unobservable global phase.
    """
    a = np.asarray(a, dtype=complex).ravel()
    b = np.asarray(b, dtype=complex).ravel()
    if a.shape != b.shape:
        return None
    pivot = int(np.argmax(np.abs(b)))
    if abs(b[pivot]) < 1e-12:
        return None
    z = a[pivot] / b[pivot]
    if abs(abs(z) - 1.0) > 1e-6:
        return None
    if np.allclose(a, z * b, atol=1e-8):
        return complex(z)
    return None


def allclose_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-8
) -> bool:
    """Return True if ``a`` equals ``b`` up to a global phase factor."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a < atol and norm_b < atol:
        return True
    if abs(norm_a - norm_b) > max(atol, 1e-6 * norm_b):
        return False
    overlap = np.vdot(a.ravel(), b.ravel())
    return bool(abs(abs(overlap) - norm_a * norm_b) <= atol * max(1.0, norm_a * norm_b))


def popcount(values: np.ndarray) -> np.ndarray:
    """Per-element population count (number of set bits) of an int array.

    Uses :func:`numpy.bitwise_count` when the installed numpy provides it
    (>= 2.0); otherwise falls back to an ``unpackbits`` reduction over the
    little-endian byte view.  Both paths are fully vectorized — no Python
    per-bit loop — and accept any non-negative integer dtype.
    """
    values = np.asarray(values)
    if values.size and values.min() < 0:
        raise ValueError("popcount requires non-negative integers")
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(values).astype(values.dtype)
    flat = np.ascontiguousarray(values.ravel())
    as_bytes = flat.astype("<u8").view(np.uint8)
    counts = np.unpackbits(as_bytes.reshape(flat.size, 8), axis=1).sum(axis=1)
    return counts.astype(values.dtype).reshape(values.shape)


def normalize_vector(vec: np.ndarray) -> np.ndarray:
    """Return ``vec`` scaled to unit Euclidean norm.

    Raises
    ------
    ValueError
        If the vector norm is numerically zero.
    """
    vec = np.asarray(vec, dtype=float)
    norm = float(np.linalg.norm(vec))
    if norm < 1e-300:
        raise ValueError("cannot normalize a zero vector")
    return vec / norm
