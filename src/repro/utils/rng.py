"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (k-means init, synthetic data,
noise sampling in calibrations) accepts a ``seed`` argument and converts it
with :func:`as_rng`, so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def as_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh nondeterministic generator; an ``int`` seeds a
    PCG64 generator; an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
