"""Shared fixtures, hypothesis configuration, and the test watchdog."""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.hardware import brisbane_linear_segment, linear_backend

# Keep property-based tests fast but meaningful.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


# -- per-test watchdog -----------------------------------------------------------------
#
# The threaded EncodingService backend means a scheduling bug now fails
# as a *deadlock* (a ticket wait or a drain that never returns), which
# would hang CI for its whole job timeout.  This is a dependency-free
# stand-in for pytest-timeout: SIGALRM interrupts the main thread even
# inside lock/event waits (CPython makes those interruptible), so a
# wedged test dies with a traceback pointing at the blocked wait.
# Override the generous default with ``@pytest.mark.timeout(seconds)``
# — the concurrency suite pins itself far lower.

DEFAULT_TEST_TIMEOUT = 600.0


class WatchdogTimeout(Exception):
    """A test exceeded its watchdog budget (likely a deadlocked wait)."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than this "
        "(conftest watchdog; SIGALRM-based, main thread only)",
    )
    config.addinivalue_line(
        "markers",
        "stress: long-running soak tests (excluded from tier-1; run "
        "with `pytest -m stress` in the dedicated CI job)",
    )
    config.addinivalue_line(
        "markers",
        "process_backend: tests that spawn worker-process fleets "
        "(slow interpreter startup; grouped so CI can run them as "
        "their own job with an extended watchdog)",
    )


def pytest_collection_modifyitems(config, items):
    """Keep stress soaks out of default runs unless asked for by -m."""
    if config.getoption("-m"):
        return
    skip = pytest.mark.skip(
        reason="stress soak; run explicitly with -m stress"
    )
    for item in items:
        if item.get_closest_marker("stress"):
            item.add_marker(skip)


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    seconds = float(marker.args[0]) if marker else DEFAULT_TEST_TIMEOUT
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return (yield)  # no reliable alarm here; rely on the CI job timeout

    def _expired(signum, frame):
        raise WatchdogTimeout(
            f"{item.nodeid} exceeded the {seconds:.0f}s watchdog — "
            "a thread wait is probably deadlocked"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture()
def watchdog_extend():
    """Re-arm the per-test watchdog phase by phase.

    Long multi-phase tests (the stress soaks) call
    ``watchdog_extend(seconds)`` at each phase boundary instead of
    claiming one huge up-front budget — a phase that wedges still dies
    within *its* allowance.  No-op where SIGALRM is unavailable or the
    test runs off the main thread (matching the watchdog itself).
    """

    def extend(seconds: float) -> None:
        if (
            not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()
        ):
            return
        signal.setitimer(signal.ITIMER_REAL, float(seconds))

    return extend


@pytest.fixture(scope="session")
def segment8():
    """The paper's experimental target: an 8-qubit brisbane line."""
    return brisbane_linear_segment(8)


@pytest.fixture(scope="session")
def segment4():
    return brisbane_linear_segment(4)


@pytest.fixture(scope="session")
def line4():
    """A standalone 4-qubit chain backend (fast transpile tests)."""
    return linear_backend(4)


@pytest.fixture(scope="session")
def mnist_small():
    """A small synthetic-MNIST embedding dataset (session-cached)."""
    from repro.data import load_dataset

    return load_dataset("mnist", samples_per_class=60, seed=0)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


def random_circuit(num_qubits: int, depth: int, seed: int):
    """A random circuit over the full gate vocabulary (test helper)."""
    from repro.quantum import QuantumCircuit

    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits)
    one_qubit = ["h", "x", "sx", "s", "t", "sdg", "y", "z"]
    for _ in range(depth):
        kind = rng.integers(0, 4)
        q = int(rng.integers(0, num_qubits))
        if kind == 0:
            getattr(qc, one_qubit[rng.integers(len(one_qubit))])(q)
        elif kind == 1:
            getattr(qc, ["rx", "ry", "rz"][rng.integers(3)])(
                float(rng.uniform(-np.pi, np.pi)), q
            )
        else:
            other = int((q + 1 + rng.integers(num_qubits - 1)) % num_qubits)
            name = ["cx", "cy", "cz", "swap", "cp", "crz", "cry"][
                rng.integers(7)
            ]
            if name in ("cp", "crz", "cry"):
                getattr(qc, name)(float(rng.uniform(-np.pi, np.pi)), q, other)
            else:
                getattr(qc, name)(q, other)
    return qc
