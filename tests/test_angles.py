"""Unit tests for state-preparation angle computation."""

import numpy as np
import pytest

from repro.baseline import (
    phase_angles,
    reconstruct_from_levels,
    ry_angle_levels,
    validate_amplitudes,
)
from repro.errors import StatePreparationError
from repro.quantum import random_real_amplitudes


def test_validate_normalizes():
    vec = validate_amplitudes(np.array([3.0, 4.0]))
    assert np.linalg.norm(vec) == pytest.approx(1.0)


def test_validate_rejects_bad_lengths():
    with pytest.raises(StatePreparationError):
        validate_amplitudes(np.ones(3))
    with pytest.raises(StatePreparationError):
        validate_amplitudes(np.ones(1))


def test_validate_rejects_zero_vector():
    with pytest.raises(StatePreparationError):
        validate_amplitudes(np.zeros(4))


def test_level_shapes():
    levels = ry_angle_levels(random_real_amplitudes(16, seed=0))
    assert [a.size for a in levels] == [1, 2, 4, 8]


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
def test_levels_reconstruct_signed_amplitudes(n):
    target = random_real_amplitudes(2**n, seed=n)
    rebuilt = reconstruct_from_levels(ry_angle_levels(target))
    assert np.allclose(rebuilt, target, atol=1e-10)


def test_levels_handle_sparse_blocks():
    target = np.zeros(8)
    target[0] = 0.6
    target[5] = -0.8
    rebuilt = reconstruct_from_levels(ry_angle_levels(target))
    assert np.allclose(rebuilt, target, atol=1e-10)


def test_phase_angles_zero_for_real():
    assert np.allclose(phase_angles(random_real_amplitudes(8, seed=1)), 0.0)


def test_phase_angles_complex():
    vec = np.array([1.0, 1j, -1.0, -1j]) / 2.0
    phases = phase_angles(vec)
    assert phases[1] == pytest.approx(np.pi / 2)
    assert abs(phases[2]) == pytest.approx(np.pi)
