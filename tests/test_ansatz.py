"""Unit tests for the EnQode ansatz structure."""

import numpy as np
import pytest

from repro.core import EnQodeAnsatz
from repro.errors import OptimizationError
from repro.quantum import simulate_statevector
from repro.utils.linalg import is_unitary


def test_parameter_count():
    assert EnQodeAnsatz(8, 8).num_parameters == 64
    assert EnQodeAnsatz(4, 3).num_parameters == 12


def test_parameter_index_layout():
    ansatz = EnQodeAnsatz(4, 2)
    assert ansatz.parameter_index(0, 0) == 0
    assert ansatz.parameter_index(1, 3) == 7
    with pytest.raises(OptimizationError):
        ansatz.parameter_index(2, 0)


def test_entangling_bricks_alternate():
    ansatz = EnQodeAnsatz(8, 4)
    assert ansatz.entangling_pairs(0) == [(0, 1), (2, 3), (4, 5), (6, 7)]
    assert ansatz.entangling_pairs(1) == [(1, 2), (3, 4), (5, 6)]
    # Layer 2 repeats brick position 0 with flipped orientation.
    assert ansatz.entangling_pairs(2) == [(1, 0), (3, 2), (5, 4), (7, 6)]
    assert ansatz.entangling_pairs(3) == [(2, 1), (4, 3), (6, 5)]


def test_orientation_flag_off_keeps_direction():
    ansatz = EnQodeAnsatz(8, 4, alternate_orientation=False)
    assert ansatz.entangling_pairs(2) == [(0, 1), (2, 3), (4, 5), (6, 7)]


def test_pairs_are_nearest_neighbor():
    ansatz = EnQodeAnsatz(8, 8)
    for layer in range(8):
        for a, b in ansatz.entangling_pairs(layer):
            assert abs(a - b) == 1


def test_circuit_structure_and_counts():
    ansatz = EnQodeAnsatz(8, 8)
    qc = ansatz.circuit(np.zeros(64))
    counts = qc.count_ops()
    assert counts["rz"] == 64
    assert counts["cy"] == 28  # 4+3 alternating over 8 layers
    assert counts["rx"] == 16  # opening 8 + closing 8
    assert counts["ry"] == 8
    assert qc.num_qubits == 8


def test_circuit_parameter_validation():
    with pytest.raises(OptimizationError):
        EnQodeAnsatz(4, 2).circuit(np.zeros(5))


def test_invalid_construction_rejected():
    with pytest.raises(OptimizationError):
        EnQodeAnsatz(1, 2)
    with pytest.raises(OptimizationError):
        EnQodeAnsatz(4, 0)
    with pytest.raises(OptimizationError):
        EnQodeAnsatz(4, 2, entangler="swap")


def test_entangler_variants_build():
    for entangler in ("cy", "cx", "cz", "cry"):
        ansatz = EnQodeAnsatz(4, 2, entangler)
        psi = simulate_statevector(ansatz.circuit(np.ones(8)))
        assert np.linalg.norm(psi.data) == pytest.approx(1.0)


def test_closing_matrix_flat_magnitudes():
    # The closing layer must be Hadamard-like: all entries |v| = 1/sqrt(2),
    # which is what converts relative phases into amplitudes.
    v = EnQodeAnsatz(4, 2).closing_matrix_1q()
    assert is_unitary(v)
    assert np.allclose(np.abs(v), 1 / np.sqrt(2))


def test_closing_layer_adjoint_roundtrip(rng):
    ansatz = EnQodeAnsatz(3, 2)
    state = rng.normal(size=8) + 1j * rng.normal(size=8)
    state /= np.linalg.norm(state)
    roundtrip = ansatz.apply_closing_layer_adjoint(
        ansatz.apply_closing_layer(state)
    )
    assert np.allclose(roundtrip, state)


def test_fixed_shape_across_parameters(rng):
    ansatz = EnQodeAnsatz(6, 4)
    qc1 = ansatz.circuit(rng.uniform(-3, 3, 24))
    qc2 = ansatz.circuit(rng.uniform(-3, 3, 24))
    assert [i.name for i in qc1] == [i.name for i in qc2]
    assert [i.qubits for i in qc1] == [i.qubits for i in qc2]
