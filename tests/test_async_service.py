"""Concurrency/stress tests for the threaded EncodingService backend.

The PR-5 acceptance criteria: with ``backend="thread"`` the daemon
flusher honors ``max_delay`` with zero follow-up traffic (by sleeping,
not busy-waiting), a worker pool flushes different keys concurrently
while keeping at most one flush in flight per key (and per shared
pipeline), responses are sample-for-sample instruction-identical to a
synchronous ``encode_batch`` replay of the same per-key traffic, errors
stay confined to the failing key's tickets, lifecycle
(``start``/``stop``/``drain``) is clean under load, and the per-flush
stats application is atomic when flushes race.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import EnQodeConfig, EnQodeEncoder, ServiceConfig
from repro.errors import ServiceError
from repro.service import (
    EncodeRequest,
    EncodingService,
    FaultInjector,
    FaultRule,
    MicroBatcher,
)
from repro.service.service import STATS_WINDOW

# A wedged flusher/worker must fail the test fast, not hang the suite.
pytestmark = pytest.mark.timeout(60)


@pytest.fixture(scope="module")
def cluster_data():
    """Two tight clusters of unit vectors in R^16."""
    rng = np.random.default_rng(33)
    centers = rng.normal(size=(2, 16))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    blocks = []
    for center in centers:
        block = center + 0.04 * rng.normal(size=(40, 16))
        blocks.append(block / np.linalg.norm(block, axis=1, keepdims=True))
    return np.concatenate(blocks)


def _fit(segment4, data, seed=9):
    config = EnQodeConfig(
        num_qubits=4,
        num_layers=5,
        offline_restarts=2,
        offline_max_iterations=300,
        online_max_iterations=50,
        max_clusters=4,
        seed=seed,
    )
    encoder = EnQodeEncoder(segment4, config)
    encoder.fit(data)
    return encoder


@pytest.fixture(scope="module")
def fitted(segment4, cluster_data):
    return _fit(segment4, cluster_data)


@pytest.fixture(scope="module")
def fitted_pair(segment4, cluster_data):
    """Two distinct encoders (trained per half) for multi-key traffic."""
    half = len(cluster_data) // 2
    return (
        _fit(segment4, cluster_data[:half], seed=3),
        _fit(segment4, cluster_data[half:], seed=5),
    )


class ManualClock:
    """Injectable monotonic clock for deterministic deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def _assert_instruction_identical(response, reference):
    """Float-bit equality: angles and the lowered instruction stream."""
    assert response.cluster_index == reference.cluster_index
    assert np.array_equal(response.encoded.theta, reference.theta)
    assert (
        response.encoded.ideal_fidelity == reference.ideal_fidelity
    )  # bit-equal, not approx
    assert list(response.circuit) == list(reference.circuit)


def _replay_reference(encoder, tickets):
    """Synchronous ``encode_batch`` replay of the exact flush partition.

    Responses sharing a ``flush_id`` were encoded in one micro-batch;
    re-running ``encode_batch`` on the *original submitted samples* (the
    ones still on the tickets' requests — not ``encoded.target``, which
    is already unit-normalized and would renormalize a last-ulp apart)
    must be instruction-identical — the service guarantee, independent
    of how the scheduler happened to slice the traffic.
    """
    groups: dict = {}
    for ticket in tickets:
        response = ticket.result(flush=False)
        groups.setdefault(response.flush_id, []).append(
            (response, ticket.request.sample)
        )
    for group in groups.values():
        samples = np.stack([sample for _, sample in group])
        for (response, _), reference in zip(
            group, encoder.encode_batch(samples)
        ):
            _assert_instruction_identical(response, reference)


# -- lifecycle -------------------------------------------------------------------------


def test_thread_backend_requires_start(fitted, cluster_data):
    service = EncodingService(max_batch=4, backend="thread")
    service.register("a", fitted)
    with pytest.raises(ServiceError, match="not running"):
        service.submit(cluster_data[0], key="a")
    service.start()
    ticket = service.submit(cluster_data[0], key="a")
    assert ticket.result(timeout=10.0).key == "a"
    service.stop()
    with pytest.raises(ServiceError, match="not running"):
        service.submit(cluster_data[0], key="a")


def test_double_start_rejected_restart_allowed(fitted, cluster_data):
    service = EncodingService(max_batch=4, backend="thread")
    service.register("a", fitted)
    service.start()
    with pytest.raises(ServiceError, match="already running"):
        service.start()
    service.stop()
    service.stop()  # idempotent
    service.start()  # restart after stop is fine
    assert service.running
    ticket = service.submit(cluster_data[1], key="a")
    assert ticket.result(timeout=10.0).key == "a"
    service.stop()


def test_context_manager_lifecycle(fitted, cluster_data):
    with EncodingService(max_batch=32, backend="thread") as service:
        service.register("a", fitted)
        tickets = [service.submit(x, key="a") for x in cluster_data[:3]]
        assert service.running
    # __exit__ stopped with drain: every ticket resolved.
    assert all(t.done for t in tickets)
    assert not service.running


def test_sync_backend_lifecycle_is_inline(fitted, cluster_data):
    """start/stop/drain exist on the sync backend too (uniform callers)."""
    service = EncodingService(max_batch=32)
    service.register("a", fitted)
    assert service.running  # sync is always ready
    service.start()  # no-op
    tickets = [service.submit(x, key="a") for x in cluster_data[:3]]
    service.drain()  # == flush()
    assert all(t.done for t in tickets)
    more = service.submit(cluster_data[3], key="a")
    service.stop()  # drains inline
    assert more.done
    stats = service.stats()
    assert stats.backend == "sync"
    assert stats.flusher_wakeups == 0


def test_service_config_plumbing(fitted):
    with pytest.raises(ServiceError, match="backend"):
        ServiceConfig(backend="asyncio")
    with pytest.raises(ServiceError, match="workers"):
        ServiceConfig(backend="thread", workers=0)
    with pytest.raises(ServiceError, match="max_batch"):
        ServiceConfig(max_batch=0)
    with pytest.raises(ServiceError, match="max_delay"):
        ServiceConfig(max_delay=-0.1)
    config = ServiceConfig(
        backend="thread", workers=2, max_batch=7, max_delay=0.5
    )
    service = EncodingService(config=config)
    assert service.backend == "thread"
    assert service.batcher.max_batch == 7
    assert service.batcher.max_delay == 0.5
    assert service._backend_impl.num_workers == 2
    assert "backend='thread'" in repr(service)


# -- equivalence: threaded == synchronous encode_batch ---------------------------------


def test_threaded_single_key_instruction_identical(fitted, cluster_data):
    """Full-batch traffic: threaded responses == encode_batch chunks."""
    window = 8
    samples = cluster_data[:24]
    with EncodingService(max_batch=window, backend="thread", workers=3) as s:
        s.register("only", fitted)
        tickets = [s.submit(x, key="only") for x in samples]
        responses = [t.result(timeout=30.0) for t in tickets]
    for start in range(0, len(samples), window):
        chunk = samples[start : start + window]
        for response, reference in zip(
            responses[start:], fitted.encode_batch(chunk)
        ):
            _assert_instruction_identical(response, reference)
    assert all(r.batch_size == window for r in responses)


def test_threaded_multikey_submitter_threads(fitted_pair, cluster_data):
    """N submitter threads x M keys: per-key instruction identity.

    Each key's traffic comes from its own thread (so per-key order is
    well defined); the worker pool interleaves flushes across keys.
    """
    low, high = fitted_pair
    window = 4
    per_key = 16
    keys = ["low", "high", "low-alias"]
    encoders = {"low": low, "high": high, "low-alias": low}
    traffic = {
        key: cluster_data[i * per_key : (i + 1) * per_key]
        for i, key in enumerate(keys)
    }
    tickets: dict = {key: [] for key in keys}
    with EncodingService(max_batch=window, backend="thread", workers=4) as s:
        for key, encoder in encoders.items():
            s.register(key, encoder)

        def submit_all(key):
            for x in traffic[key]:
                tickets[key].append(s.submit(x, key=key))

        threads = [
            threading.Thread(target=submit_all, args=(key,)) for key in keys
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        s.drain()
    for key in keys:
        responses = [t.result(flush=False) for t in tickets[key]]
        # Submission order per key is the thread's order; every flush is
        # a contiguous full window of it.
        for start in range(0, per_key, window):
            chunk = traffic[key][start : start + window]
            for response, reference in zip(
                responses[start:], encoders[key].encode_batch(chunk)
            ):
                _assert_instruction_identical(response, reference)


def test_threaded_partial_batches_replay_identically(fitted, cluster_data):
    """Deadline-flushed partial batches still match their sync replay."""
    with EncodingService(
        max_batch=32, max_delay=0.02, backend="thread", workers=2
    ) as service:
        service.register("a", fitted)
        tickets = []
        for burst in range(4):
            for x in cluster_data[burst * 3 : burst * 3 + 3]:
                tickets.append(service.submit(x, key="a"))
            time.sleep(0.05)  # idle gap: only the deadline can flush
        responses = [t.result(flush=False, timeout=10.0) for t in tickets]
    assert {r.batch_size for r in responses} != {32}  # really partials
    _replay_reference(fitted, tickets)


def test_shared_pipeline_keys_never_overlap(fitted, cluster_data):
    """Two keys aliasing one encoder serialize on its pipeline.

    The flusher must not run one EncodePipeline concurrently with
    itself; the observable contract is that results are still
    instruction-identical per key under heavy cross-key load.
    """
    window = 4
    with EncodingService(max_batch=window, backend="thread", workers=4) as s:
        s.register("a", fitted)
        s.register("b", fitted)
        tickets = {"a": [], "b": []}

        def hammer(key):
            for x in cluster_data[:16]:
                tickets[key].append(s.submit(x, key=key))

        threads = [
            threading.Thread(target=hammer, args=(key,)) for key in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        s.drain()
    for key in ("a", "b"):
        _replay_reference(fitted, tickets[key])


def test_aliased_key_past_deadline_does_not_spin_flusher(
    fitted, cluster_data
):
    """Regression: an overdue key blocked on an alias's in-flight flush
    must not clamp the flusher's sleep to zero (100%-CPU spin until the
    alias completes); its dispatch is driven by the completion event.
    """
    with EncodingService(
        max_batch=8, max_delay=0.01, backend="thread", workers=2
    ) as service:
        service.register("a", fitted)
        service.register("b", fitted)  # same encoder: shared pipeline
        tickets = []
        for _ in range(4):
            # Full window on "a" flushes immediately; "b" goes overdue
            # while "a" is in flight on the shared pipeline.
            tickets += [service.submit(x, key="a") for x in cluster_data[:8]]
            tickets.append(service.submit(cluster_data[8], key="b"))
        service.drain()
        wakeups = service.stats().flusher_wakeups
        assert all(t.done for t in tickets)
    # A zero-timeout spin racks up thousands of wakeups inside a single
    # 10ms flush; event-driven wakeups stay within a few per flush.
    assert wakeups < 100


# -- the deadline and the sleeping flusher ---------------------------------------------


def test_deadline_fires_with_zero_followup_traffic(fitted, cluster_data):
    """The PR's reason to exist: an idle queue still meets max_delay."""
    with EncodingService(
        max_batch=100, max_delay=0.05, backend="thread"
    ) as service:
        service.register("a", fitted)
        start = time.monotonic()
        ticket = service.submit(cluster_data[0], key="a")
        # No further submits, polls, or flushes: the flusher must wake
        # itself on the deadline.
        response = ticket.result(flush=False, timeout=5.0)
        elapsed = time.monotonic() - start
    assert response.latency >= 0.05  # waited out the deadline
    assert elapsed < 2.0  # ...but did not wait for anything else
    assert response.batch_size == 1


def test_idle_flusher_sleeps(fitted):
    """No traffic, no deadline: the flusher blocks instead of polling."""
    with EncodingService(max_batch=8, backend="thread") as service:
        service.register("a", fitted)
        time.sleep(0.25)
        wakeups = service.stats().flusher_wakeups
    # A busy-waiting flusher would rack up thousands of cycles in 250ms.
    assert wakeups <= 3


def test_deadline_wait_is_event_driven_not_polling(fitted, cluster_data):
    """One request served via deadline costs O(1) flusher wakeups."""
    with EncodingService(
        max_batch=100, max_delay=0.1, backend="thread"
    ) as service:
        service.register("a", fitted)
        ticket = service.submit(cluster_data[0], key="a")
        ticket.result(flush=False, timeout=5.0)
        time.sleep(0.15)  # idle tail: no further wakeups should accrue
        wakeups = service.stats().flusher_wakeups
    # submit kick + deadline expiry + completion notification, plus a
    # little scheduler slack — nowhere near a 1ms-poll busy loop.
    assert wakeups <= 8


def test_injectable_clock_deadline_determinism(fitted, cluster_data):
    """Fake-clock seam: deadlines move only when the clock is advanced."""
    clock = ManualClock()
    with EncodingService(
        max_batch=100, max_delay=5.0, backend="thread", clock=clock
    ) as service:
        service.register("a", fitted)
        ticket = service.submit(cluster_data[0], key="a")
        service.poll()  # kick the flusher: still not due at t=0
        time.sleep(0.05)
        assert not ticket.done
        clock.advance(4.0)
        service.poll()  # t=4.0 < 5.0: still not due
        time.sleep(0.05)
        assert not ticket.done
        clock.advance(1.0)
        service.poll()  # t=5.0: due exactly at the deadline (>=)
        response = ticket.result(flush=False, timeout=10.0)
    assert response.latency == 5.0  # fake-clock latency is exact


def test_overdue_busy_key_neither_wakes_nor_dispatches(fitted, cluster_data):
    """An overdue key whose flush is already in flight is excluded at
    the source: ``due_keys`` never reports it, and the flusher's sleep
    carries no deadline for it — so a busy key cannot zero-timeout-spin
    the flusher.  The in-flight completion is the wakeup that serves
    the follow-up."""
    clock = ManualClock()
    injector = FaultInjector(
        [FaultRule("finetune", kind="latency", latency=0.4, times=1)]
    )
    with EncodingService(
        max_batch=100,
        max_delay=1.0,
        backend="thread",
        workers=1,
        clock=clock,
        fault_injector=injector,
    ) as service:
        service.register("a", fitted)
        first = service.submit(cluster_data[0], key="a")
        clock.advance(2.0)
        service.poll()  # due: dispatches; the worker enters a slow flush
        time.sleep(0.05)  # let the worker claim the task
        follow_up = service.submit(cluster_data[1], key="a")
        clock.advance(5.0)  # follow-up long overdue — but the key is busy
        service.poll()  # kick the flusher with the new clock
        before = service.stats().flusher_wakeups
        time.sleep(0.15)  # inside the in-flight flush's latency window
        spin = service.stats().flusher_wakeups - before
        assert spin <= 2  # no due hit, no armed deadline, no spin
        assert not follow_up.done  # busy key was not double-dispatched
        first.result(flush=False, timeout=10.0)
        follow_up.result(flush=False, timeout=10.0)


def test_result_timeout_raises_then_ticket_still_serves(fitted, cluster_data):
    with EncodingService(max_batch=32, backend="thread") as service:
        service.register("a", fitted)
        ticket = service.submit(cluster_data[0], key="a")
        with pytest.raises(ServiceError, match="not served within"):
            ticket.result(flush=False, timeout=0.05)
        assert not ticket.done  # timing out does not consume the ticket
        response = ticket.result(timeout=10.0)  # flush=True forces it
        assert response.request_id == ticket.request.request_id


def test_result_forces_flush_of_partial_queue(fitted, cluster_data):
    with EncodingService(max_batch=32, backend="thread") as service:
        service.register("a", fitted)
        tickets = [service.submit(x, key="a") for x in cluster_data[:3]]
        response = tickets[0].result(timeout=10.0)
        assert response.batch_size == 3  # whole queue rode the flush
        assert all(t.done for t in tickets)


# -- stop / drain ----------------------------------------------------------------------


def test_stop_drains_partial_queues(fitted_pair, cluster_data):
    low, high = fitted_pair
    service = EncodingService(max_batch=100, backend="thread", workers=2)
    service.register("low", low)
    service.register("high", high)
    service.start()
    tickets = [
        service.submit(cluster_data[i], key=key)
        for i, key in enumerate(["low", "high", "low", "high", "low"])
    ]
    service.stop()  # drain=True: nothing may be stranded
    assert all(t.done for t in tickets)
    stats = service.stats()
    assert stats.requests_completed == 5
    assert stats.requests_pending == 0


def test_stop_without_drain_rejects_pending(fitted, cluster_data):
    service = EncodingService(max_batch=100, backend="thread")
    service.register("a", fitted)
    service.start()
    tickets = [service.submit(x, key="a") for x in cluster_data[:4]]
    service.stop(drain=False)
    assert all(t.failed and not t.done for t in tickets)
    with pytest.raises(ServiceError, match="rejected"):
        tickets[0].result()
    stats = service.stats()
    assert stats.requests_failed == 4
    assert stats.requests_completed == 0
    assert stats.requests_pending == 0


def test_drain_under_concurrent_submissions(fitted, cluster_data):
    """drain() returns only once the service is truly quiescent."""
    with EncodingService(max_batch=4, backend="thread", workers=2) as service:
        service.register("a", fitted)
        tickets: list = []

        def submitter():
            for x in cluster_data[:12]:
                tickets.append(service.submit(x, key="a"))

        thread = threading.Thread(target=submitter)
        thread.start()
        thread.join()
        service.drain()
        assert service.pending == 0
        assert all(t.done for t in tickets)


@pytest.mark.timeout(30)
def test_drain_flushes_traffic_arriving_mid_drain(fitted, cluster_data):
    """Regression: drain() must serve submits that land *while* draining.

    A one-shot forced-key snapshot would strand a request submitted
    after the snapshot (no deadline, queue below max_batch) and
    deadlock the drain; an active drain waiter has to keep the flusher
    dispatching unconditionally until quiescent.
    """
    with EncodingService(max_batch=100, backend="thread") as service:
        service.register("a", fitted)
        tickets = [service.submit(cluster_data[0], key="a")]
        stop_feeding = threading.Event()

        def trickle():
            # Keep landing new partial-queue requests while the main
            # thread sits inside drain().
            for x in cluster_data[1:10]:
                if stop_feeding.is_set():
                    break
                tickets.append(service.submit(x, key="a"))
                time.sleep(0.01)

        feeder = threading.Thread(target=trickle)
        feeder.start()
        try:
            service.drain(timeout=20.0)  # deadlocks (then times out) if
        finally:  # mid-drain arrivals are not dispatched
            stop_feeding.set()
            feeder.join()
        service.drain()  # pick up any post-first-drain stragglers
        assert all(t.done for t in tickets)


# -- error isolation -------------------------------------------------------------------


def test_flush_error_fails_only_that_key(fitted_pair, cluster_data):
    """A poisoned key loses its own tickets; other keys keep serving."""
    low, high = fitted_pair
    with EncodingService(max_batch=100, backend="thread", workers=2) as s:
        s.register("low", low)
        s.register("high", high)
        good = [s.submit(x, key="high") for x in cluster_data[:3]]
        victim = s.submit(cluster_data[3], key="low")
        # Poison the low queue the way a hot-swapped bundle would: a
        # request whose width no longer matches the encoder.
        with s._lock:
            s.batcher.add(
                EncodeRequest(
                    request_id=999999,
                    key="low",
                    sample=np.ones(8),
                    submitted_at=s.clock(),
                )
            )
        s.drain()
        assert victim.failed
        with pytest.raises(ServiceError, match="failed during"):
            victim.result()
        for ticket in good:
            assert ticket.result(flush=False).key == "high"
        # The pool survived: the poisoned key serves again afterwards.
        retry = s.submit(cluster_data[4], key="low")
        assert retry.result(timeout=10.0).key == "low"
        stats = s.stats()
    assert stats.requests_failed == 2  # victim + the injected poison
    assert stats.requests_completed == 4
    assert stats.backend == "thread"


# -- racing stats ----------------------------------------------------------------------


def test_stats_consistent_under_concurrent_flushes(fitted_pair, cluster_data):
    """Atomic per-flush accounting: totals reconcile after a storm."""
    low, high = fitted_pair
    per_thread = 20
    keys = ["low", "high"]
    with EncodingService(max_batch=8, backend="thread", workers=4) as s:
        s.register("low", low)
        s.register("high", high)

        def submitter(key, offset):
            rng = np.random.default_rng(offset)
            for _ in range(per_thread):
                x = cluster_data[int(rng.integers(len(cluster_data)))]
                s.submit(x, key=key)

        threads = [
            threading.Thread(target=submitter, args=(key, i))
            for i, key in enumerate(keys * 2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        s.drain()
        stats = s.stats()
    total = per_thread * len(keys) * 2
    assert stats.requests_submitted == total
    assert stats.requests_completed == total
    assert stats.requests_failed == 0
    assert stats.requests_pending == 0
    # The percentile window saw every request exactly once.
    assert len(s._latency_window) == min(total, STATS_WINDOW)
    assert stats.p50_latency <= stats.p95_latency
    assert stats.mean_batch_size == pytest.approx(total / stats.num_flushes)
    assert sum(stats.per_key_completed.values()) == total
    # Row-level bind accounting survived the races.
    assert stats.template_binds == total
    assert stats.template_cache_hits + stats.template_cache_misses == (
        stats.num_flushes
    )


def test_per_key_ordering_and_flush_partition(fitted, cluster_data):
    """One flush in flight per key: completion order == submission order."""
    with EncodingService(max_batch=4, backend="thread", workers=4) as service:
        service.register("a", fitted)
        tickets = [service.submit(x, key="a") for x in cluster_data[:14]]
        service.drain()
        responses = [t.result(flush=False) for t in tickets]
    # flush_ids are non-decreasing along submission order, and each
    # flush is one contiguous slice of the request stream.
    flush_ids = [r.flush_id for r in responses]
    assert flush_ids == sorted(flush_ids)
    seen: dict = {}
    for r in responses:
        seen.setdefault(r.flush_id, []).append(r.request_id)
    for ids in seen.values():
        assert ids == list(range(ids[0], ids[0] + len(ids)))
    # Latencies never decrease across flushes of one key (FIFO service).
    completed = [r.completed_at for r in responses]
    assert completed == sorted(completed)


# -- micro-batcher edge semantics ------------------------------------------------------


def test_microbatcher_next_deadline_semantics():
    batcher = MicroBatcher(max_batch=8, max_delay=1.0)
    assert batcher.next_deadline() is None  # empty: nothing armed
    batcher.add(EncodeRequest(0, "a", np.ones(4), submitted_at=2.0))
    batcher.add(EncodeRequest(1, "b", np.ones(4), submitted_at=1.0))
    assert batcher.next_deadline() == 2.0  # b's head (1.0) + max_delay
    # A busy key must not arm a wakeup (its completion wakes the
    # flusher); the other key's deadline remains.
    assert batcher.next_deadline(exclude={"b"}) == 3.0
    assert batcher.next_deadline(exclude={"a", "b"}) is None
    no_delay = MicroBatcher(max_batch=8, max_delay=None)
    no_delay.add(EncodeRequest(2, "a", np.ones(4), submitted_at=0.0))
    assert no_delay.next_deadline() is None


def test_microbatcher_deadline_exactly_at_now_is_due():
    batcher = MicroBatcher(max_batch=8, max_delay=1.0)
    batcher.add(EncodeRequest(0, "k", np.ones(4), submitted_at=1.0))
    assert batcher.due_keys(1.999999) == []
    assert batcher.due_keys(2.0) == ["k"]  # >=, not >: no zero-sleep spin
    zero = MicroBatcher(max_batch=8, max_delay=0.0)
    zero.add(EncodeRequest(1, "k", np.ones(4), submitted_at=5.0))
    assert zero.due_keys(5.0) == ["k"]  # max_delay=0: due immediately


def test_microbatcher_oldest_age_clamped():
    batcher = MicroBatcher(max_batch=8, max_delay=None)
    assert batcher.oldest_age(10.0) == 0.0  # empty
    batcher.add(EncodeRequest(0, "k", np.ones(4), submitted_at=5.0))
    assert batcher.oldest_age(7.5) == 2.5
    # A head stamped after `now` (stale read racing a submit, or a
    # rewound fake clock) reports age 0, never negative.
    assert batcher.oldest_age(4.0) == 0.0


# -- pipeline per-run reporting --------------------------------------------------------


def test_pipeline_run_reported_isolates_per_flush_stats(fitted, cluster_data):
    pipeline = fitted.pipeline
    before = pipeline.stats.template_binds
    encoded, report = pipeline.run_reported(cluster_data[:5])
    assert len(encoded) == 5
    assert report.batch_size == 5
    assert report.template_binds == 5
    assert report.template_hit in (True, False)  # template mode reports
    assert pipeline.stats.template_binds == before + 5
    _, full = pipeline.run_reported(cluster_data[:2], use_template=False)
    assert full.template_hit is None  # full transpile: no cache involved
    assert full.template_binds == 0
    assert full.finetune_seconds >= 0.0
    # Empty batch: a report with nothing in it, no stats movement.
    runs_before = pipeline.stats.runs
    out, empty = pipeline.run_reported(np.empty((0, 16)))
    assert out == [] and empty.batch_size == 0
    assert pipeline.stats.runs == runs_before
