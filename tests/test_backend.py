"""Unit tests for backends and calibrations."""

import numpy as np
import pytest

from repro.errors import BackendError
from repro.hardware import (
    FakeBrisbane,
    GateCalibration,
    QubitCalibration,
    brisbane_linear_segment,
    linear_backend,
    sample_gate_calibrations,
    sample_qubit_calibrations,
)


def test_fake_brisbane_structure():
    device = FakeBrisbane()
    assert device.num_qubits == 127
    assert device.native_gates.two_qubit_gate == "ecr"
    assert device.native_gates.is_native("rz")
    assert not device.native_gates.is_native("cy")


def test_calibrations_deterministic_by_seed():
    a = FakeBrisbane(seed=11)
    b = FakeBrisbane(seed=11)
    c = FakeBrisbane(seed=12)
    assert a.qubit(5).t1 == b.qubit(5).t1
    assert a.qubit(5).t1 != c.qubit(5).t1


def test_qubit_calibration_physical():
    for cal in sample_qubit_calibrations(20, seed=3):
        assert cal.t1 > 0
        assert cal.t2 <= 2 * cal.t1
        assert 0 < cal.readout_error < 1


def test_unphysical_qubit_calibration_rejected():
    with pytest.raises(BackendError):
        QubitCalibration(t1=1e-4, t2=3e-4, readout_error=0.01)


def test_gate_calibration_validation():
    with pytest.raises(BackendError):
        GateCalibration(error=1.5, duration=1e-7)
    with pytest.raises(BackendError):
        GateCalibration(error=0.01, duration=-1e-7)


def test_gate_calibrations_cover_both_ecr_orientations():
    table = sample_gate_calibrations([(0, 1)], 2, seed=0)
    assert table[("ecr", (0, 1))] is table[("ecr", (1, 0))]


def test_ecr_error_larger_than_sx():
    device = FakeBrisbane()
    a, b = device.coupling_map.edges[0]
    ecr = device.gate_calibration("ecr", (a, b)).error
    sx = device.gate_calibration("sx", (a,)).error
    assert ecr > sx


def test_missing_calibration_raises():
    device = FakeBrisbane()
    with pytest.raises(BackendError):
        device.gate_calibration("ecr", (0, 100))


def test_reduced_backend_relabels_consistently():
    device = FakeBrisbane()
    section = device.linear_section(5)
    segment = device.reduced(section)
    assert segment.num_qubits == 5
    # Coupling is a relabeled path.
    assert segment.coupling_map.edges == [(0, 1), (1, 2), (2, 3), (3, 4)]
    # Calibrations carried over.
    for i, phys in enumerate(section):
        assert segment.qubit(i).t1 == device.qubit(phys).t1
    edge_error = segment.gate_calibration("ecr", (0, 1)).error
    assert edge_error == device.gate_calibration(
        "ecr", (section[0], section[1])
    ).error


def test_noise_model_contains_all_native_gates():
    segment = brisbane_linear_segment(4)
    model = segment.noise_model()
    assert {"sx", "x", "ecr"} <= model.noisy_gate_names


def test_noise_model_rules_present_for_each_edge():
    segment = brisbane_linear_segment(3)
    model = segment.noise_model()
    from repro.quantum import gate
    from repro.quantum.instruction import Instruction

    rules = model.rules_for(Instruction(gate("ecr"), (0, 1)))
    # depolarizing (pair) + relaxation per qubit
    assert len(rules) == 3
    arities = sorted(ch.num_qubits for ch, _ in rules)
    assert arities == [1, 1, 2]


def test_linear_backend_factory():
    backend = linear_backend(6, seed=1)
    assert backend.num_qubits == 6
    assert backend.coupling_map.edges == [(i, i + 1) for i in range(5)]


def test_calibration_mismatch_rejected():
    from repro.hardware.backend import Backend
    from repro.hardware import IBM_EAGLE, linear_chain

    with pytest.raises(BackendError):
        Backend(
            "bad",
            linear_chain(3),
            IBM_EAGLE,
            sample_qubit_calibrations(2),
            {},
        )


def test_medians_override():
    device = FakeBrisbane(seed=0, medians={"ecr_error": 0.05})
    errors = [
        device.gate_calibration("ecr", edge).error
        for edge in device.coupling_map.edges[:10]
    ]
    assert np.mean(errors) > 0.02  # scaled up from the 7.5e-3 default
