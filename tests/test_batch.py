"""Tests for the batched encoding engine and the parametric template.

Covers the PR-1 acceptance criteria: ``encode_batch`` equivalence with
the sequential path on >= 32 samples (cluster assignments, fidelities to
1e-9, transpiled gate counts), the transpile-once template cache, the
batched objective/optimizer, vectorized ``nearest_centers``, and the
vectorized popcount.
"""

import numpy as np
import pytest

from repro.core import (
    BatchFidelityObjective,
    BatchLBFGSOptimizer,
    EnQodeAnsatz,
    EnQodeConfig,
    EnQodeEncoder,
    FidelityObjective,
    SymbolicState,
    nearest_center,
    nearest_centers,
)
from repro.errors import OptimizationError, TranspilerError
from repro.quantum import simulate_statevector, state_fidelity
from repro.quantum.gates import Gate, gate
from repro.transpile import (
    GLOBAL_TEMPLATE_CACHE,
    ParametricTemplate,
    template as template_module,
    transpile,
    transpile_template,
)
from repro.utils.linalg import popcount


@pytest.fixture(scope="module")
def cluster_data():
    """Three tight clusters of unit vectors in R^16 (32+ samples)."""
    rng = np.random.default_rng(11)
    centers = rng.normal(size=(3, 16))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    blocks = []
    for center in centers:
        block = center + 0.04 * rng.normal(size=(14, 16))
        blocks.append(block / np.linalg.norm(block, axis=1, keepdims=True))
    return np.concatenate(blocks)


@pytest.fixture(scope="module")
def fitted(segment4, cluster_data):
    config = EnQodeConfig(
        num_qubits=4,
        num_layers=6,
        offline_restarts=3,
        offline_max_iterations=500,
        online_max_iterations=60,
        max_clusters=8,
        seed=5,
    )
    encoder = EnQodeEncoder(segment4, config)
    encoder.fit(cluster_data)
    return encoder


# -- the acceptance regression: batch == sequential ---------------------------------


def test_encode_batch_equivalent_to_sequential(fitted, cluster_data):
    """>= 32 samples: same clusters, fidelities (1e-9), and gate counts."""
    samples = cluster_data[:32]
    assert samples.shape[0] >= 32
    sequential = [fitted.encode(x) for x in samples]
    batched = fitted.encode_batch(samples)
    assert len(batched) == len(sequential)
    for seq, bat in zip(sequential, batched):
        assert bat.cluster_index == seq.cluster_index
        assert abs(bat.ideal_fidelity - seq.ideal_fidelity) < 1e-9
        assert bat.circuit.count_ops() == seq.circuit.count_ops()
        assert bat.circuit.depth(physical_only=True) == seq.circuit.depth(
            physical_only=True
        )
        assert (
            bat.transpiled.num_swaps_inserted
            == seq.transpiled.num_swaps_inserted
        )


def test_encode_batch_without_template_matches(fitted, cluster_data):
    samples = cluster_data[:4]
    with_template = fitted.encode_batch(samples, use_template=True)
    without = fitted.encode_batch(samples, use_template=False)
    for a, b in zip(with_template, without):
        assert a.cluster_index == b.cluster_index
        assert abs(a.ideal_fidelity - b.ideal_fidelity) < 1e-12
        assert list(a.circuit) == list(b.circuit)


def test_encode_batch_requires_fit(segment4):
    encoder = EnQodeEncoder(segment4, EnQodeConfig(num_qubits=4))
    with pytest.raises(OptimizationError):
        encoder.encode_batch(np.ones((3, 16)))


def test_encode_batch_validates_width(fitted):
    with pytest.raises(OptimizationError):
        fitted.encode_batch(np.ones((3, 8)))


def test_encode_batch_empty_input(fitted):
    assert fitted.encode_batch(np.empty((0, 16))) == []


def test_encode_rejects_zero_rows(fitted):
    """A zero row must error cleanly, not propagate NaNs (both paths)."""
    bad = np.ones((3, 16))
    bad[1] = 0.0
    with pytest.raises(OptimizationError):
        fitted.encode_batch(bad)
    with pytest.raises(OptimizationError):
        fitted.encode(np.zeros(16))


def test_encode_batch_lazy_logical_circuit(fitted, cluster_data):
    encoded = fitted.encode_batch(cluster_data[:2])[0]
    rebuilt = fitted.ansatz.circuit(encoded.theta)
    assert list(encoded.logical_circuit) == list(rebuilt)


def test_encode_batch_simulates_to_claimed_fidelity(fitted, cluster_data):
    encoded = fitted.encode_batch(cluster_data[:3])[1]
    psi = simulate_statevector(encoded.circuit)
    simulated = state_fidelity(psi, encoded.physical_target())
    assert simulated == pytest.approx(encoded.ideal_fidelity, abs=1e-9)


# -- the template cache: transpile runs once per batch --------------------------------


def test_template_cache_transpiles_once_per_batch(
    fitted, cluster_data, monkeypatch
):
    calls = {"count": 0}
    real_transpile = template_module.transpile

    def counting_transpile(*args, **kwargs):
        calls["count"] += 1
        return real_transpile(*args, **kwargs)

    monkeypatch.setattr(template_module, "transpile", counting_transpile)
    GLOBAL_TEMPLATE_CACHE.clear()
    fitted.encode_batch(cluster_data[:8])
    # One reference transpile inside the template build — nothing per sample.
    assert calls["count"] == 1
    assert GLOBAL_TEMPLATE_CACHE.misses == 1
    assert GLOBAL_TEMPLATE_CACHE.hits == 0
    fitted.encode_batch(cluster_data[8:16])
    assert calls["count"] == 1  # cache hit: no further transpiles
    assert GLOBAL_TEMPLATE_CACHE.hits == 1


def test_template_cache_distinguishes_levels(segment4):
    GLOBAL_TEMPLATE_CACHE.clear()
    ansatz = EnQodeAnsatz(4, 4)
    t1 = transpile_template(ansatz, segment4, 1)
    t0 = transpile_template(ansatz, segment4, 0)
    again = transpile_template(EnQodeAnsatz(4, 4), segment4, 1)
    assert t1 is not t0
    assert again is t1  # structural key, not object identity
    assert GLOBAL_TEMPLATE_CACHE.misses == 2
    assert GLOBAL_TEMPLATE_CACHE.hits == 1


@pytest.mark.parametrize("level", [0, 1])
def test_template_bind_matches_full_transpile(segment4, level):
    ansatz = EnQodeAnsatz(4, 6)
    template = ParametricTemplate(ansatz, segment4, level)
    rng = np.random.default_rng(3)
    thetas = [
        rng.uniform(-np.pi, np.pi, ansatz.num_parameters) for _ in range(5)
    ]
    thetas.append(np.zeros(ansatz.num_parameters))  # degenerate pruning case
    for theta in thetas:
        reference = transpile(
            ansatz.circuit(theta), segment4, optimization_level=level
        )
        bound = template.bind(theta)
        assert list(bound.circuit) == list(reference.circuit)
        assert (
            bound.circuit.count_ops(physical_only=True)
            == reference.circuit.count_ops(physical_only=True)
        )
        assert bound.final_layout.physical(0) == reference.final_layout.physical(0)


def test_template_bind_validates_theta(segment4):
    template = transpile_template(EnQodeAnsatz(4, 4), segment4, 1)
    with pytest.raises(TranspilerError):
        template.bind(np.zeros(5))


def test_template_bound_circuit_simulates(segment4):
    """Lazily-built rz matrices must still simulate correctly."""
    ansatz = EnQodeAnsatz(4, 6)
    template = ParametricTemplate(ansatz, segment4, 1)
    theta = np.random.default_rng(9).uniform(-np.pi, np.pi, ansatz.num_parameters)
    bound = template.bind(theta)
    symbolic = SymbolicState.from_ansatz(ansatz)
    ideal = symbolic.embedded_amplitudes(theta, ansatz)
    psi = simulate_statevector(bound.circuit)
    assert state_fidelity(psi, bound.embed_target(ideal)) == pytest.approx(
        1.0, abs=1e-9
    )


# -- batched objective and optimizer ---------------------------------------------------


def test_batch_objective_matches_per_sample(segment4):
    ansatz = EnQodeAnsatz(4, 6)
    symbolic = SymbolicState.from_ansatz(ansatz)
    rng = np.random.default_rng(2)
    targets = rng.normal(size=(5, 16))
    thetas = rng.uniform(-np.pi, np.pi, (5, ansatz.num_parameters))
    batch = BatchFidelityObjective(symbolic, ansatz, targets)
    losses, grads = batch.value_and_grad(thetas)
    fidelities = batch.fidelities(thetas)
    for b in range(5):
        single = FidelityObjective(symbolic, ansatz, targets[b])
        loss, grad = single.value_and_grad(thetas[b])
        assert losses[b] == pytest.approx(loss, abs=1e-12)
        assert fidelities[b] == pytest.approx(
            single.fidelity(thetas[b]), abs=1e-12
        )
        np.testing.assert_allclose(grads[b], grad, atol=1e-12)


def test_batch_objective_fused_pass_matches_reference(segment4):
    """The fused single-gemm value_and_grad equals the unfused formula.

    Reference: separate cos/sin passes, two independent term matrices,
    and two separate ``@ P/2`` contractions — the textbook expansion of
    the gradient ``-2 (Im(S) Re(T) - Re(S) Im(T))``.
    """
    ansatz = EnQodeAnsatz(4, 6)
    symbolic = SymbolicState.from_ansatz(ansatz)
    rng = np.random.default_rng(17)
    targets = rng.normal(size=(7, 16))
    thetas = rng.uniform(-np.pi, np.pi, (7, ansatz.num_parameters))
    batch = BatchFidelityObjective(symbolic, ansatz, targets)
    losses, grads = batch.value_and_grad(thetas)

    half_p = symbolic.half_phase_matrix
    phases = thetas @ half_p.T
    cos, sin = np.cos(phases), np.sin(phases)
    t_r = batch._coeff_real * cos - batch._coeff_imag * sin
    t_i = batch._coeff_real * sin + batch._coeff_imag * cos
    s_real, s_imag = t_r.sum(axis=1), t_i.sum(axis=1)
    ref_losses = 1.0 - (s_real**2 + s_imag**2)
    ref_grads = -2.0 * (
        s_imag[:, None] * (t_r @ half_p) - s_real[:, None] * (t_i @ half_p)
    )
    np.testing.assert_allclose(losses, ref_losses, atol=1e-12)
    np.testing.assert_allclose(grads, ref_grads, atol=1e-12)
    # Repeated calls are independent (no persistent scratch buffers).
    losses2, grads2 = batch.value_and_grad(thetas)
    np.testing.assert_array_equal(losses, losses2)
    np.testing.assert_array_equal(grads, grads2)


def test_batch_objective_embedded_states(segment4):
    ansatz = EnQodeAnsatz(4, 4)
    symbolic = SymbolicState.from_ansatz(ansatz)
    rng = np.random.default_rng(4)
    targets = rng.normal(size=(3, 16))
    thetas = rng.uniform(-np.pi, np.pi, (3, ansatz.num_parameters))
    batch = BatchFidelityObjective(symbolic, ansatz, targets)
    states = batch.embedded_states(thetas)
    for b in range(3):
        np.testing.assert_allclose(
            states[b],
            symbolic.embedded_amplitudes(thetas[b], ansatz),
            atol=1e-12,
        )


def test_batch_objective_validation():
    ansatz = EnQodeAnsatz(4, 4)
    symbolic = SymbolicState.from_ansatz(ansatz)
    with pytest.raises(OptimizationError):
        BatchFidelityObjective(symbolic, ansatz, np.ones((2, 8)))
    with pytest.raises(OptimizationError):
        BatchFidelityObjective(symbolic, ansatz, np.zeros((2, 16)))
    objective = BatchFidelityObjective(symbolic, ansatz, np.ones((2, 16)))
    with pytest.raises(OptimizationError):
        objective.value_and_grad(np.zeros((3, ansatz.num_parameters)))


def test_batch_optimizer_converges_per_sample(segment4):
    ansatz = EnQodeAnsatz(4, 6)
    symbolic = SymbolicState.from_ansatz(ansatz)
    rng = np.random.default_rng(6)
    targets = rng.normal(size=(4, 16))
    objective = BatchFidelityObjective(symbolic, ansatz, targets)
    optimizer = BatchLBFGSOptimizer(max_iterations=300)
    theta0 = rng.uniform(-np.pi, np.pi, (4, ansatz.num_parameters))
    result = optimizer.optimize(objective, theta0)
    assert result.batch_size == 4
    assert result.thetas.shape == theta0.shape
    assert result.fidelities.shape == (4,)
    assert result.num_iterations >= 1
    assert result.converged.dtype == bool
    # Each row should be at least as good as its own warm start.
    start_losses, _ = objective.value_and_grad(theta0)
    assert np.all(result.losses <= start_losses + 1e-12)


def test_transfer_embed_batch_order_and_fields(fitted, cluster_data):
    samples = cluster_data[:6]
    outcomes = fitted._transfer.embed_batch(samples)
    assert len(outcomes) == 6
    for sample, outcome in zip(samples, outcomes):
        index, distance = nearest_center(sample, fitted._transfer.centers)
        assert outcome.cluster_index == index
        assert outcome.cluster_distance == pytest.approx(distance)
        assert 0.0 <= outcome.fidelity <= 1.0 + 1e-12
        # Per-sample attribution, not the whole-batch iteration total.
        assert (
            outcome.result.num_iterations
            <= fitted._transfer._optimizer.max_iterations * 2
        )


def test_encoded_sample_without_ansatz_errors():
    from repro.core.encoder import EncodedSample

    bare = EncodedSample(
        target=np.ones(4),
        theta=np.ones(4),
        cluster_index=0,
        ideal_fidelity=1.0,
        transpiled=None,
        compile_time=0.0,
        optimizer_iterations=1,
    )
    with pytest.raises(OptimizationError):
        bare.logical_circuit


# -- vectorized helpers ----------------------------------------------------------------


def test_nearest_centers_matches_scalar(rng):
    samples = rng.normal(size=(20, 8))
    centers = rng.normal(size=(5, 8))
    indices, distances = nearest_centers(samples, centers)
    for b in range(20):
        index, distance = nearest_center(samples[b], centers)
        assert indices[b] == index
        assert distances[b] == pytest.approx(distance, abs=1e-12)


def test_popcount_matches_python():
    values = np.arange(1 << 12)
    expected = np.array([bin(v).count("1") for v in values])
    np.testing.assert_array_equal(popcount(values), expected)


def test_popcount_fallback_path(monkeypatch):
    values = np.arange(4096, dtype=np.int64)
    expected = popcount(values)
    monkeypatch.delattr(np, "bitwise_count", raising=False)
    np.testing.assert_array_equal(popcount(values), expected)


def test_popcount_rejects_negative():
    with pytest.raises(ValueError):
        popcount(np.array([-1, 2]))


def test_symbolic_cached_properties(segment4):
    symbolic = SymbolicState.from_ansatz(EnQodeAnsatz(4, 4))
    half = symbolic.half_phase_matrix
    assert half is symbolic.half_phase_matrix  # cached, not recomputed
    np.testing.assert_array_equal(half, symbolic.phase_matrix.astype(float) / 2.0)
    factors = symbolic.phase_factors
    assert factors is symbolic.phase_factors
    np.testing.assert_array_equal(factors, 1j ** symbolic.k_pow)
    with pytest.raises(ValueError):
        half[0, 0] = 99.0  # read-only: shared across objectives


def test_gate_trusted_lazy_matrix():
    lazy = Gate.trusted("rz", 1, (0.37,))
    eager = gate("rz", 0.37)
    assert lazy == eager
    np.testing.assert_array_equal(lazy.matrix, eager.matrix)


# -- the online batch-engine knob (PR 4) ----------------------------------------------


def test_online_batch_engine_equivalence(fitted, cluster_data):
    """Per-row and stacked drives agree on warm-start fine-tunes."""
    samples = cluster_data[:16]
    transfer = fitted._transfer
    original = transfer.batch_engine
    try:
        transfer.batch_engine = "rows"
        rows = fitted.encode_batch(samples)
        transfer.batch_engine = "stacked"
        stacked = fitted.encode_batch(samples)
    finally:
        transfer.batch_engine = original
    for a, b in zip(rows, stacked):
        assert a.cluster_index == b.cluster_index
        assert abs(a.ideal_fidelity - b.ideal_fidelity) < 1e-9
        assert a.circuit.count_ops() == b.circuit.count_ops()


def test_online_batch_engine_dispatch(fitted, cluster_data, monkeypatch):
    """The knob routes multi-row fine-tunes to the selected drive."""
    calls = []
    original_rows = BatchLBFGSOptimizer.optimize_rows
    original_stacked = BatchLBFGSOptimizer.optimize

    def spy_rows(self, objective, theta0):
        calls.append("rows")
        return original_rows(self, objective, theta0)

    def spy_stacked(self, objective, theta0):
        calls.append("stacked")
        return original_stacked(self, objective, theta0)

    monkeypatch.setattr(BatchLBFGSOptimizer, "optimize_rows", spy_rows)
    monkeypatch.setattr(BatchLBFGSOptimizer, "optimize", spy_stacked)
    transfer = fitted._transfer
    original = transfer.batch_engine
    try:
        for engine in ("rows", "stacked"):
            transfer.batch_engine = engine
            calls.clear()
            fitted.encode_batch(cluster_data[:3])
            assert calls == [engine]
    finally:
        transfer.batch_engine = original


def test_online_batch_engine_validation(segment4):
    with pytest.raises(OptimizationError):
        EnQodeConfig(num_qubits=4, online_batch_engine="bogus")
    from repro.core.transfer import TransferLearner

    ansatz = EnQodeAnsatz(4, 4)
    with pytest.raises(OptimizationError):
        TransferLearner(
            ansatz,
            SymbolicState.from_ansatz(ansatz),
            centers=np.eye(16)[:2],
            cluster_thetas=np.zeros((2, ansatz.num_parameters)),
            batch_engine="bogus",
        )


def test_pipeline_records_bind_stage_seconds(fitted, cluster_data):
    """The stats split route/finetune/bind/lower; batched binds land in bind."""
    pipeline = fitted.pipeline
    before = pipeline.stats.bind_seconds
    runs_before = pipeline.stats.runs
    fitted.encode_batch(cluster_data[:6])
    assert pipeline.stats.runs == runs_before + 1
    assert pipeline.stats.bind_seconds > before
    assert pipeline.stats.route_seconds > 0.0
    assert pipeline.stats.finetune_seconds > 0.0
